//! Cluster-scale tuning with work lines (§III.B end to end).
//!
//! Builds a 2×2×2 cluster, splits it into two work lines, and runs the
//! three cluster tuning methods side by side, printing the trade-off the
//! paper's Table 4 quantifies: the single-server default method is slow
//! and noisy, duplication converges almost immediately, partitioning is
//! steady because each line's tuner sees only its own line's throughput.
//!
//! Run with: `cargo run --release --example partitioned_tuning`

use ah_webtune::cluster::config::Topology;
use ah_webtune::harmony::strategy::TuningMethod;
use ah_webtune::harmony::workline::build_work_lines;
use ah_webtune::orchestrator::report::{sparkline, TextTable};
use ah_webtune::orchestrator::session::{tune, SessionConfig};
use ah_webtune::tpcw::metrics::IntervalPlan;
use ah_webtune::tpcw::mix::Workload;

fn main() {
    let topology = Topology::tiers(2, 2, 2).expect("valid layout");

    // Show the work-line partition the partitioning method will use.
    let nodes: Vec<(usize, u8)> = topology
        .roles()
        .iter()
        .enumerate()
        .map(|(i, r)| (i, *r as u8))
        .collect();
    let lines = build_work_lines(&nodes).expect("partitionable");
    println!("cluster {topology} splits into {} work lines:", lines.len());
    for (i, line) in lines.iter().enumerate() {
        println!("  line {i}: nodes {:?}", line.nodes);
    }
    println!();

    let cfg = SessionConfig::new(topology, Workload::Shopping, 3_400).plan(IntervalPlan::fast());
    let iterations = 40;
    let (baseline, _) = cfg.measure_default(2);
    println!(
        "untuned baseline: {baseline:.1} WIPS; tuning {iterations} iterations per method...\n"
    );

    let mut table = TextTable::new(["Method", "Best WIPS", "Gain", "Trace"]);
    for method in [
        TuningMethod::Default,
        TuningMethod::Duplication,
        TuningMethod::Partitioning,
    ] {
        let run = tune(&cfg, method, iterations).expect("tuning session");
        table.row([
            method.label().to_string(),
            format!("{:.1}", run.best_wips),
            format!("{:+.1}%", (run.best_wips / baseline - 1.0) * 100.0),
            sparkline(&run.wips_series()),
        ]);
    }
    println!("{}", table.render());
    println!("Reading the traces: duplication jumps almost immediately (few dimensions");
    println!("per tier server); the default method spends its first ~47 iterations just");
    println!("building the initial simplex over every parameter of every node.");
}
