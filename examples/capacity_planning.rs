//! Capacity planning with the cluster simulator.
//!
//! The scenario the paper's introduction motivates: an e-commerce operator
//! must provision for widely varying demand. This example uses the
//! simulator directly (no tuning) to answer two questions:
//!
//! 1. Where does each tier layout saturate as load grows?
//! 2. Which tier should get the next machine for a given workload?
//!
//! Run with: `cargo run --release --example capacity_planning`

use ah_webtune::cluster::config::{ClusterConfig, Topology};
use ah_webtune::cluster::model::ClusterScenario;
use ah_webtune::cluster::runner::run_iteration;
use ah_webtune::orchestrator::par::parallel_map;
use ah_webtune::orchestrator::report::TextTable;
use ah_webtune::tpcw::metrics::IntervalPlan;
use ah_webtune::tpcw::mix::Workload;

fn measure(topology: &Topology, workload: Workload, population: u32) -> f64 {
    let mut scenario = ClusterScenario::single(workload, population, IntervalPlan::fast(), 7);
    scenario.config = ClusterConfig::defaults(topology);
    scenario.topology = topology.clone();
    run_iteration(&scenario).metrics.wips
}

fn main() {
    // Question 1: load sweep on the single-line cluster.
    let single = Topology::single();
    let populations = [400u32, 800, 1200, 1600, 2000];
    println!("Load sweep, 1 proxy / 1 app / 1 db, shopping mix:");
    let sweep = parallel_map(&populations, 0, |&p| {
        measure(&single, Workload::Shopping, p)
    });
    let mut table = TextTable::new(["Browsers", "WIPS", "WIPS per browser"]);
    for (&p, &w) in populations.iter().zip(&sweep) {
        table.row([
            p.to_string(),
            format!("{w:.1}"),
            format!("{:.3}", w / p as f64),
        ]);
    }
    println!("{}", table.render());
    println!("(WIPS per browser falling = the cluster is saturating.)\n");

    // Question 2: where should the fourth machine go, per workload?
    let candidates = [
        ("extra proxy (2/1/1)", Topology::tiers(2, 1, 1).unwrap()),
        ("extra app   (1/2/1)", Topology::tiers(1, 2, 1).unwrap()),
        ("extra db    (1/1/2)", Topology::tiers(1, 1, 2).unwrap()),
    ];
    let population = 2_200;
    println!("Where should the fourth machine go at {population} browsers?");
    let mut table = TextTable::new(["Layout", "Browsing", "Shopping", "Ordering"]);
    let cells: Vec<(usize, usize)> = (0..3).flat_map(|c| (0..3).map(move |w| (c, w))).collect();
    let results = parallel_map(&cells, 0, |&(c, w)| {
        measure(&candidates[c].1, Workload::ALL[w], population)
    });
    for (c, candidate) in candidates.iter().enumerate() {
        let row: Vec<String> = (0..3)
            .map(|w| format!("{:.1}", results[c * 3 + w]))
            .collect();
        table.row([
            candidate.0.to_string(),
            row[0].clone(),
            row[1].clone(),
            row[2].clone(),
        ]);
    }
    println!("{}", table.render());
    println!("Browse-heavy traffic wants proxies; order-heavy traffic wants app/db");
    println!("capacity — the same imbalance §IV's reconfiguration algorithm exploits.");
}
