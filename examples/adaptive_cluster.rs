//! An adaptive cluster riding a workload shift (§IV end to end).
//!
//! Starts a proxy-heavy cluster under a browsing workload, then shifts the
//! traffic to order-heavy. Active Harmony keeps tuning parameters every
//! iteration, and the reconfiguration controller (checked periodically)
//! moves a node into whichever tier became the bottleneck.
//!
//! Run with: `cargo run --release --example adaptive_cluster`

use ah_webtune::cluster::config::Topology;
use ah_webtune::harmony::reconfig::Thresholds;
use ah_webtune::orchestrator::reconfigure::{run_reconfig_session, ReconfigSettings};
use ah_webtune::orchestrator::report::sparkline;
use ah_webtune::orchestrator::session::SessionConfig;
use ah_webtune::tpcw::metrics::IntervalPlan;
use ah_webtune::tpcw::mix::Workload;

fn main() {
    // Proxy-heavy initial layout: fine for browsing, wrong for ordering.
    let topology = Topology::tiers(4, 2, 3).expect("valid layout");
    let base = SessionConfig::new(topology, Workload::Browsing, 4_200).plan(IntervalPlan::fast());

    let settings = ReconfigSettings {
        check_every: Some(20), // autonomous periodic checks
        force_check_at: None,
        thresholds: Thresholds {
            high: 0.80,
            low: 0.45,
        },
        ..Default::default()
    };

    let switch_at = 25;
    let total = 60;
    println!("4 proxies / 2 app / 3 db, browsing -> ordering at iteration {switch_at}");
    println!("running {total} iterations with reconfiguration checks every 20...\n");

    let run = run_reconfig_session(&base, &settings, total, |i| {
        if i < switch_at {
            Workload::Browsing
        } else {
            Workload::Ordering
        }
    })
    .expect("reconfiguration session");

    println!("WIPS: {}", sparkline(&run.wips_series()));
    for event in &run.events {
        println!(
            "iteration {:3}: moved node {} from {} tier to {} tier ({}, cost value {:+.1})",
            event.iteration,
            event.node,
            event.from_tier,
            event.to_tier,
            if event.immediate {
                "immediately"
            } else {
                "after draining"
            },
            event.cost_value,
        );
    }
    if run.events.is_empty() {
        println!("no reconfiguration was needed (thresholds never both triggered)");
    }
    println!(
        "\nmean WIPS before the switch: {:.1}",
        run.mean_wips(5, switch_at as usize)
    );
    if let Some(first) = run.events.first() {
        let after = (first.iteration + 5) as usize;
        println!(
            "mean WIPS after reconfiguration: {:.1}",
            run.mean_wips(after, total as usize)
        );
    }
    println!("final layout: {}", run.final_topology);
}
