//! The simplex method step by step (the paper's Figure 3, in a terminal).
//!
//! Watches the integer-adapted Nelder–Mead kernel walk a 2-D parameter
//! space toward the optimum of a noisy response surface, printing every
//! proposal: the initial simplex, then reflections, expansions,
//! contractions, and multiple contractions.
//!
//! Run with: `cargo run --release --example simplex_steps`

use ah_webtune::harmony::param::ParamDef;
use ah_webtune::harmony::simplex::SimplexTuner;
use ah_webtune::harmony::space::ParamSpace;
use ah_webtune::harmony::tuner::Tuner;
use ah_webtune::simkit::rng::SimRng;

/// A bumpy 2-D "performance" surface with its peak at (140, 45).
fn surface(x: i64, y: i64, noise: &mut SimRng) -> f64 {
    let dx = (x - 140) as f64 / 40.0;
    let dy = (y - 45) as f64 / 15.0;
    let base = 100.0 * (-0.5 * (dx * dx + dy * dy)).exp();
    base + noise.normal(0.0, 0.8)
}

fn main() {
    let space = ParamSpace::new(vec![
        ParamDef::new("threads", 1, 256, 20),
        ParamDef::new("cache_mb", 1, 64, 8),
    ]);
    let mut tuner = SimplexTuner::new(space);
    let mut noise = SimRng::new(2);

    println!("iter  threads  cache_mb  observed   best-so-far");
    println!("------------------------------------------------");
    for i in 0..40 {
        let config = tuner.propose();
        let (x, y) = (config.get(0), config.get(1));
        let perf = surface(x, y, &mut noise);
        tuner.observe(perf);
        let (best, best_perf) = tuner.best().expect("observed at least once");
        let marker = match i {
            0 => "  <- initial vertex (the default configuration)",
            1..=2 => "  <- initial simplex (n+1 = 3 vertices)",
            3 => "  <- first reflection: the search begins",
            _ => "",
        };
        println!("{i:4}  {x:7}  {y:8}  {perf:8.2}   {best} = {best_perf:.2}{marker}");
    }
    let (best, perf) = tuner.best().unwrap();
    println!(
        "\nconverged near the optimum (140, 45): best {best} at {perf:.2} \
         after {} evaluations ({} simplex restarts)",
        tuner.evaluations(),
        tuner.restarts()
    );
}
