//! Quickstart: tune a simulated three-tier web cluster in ~30 lines.
//!
//! Builds the paper's single-work-line cluster (one Squid-like proxy, one
//! Tomcat-like app server, one MySQL-like database), drives it with the
//! TPC-W shopping mix, and lets Active Harmony tune all 23 parameters for
//! a handful of iterations.
//!
//! Run with: `cargo run --release --example quickstart`

use ah_webtune::cluster::config::Topology;
use ah_webtune::orchestrator::session::{tune_default_method, SessionConfig};
use ah_webtune::tpcw::metrics::IntervalPlan;
use ah_webtune::tpcw::mix::Workload;

fn main() {
    // A session fixes the environment: topology, workload, load level and
    // the per-iteration measurement plan.
    let session = SessionConfig::new(
        Topology::single(), // 1 proxy / 1 app / 1 db
        Workload::Shopping, // the primary TPC-W mix (WIPS)
        1_700,              // emulated browsers (saturating load)
    )
    .plan(IntervalPlan::fast()); // 20 s warm-up, 200 s measure

    // Baseline: the default configuration.
    let (default_wips, sd) = session.measure_default(2);
    println!("default configuration: {default_wips:.1} WIPS (sd {sd:.1})");

    // Tune: one Harmony server proposes a configuration per iteration, the
    // simulated cluster measures it, and the simplex moves.
    let iterations = 30;
    println!("tuning for {iterations} iterations...");
    let run = tune_default_method(&session, iterations).expect("tuning session");

    for record in run.records.iter().step_by(5) {
        println!("  iter {:3}: {:6.1} WIPS", record.iteration, record.wips);
    }
    println!(
        "best found: {:.1} WIPS ({:+.1}% vs default) at iteration {}",
        run.best_wips,
        (run.best_wips / default_wips - 1.0) * 100.0,
        run.convergence_iteration
    );
}
