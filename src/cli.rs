//! Command-line interface definitions for the `ah-webtune` binary.
//!
//! Hand-rolled parsing (no extra dependencies): subcommands `simulate`,
//! `tune`, `reconfig`, and `sweep`, each with a small flag set.

use cluster::config::Topology;
use cluster::model::{LoadModel, DEFAULT_COHORT_BINS};
use harmony::strategy::TuningMethod;
use tpcw::metrics::IntervalPlan;
use tpcw::mix::Workload;

/// Parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run one measurement iteration and print the outcome.
    Simulate(SimArgs),
    /// Run a tuning session.
    Tune(TuneArgs),
    /// Run a tuning + reconfiguration session.
    Reconfig(SimArgs),
    /// Sweep browser populations.
    Sweep(SweepArgs),
    /// Print usage.
    Help,
}

/// Common simulation options.
#[derive(Debug, Clone, PartialEq)]
pub struct SimArgs {
    pub workload: Workload,
    pub topology: Topology,
    pub population: u32,
    pub seed: u64,
    pub markov: bool,
    pub plan: IntervalPlan,
    /// Write one JSONL trace record per iteration to this path.
    pub trace: Option<String>,
    /// Collect and print engine/resource metrics at the end of the run.
    pub metrics: bool,
    /// Path to a JSON fault plan injected into the session timeline.
    pub faults: Option<String>,
    /// Seed for the fault injector's deterministic noise/jitter draws.
    pub fault_seed: Option<u64>,
    /// Directory for crash-safe session state (journal + snapshots).
    pub checkpoint_dir: Option<String>,
    /// Snapshot cadence in iterations (default 10 when checkpointing).
    pub checkpoint_every: Option<u32>,
    /// Resume the interrupted session found in `--checkpoint-dir`.
    pub resume: bool,
    /// Worker threads for speculative candidate evaluation
    /// (`None` = 1 = sequential; `Some(0)` = one per core).
    pub eval_threads: Option<usize>,
    /// Disable the measurement memoization cache (on by default in the
    /// CLI; the library default is off).
    pub no_eval_cache: bool,
    /// Worker width for measurement replications
    /// (`None` = 1 = sequential; `Some(0)` = one per core). Bit-identical
    /// results at any width — replications merge in replication order.
    pub replication_threads: Option<usize>,
    /// How the browser population is realised (`--load-model`): one
    /// simulated browser per user, or think-time cohorts of weighted
    /// tokens (`--cohort-bins` controls the binning resolution).
    pub load_model: LoadModel,
}

impl Default for SimArgs {
    fn default() -> Self {
        SimArgs {
            workload: Workload::Shopping,
            topology: Topology::single(),
            population: 1_000,
            seed: 42,
            markov: false,
            plan: IntervalPlan::fast(),
            trace: None,
            metrics: false,
            faults: None,
            fault_seed: None,
            checkpoint_dir: None,
            checkpoint_every: None,
            resume: false,
            eval_threads: None,
            no_eval_cache: false,
            replication_threads: None,
            load_model: LoadModel::PerBrowser,
        }
    }
}

/// Tuning options.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneArgs {
    pub sim: SimArgs,
    pub method: TuningMethod,
    pub iterations: u32,
    /// Registered tuning algorithm (`--tuner`); `None` = simplex.
    pub tuner: Option<String>,
    /// Run a resilient session gating reconfiguration on the φ-accrual
    /// failure detector instead of the injector's health oracle.
    pub detector: bool,
    /// φ sliding-window capacity override (requires `--detector`).
    pub detector_window: Option<usize>,
    /// Suspicion threshold φ* override (requires `--detector`).
    pub phi_threshold: Option<f64>,
    /// Run a resilient session with the historical oracle-gated
    /// reconfiguration (conflicts with `--detector`).
    pub health_oracle: bool,
}

/// Sweep options.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepArgs {
    pub sim: SimArgs,
    pub from: u32,
    pub to: u32,
    pub step: u32,
}

pub const USAGE: &str = "\
ah-webtune — automated cluster-based web service performance tuning

USAGE:
  ah-webtune simulate [options]        run one measurement iteration
  ah-webtune tune     [options]        run a tuning session
  ah-webtune reconfig [options]        tuning + automatic reconfiguration
  ah-webtune sweep    [options]        sweep browser populations

OPTIONS (all subcommands):
  --workload browsing|shopping|ordering   (default shopping)
  --topology PxAxD   e.g. 2x2x1           (default 1x1x1)
  --population N                          (default 1000)
  --seed N                                (default 42)
  --markov           walk TPC-W sessions instead of i.i.d. sampling
  --plan tiny|fast|paper                  measurement intervals (default fast)
  --trace PATH       write one JSONL trace record per iteration
  --metrics          print engine/resource metrics at the end of the run
  --faults PATH      JSON fault plan to inject (crashes, stalls, slowdowns, noise)
  --fault-seed N     seed for fault noise/jitter draws (default 0xFA17;
                     requires --faults)
  --checkpoint-dir PATH   journal + snapshot session state for crash recovery
  --checkpoint-every N    snapshot cadence in iterations (default 10, N >= 1)
  --resume           continue the interrupted session in --checkpoint-dir
  --eval-threads N   worker threads for speculative candidate evaluation
                     (default 1 = sequential; 0 = auto, one per core)
  --no-eval-cache    disable measurement memoization (identical results,
                     repeated configurations re-simulate)
  --replication-threads N   worker width for measurement replications
                     (default 1 = sequential; 0 = auto, one per core);
                     any width produces bit-identical statistics
  --load-model per-browser|cohort   how the population is realised
                     (default per-browser). cohort bins think times and
                     simulates weighted browser tokens, so million-user
                     populations cost O(tokens) events, not O(browsers)
  --cohort-bins N    think-time bins per mean for the cohort model
                     (default 64, N >= 1; requires --load-model cohort)

TUNE:
  --method default|duplication|partitioning|hybrid  (default default)
  --iterations N                                    (default 50)
  --tuner NAME       tuning algorithm: simplex, simplex-conservative,
                     bestconfig, classytune, tuna, annealing, random,
                     coordinate (default simplex). --method keeps its
                     old meaning — the §III duplication/partitioning
                     strategy — but relying on it to imply the simplex
                     algorithm is deprecated: say --tuner simplex.
  --detector         run a resilient session that gates crash
                     reconfiguration on the φ-accrual failure detector
                     (heartbeats -> suspicion -> membership) instead of
                     the fault injector's health oracle
  --detector-window N   φ sliding-window capacity (default 64;
                     requires --detector)
  --phi-threshold X  suspicion threshold φ* (default 8.0; requires
                     --detector)
  --health-oracle    run a resilient session with the historical
                     oracle-gated reconfiguration (conflicts with
                     --detector)

SWEEP:
  --from N --to N --step N                (default 400..2000 step 400)
";

/// Parse an argument list (without `argv[0]`).
pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Command, String> {
    let mut it = args.into_iter();
    let sub = match it.next() {
        None => return Ok(Command::Help),
        Some(s) => s,
    };
    let rest: Vec<String> = it.collect();
    match sub.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "simulate" => Ok(Command::Simulate(parse_sim_exact(&rest)?)),
        "reconfig" => Ok(Command::Reconfig(parse_sim_exact(&rest)?)),
        "tune" => {
            let (sim, leftover) = parse_sim(&rest)?;
            let mut method = TuningMethod::Default;
            let mut iterations = 50;
            let mut tuner = None;
            let mut detector = false;
            let mut detector_window = None;
            let mut phi_threshold = None;
            let mut health_oracle = false;
            let mut i = 0;
            while i < leftover.len() {
                match leftover[i].as_str() {
                    "--detector" => {
                        detector = true;
                        i += 1;
                    }
                    "--detector-window" => {
                        detector_window = Some(parse_num(&leftover, i, "--detector-window")?);
                        i += 2;
                    }
                    "--phi-threshold" => {
                        phi_threshold = Some(parse_num(&leftover, i, "--phi-threshold")?);
                        i += 2;
                    }
                    "--health-oracle" => {
                        health_oracle = true;
                        i += 1;
                    }
                    "--tuner" => {
                        let v = leftover.get(i + 1).ok_or("--tuner needs a value")?;
                        if !harmony::registry::tuner_names().contains(&v.as_str()) {
                            return Err(harmony::registry::UnknownTuner(v.clone()).to_string());
                        }
                        tuner = Some(v.clone());
                        i += 2;
                    }
                    "--method" => {
                        let v = leftover.get(i + 1).ok_or("--method needs a value")?;
                        method = match v.as_str() {
                            "default" => TuningMethod::Default,
                            "duplication" => TuningMethod::Duplication,
                            "partitioning" => TuningMethod::Partitioning,
                            "hybrid" => TuningMethod::Hybrid,
                            other => return Err(format!("unknown method '{other}'")),
                        };
                        i += 2;
                    }
                    "--iterations" => {
                        iterations = parse_num(&leftover, i, "--iterations")?;
                        i += 2;
                    }
                    other => return Err(format!("unknown argument '{other}'")),
                }
            }
            if detector && health_oracle {
                return Err("--detector conflicts with --health-oracle".into());
            }
            if !detector {
                if detector_window.is_some() {
                    return Err("--detector-window requires --detector".into());
                }
                if phi_threshold.is_some() {
                    return Err("--phi-threshold requires --detector".into());
                }
            }
            if detector_window == Some(0) {
                return Err("--detector-window must be at least 1".into());
            }
            if phi_threshold.is_some_and(|p: f64| !p.is_finite() || p <= 0.0) {
                return Err("--phi-threshold must be a positive number".into());
            }
            Ok(Command::Tune(TuneArgs {
                sim,
                method,
                iterations,
                tuner,
                detector,
                detector_window,
                phi_threshold,
                health_oracle,
            }))
        }
        "sweep" => {
            let (sim, leftover) = parse_sim(&rest)?;
            let (mut from, mut to, mut step) = (400u32, 2_000u32, 400u32);
            let mut i = 0;
            while i < leftover.len() {
                match leftover[i].as_str() {
                    "--from" => {
                        from = parse_num(&leftover, i, "--from")?;
                        i += 2;
                    }
                    "--to" => {
                        to = parse_num(&leftover, i, "--to")?;
                        i += 2;
                    }
                    "--step" => {
                        step = parse_num(&leftover, i, "--step")?;
                        i += 2;
                    }
                    other => return Err(format!("unknown argument '{other}'")),
                }
            }
            if step == 0 || from > to {
                return Err("sweep needs --from <= --to and --step > 0".into());
            }
            Ok(Command::Sweep(SweepArgs {
                sim,
                from,
                to,
                step,
            }))
        }
        other => Err(format!("unknown subcommand '{other}' (try help)")),
    }
}

/// Parse the common options for subcommands with no flags of their own,
/// rejecting anything unconsumed.
fn parse_sim_exact(args: &[String]) -> Result<SimArgs, String> {
    let (sim, leftover) = parse_sim(args)?;
    match leftover.first() {
        None => Ok(sim),
        Some(other) => Err(format!("unknown argument '{other}'")),
    }
}

/// Parse the common options, returning unconsumed arguments.
fn parse_sim(args: &[String]) -> Result<(SimArgs, Vec<String>), String> {
    let mut sim = SimArgs::default();
    let mut leftover = Vec::new();
    let mut cohort = false;
    let mut cohort_bins: Option<u32> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--load-model" => {
                let v = args.get(i + 1).ok_or("--load-model needs a value")?;
                cohort = match v.as_str() {
                    "per-browser" => false,
                    "cohort" => true,
                    other => return Err(format!("unknown load model '{other}'")),
                };
                i += 2;
            }
            "--cohort-bins" => {
                cohort_bins = Some(parse_num(args, i, "--cohort-bins")?);
                i += 2;
            }
            "--workload" => {
                let v = args.get(i + 1).ok_or("--workload needs a value")?;
                sim.workload = match v.to_lowercase().as_str() {
                    "browsing" => Workload::Browsing,
                    "shopping" => Workload::Shopping,
                    "ordering" => Workload::Ordering,
                    other => return Err(format!("unknown workload '{other}'")),
                };
                i += 2;
            }
            "--topology" => {
                let v = args.get(i + 1).ok_or("--topology needs a value")?;
                sim.topology = parse_topology(v)?;
                i += 2;
            }
            "--population" => {
                sim.population = parse_num(args, i, "--population")?;
                i += 2;
            }
            "--seed" => {
                sim.seed = parse_num(args, i, "--seed")?;
                i += 2;
            }
            "--markov" => {
                sim.markov = true;
                i += 1;
            }
            "--trace" => {
                let v = args.get(i + 1).ok_or("--trace needs a path")?;
                sim.trace = Some(v.clone());
                i += 2;
            }
            "--metrics" => {
                sim.metrics = true;
                i += 1;
            }
            "--faults" => {
                let v = args.get(i + 1).ok_or("--faults needs a path")?;
                sim.faults = Some(v.clone());
                i += 2;
            }
            "--fault-seed" => {
                sim.fault_seed = Some(parse_num(args, i, "--fault-seed")?);
                i += 2;
            }
            "--checkpoint-dir" => {
                let v = args.get(i + 1).ok_or("--checkpoint-dir needs a path")?;
                sim.checkpoint_dir = Some(v.clone());
                i += 2;
            }
            "--checkpoint-every" => {
                sim.checkpoint_every = Some(parse_num(args, i, "--checkpoint-every")?);
                i += 2;
            }
            "--resume" => {
                sim.resume = true;
                i += 1;
            }
            "--eval-threads" => {
                sim.eval_threads = Some(parse_num(args, i, "--eval-threads")?);
                i += 2;
            }
            "--no-eval-cache" => {
                sim.no_eval_cache = true;
                i += 1;
            }
            "--replication-threads" => {
                sim.replication_threads = Some(parse_num(args, i, "--replication-threads")?);
                i += 2;
            }
            "--plan" => {
                let v = args.get(i + 1).ok_or("--plan needs a value")?;
                sim.plan = match v.as_str() {
                    "tiny" => IntervalPlan::tiny(),
                    "fast" => IntervalPlan::fast(),
                    "paper" => IntervalPlan::hpdc04(),
                    other => return Err(format!("unknown plan '{other}'")),
                };
                i += 2;
            }
            _ => {
                leftover.push(args[i].clone());
                i += 1;
            }
        }
    }
    if sim.fault_seed.is_some() && sim.faults.is_none() {
        return Err("--fault-seed requires --faults".into());
    }
    if sim.checkpoint_dir.is_none() {
        if sim.resume {
            return Err("--resume requires --checkpoint-dir".into());
        }
        if sim.checkpoint_every.is_some() {
            return Err("--checkpoint-every requires --checkpoint-dir".into());
        }
    }
    if sim.checkpoint_every == Some(0) {
        return Err("--checkpoint-every must be at least 1".into());
    }
    if cohort {
        if cohort_bins == Some(0) {
            return Err("--cohort-bins must be at least 1".into());
        }
        sim.load_model = LoadModel::Cohort {
            bins: cohort_bins.unwrap_or(DEFAULT_COHORT_BINS),
        };
    } else if cohort_bins.is_some() {
        return Err("--cohort-bins requires --load-model cohort".into());
    }
    if sim.markov && cohort {
        return Err("--markov is incompatible with --load-model cohort \
                    (cohort tokens batch i.i.d. think draws; a Markov \
                    session walk is per-browser state)"
            .into());
    }
    Ok((sim, leftover))
}

fn parse_topology(v: &str) -> Result<Topology, String> {
    let parts: Vec<&str> = v.split('x').collect();
    if parts.len() != 3 {
        return Err(format!("topology '{v}' is not PxAxD"));
    }
    let nums: Result<Vec<usize>, _> = parts.iter().map(|p| p.parse::<usize>()).collect();
    let nums = nums.map_err(|_| format!("topology '{v}' is not numeric"))?;
    Topology::tiers(nums[0], nums[1], nums[2]).map_err(|e| e.to_string())
}

fn parse_num<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> Result<T, String> {
    let v = args.get(i + 1).ok_or(format!("{flag} needs a value"))?;
    v.parse().map_err(|_| format!("{flag}: bad value '{v}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn no_args_is_help() {
        assert_eq!(parse(argv(&[])).unwrap(), Command::Help);
        assert_eq!(parse(argv(&["help"])).unwrap(), Command::Help);
    }

    #[test]
    fn simulate_defaults() {
        match parse(argv(&["simulate"])).unwrap() {
            Command::Simulate(sim) => {
                assert_eq!(sim.workload, Workload::Shopping);
                assert_eq!(sim.population, 1_000);
                assert!(!sim.markov);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn simulate_full_options() {
        let cmd = parse(argv(&[
            "simulate",
            "--workload",
            "browsing",
            "--topology",
            "2x3x1",
            "--population",
            "1500",
            "--seed",
            "7",
            "--markov",
            "--plan",
            "tiny",
        ]))
        .unwrap();
        match cmd {
            Command::Simulate(sim) => {
                assert_eq!(sim.workload, Workload::Browsing);
                assert_eq!(sim.topology, Topology::tiers(2, 3, 1).unwrap());
                assert_eq!(sim.population, 1_500);
                assert_eq!(sim.seed, 7);
                assert!(sim.markov);
                assert_eq!(sim.plan, IntervalPlan::tiny());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tune_method_and_iterations() {
        match parse(argv(&[
            "tune",
            "--method",
            "duplication",
            "--iterations",
            "25",
        ]))
        .unwrap()
        {
            Command::Tune(t) => {
                assert_eq!(t.method, TuningMethod::Duplication);
                assert_eq!(t.iterations, 25);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tune_tuner_flag() {
        // Default: no explicit tuner (sessions fall back to simplex).
        match parse(argv(&["tune"])).unwrap() {
            Command::Tune(t) => assert_eq!(t.tuner, None),
            other => panic!("{other:?}"),
        }
        // Every registered name parses.
        for name in harmony::registry::tuner_names() {
            match parse(argv(&["tune", "--tuner", name])).unwrap() {
                Command::Tune(t) => assert_eq!(t.tuner.as_deref(), Some(*name)),
                other => panic!("{other:?}"),
            }
        }
        // Unknown names error and list what is available.
        let err = parse(argv(&["tune", "--tuner", "magic"])).unwrap_err();
        assert!(err.contains("unknown tuner 'magic'"), "{err}");
        for name in harmony::registry::tuner_names() {
            assert!(err.contains(name), "error must list '{name}': {err}");
        }
        assert!(parse(argv(&["tune", "--tuner"])).is_err());
        // --tuner composes with the strategy flag.
        match parse(argv(&["tune", "--tuner", "tuna", "--method", "hybrid"])).unwrap() {
            Command::Tune(t) => {
                assert_eq!(t.tuner.as_deref(), Some("tuna"));
                assert_eq!(t.method, TuningMethod::Hybrid);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn detector_flags() {
        match parse(argv(&["tune"])).unwrap() {
            Command::Tune(t) => {
                assert!(!t.detector);
                assert_eq!(t.detector_window, None);
                assert_eq!(t.phi_threshold, None);
                assert!(!t.health_oracle);
            }
            other => panic!("{other:?}"),
        }
        match parse(argv(&[
            "tune",
            "--detector",
            "--detector-window",
            "32",
            "--phi-threshold",
            "12.5",
        ]))
        .unwrap()
        {
            Command::Tune(t) => {
                assert!(t.detector);
                assert_eq!(t.detector_window, Some(32));
                assert_eq!(t.phi_threshold, Some(12.5));
            }
            other => panic!("{other:?}"),
        }
        match parse(argv(&["tune", "--health-oracle"])).unwrap() {
            Command::Tune(t) => assert!(t.health_oracle && !t.detector),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn detector_flags_are_validated() {
        let err = parse(argv(&["tune", "--detector", "--health-oracle"])).unwrap_err();
        assert!(err.contains("conflicts"), "{err}");
        let err = parse(argv(&["tune", "--detector-window", "32"])).unwrap_err();
        assert!(err.contains("requires --detector"), "{err}");
        let err = parse(argv(&["tune", "--phi-threshold", "8.0"])).unwrap_err();
        assert!(err.contains("requires --detector"), "{err}");
        let err = parse(argv(&["tune", "--detector", "--detector-window", "0"])).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = parse(argv(&["tune", "--detector", "--phi-threshold", "-1"])).unwrap_err();
        assert!(err.contains("positive"), "{err}");
        assert!(parse(argv(&["tune", "--detector", "--phi-threshold"])).is_err());
        assert!(parse(argv(&["tune", "--detector", "--detector-window", "lots"])).is_err());
        // Detector flags belong to `tune`; other subcommands reject them.
        assert!(parse(argv(&["simulate", "--detector"])).is_err());
        assert!(parse(argv(&["sweep", "--health-oracle"])).is_err());
    }

    #[test]
    fn sweep_bounds_validated() {
        assert!(parse(argv(&["sweep", "--from", "100", "--to", "50"])).is_err());
        assert!(parse(argv(&["sweep", "--step", "0"])).is_err());
        match parse(argv(&[
            "sweep", "--from", "100", "--to", "300", "--step", "100",
        ]))
        .unwrap()
        {
            Command::Sweep(s) => {
                assert_eq!((s.from, s.to, s.step), (100, 300, 100));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trace_and_metrics_flags() {
        match parse(argv(&["tune", "--trace", "/tmp/t.jsonl", "--metrics"])).unwrap() {
            Command::Tune(t) => {
                assert_eq!(t.sim.trace.as_deref(), Some("/tmp/t.jsonl"));
                assert!(t.sim.metrics);
            }
            other => panic!("{other:?}"),
        }
        match parse(argv(&["simulate"])).unwrap() {
            Command::Simulate(sim) => {
                assert_eq!(sim.trace, None);
                assert!(!sim.metrics);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(argv(&["simulate", "--trace"])).is_err());
    }

    #[test]
    fn fault_flags() {
        match parse(argv(&[
            "tune",
            "--faults",
            "plan.json",
            "--fault-seed",
            "9",
        ]))
        .unwrap()
        {
            Command::Tune(t) => {
                assert_eq!(t.sim.faults.as_deref(), Some("plan.json"));
                assert_eq!(t.sim.fault_seed, Some(9));
            }
            other => panic!("{other:?}"),
        }
        match parse(argv(&["simulate"])).unwrap() {
            Command::Simulate(sim) => {
                assert_eq!(sim.faults, None);
                assert_eq!(sim.fault_seed, None);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(argv(&["simulate", "--faults"])).is_err());
        assert!(parse(argv(&["reconfig", "--fault-seed", "nope"])).is_err());
        assert!(parse(argv(&["tune", "--fault-seed"])).is_err());
    }

    #[test]
    fn fault_seed_without_a_plan_is_rejected() {
        // A fault seed only feeds the injector's noise/jitter draws; with
        // no plan it silently does nothing, so reject it loudly.
        for sub in ["simulate", "tune", "reconfig", "sweep"] {
            let err = parse(argv(&[sub, "--fault-seed", "9"])).unwrap_err();
            assert!(
                err.contains("--fault-seed requires --faults"),
                "{sub}: {err}"
            );
        }
        // With a plan it is accepted as before.
        assert!(parse(argv(&["tune", "--faults", "p.json", "--fault-seed", "9"])).is_ok());
    }

    #[test]
    fn checkpoint_flags() {
        match parse(argv(&[
            "tune",
            "--checkpoint-dir",
            "/tmp/ck",
            "--checkpoint-every",
            "5",
            "--resume",
        ]))
        .unwrap()
        {
            Command::Tune(t) => {
                assert_eq!(t.sim.checkpoint_dir.as_deref(), Some("/tmp/ck"));
                assert_eq!(t.sim.checkpoint_every, Some(5));
                assert!(t.sim.resume);
            }
            other => panic!("{other:?}"),
        }
        match parse(argv(&["simulate"])).unwrap() {
            Command::Simulate(sim) => {
                assert_eq!(sim.checkpoint_dir, None);
                assert_eq!(sim.checkpoint_every, None);
                assert!(!sim.resume);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn checkpoint_flags_are_validated() {
        let err = parse(argv(&["tune", "--resume"])).unwrap_err();
        assert!(err.contains("--checkpoint-dir"), "{err}");
        let err = parse(argv(&["tune", "--checkpoint-every", "5"])).unwrap_err();
        assert!(err.contains("--checkpoint-dir"), "{err}");
        let err = parse(argv(&[
            "tune",
            "--checkpoint-dir",
            "/tmp/ck",
            "--checkpoint-every",
            "0",
        ]))
        .unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        assert!(parse(argv(&["tune", "--checkpoint-dir"])).is_err());
        assert!(parse(argv(&["tune", "--checkpoint-every"])).is_err());
    }

    #[test]
    fn eval_flags() {
        match parse(argv(&["tune", "--eval-threads", "4", "--no-eval-cache"])).unwrap() {
            Command::Tune(t) => {
                assert_eq!(t.sim.eval_threads, Some(4));
                assert!(t.sim.no_eval_cache);
            }
            other => panic!("{other:?}"),
        }
        // 0 = one thread per core.
        match parse(argv(&["simulate", "--eval-threads", "0"])).unwrap() {
            Command::Simulate(sim) => {
                assert_eq!(sim.eval_threads, Some(0));
                assert!(!sim.no_eval_cache);
            }
            other => panic!("{other:?}"),
        }
        match parse(argv(&["simulate"])).unwrap() {
            Command::Simulate(sim) => {
                assert_eq!(sim.eval_threads, None);
                assert!(!sim.no_eval_cache);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(argv(&["tune", "--eval-threads"])).is_err());
        assert!(parse(argv(&["tune", "--eval-threads", "lots"])).is_err());
    }

    #[test]
    fn thread_flags_document_zero_as_auto() {
        // Regression: 0 = "one worker per core" was accepted silently;
        // the help text must spell the convention out for both flags.
        assert!(USAGE.contains("--eval-threads"));
        assert!(USAGE.contains("--replication-threads"));
        for line in ["--eval-threads", "--replication-threads"] {
            let at = USAGE.find(line).unwrap();
            assert!(
                USAGE[at..at + 200].contains("0 = auto, one per core"),
                "{line} help must document 0 = auto"
            );
        }
    }

    #[test]
    fn replication_threads_flag() {
        match parse(argv(&["tune", "--replication-threads", "4"])).unwrap() {
            Command::Tune(t) => assert_eq!(t.sim.replication_threads, Some(4)),
            other => panic!("{other:?}"),
        }
        // 0 = one worker per core, same convention as --eval-threads.
        match parse(argv(&["simulate", "--replication-threads", "0"])).unwrap() {
            Command::Simulate(sim) => assert_eq!(sim.replication_threads, Some(0)),
            other => panic!("{other:?}"),
        }
        match parse(argv(&["sweep"])).unwrap() {
            Command::Sweep(s) => assert_eq!(s.sim.replication_threads, None),
            other => panic!("{other:?}"),
        }
        assert!(parse(argv(&["tune", "--replication-threads"])).is_err());
        assert!(parse(argv(&["tune", "--replication-threads", "-1"])).is_err());
        assert!(parse(argv(&["tune", "--replication-threads", "many"])).is_err());
    }

    #[test]
    fn load_model_flags() {
        // Default stays per-browser everywhere.
        match parse(argv(&["simulate"])).unwrap() {
            Command::Simulate(sim) => assert_eq!(sim.load_model, LoadModel::PerBrowser),
            other => panic!("{other:?}"),
        }
        // Explicit per-browser parses to the same thing.
        match parse(argv(&["simulate", "--load-model", "per-browser"])).unwrap() {
            Command::Simulate(sim) => assert_eq!(sim.load_model, LoadModel::PerBrowser),
            other => panic!("{other:?}"),
        }
        // Cohort with the default bin count.
        match parse(argv(&["simulate", "--load-model", "cohort"])).unwrap() {
            Command::Simulate(sim) => {
                assert_eq!(
                    sim.load_model,
                    LoadModel::Cohort {
                        bins: DEFAULT_COHORT_BINS
                    }
                );
            }
            other => panic!("{other:?}"),
        }
        // Cohort with explicit bins, on every subcommand that takes sim args.
        match parse(argv(&[
            "tune",
            "--load-model",
            "cohort",
            "--cohort-bins",
            "128",
        ]))
        .unwrap()
        {
            Command::Tune(t) => {
                assert_eq!(t.sim.load_model, LoadModel::Cohort { bins: 128 });
            }
            other => panic!("{other:?}"),
        }
        match parse(argv(&[
            "sweep",
            "--load-model",
            "cohort",
            "--cohort-bins",
            "8",
        ]))
        .unwrap()
        {
            Command::Sweep(s) => assert_eq!(s.sim.load_model, LoadModel::Cohort { bins: 8 }),
            other => panic!("{other:?}"),
        }
        assert!(parse(argv(&["simulate", "--load-model"])).is_err());
        assert!(parse(argv(&["simulate", "--load-model", "swarm"])).is_err());
        assert!(parse(argv(&["simulate", "--cohort-bins"])).is_err());
        assert!(parse(argv(&["simulate", "--cohort-bins", "many"])).is_err());
    }

    #[test]
    fn cohort_bins_without_cohort_model_is_rejected() {
        // Bins only parameterise the cohort model; accepted silently they
        // would do nothing, so reject loudly (same contract as
        // --fault-seed without --faults).
        for sub in ["simulate", "tune", "reconfig", "sweep"] {
            let err = parse(argv(&[sub, "--cohort-bins", "32"])).unwrap_err();
            assert!(
                err.contains("--cohort-bins requires --load-model cohort"),
                "{sub}: {err}"
            );
        }
        // Even an explicit per-browser model rejects it.
        let err = parse(argv(&[
            "simulate",
            "--load-model",
            "per-browser",
            "--cohort-bins",
            "32",
        ]))
        .unwrap_err();
        assert!(err.contains("requires --load-model cohort"), "{err}");
        // Zero bins is invalid.
        let err = parse(argv(&[
            "simulate",
            "--load-model",
            "cohort",
            "--cohort-bins",
            "0",
        ]))
        .unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
    }

    #[test]
    fn cohort_conflicts_with_markov() {
        let err = parse(argv(&["simulate", "--markov", "--load-model", "cohort"])).unwrap_err();
        assert!(err.contains("--markov is incompatible"), "{err}");
        // Either alone is fine.
        assert!(parse(argv(&["simulate", "--markov"])).is_ok());
        assert!(parse(argv(&["simulate", "--load-model", "cohort"])).is_ok());
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(argv(&["bogus"])).is_err());
        assert!(parse(argv(&["simulate", "--workload", "gaming"])).is_err());
        assert!(parse(argv(&["simulate", "--topology", "2x2"])).is_err());
        assert!(parse(argv(&["simulate", "--topology", "0x1x1"])).is_err());
        assert!(parse(argv(&["tune", "--method", "magic"])).is_err());
        assert!(parse(argv(&["simulate", "--population"])).is_err());
    }
}
