//! `ah-webtune` — drive the reproduction from the command line.
//!
//! See `ah-webtune help` (or [`cli::USAGE`]) for the subcommands.

use ah_webtune::cli::{self, Command, SimArgs, SweepArgs, TuneArgs};
use cluster::config::ClusterConfig;
use cluster::pricing::PriceList;
use cluster::runner::run_iteration;
use obs::{JsonlWriter, Registry, TraceRecord, TraceSink};
use orchestrator::report::{fmt_f, fmt_pct, sparkline, TextTable};
use orchestrator::session::{run_scenario, tune_observed, SessionConfig, SessionObserver};

use std::fs::File;
use std::io::BufWriter;

fn main() {
    let cmd = match cli::parse(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{}", cli::USAGE);
            std::process::exit(2);
        }
    };
    match cmd {
        Command::Help => print!("{}", cli::USAGE),
        Command::Simulate(sim) => simulate(&sim),
        Command::Tune(t) => run_tune(&t),
        Command::Reconfig(sim) => reconfig(&sim),
        Command::Sweep(s) => sweep(&s),
    }
}

/// Open the `--trace` sink, if requested. A resumed session appends so
/// the continued records land in the same stream as the interrupted
/// run. Exits on I/O errors: a trace the user asked for must not be
/// silently dropped.
fn open_trace(sim: &SimArgs) -> Option<JsonlWriter<BufWriter<File>>> {
    sim.trace.as_deref().map(|path| {
        let opened = if sim.resume {
            JsonlWriter::append(path)
        } else {
            JsonlWriter::create(path)
        };
        match opened {
            Ok(w) => w,
            Err(e) => {
                eprintln!("error: cannot open trace file '{path}': {e}");
                std::process::exit(2);
            }
        }
    })
}

/// Build the `--metrics` registry, if requested.
fn open_registry(sim: &SimArgs) -> Option<Registry> {
    sim.metrics.then(Registry::new)
}

fn print_metrics(registry: Option<&Registry>) {
    if let Some(r) = registry {
        println!("\nmetrics:\n{}", r.snapshot().render_text());
    }
}

fn session_of(sim: &SimArgs) -> SessionConfig {
    let mut cfg = SessionConfig::new(sim.topology.clone(), sim.workload, sim.population)
        .plan(sim.plan)
        .base_seed(sim.seed)
        .markov(sim.markov)
        .load_model(sim.load_model);
    if let Some(path) = sim.faults.as_deref() {
        match faults::FaultPlan::load(std::path::Path::new(path)) {
            Ok(plan) => cfg = cfg.fault_plan(plan),
            Err(e) => {
                eprintln!("error: cannot load fault plan '{path}': {e}");
                std::process::exit(2);
            }
        }
    }
    if let Some(seed) = sim.fault_seed {
        cfg = cfg.fault_seed(seed);
    }
    if let Some(dir) = sim.checkpoint_dir.as_deref() {
        let mut policy = orchestrator::CheckpointPolicy::new(dir).resume(sim.resume);
        if let Some(every) = sim.checkpoint_every {
            policy = policy.every(every);
        }
        cfg = cfg.checkpoint(policy);
    }
    // The CLI caches measurements by default (identical results either
    // way; see the eval module's determinism argument) — the library
    // default stays off so programmatic sessions opt in explicitly.
    cfg = cfg.eval_settings(
        orchestrator::EvalSettings::default()
            .cache(!sim.no_eval_cache)
            .threads(sim.eval_threads.unwrap_or(1)),
    );
    // Replication width shares the eval convention: 1 = sequential
    // (default), 0 = one worker per core; bit-identical either way.
    cfg = cfg.replication_threads(sim.replication_threads.unwrap_or(1));
    if let Err(e) = cfg.validate_faults() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    cfg
}

fn simulate(sim: &SimArgs) {
    let cfg = session_of(sim);
    let registry = open_registry(sim);
    let scenario = cfg.scenario(ClusterConfig::defaults(&sim.topology), 0);
    let out = run_scenario(&scenario, registry.as_ref());
    if let Some(mut sink) = open_trace(sim) {
        let rec = TraceRecord::new("simulate")
            .field("workload", sim.workload.to_string())
            .field("topology", sim.topology.to_string())
            .field("population", sim.population)
            .field("seed", sim.seed)
            .field("wips", out.metrics.wips)
            .field("mean_response_ms", out.metrics.mean_response_secs * 1_000.0)
            .field("p90_response_ms", out.metrics.p90_response.as_millis_f64())
            .field("failed", out.total_failed)
            .field("events", out.events);
        sink.emit(&rec);
        sink.flush();
    }
    let prices = PriceList::hpdc04();
    println!(
        "{} workload on {} at {} browsers (seed {}):",
        sim.workload, sim.topology, sim.population, sim.seed
    );
    println!(
        "  {:.1} WIPS | mean response {:.0} ms | p90 {:.0} ms | {} refused",
        out.metrics.wips,
        out.metrics.mean_response_secs * 1_000.0,
        out.metrics.p90_response.as_millis_f64(),
        out.total_failed,
    );
    println!(
        "  system cost ${:.0} -> {:.2} $/WIPS",
        prices.system_cost(&sim.topology, 1),
        prices.dollars_per_wips(&sim.topology, 1, out.metrics.wips)
    );
    let mut table = TextTable::new(["Node", "Role", "CPU", "Disk", "Net", "Mem"]);
    for (i, u) in out.node_utilization.iter().enumerate() {
        table.row([
            i.to_string(),
            sim.topology.role(i).to_string(),
            fmt_f(u.cpu, 2),
            fmt_f(u.disk, 2),
            fmt_f(u.net, 2),
            fmt_f(u.mem, 2),
        ]);
    }
    println!("{}", table.render());
    print_metrics(registry.as_ref());
}

fn run_tune(t: &TuneArgs) {
    let mut cfg = session_of(&t.sim);
    if let Some(name) = t.tuner.as_deref() {
        cfg = cfg.tuner(name);
    }
    if t.detector || t.health_oracle {
        return run_tune_resilient(t, cfg);
    }
    let (default_wips, _) = cfg.measure_default(2);
    println!(
        "tuning {} on {} with \"{}\" ({} tuner), {} iterations (default {:.1} WIPS)...",
        t.sim.workload,
        t.sim.topology,
        t.method.label(),
        cfg.tuner,
        t.iterations,
        default_wips
    );
    let mut trace = open_trace(&t.sim);
    let registry = open_registry(&t.sim);
    let mut observer = SessionObserver::new(
        trace.as_mut().map(|s| s as &mut dyn TraceSink),
        registry.as_ref(),
    );
    let run = match tune_observed(&cfg, t.method, t.iterations, &mut observer) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    println!("WIPS: {}", sparkline(&run.wips_series()));
    println!(
        "best {:.1} WIPS ({}) first reached within 1% at iteration {}",
        run.best_wips,
        fmt_pct(run.best_wips / default_wips - 1.0),
        run.first_within(0.99),
    );
    if let Some(path) = t.sim.trace.as_deref() {
        if t.sim.resume {
            println!("trace: resumed, appending to {path}");
        } else {
            println!("trace: {} iterations -> {path}", run.records.len());
        }
    }
    print_metrics(registry.as_ref());
}

/// `tune --detector` / `tune --health-oracle`: a resilient session whose
/// crash reconfiguration is gated on detected membership (φ-accrual over
/// simulated heartbeats) or, with `--health-oracle`, on the injector's
/// ground-truth health — the historical behavior, kept as an explicit
/// baseline for comparison.
fn run_tune_resilient(t: &TuneArgs, cfg: SessionConfig) {
    use detect::DetectorConfig;
    use orchestrator::resilient::{run_resilient_session_observed, ResilienceSettings};

    let mut settings = ResilienceSettings::default();
    if t.detector {
        let mut dc = DetectorConfig::default();
        if let Some(w) = t.detector_window {
            dc.window = w;
        }
        if let Some(p) = t.phi_threshold {
            dc.phi_threshold = p;
        }
        settings.detector = Some(dc);
    }
    let gate = if t.detector {
        "phi-accrual detector"
    } else {
        "health oracle"
    };
    println!(
        "resilient tuning {} on {} ({} tuner, {} iterations), reconfiguration gated on the {}...",
        t.sim.workload, t.sim.topology, cfg.tuner, t.iterations, gate
    );
    let mut trace = open_trace(&t.sim);
    let registry = open_registry(&t.sim);
    let mut observer = SessionObserver::new(
        trace.as_mut().map(|s| s as &mut dyn TraceSink),
        registry.as_ref(),
    );
    let run = match run_resilient_session_observed(&cfg, &settings, t.iterations, &mut observer) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    println!("WIPS: {}", sparkline(&run.wips_series()));
    println!(
        "best {:.1} WIPS | {} recovery action(s) | {} reconfiguration(s)",
        run.best_wips,
        run.recoveries.len(),
        run.reconfigs.len()
    );
    if t.detector {
        let down = run.detections.iter().filter(|d| d.is_down()).count();
        match run.mean_detection_latency_s() {
            Some(lat) => println!(
                "detector: {} membership transition(s), {} Down confirmation(s) \
                 ({} false), mean detection latency {:.2}s",
                run.detections.len(),
                down,
                run.detection_false_positives(),
                lat
            ),
            None => println!(
                "detector: {} membership transition(s), {} Down confirmation(s) \
                 ({} false)",
                run.detections.len(),
                down,
                run.detection_false_positives()
            ),
        }
    }
    for r in &run.reconfigs {
        println!(
            "iteration {:3}: node {} pulled into the {} tier after a crash",
            r.iteration, r.node, r.to_tier
        );
    }
    print_metrics(registry.as_ref());
}

fn reconfig(sim: &SimArgs) {
    use orchestrator::reconfigure::{run_reconfig_session_observed, ReconfigSettings};
    let cfg = session_of(sim);
    let settings = ReconfigSettings {
        check_every: Some(10),
        ..Default::default()
    };
    let iterations = 60;
    println!(
        "tuning + reconfiguration on {} ({} iterations, checks every 10)...",
        sim.topology, iterations
    );
    let mut trace = open_trace(sim);
    let registry = open_registry(sim);
    let mut observer = SessionObserver::new(
        trace.as_mut().map(|s| s as &mut dyn TraceSink),
        registry.as_ref(),
    );
    let run = match run_reconfig_session_observed(
        &cfg,
        &settings,
        iterations,
        |_| sim.workload,
        &mut observer,
    ) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    println!("WIPS: {}", sparkline(&run.wips_series()));
    if run.events.is_empty() {
        println!(
            "no reconfiguration needed; final layout {}",
            run.final_topology
        );
    }
    for e in &run.events {
        println!(
            "iteration {:3}: node {} moved {} -> {} ({})",
            e.iteration,
            e.node,
            e.from_tier,
            e.to_tier,
            if e.immediate { "immediate" } else { "drained" }
        );
    }
    println!("final layout: {}", run.final_topology);
    print_metrics(registry.as_ref());
}

fn sweep(s: &SweepArgs) {
    let prices = PriceList::hpdc04();
    println!(
        "population sweep, {} on {}:",
        s.sim.workload, s.sim.topology
    );
    let mut table = TextTable::new(["Browsers", "WIPS", "Resp (ms)", "Refused", "$/WIPS"]);
    let mut pop = s.from;
    while pop <= s.to {
        let mut sim = s.sim.clone();
        sim.population = pop;
        let cfg = session_of(&sim);
        let scenario = cfg.scenario(ClusterConfig::defaults(&sim.topology), 0);
        let out = run_iteration(&scenario);
        table.row([
            pop.to_string(),
            fmt_f(out.metrics.wips, 1),
            fmt_f(out.metrics.mean_response_secs * 1_000.0, 0),
            out.total_failed.to_string(),
            fmt_f(
                prices.dollars_per_wips(&sim.topology, 1, out.metrics.wips),
                2,
            ),
        ]);
        pop = pop.saturating_add(s.step);
    }
    println!("{}", table.render());
}
