//! `ah-webtune` — drive the reproduction from the command line.
//!
//! See `ah-webtune help` (or [`cli::USAGE`]) for the subcommands.

use ah_webtune::cli::{self, Command, SimArgs, SweepArgs, TuneArgs};
use cluster::config::ClusterConfig;
use cluster::pricing::PriceList;
use cluster::runner::run_iteration;
use orchestrator::report::{fmt_f, fmt_pct, sparkline, TextTable};
use orchestrator::session::{tune, SessionConfig};

fn main() {
    let cmd = match cli::parse(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{}", cli::USAGE);
            std::process::exit(2);
        }
    };
    match cmd {
        Command::Help => print!("{}", cli::USAGE),
        Command::Simulate(sim) => simulate(&sim),
        Command::Tune(t) => run_tune(&t),
        Command::Reconfig(sim) => reconfig(&sim),
        Command::Sweep(s) => sweep(&s),
    }
}

fn session_of(sim: &SimArgs) -> SessionConfig {
    let mut cfg = SessionConfig::new(sim.topology.clone(), sim.workload, sim.population);
    cfg.plan = sim.plan;
    cfg.base_seed = sim.seed;
    cfg.markov_sessions = sim.markov;
    cfg
}

fn simulate(sim: &SimArgs) {
    let cfg = session_of(sim);
    let scenario = cfg.scenario(ClusterConfig::defaults(&sim.topology), 0);
    let out = run_iteration(&scenario);
    let prices = PriceList::hpdc04();
    println!(
        "{} workload on {} at {} browsers (seed {}):",
        sim.workload, sim.topology, sim.population, sim.seed
    );
    println!(
        "  {:.1} WIPS | mean response {:.0} ms | p90 {:.0} ms | {} refused",
        out.metrics.wips,
        out.metrics.mean_response_secs * 1_000.0,
        out.metrics.p90_response.as_millis_f64(),
        out.total_failed,
    );
    println!(
        "  system cost ${:.0} -> {:.2} $/WIPS",
        prices.system_cost(&sim.topology, 1),
        prices.dollars_per_wips(&sim.topology, 1, out.metrics.wips)
    );
    let mut table = TextTable::new(["Node", "Role", "CPU", "Disk", "Net", "Mem"]);
    for (i, u) in out.node_utilization.iter().enumerate() {
        table.row([
            i.to_string(),
            sim.topology.role(i).to_string(),
            fmt_f(u.cpu, 2),
            fmt_f(u.disk, 2),
            fmt_f(u.net, 2),
            fmt_f(u.mem, 2),
        ]);
    }
    println!("{}", table.render());
}

fn run_tune(t: &TuneArgs) {
    let cfg = session_of(&t.sim);
    let (default_wips, _) = cfg.measure_default(2);
    println!(
        "tuning {} on {} with the {} method, {} iterations (default {:.1} WIPS)...",
        t.sim.workload,
        t.sim.topology,
        t.method.label(),
        t.iterations,
        default_wips
    );
    let run = tune(&cfg, t.method, t.iterations);
    println!("WIPS: {}", sparkline(&run.wips_series()));
    println!(
        "best {:.1} WIPS ({}) first reached within 1% at iteration {}",
        run.best_wips,
        fmt_pct(run.best_wips / default_wips - 1.0),
        run.first_within(0.99),
    );
}

fn reconfig(sim: &SimArgs) {
    use orchestrator::reconfigure::{run_reconfig_session, ReconfigSettings};
    let cfg = session_of(sim);
    let settings = ReconfigSettings {
        check_every: Some(10),
        ..Default::default()
    };
    let iterations = 60;
    println!(
        "tuning + reconfiguration on {} ({} iterations, checks every 10)...",
        sim.topology, iterations
    );
    let run = run_reconfig_session(&cfg, &settings, iterations, |_| sim.workload);
    println!("WIPS: {}", sparkline(&run.wips_series()));
    if run.events.is_empty() {
        println!("no reconfiguration needed; final layout {}", run.final_topology);
    }
    for e in &run.events {
        println!(
            "iteration {:3}: node {} moved {} -> {} ({})",
            e.iteration,
            e.node,
            e.from_tier,
            e.to_tier,
            if e.immediate { "immediate" } else { "drained" }
        );
    }
    println!("final layout: {}", run.final_topology);
}

fn sweep(s: &SweepArgs) {
    let prices = PriceList::hpdc04();
    println!(
        "population sweep, {} on {}:",
        s.sim.workload, s.sim.topology
    );
    let mut table = TextTable::new(["Browsers", "WIPS", "Resp (ms)", "Refused", "$/WIPS"]);
    let mut pop = s.from;
    while pop <= s.to {
        let mut sim = s.sim.clone();
        sim.population = pop;
        let cfg = session_of(&sim);
        let scenario = cfg.scenario(ClusterConfig::defaults(&sim.topology), 0);
        let out = run_iteration(&scenario);
        table.row([
            pop.to_string(),
            fmt_f(out.metrics.wips, 1),
            fmt_f(out.metrics.mean_response_secs * 1_000.0, 0),
            out.total_failed.to_string(),
            fmt_f(
                prices.dollars_per_wips(&sim.topology, 1, out.metrics.wips),
                2,
            ),
        ]);
        pop = pop.saturating_add(s.step);
    }
    println!("{}", table.render());
}
