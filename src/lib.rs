//! Facade crate: re-exports the whole HPDC'04 reproduction and hosts the
//! command-line interface.
//!
//! * [`simkit`] — the discrete-event simulation engine;
//! * [`tpcw`] — the TPC-W workload model;
//! * [`cluster`] — the simulated three-tier testbed;
//! * [`harmony`] — the Active Harmony tuning system;
//! * [`faults`] — deterministic fault plans and injection;
//! * [`resilience`] — composable retry/timeout/breaker/bulkhead policies;
//! * [`obs`] — metrics registry and structured trace sinks;
//! * [`persist`] — crash-safe state: write-ahead journal + snapshots;
//! * [`orchestrator`] — sessions, experiments, reports.

pub mod cli;

pub use cluster;
pub use detect;
pub use faults;
pub use harmony;
pub use obs;
pub use orchestrator;
pub use persist;
pub use resilience;
pub use simkit;
pub use tpcw;

/// The tuning-facing API in one import: everything needed to configure a
/// session, drive a tuner ask/tell loop, and observe the result.
///
/// ```
/// use ah_webtune::prelude::*;
///
/// let cfg = SessionConfig::new(Topology::single(), Workload::Shopping, 200)
///     .plan(IntervalPlan::tiny())
///     .pin_seed(true);
/// let run = tune(&cfg, TuningMethod::Default, 3).expect("session");
/// assert_eq!(run.records.len(), 3);
/// ```
pub mod prelude {
    pub use cluster::config::{ClusterConfig, Role, Topology};
    pub use cluster::spec::NodeSpec;
    pub use detect::{Detector, DetectorConfig, MembershipView, NodeState, PhiAccrual};
    pub use faults::{ChaosPlan, FaultPlan, Health};
    pub use harmony::annealing::SimulatedAnnealing;
    pub use harmony::bestconfig::BestConfigTuner;
    pub use harmony::classytune::ClassyTuneTuner;
    pub use harmony::registry::{make_tuner, make_tuner_seeded, tuner_names, UnknownTuner};
    pub use harmony::server::HarmonyServer;
    pub use harmony::simplex::SimplexTuner;
    pub use harmony::space::{Configuration, ParamSpace};
    pub use harmony::strategy::TuningMethod;
    pub use harmony::tuna::TunaTuner;
    pub use harmony::tuner::{Measurement, Trial, Tuner};
    pub use obs::{CsvWriter, JsonlWriter, MemorySink, NullSink, Registry, TraceRecord, TraceSink};
    pub use orchestrator::checkpoint::CheckpointPolicy;
    pub use orchestrator::eval::{EvalEngine, EvalSettings};
    pub use orchestrator::resilient::{
        run_resilient_session, run_resilient_session_observed, DetectionEvent, ResilienceSettings,
        ResilientRun,
    };
    pub use orchestrator::session::{
        tune, tune_observed, IterationRecord, SessionConfig, SessionError, SessionObserver,
        TuningRun,
    };
    pub use resilience::{
        Backoff, Bulkhead, CircuitBreaker, Jitter, OutlierGate, RetryPolicy, Stack,
    };
    pub use tpcw::metrics::IntervalPlan;
    pub use tpcw::mix::Workload;
}
