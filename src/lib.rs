//! Facade crate: re-exports the whole HPDC'04 reproduction and hosts the
//! command-line interface.
//!
//! * [`simkit`] — the discrete-event simulation engine;
//! * [`tpcw`] — the TPC-W workload model;
//! * [`cluster`] — the simulated three-tier testbed;
//! * [`harmony`] — the Active Harmony tuning system;
//! * [`orchestrator`] — sessions, experiments, reports.

pub mod cli;

pub use cluster;
pub use harmony;
pub use orchestrator;
pub use simkit;
pub use tpcw;
