//! Golden-file test for the `--trace` JSONL schema.
//!
//! The per-iteration trace record is a stable interface: downstream
//! plotting scripts key on these field names and their order. The golden
//! file `tests/golden/iteration_schema.txt` pins the exact key sequence;
//! adding a field means updating the golden file deliberately.

use ah_webtune::prelude::*;

/// Extract the top-level key sequence of one JSON object line.
/// Minimal scanner (no dependencies): tracks nesting depth and string
/// escapes; a string at depth 1 followed by `:` is a key.
fn key_sequence(line: &str) -> Vec<String> {
    let chars: Vec<char> = line.chars().collect();
    let mut keys = Vec::new();
    let mut depth = 0i32;
    let mut expect_key = false;
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '{' => {
                depth += 1;
                expect_key = depth == 1;
                i += 1;
            }
            '[' => {
                depth += 1;
                expect_key = false;
                i += 1;
            }
            '}' | ']' => {
                depth -= 1;
                i += 1;
            }
            ',' => {
                expect_key = depth == 1;
                i += 1;
            }
            '"' => {
                let mut s = String::new();
                let mut j = i + 1;
                while j < chars.len() {
                    match chars[j] {
                        '\\' => {
                            if let Some(c) = chars.get(j + 1) {
                                s.push(*c);
                            }
                            j += 2;
                        }
                        '"' => break,
                        c => {
                            s.push(c);
                            j += 1;
                        }
                    }
                }
                i = j + 1;
                if expect_key && chars.get(i) == Some(&':') {
                    keys.push(s);
                }
                expect_key = false;
            }
            _ => i += 1,
        }
    }
    keys
}

fn golden_keys_from(text: &str) -> Vec<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

fn golden_keys() -> Vec<String> {
    golden_keys_from(include_str!("golden/iteration_schema.txt"))
}

fn traced_run(method: TuningMethod, iterations: u32) -> Vec<TraceRecord> {
    let cfg = SessionConfig::new(Topology::single(), Workload::Shopping, 200)
        .plan(IntervalPlan::tiny())
        .pin_seed(true);
    let mut sink = MemorySink::new();
    let mut observer = SessionObserver::with_sink(&mut sink);
    let run = tune_observed(&cfg, method, iterations, &mut observer).expect("tuning session");
    assert_eq!(run.records.len(), iterations as usize);
    sink.records
}

#[test]
fn tuned_trace_matches_golden_schema() {
    let records = traced_run(TuningMethod::Default, 4);
    let iterations = records_of_kind(&records, "iteration");
    assert_eq!(
        iterations.len(),
        4,
        "one iteration record per tuning iteration"
    );
    let expected = golden_keys();
    for (i, line) in iterations.iter().enumerate() {
        assert_eq!(
            key_sequence(line),
            expected,
            "iteration {i} drifted from tests/golden/iteration_schema.txt: {line}"
        );
    }
}

#[test]
fn tuner_records_match_golden_schema() {
    let records = traced_run(TuningMethod::Default, 4);
    let tuners = records_of_kind(&records, "tuner");
    assert_eq!(tuners.len(), 4, "one tuner record per tuning iteration");
    let expected = golden_keys_from(include_str!("golden/tuner_schema.txt"));
    for line in &tuners {
        assert_eq!(
            key_sequence(line),
            expected,
            "drifted from tests/golden/tuner_schema.txt: {line}"
        );
    }
}

#[test]
fn trace_lines_are_structurally_valid_json_objects() {
    for r in traced_run(TuningMethod::Duplication, 3) {
        let line = r.to_json();
        assert!(line.starts_with("{\"kind\":\""), "{line}");
        assert!(line.ends_with('}'), "{line}");
        assert!(!line.contains('\n'), "JSONL records must be one line");
        // Balanced nesting is what the key scanner relies on; depth must
        // return to zero exactly at the end.
        let mut depth = 0i32;
        let mut in_str = false;
        let mut prev_escape = false;
        for c in line.chars() {
            if in_str {
                if prev_escape {
                    prev_escape = false;
                } else if c == '\\' {
                    prev_escape = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0, "{line}");
        assert!(!in_str, "{line}");
    }
}

/// A resilient run whose fault plan exercises every record kind: a noise
/// spike in iteration 0 and a mid-measurement crash in iteration 1.
fn traced_fault_run() -> Vec<TraceRecord> {
    let plan = IntervalPlan::tiny();
    let window = plan.total().as_secs_f64();
    let crash_at = window + plan.warmup.as_secs_f64() + plan.measure.as_secs_f64() / 2.0;
    let faults = FaultPlan::new()
        .noise_spike(plan.warmup.as_secs_f64() + 1.0, 4.0)
        .crash(crash_at, 1);
    let cfg = SessionConfig::new(Topology::tiers(1, 2, 1).unwrap(), Workload::Shopping, 250)
        .plan(plan)
        .pin_seed(true)
        .fault_plan(faults);
    let mut sink = MemorySink::new();
    let mut observer = SessionObserver::with_sink(&mut sink);
    run_resilient_session_observed(&cfg, &ResilienceSettings::default(), 3, &mut observer)
        .expect("resilient session");
    sink.records
}

fn records_of_kind(records: &[TraceRecord], kind: &str) -> Vec<String> {
    let prefix = format!("{{\"kind\":\"{kind}\"");
    records
        .iter()
        .map(|r| r.to_json())
        .filter(|line| line.starts_with(&prefix))
        .collect()
}

#[test]
fn fault_records_match_golden_schema() {
    let records = traced_fault_run();
    let faults = records_of_kind(&records, "fault");
    assert!(faults.len() >= 2, "noise spike + crash: {faults:?}");
    let expected = golden_keys_from(include_str!("golden/fault_schema.txt"));
    for line in &faults {
        assert_eq!(
            key_sequence(line),
            expected,
            "drifted from tests/golden/fault_schema.txt: {line}"
        );
    }
}

#[test]
fn recovery_records_match_golden_schema() {
    let records = traced_fault_run();
    let recoveries = records_of_kind(&records, "recovery");
    assert!(
        !recoveries.is_empty(),
        "the mid-measurement crash must trigger at least one retry"
    );
    let expected = golden_keys_from(include_str!("golden/recovery_schema.txt"));
    for line in &recoveries {
        assert_eq!(
            key_sequence(line),
            expected,
            "drifted from tests/golden/recovery_schema.txt: {line}"
        );
    }
}

#[test]
fn degraded_records_match_golden_schema() {
    // Only the proxy node serves; its crash after a healthy first window
    // zeroes every later evaluation, so with `degrade_to_best` each
    // subsequent iteration emits a `degraded` record.
    let plan = IntervalPlan::tiny();
    let window = plan.total().as_secs_f64();
    let cfg = SessionConfig::new(Topology::tiers(1, 1, 1).unwrap(), Workload::Shopping, 150)
        .plan(plan)
        .pin_seed(true)
        .fault_plan(FaultPlan::new().crash(window + 0.5, 0));
    let settings = ResilienceSettings {
        breaker_threshold: 1,
        degrade_to_best: true,
        reconfigure_on_crash: false,
        ..Default::default()
    };
    let mut sink = MemorySink::new();
    let mut observer = SessionObserver::with_sink(&mut sink);
    run_resilient_session_observed(&cfg, &settings, 4, &mut observer).expect("resilient session");

    let degraded = records_of_kind(&sink.records, "degraded");
    assert!(!degraded.is_empty(), "blackout must degrade some iteration");
    let expected = golden_keys_from(include_str!("golden/degraded_schema.txt"));
    for line in &degraded {
        assert_eq!(
            key_sequence(line),
            expected,
            "drifted from tests/golden/degraded_schema.txt: {line}"
        );
    }
}

/// A detector-mode resilient run over a crash-then-restart plan: emits
/// `suspicion` records every iteration and `membership` records for the
/// Suspect → Down → Up transition chain.
fn traced_detector_run() -> Vec<TraceRecord> {
    let plan = IntervalPlan::tiny();
    let window = plan.total().as_secs_f64();
    let cfg = SessionConfig::new(Topology::tiers(1, 2, 1).unwrap(), Workload::Shopping, 250)
        .plan(plan)
        .pin_seed(true)
        .fault_plan(
            FaultPlan::new()
                .crash(window + 5.0, 1)
                .restart(2.0 * window + 5.0, 1),
        );
    let settings = ResilienceSettings {
        detector: Some(DetectorConfig::default()),
        ..Default::default()
    };
    let mut sink = MemorySink::new();
    let mut observer = SessionObserver::with_sink(&mut sink);
    run_resilient_session_observed(&cfg, &settings, 3, &mut observer).expect("resilient session");
    sink.records
}

#[test]
fn suspicion_records_match_golden_schema() {
    let records = traced_detector_run();
    let suspicions = records_of_kind(&records, "suspicion");
    assert_eq!(
        suspicions.len(),
        3 * 4,
        "one suspicion record per node per iteration: {suspicions:?}"
    );
    let expected = golden_keys_from(include_str!("golden/suspicion_schema.txt"));
    for line in &suspicions {
        assert_eq!(
            key_sequence(line),
            expected,
            "drifted from tests/golden/suspicion_schema.txt: {line}"
        );
    }
}

#[test]
fn membership_records_match_golden_schema() {
    let records = traced_detector_run();
    let memberships = records_of_kind(&records, "membership");
    assert!(
        memberships.len() >= 3,
        "suspect, down, and recovery transitions: {memberships:?}"
    );
    let expected = golden_keys_from(include_str!("golden/membership_schema.txt"));
    for line in &memberships {
        assert_eq!(
            key_sequence(line),
            expected,
            "drifted from tests/golden/membership_schema.txt: {line}"
        );
    }
}

#[test]
fn resume_record_matches_golden_schema() {
    let cfg = SessionConfig::new(Topology::single(), Workload::Shopping, 200)
        .plan(IntervalPlan::tiny())
        .pin_seed(true);
    let dir = std::env::temp_dir().join(format!(
        "resume-schema-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    // A completed checkpointed run's directory is indistinguishable from
    // one killed at the final iteration boundary, so resuming it yields
    // a pure-replay session whose first record is the `resume` splice.
    let ck = cfg.clone().checkpoint(CheckpointPolicy::new(&dir).every(2));
    tune_observed(&ck, TuningMethod::Default, 4, &mut SessionObserver::none()).expect("run");
    let resumed = ck.checkpoint(CheckpointPolicy::new(&dir).every(2).resume(true));
    let mut sink = MemorySink::new();
    let mut observer = SessionObserver::with_sink(&mut sink);
    tune_observed(&resumed, TuningMethod::Default, 4, &mut observer).expect("resume");

    let lines = records_of_kind(&sink.records, "resume");
    assert_eq!(lines.len(), 1, "exactly one resume record: {lines:?}");
    let expected = golden_keys_from(include_str!("golden/resume_schema.txt"));
    assert_eq!(
        key_sequence(&lines[0]),
        expected,
        "drifted from tests/golden/resume_schema.txt: {}",
        lines[0]
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn eval_record_matches_golden_schema() {
    let cfg = SessionConfig::new(Topology::single(), Workload::Shopping, 200)
        .plan(IntervalPlan::tiny())
        .pin_seed(true)
        .eval_settings(EvalSettings::default().cache(true));
    let mut sink = MemorySink::new();
    let mut observer = SessionObserver::with_sink(&mut sink);
    tune_observed(&cfg, TuningMethod::Default, 3, &mut observer).expect("tuning session");

    let lines = records_of_kind(&sink.records, "eval");
    assert_eq!(lines.len(), 1, "exactly one eval summary record: {lines:?}");
    let expected = golden_keys_from(include_str!("golden/eval_schema.txt"));
    assert_eq!(
        key_sequence(&lines[0]),
        expected,
        "drifted from tests/golden/eval_schema.txt: {}",
        lines[0]
    );
}

#[test]
fn trace_values_track_the_run() {
    let records = traced_run(TuningMethod::Default, 5);
    let iterations: Vec<&TraceRecord> = records
        .iter()
        .filter(|r| r.to_json().starts_with("{\"kind\":\"iteration\""))
        .collect();
    let mut best = f64::NEG_INFINITY;
    for (i, r) in iterations.iter().enumerate() {
        assert_eq!(r.get("iteration").and_then(|v| v.as_f64()), Some(i as f64));
        let wips = r.get("wips").and_then(|v| v.as_f64()).unwrap();
        let rec_best = r.get("best_wips").and_then(|v| v.as_f64()).unwrap();
        best = best.max(wips);
        assert_eq!(rec_best, best, "best_wips must be the running maximum");
        assert!(r.get("ci_half").and_then(|v| v.as_f64()).unwrap() > 0.0);
        assert!(r
            .get("config")
            .is_some_and(|v| v.to_csv_cell().contains("proxy[")));
    }
}
