//! Shape tests: do the paper's qualitative findings hold end to end?
//!
//! These run the real experiment code paths at reduced effort. The light
//! ones run in the normal suite; the heavier ones are `#[ignore]`d and
//! meant for `cargo test --release -- --ignored` (a few minutes).

use ah_webtune::harmony::strategy::TuningMethod;
use ah_webtune::orchestrator::experiments::{
    fig7::{self, Fig7Variant},
    table4, tuning_process, Effort,
};
use ah_webtune::tpcw::mix::Workload;

#[test]
fn smoke_experiments_produce_finite_results() {
    let effort = Effort::smoke();
    let (r, _) = tuning_process::run(Workload::Browsing, &effort, 3);
    assert!(r.best_wips.is_finite() && r.best_wips > 0.0);
    let t4 = table4::run(&[TuningMethod::Duplication], &effort, 3);
    assert!(t4.rows[0].best_wips > 0.0);
}

/// The paper's §III.A headline: tuning helps browsing substantially and
/// ordering only a little. Heavier (quick effort, release recommended).
#[test]
#[ignore = "several minutes; run with --release -- --ignored"]
fn browsing_gains_exceed_ordering_gains() {
    let effort = Effort::quick();
    let (browsing, _) = tuning_process::run(Workload::Browsing, &effort, 42);
    let (ordering, _) = tuning_process::run(Workload::Ordering, &effort, 42);
    assert!(
        browsing.best_improvement > 0.08,
        "browsing gain too small: {:.3}",
        browsing.best_improvement
    );
    assert!(
        ordering.best_improvement < browsing.best_improvement,
        "ordering ({:.3}) should gain less than browsing ({:.3})",
        ordering.best_improvement,
        browsing.best_improvement
    );
    // Most of the second half should beat the default in both cases.
    assert!(browsing.fraction_better_than_default > 0.6);
    assert!(ordering.fraction_better_than_default > 0.6);
}

/// Table 4's headline: duplication converges fastest; partitioning is more
/// stable than the default method; all reach similar best WIPS.
#[test]
#[ignore = "several minutes; run with --release -- --ignored"]
fn cluster_tuning_methods_rank_as_in_table4() {
    let effort = Effort::quick();
    let methods = vec![
        TuningMethod::Default,
        TuningMethod::Duplication,
        TuningMethod::Partitioning,
    ];
    let r = table4::run(&methods, &effort, 42);
    let by = |m: TuningMethod| r.rows.iter().find(|row| row.method == m).unwrap();
    let default = by(TuningMethod::Default);
    let dup = by(TuningMethod::Duplication);
    let part = by(TuningMethod::Partitioning);

    // Similar best performance (within 10% of each other).
    let best = default.best_wips.max(dup.best_wips).max(part.best_wips);
    for row in &r.rows {
        assert!(row.best_wips > 0.9 * best, "{:?}", row.method);
    }
    // Everyone improves over the baseline.
    for row in &r.rows {
        assert!(
            row.improvement > 0.05,
            "{:?}: {:.3}",
            row.method,
            row.improvement
        );
    }
    // Duplication reaches near-best soonest.
    assert!(dup.iterations_to_converge <= default.iterations_to_converge);
    // Partitioning is more stable than the default method.
    assert!(part.stability_std < default.stability_std);
}

/// Figure 7's headline: the algorithm moves a node into the bottleneck
/// tier and throughput jumps.
#[test]
#[ignore = "several minutes; run with --release -- --ignored"]
fn reconfiguration_moves_and_gains() {
    let effort = Effort::quick();
    let b = fig7::run(Fig7Variant::AppToProxy, &effort, 42);
    assert_eq!(b.to_tier, Some(ah_webtune::cluster::config::Role::Proxy));
    assert!(b.improvement > 0.25, "gain {:.3}", b.improvement);

    let a = fig7::run(Fig7Variant::ProxyToApp, &effort, 42);
    assert_eq!(a.to_tier, Some(ah_webtune::cluster::config::Role::App));
    assert!(a.improvement > 0.15, "gain {:.3}", a.improvement);
}

/// The paper's join-buffer finding, verified by direct A/B evaluation:
/// shrinking `join_buffer_size` from the 8 MB default to the paper's
/// tuned ~400 KB does not hurt throughput.
#[test]
fn shrinking_join_buffer_costs_nothing() {
    use ah_webtune::cluster::config::{ClusterConfig, NodeParams, Topology};
    use ah_webtune::orchestrator::session::SessionConfig;
    use ah_webtune::tpcw::metrics::IntervalPlan;

    let topology = Topology::single();
    let cfg = SessionConfig::new(topology.clone(), Workload::Ordering, 400)
        .plan(IntervalPlan::tiny())
        .pin_seed(true);

    let default = ClusterConfig::defaults(&topology);
    let mut shrunk = default.clone();
    if let NodeParams::Db(db) = shrunk.node_mut(2) {
        db.join_buffer_size = 407_552; // the paper's tuned value
    }
    let base = cfg.evaluate(default, 0).metrics.wips;
    let small = cfg.evaluate(shrunk, 0).metrics.wips;
    assert!(
        small >= base * 0.97,
        "shrinking the join buffer must not hurt: {base:.1} -> {small:.1}"
    );
}
