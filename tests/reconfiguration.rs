//! Integration tests of the §IV reconfiguration pipeline: monitor →
//! algorithm → topology change → continued service.

use ah_webtune::cluster::config::{Role, Topology};
use ah_webtune::harmony::reconfig::Thresholds;
use ah_webtune::orchestrator::reconfigure::{run_reconfig_session, ReconfigSettings};
use ah_webtune::orchestrator::session::SessionConfig;
use ah_webtune::tpcw::metrics::IntervalPlan;
use ah_webtune::tpcw::mix::Workload;

fn base(topology: Topology, pop: u32) -> SessionConfig {
    SessionConfig::new(topology, Workload::Browsing, pop).plan(IntervalPlan::tiny())
}

#[test]
fn move_relieves_saturated_proxy_tier_and_helps_throughput() {
    // Browsing saturates the single proxy; three app nodes idle.
    let cfg = base(Topology::tiers(1, 3, 1).unwrap(), 1600);
    let settings = ReconfigSettings {
        check_every: None,
        force_check_at: Some(3),
        thresholds: Thresholds {
            high: 0.8,
            low: 0.35,
        },
        tune_during: false,
        ..Default::default()
    };
    let run = run_reconfig_session(&cfg, &settings, 10, |_| Workload::Browsing).expect("session");
    assert_eq!(run.events.len(), 1);
    let e = &run.events[0];
    assert_eq!(e.from_tier, Role::App);
    assert_eq!(e.to_tier, Role::Proxy);
    // Throughput must not regress from the move (the clear-gain shape is
    // asserted at quick effort in tests/paper_shapes.rs — at this tiny
    // measurement plan caches run cold and saturation is mild).
    let before = run.mean_wips(0, 4);
    let after = run.mean_wips(5, 10);
    assert!(
        after > before * 0.95,
        "move must not hurt: {before:.1} -> {after:.1}"
    );
}

#[test]
fn tier_size_guard_prevents_emptying_a_tier() {
    // The only app node may never be moved, no matter the imbalance.
    let cfg = base(Topology::tiers(1, 1, 2).unwrap(), 1600);
    let settings = ReconfigSettings {
        check_every: Some(2),
        thresholds: Thresholds {
            high: 0.5,
            low: 0.6,
        }, // permissive
        tune_during: false,
        ..Default::default()
    };
    let run = run_reconfig_session(&cfg, &settings, 8, |_| Workload::Browsing).expect("session");
    // Whatever happened, every tier still has at least one node.
    for role in Role::ALL {
        assert!(run.final_topology.count(role) >= 1, "{role} emptied");
    }
}

#[test]
fn balanced_cluster_stays_put() {
    let cfg = base(Topology::tiers(2, 2, 2).unwrap(), 200);
    let settings = ReconfigSettings {
        check_every: Some(2),
        tune_during: false,
        ..Default::default()
    };
    let run = run_reconfig_session(&cfg, &settings, 6, |_| Workload::Shopping).expect("session");
    assert!(run.events.is_empty());
    assert_eq!(run.final_topology, cfg.topology);
}

#[test]
fn service_continues_across_every_iteration_of_a_move() {
    let cfg = base(Topology::tiers(1, 3, 1).unwrap(), 1600);
    let settings = ReconfigSettings {
        check_every: None,
        force_check_at: Some(2),
        thresholds: Thresholds {
            high: 0.8,
            low: 0.35,
        },
        tune_during: false,
        ..Default::default()
    };
    let run = run_reconfig_session(&cfg, &settings, 8, |_| Workload::Browsing).expect("session");
    // The paper: reconfiguration happens without taking the system down —
    // every iteration (including the move iteration) serves traffic.
    for rec in &run.records {
        assert!(rec.wips > 0.0, "iteration {} served nothing", rec.iteration);
    }
}

#[test]
fn degraded_node_attracts_tier_reinforcement() {
    // Failure injection: one of two app nodes drops to 20% CPU speed
    // under an ordering workload. Its CPU pegs; an idle proxy should be
    // reassigned into the app tier to compensate.
    let mut cfg = base(Topology::tiers(3, 2, 2).unwrap(), 1200).workload(Workload::Ordering);
    cfg.degrade_cpu(3, 0.2).expect("node 3 exists"); // node 3 = first app node
    let settings = ReconfigSettings {
        check_every: None,
        force_check_at: Some(4),
        thresholds: Thresholds {
            high: 0.8,
            low: 0.45,
        },
        tune_during: false,
        ..Default::default()
    };
    let run = run_reconfig_session(&cfg, &settings, 8, |_| Workload::Ordering).expect("session");
    assert_eq!(
        run.events.len(),
        1,
        "expected reinforcement: {:?}",
        run.events
    );
    assert_eq!(run.events[0].to_tier, Role::App);
    assert_eq!(run.final_topology.count(Role::App), 3);
}
