//! Integration tests for the evaluation engine: memoized measurements
//! and speculative parallel candidate evaluation must be *transparent*.
//! Whatever the engine configuration — cache on or off, one worker or
//! one per core, warm or cold — a session produces byte-identical trace
//! records and bit-equal WIPS. Only the end-of-session `eval` summary
//! record (and `wall_ms`, as everywhere) reflects the engine, so the
//! comparisons here strip both.

use ah_webtune::prelude::*;
use obs::Value;
use orchestrator::resilient::run_resilient_session_observed;
use orchestrator::session::tune_observed;
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;

fn pinned(topology: Topology, population: u32) -> SessionConfig {
    SessionConfig::new(topology, Workload::Shopping, population)
        .plan(IntervalPlan::tiny())
        .pin_seed(true)
}

/// Drop the trailing `wall_ms` field (host wall-clock time, supposed to
/// vary) and the `eval` summary record (its hit/miss/speculated counters
/// describe the engine configuration, not the measurements).
fn comparable_lines(sink: &MemorySink) -> Vec<String> {
    sink.records
        .iter()
        .map(|r| r.to_json())
        .filter(|line| !line.starts_with("{\"kind\":\"eval\""))
        .map(|line| match line.find(",\"wall_ms\":") {
            Some(at) => format!("{}}}", &line[..at]),
            None => line,
        })
        .collect()
}

fn traced(cfg: &SessionConfig, method: TuningMethod, iterations: u32) -> (Vec<String>, TuningRun) {
    let mut sink = MemorySink::new();
    let mut observer = SessionObserver::with_sink(&mut sink);
    let run = tune_observed(cfg, method, iterations, &mut observer).expect("tuning session");
    (comparable_lines(&sink), run)
}

/// The fig4 driver shape (Default on a single node) and the table4
/// method column (Duplication / Partitioning / Hybrid on a cluster):
/// every method's trace and best WIPS must be oblivious to the cache.
#[test]
fn cached_engine_is_byte_identical_for_every_method() {
    let sessions = [
        (TuningMethod::Default, Topology::single(), 200),
        (
            TuningMethod::Duplication,
            Topology::tiers(2, 2, 2).expect("topology"),
            300,
        ),
        (
            TuningMethod::Partitioning,
            Topology::tiers(2, 2, 2).expect("topology"),
            300,
        ),
        (
            TuningMethod::Hybrid,
            Topology::tiers(2, 2, 2).expect("topology"),
            300,
        ),
    ];
    for (method, topology, population) in sessions {
        let plain = pinned(topology, population);
        let cached = plain
            .clone()
            .eval_settings(EvalSettings::default().cache(true));
        let (lines_a, run_a) = traced(&plain, method, 6);
        let (lines_b, run_b) = traced(&cached, method, 6);
        assert_eq!(
            lines_a, lines_b,
            "{method:?}: cache changed the trace bytes"
        );
        assert_eq!(
            run_a.best_wips.to_bits(),
            run_b.best_wips.to_bits(),
            "{method:?}: cache changed the best WIPS"
        );
        assert_eq!(run_a.best_config, run_b.best_config);
    }
}

/// Speculative parallel evaluation (cache + one worker per core) must
/// consume its pre-computed outcomes in exactly the order and with
/// exactly the values of the sequential engine.
#[test]
fn speculative_parallel_engine_is_byte_identical() {
    for (method, topology) in [
        (TuningMethod::Default, Topology::single()),
        (
            TuningMethod::Partitioning,
            Topology::tiers(2, 2, 2).expect("topology"),
        ),
    ] {
        let plain = pinned(topology, 250);
        let speculative = plain
            .clone()
            .eval_settings(EvalSettings::default().cache(true).threads(0));
        let (lines_a, run_a) = traced(&plain, method, 6);
        let (lines_b, run_b) = traced(&speculative, method, 6);
        assert_eq!(
            lines_a, lines_b,
            "{method:?}: speculation changed the trace bytes"
        );
        assert_eq!(run_a.best_wips.to_bits(), run_b.best_wips.to_bits());
        // The engine really did work ahead; it just must not show.
        assert!(
            speculative.eval.counters().speculated > 0,
            "{method:?}: no speculative evaluations happened"
        );
    }
}

/// Fault noise is applied by the session *after* the cache lookup, so a
/// faulted session (noise spike + mid-measurement crash, retries and
/// all) is also oblivious to the engine.
#[test]
fn faulted_resilient_session_is_byte_identical_with_engine() {
    let plan = IntervalPlan::tiny();
    let window = plan.total().as_secs_f64();
    let crash_at = window + plan.warmup.as_secs_f64() + plan.measure.as_secs_f64() / 2.0;
    let faults = FaultPlan::new()
        .noise_spike(plan.warmup.as_secs_f64() + 1.0, 3.0)
        .crash(crash_at, 1);
    let plain = pinned(Topology::tiers(1, 2, 1).expect("topology"), 250).fault_plan(faults);
    let engined = plain
        .clone()
        .eval_settings(EvalSettings::default().cache(true).threads(0));

    let run_once = |cfg: &SessionConfig| {
        let mut sink = MemorySink::new();
        let mut observer = SessionObserver::with_sink(&mut sink);
        let run =
            run_resilient_session_observed(cfg, &ResilienceSettings::default(), 4, &mut observer)
                .expect("resilient session");
        (comparable_lines(&sink), run)
    };
    let (lines_a, run_a) = run_once(&plain);
    let (lines_b, run_b) = run_once(&engined);
    assert_eq!(lines_a, lines_b, "engine changed a faulted session's trace");
    assert_eq!(run_a.best_wips.to_bits(), run_b.best_wips.to_bits());
    assert_eq!(run_a.recoveries.len(), run_b.recoveries.len());
    assert_eq!(run_a.reconfigs.len(), run_b.reconfigs.len());
}

/// An engine left at the library default (no cache, one thread) must
/// stay invisible: no `eval` record, no extra records of any kind.
#[test]
fn disabled_engine_emits_no_eval_record() {
    let cfg = pinned(Topology::single(), 200);
    let mut sink = MemorySink::new();
    let mut observer = SessionObserver::with_sink(&mut sink);
    tune_observed(&cfg, TuningMethod::Default, 3, &mut observer).expect("session");
    let iteration_records = sink
        .records
        .iter()
        .filter(|r| r.to_json().starts_with("{\"kind\":\"iteration\""))
        .count();
    assert_eq!(iteration_records, 3, "one iteration record per iteration");
    assert!(sink
        .records
        .iter()
        .all(|r| !r.to_json().starts_with("{\"kind\":\"eval\"")));
}

// -- kill-and-resume with a warm cache ------------------------------------

struct KillSink {
    inner: MemorySink,
    kill_at: u64,
}

impl TraceSink for KillSink {
    fn emit(&mut self, record: &TraceRecord) {
        if let Some(Value::UInt(i)) = record.get("iteration") {
            if *i >= self.kill_at {
                panic!("simulated crash at iteration {i}");
            }
        }
        self.inner.emit(record);
    }
}

fn run_killed<F: FnOnce()>(f: F) {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(f));
    std::panic::set_hook(prev);
    assert!(outcome.is_err(), "the kill sink should have fired");
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "eval-resume-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Killing a speculating session and resuming restores the memoization
/// cache from the snapshot: the continued run is byte-identical to the
/// uninterrupted one *and* serves its post-resume iterations as cache
/// hits, because the pre-crash engine had already evaluated them
/// speculatively. Crash recovery loses no speculative work.
#[test]
fn kill_and_resume_restores_the_warm_cache() {
    const ITERS: u32 = 8;
    // `eval_settings` installs a *fresh* engine each time (cloning a
    // SessionConfig shares its engine Arc — and its counters — which is
    // exactly what this test must not do).
    let engine = || EvalSettings::default().cache(true).threads(0);
    let base = pinned(Topology::single(), 200);
    let full_cfg = base.clone().eval_settings(engine());
    let (full_lines, full_run) = traced(&full_cfg, TuningMethod::Default, ITERS);

    let k = 5u64;
    let dir = temp_dir("warm");
    let policy = CheckpointPolicy::new(&dir).every(2);
    let killed = base
        .clone()
        .eval_settings(engine())
        .checkpoint(policy.clone());
    let mut sink = KillSink {
        inner: MemorySink::new(),
        kill_at: k,
    };
    run_killed(|| {
        let mut observer = SessionObserver::with_sink(&mut sink);
        let _ = tune_observed(&killed, TuningMethod::Default, ITERS, &mut observer);
    });

    let resumed_cfg = base.eval_settings(engine()).checkpoint(policy.resume(true));
    let mut resumed_sink = MemorySink::new();
    let mut observer = SessionObserver::with_sink(&mut resumed_sink);
    let run = tune_observed(&resumed_cfg, TuningMethod::Default, ITERS, &mut observer)
        .expect("resumed session");
    let resumed = comparable_lines(&resumed_sink);

    assert!(
        resumed[0].starts_with("{\"kind\":\"resume\""),
        "{}",
        resumed[0]
    );
    // An iteration spans several records (iteration + tuner); the kill
    // fired on the first record of iteration `k`, so the resumed trace
    // must pick up exactly there.
    let boundary = full_lines
        .iter()
        .position(|l| l.contains(&format!("\"iteration\":{k},")))
        .expect("iteration k in the reference trace");
    assert_eq!(
        &resumed[1..],
        &full_lines[boundary..],
        "post-resume trace must match the uninterrupted run"
    );
    assert_eq!(run.best_wips.to_bits(), full_run.best_wips.to_bits());
    assert_eq!(run.best_config, full_run.best_config);

    // The warm-cache proof: the snapshot at iteration 4 already held the
    // speculated outcomes for the live iterations 5..8, so the resumed
    // session replays them as hits without ever re-running the DES.
    let counters = resumed_cfg.eval.counters();
    assert_eq!(
        counters.hits,
        u64::from(ITERS) - k,
        "every post-resume iteration must be served from the restored cache: {counters:?}"
    );
    assert_eq!(counters.misses, 0, "{counters:?}");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

// -- thread-width independence (1 / 2 / 8 workers) -------------------------

/// The scheduling guarantee behind the shared worker pool: worker count
/// is a wall-clock knob, never a results knob. The same seeded session
/// run with 1, 2, and 8 evaluation *and* replication threads produces
/// byte-identical traces, bit-equal WIPS, the same best configuration,
/// and the same session fingerprint.
#[test]
fn thread_width_1_2_8_is_byte_identical() {
    let cfg_at = |w: usize| {
        pinned(Topology::tiers(2, 2, 2).expect("topology"), 300)
            .eval_settings(EvalSettings::default().cache(true).threads(w))
            .replication_threads(w)
    };
    let runs: Vec<(Vec<String>, TuningRun)> = [1usize, 2, 8]
        .iter()
        .map(|&w| traced(&cfg_at(w), TuningMethod::Partitioning, 6))
        .collect();
    let (lines_1, run_1) = &runs[0];
    for (w, (lines, run)) in [2usize, 8].iter().zip(&runs[1..]) {
        assert_eq!(lines_1, lines, "{w} workers changed the trace bytes");
        assert_eq!(
            run_1.best_wips.to_bits(),
            run.best_wips.to_bits(),
            "{w} workers changed the best WIPS"
        );
        assert_eq!(run_1.best_config, run.best_config);
    }
    // The session fingerprint is a function of the scenario inputs, so
    // the engine width must not leak into it: a checkpoint written at
    // one width resumes at any other.
    let fp_at =
        |w: usize| orchestrator::checkpoint::session_fingerprint(&cfg_at(w), "partitioning", 6, 0);
    assert_eq!(fp_at(1), fp_at(2));
    assert_eq!(fp_at(1), fp_at(8));
}

/// Checkpoint artifacts are width-independent too: two speculating
/// widths write snapshot + journal files that are byte-identical, down
/// to the serialized memoization cache (every width stores the same
/// speculated outcomes, merged in the same order).
#[test]
fn checkpoint_files_are_width_independent() {
    let run_at = |w: usize| {
        let dir = temp_dir(&format!("width-{w}"));
        let cfg = pinned(Topology::single(), 200)
            .eval_settings(EvalSettings::default().cache(true).threads(w))
            .checkpoint(CheckpointPolicy::new(&dir).every(2));
        let run = tune(&cfg, TuningMethod::Default, 6).expect("checkpointed session");
        let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(&dir)
            .expect("checkpoint dir")
            .map(|e| {
                let e = e.expect("dir entry");
                let name = e.file_name().to_string_lossy().into_owned();
                let bytes = std::fs::read(e.path()).expect("checkpoint file");
                (name, bytes)
            })
            .collect();
        files.sort_by(|a, b| a.0.cmp(&b.0));
        std::fs::remove_dir_all(&dir).expect("cleanup");
        (files, run)
    };
    let (files_2, run_2) = run_at(2);
    let (files_8, run_8) = run_at(8);
    assert!(
        files_2.iter().any(|(n, _)| n.starts_with("snap-")),
        "expected at least one snapshot: {:?}",
        files_2.iter().map(|(n, _)| n).collect::<Vec<_>>()
    );
    let names = |fs: &[(String, Vec<u8>)]| fs.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>();
    assert_eq!(names(&files_2), names(&files_8));
    for ((name, bytes_2), (_, bytes_8)) in files_2.iter().zip(&files_8) {
        assert_eq!(bytes_2, bytes_8, "{name} differs between widths 2 and 8");
    }
    assert_eq!(run_2.best_wips.to_bits(), run_8.best_wips.to_bits());
}

/// Kill a speculating session mid-run at one width and resume it at a
/// *different* width: the continued trace must still match the
/// uninterrupted sequential run byte for byte. Crash recovery, the
/// restored cache, and the worker pool compose without bleeding state.
#[test]
fn kill_and_resume_mid_speculation_is_width_independent() {
    const ITERS: u32 = 8;
    let base = pinned(Topology::single(), 200);
    // Sequential reference (no cache, one worker): ground truth bytes.
    let (full_lines, full_run) = traced(&base, TuningMethod::Default, ITERS);

    let k = 5u64;
    let dir = temp_dir("width-switch");
    let policy = CheckpointPolicy::new(&dir).every(2);
    let killed = base
        .clone()
        .eval_settings(EvalSettings::default().cache(true).threads(2))
        .checkpoint(policy.clone());
    let mut sink = KillSink {
        inner: MemorySink::new(),
        kill_at: k,
    };
    run_killed(|| {
        let mut observer = SessionObserver::with_sink(&mut sink);
        let _ = tune_observed(&killed, TuningMethod::Default, ITERS, &mut observer);
    });
    // The pre-crash engine was speculating when the kill fired.
    assert!(
        killed.eval.counters().speculated > 0,
        "the killed session never speculated: {:?}",
        killed.eval.counters()
    );

    let resumed_cfg = base
        .eval_settings(EvalSettings::default().cache(true).threads(8))
        .checkpoint(policy.resume(true));
    let mut resumed_sink = MemorySink::new();
    let mut observer = SessionObserver::with_sink(&mut resumed_sink);
    let run = tune_observed(&resumed_cfg, TuningMethod::Default, ITERS, &mut observer)
        .expect("resumed session");
    let resumed = comparable_lines(&resumed_sink);

    assert!(
        resumed[0].starts_with("{\"kind\":\"resume\""),
        "{}",
        resumed[0]
    );
    let boundary = full_lines
        .iter()
        .position(|l| l.contains(&format!("\"iteration\":{k},")))
        .expect("iteration k in the reference trace");
    assert_eq!(
        &resumed[1..],
        &full_lines[boundary..],
        "post-resume trace at width 8 must match the sequential run"
    );
    assert_eq!(run.best_wips.to_bits(), full_run.best_wips.to_bits());
    assert_eq!(run.best_config, full_run.best_config);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
