//! Integration tests for fault injection and resilient sessions through
//! the facade crate: the no-fault path must stay byte-identical to the
//! plain tuner, faulted runs must be deterministic, and the acceptance
//! scenario (app-tier crash mid-session) must retry, reconfigure, and
//! recover without panicking.

use ah_webtune::prelude::*;

fn pinned(topology: Topology, population: u32) -> SessionConfig {
    SessionConfig::new(topology, Workload::Shopping, population)
        .plan(IntervalPlan::tiny())
        .pin_seed(true)
}

/// Drop the trailing `wall_ms` field: it reports host wall-clock time,
/// the one value that is *supposed* to vary between runs.
fn strip_wall_ms(line: String) -> String {
    match line.find(",\"wall_ms\":") {
        Some(at) => format!("{}}}", &line[..at]),
        None => line,
    }
}

fn trace_lines(cfg: &SessionConfig, iterations: u32) -> Vec<String> {
    let mut sink = MemorySink::new();
    let mut observer = SessionObserver::with_sink(&mut sink);
    tune_observed(cfg, TuningMethod::Default, iterations, &mut observer).expect("tuning session");
    sink.records
        .iter()
        .map(|r| strip_wall_ms(r.to_json()))
        .collect()
}

/// Acceptance: attaching an *empty* fault plan must not perturb the
/// simulation — pinned-seed traces are byte-identical with and without
/// the injector on the path.
#[test]
fn empty_fault_plan_leaves_pinned_traces_byte_identical() {
    let plain = pinned(Topology::single(), 200);
    let with_empty_plan = plain.clone().fault_plan(FaultPlan::new());
    assert_eq!(
        trace_lines(&plain, 4),
        trace_lines(&with_empty_plan, 4),
        "an empty fault plan must be a no-op on the trace bytes"
    );
}

fn crash_plan(plan: &IntervalPlan, iteration: u32, node: usize) -> FaultPlan {
    let window = plan.total().as_secs_f64();
    let crash_at = f64::from(iteration) * window
        + plan.warmup.as_secs_f64()
        + plan.measure.as_secs_f64() / 2.0;
    FaultPlan::new()
        .noise_spike(plan.warmup.as_secs_f64() + 1.0, 3.0)
        .crash(crash_at, node)
}

/// Same seed + same plan => identical WIPS series and identical trace
/// bytes, run to run.
#[test]
fn faulted_sessions_are_deterministic() {
    let run_once = || {
        let plan = IntervalPlan::tiny();
        let cfg = pinned(Topology::tiers(1, 2, 1).unwrap(), 250)
            .fault_plan(crash_plan(&plan, 1, 1))
            .fault_seed(0xFA17);
        let mut sink = MemorySink::new();
        let mut observer = SessionObserver::with_sink(&mut sink);
        let run =
            run_resilient_session_observed(&cfg, &ResilienceSettings::default(), 4, &mut observer)
                .expect("resilient session");
        let lines: Vec<String> = sink
            .records
            .iter()
            .map(|r| strip_wall_ms(r.to_json()))
            .collect();
        (run.wips_series(), lines)
    };
    let (wips_a, lines_a) = run_once();
    let (wips_b, lines_b) = run_once();
    assert_eq!(wips_a, wips_b, "WIPS series must be bitwise reproducible");
    assert_eq!(lines_a, lines_b, "trace bytes must be reproducible");
}

/// Acceptance scenario: an application-tier node crashes mid-session.
/// The session must not panic, must retry the wounded measurement, must
/// pull a donor into the app tier, and WIPS must recover to >= 90% of
/// the pre-crash running best within 10 iterations.
#[test]
fn app_tier_crash_retries_reconfigures_and_recovers() {
    let plan = IntervalPlan::tiny();
    let cfg = pinned(Topology::tiers(2, 3, 2).unwrap(), 400)
        // Node 3 is the second app-tier node in a 2p/3a/2d layout.
        .fault_plan(crash_plan(&plan, 2, 3));
    let run = run_resilient_session(&cfg, &ResilienceSettings::default(), 10)
        .expect("resilient session survives the crash");

    assert_eq!(run.first_crash_iteration(), Some(2));
    assert!(
        run.recoveries.iter().any(|a| a.action == "retry"),
        "a mid-measurement crash must trigger the retry policy: {:?}",
        run.recoveries
    );
    assert_eq!(run.reconfigs.len(), 1, "exactly one failure-driven move");
    let mv = &run.reconfigs[0];
    assert_eq!(
        mv.to_tier,
        Role::App,
        "the donor must join the wounded tier"
    );
    assert_ne!(mv.node, 3, "the dead node cannot be its own donor");
    let recovered_in = run
        .recovery_iterations(0.9)
        .expect("WIPS must climb back to 90% of the pre-crash best");
    assert!(
        recovered_in <= 10,
        "recovery took {recovered_in} iterations (> 10)"
    );
}
