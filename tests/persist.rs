//! Kill-and-resume torture tests for crash-safe session persistence.
//!
//! Each test interrupts a checkpointed session at a seeded point (a
//! panicking trace sink stands in for `kill -9`: journal appends are
//! flushed per frame, so the directory left behind is exactly what an
//! interrupted process leaves), resumes it, and requires the continued
//! run to be **byte-identical** — same trace records, same best
//! configuration, bit-equal WIPS — to an uninterrupted pinned-seed run.

use ah_webtune::prelude::*;
use obs::Value;
use orchestrator::resilient::run_resilient_session_observed;
use orchestrator::session::tune_observed;
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};

fn pinned(topology: Topology, population: u32) -> SessionConfig {
    SessionConfig::new(topology, Workload::Shopping, population)
        .plan(IntervalPlan::tiny())
        .pin_seed(true)
}

fn strip_wall_ms(line: String) -> String {
    match line.find(",\"wall_ms\":") {
        Some(at) => format!("{}}}", &line[..at]),
        None => line,
    }
}

fn lines_of(sink: &MemorySink) -> Vec<String> {
    sink.records
        .iter()
        .map(|r| strip_wall_ms(r.to_json()))
        .collect()
}

/// Index of the first record belonging to iteration `k` — the resume
/// boundary. An iteration spans several records (iteration + tuner), so
/// slicing the reference trace at `k` records would land mid-iteration.
fn boundary(lines: &[String], k: u64) -> usize {
    let tag = format!("\"iteration\":{k},");
    lines
        .iter()
        .position(|l| l.contains(&tag))
        .unwrap_or(lines.len())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "persist-torture-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A sink that simulates `kill -9` at the start of iteration `kill_at`:
/// it panics on the first record carrying `iteration >= kill_at`, so the
/// trace (and, because the session appends to its journal only *after*
/// tracing an iteration, the journal too) covers exactly the iterations
/// before the kill point.
struct KillSink {
    inner: MemorySink,
    kill_at: u64,
}

impl KillSink {
    fn new(kill_at: u64) -> Self {
        KillSink {
            inner: MemorySink::new(),
            kill_at,
        }
    }
}

impl TraceSink for KillSink {
    fn emit(&mut self, record: &TraceRecord) {
        if let Some(Value::UInt(i)) = record.get("iteration") {
            if *i >= self.kill_at {
                panic!("simulated crash at iteration {i}");
            }
        }
        self.inner.emit(record);
    }
}

/// Run `f` expecting the simulated crash, swallowing the panic output.
fn run_killed<F: FnOnce()>(f: F) {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(f));
    std::panic::set_hook(prev);
    assert!(outcome.is_err(), "the kill sink should have fired");
}

/// Five interrupt points drawn from a pinned seed, avoiding duplicates
/// and covering at least one snapshot-cadence boundary.
fn interrupt_points(iterations: u64, seed: u64) -> Vec<u64> {
    let mut rng = simkit::rng::SimRng::new(seed);
    let mut points = Vec::new();
    while points.len() < 5 {
        let k = 1 + rng.next_u64() % (iterations - 1);
        if !points.contains(&k) {
            points.push(k);
        }
    }
    points
}

const ITERS: u32 = 10;

fn policy(dir: &Path, resume: bool) -> CheckpointPolicy {
    CheckpointPolicy::new(dir).every(2).resume(resume)
}

fn full_tune_trace(cfg: &SessionConfig) -> (Vec<String>, TuningRun) {
    let mut sink = MemorySink::new();
    let mut observer = SessionObserver::with_sink(&mut sink);
    let run = tune_observed(cfg, TuningMethod::Default, ITERS, &mut observer).expect("full run");
    (lines_of(&sink), run)
}

fn kill_tune_at(cfg: &SessionConfig, dir: &Path, k: u64) -> Vec<String> {
    let ck_cfg = cfg.clone().checkpoint(policy(dir, false));
    let mut sink = KillSink::new(k);
    run_killed(|| {
        let mut observer = SessionObserver::with_sink(&mut sink);
        let _ = tune_observed(&ck_cfg, TuningMethod::Default, ITERS, &mut observer);
    });
    lines_of(&sink.inner)
}

fn resume_tune(cfg: &SessionConfig, dir: &Path) -> (Vec<String>, TuningRun) {
    let resume_cfg = cfg.clone().checkpoint(policy(dir, true));
    let mut sink = MemorySink::new();
    let mut observer = SessionObserver::with_sink(&mut sink);
    let run =
        tune_observed(&resume_cfg, TuningMethod::Default, ITERS, &mut observer).expect("resume");
    (lines_of(&sink), run)
}

/// Acceptance: killing a plain tuning session at any of five seeded
/// points and resuming reproduces the uninterrupted run exactly — the
/// pre-kill trace plus the post-resume trace is byte-identical to the
/// one-shot trace, and the final result is bit-equal.
#[test]
fn kill_and_resume_matches_uninterrupted_plain() {
    let cfg = pinned(Topology::single(), 200);
    let (full_lines, full_run) = full_tune_trace(&cfg);
    let iteration_records = full_lines
        .iter()
        .filter(|l| l.starts_with("{\"kind\":\"iteration\""))
        .count();
    assert_eq!(iteration_records, ITERS as usize);

    for k in interrupt_points(ITERS as u64, 0xD1E_0FF) {
        let dir = temp_dir(&format!("plain-{k}"));
        let pre = kill_tune_at(&cfg, &dir, k);
        let cut = boundary(&full_lines, k);
        assert_eq!(pre, full_lines[..cut], "pre-kill trace at k={k}");

        let (resumed, run) = resume_tune(&cfg, &dir);
        assert!(resumed[0].contains("\"kind\":\"resume\""), "{}", resumed[0]);
        assert!(
            resumed[0].contains("\"method\":\"Default method\"")
                && resumed[0].contains(&format!("\"iteration\":{k}")),
            "resume record at k={k}: {}",
            resumed[0]
        );
        assert_eq!(
            &resumed[1..],
            &full_lines[cut..],
            "post-resume trace at k={k}"
        );
        assert_eq!(run.best_wips.to_bits(), full_run.best_wips.to_bits());
        assert_eq!(run.best_config, full_run.best_config);
        assert_eq!(run.convergence_iteration, full_run.convergence_iteration);
        assert_eq!(run.records.len(), full_run.records.len());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

/// A checkpointed run that is never interrupted must behave exactly like
/// an unpersisted one (checkpointing is observation, not perturbation).
#[test]
fn checkpointed_run_is_byte_identical_to_plain() {
    let cfg = pinned(Topology::single(), 200);
    let (full_lines, full_run) = full_tune_trace(&cfg);

    let dir = temp_dir("uninterrupted");
    let ck_cfg = cfg.clone().checkpoint(policy(&dir, false));
    let mut sink = MemorySink::new();
    let mut observer = SessionObserver::with_sink(&mut sink);
    let run = tune_observed(&ck_cfg, TuningMethod::Default, ITERS, &mut observer).expect("run");
    assert_eq!(lines_of(&sink), full_lines);
    assert_eq!(run.best_wips.to_bits(), full_run.best_wips.to_bits());
    assert_eq!(run.best_config, full_run.best_config);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Resilient sessions under a crashing fault plan survive interruption
/// at every point 1..=5 — including mid-fault-window kills — and resume
/// byte-identically: retries, breaker counts, jitter draws, and
/// failure-driven node moves all continue as if never stopped.
#[test]
fn kill_and_resume_matches_under_fault_plan() {
    const FAULT_ITERS: u32 = 6;
    let total = IntervalPlan::tiny().total().as_secs_f64();
    let cfg = pinned(Topology::tiers(1, 2, 1).expect("topology"), 300)
        .fault_plan(FaultPlan::new().crash(total + 7.0, 1));
    let settings = ResilienceSettings::default();

    let mut full_sink = MemorySink::new();
    let mut observer = SessionObserver::with_sink(&mut full_sink);
    let full_run = run_resilient_session_observed(&cfg, &settings, FAULT_ITERS, &mut observer)
        .expect("full resilient run");
    let full_lines = lines_of(&full_sink);

    for k in 1..FAULT_ITERS as u64 {
        let dir = temp_dir(&format!("fault-{k}"));
        let ck_cfg = cfg.clone().checkpoint(policy(&dir, false));
        let mut sink = KillSink::new(k);
        run_killed(|| {
            let mut observer = SessionObserver::with_sink(&mut sink);
            let _ = run_resilient_session_observed(&ck_cfg, &settings, FAULT_ITERS, &mut observer);
        });
        // Everything traced before the kill belongs to iterations < k,
        // so the pre-kill trace is a prefix of the uninterrupted one and
        // its length marks the resume boundary.
        let pre = lines_of(&sink.inner);
        assert_eq!(pre, full_lines[..pre.len()], "pre-kill trace at k={k}");

        let resume_cfg = cfg.clone().checkpoint(policy(&dir, true));
        let mut resumed_sink = MemorySink::new();
        let mut observer = SessionObserver::with_sink(&mut resumed_sink);
        let run =
            run_resilient_session_observed(&resume_cfg, &settings, FAULT_ITERS, &mut observer)
                .expect("resumed resilient run");
        let resumed = lines_of(&resumed_sink);
        assert!(resumed[0].contains("\"kind\":\"resume\""), "{}", resumed[0]);
        assert!(
            resumed[0].contains("\"method\":\"resilient\""),
            "{}",
            resumed[0]
        );
        assert_eq!(
            &resumed[1..],
            &full_lines[pre.len()..],
            "post-resume trace at k={k}"
        );
        assert_eq!(run.best_wips.to_bits(), full_run.best_wips.to_bits());
        assert_eq!(run.final_topology, full_run.final_topology);
        assert_eq!(run.records.len(), full_run.records.len());
        assert_eq!(run.recoveries.len(), full_run.recoveries.len());
        assert_eq!(run.reconfigs.len(), full_run.reconfigs.len());
        assert_eq!(run.faults.len(), full_run.faults.len());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

/// Garbage appended to the journal (a torn final frame) is truncated
/// away on recovery; the resumed run is still exact.
#[test]
fn torn_journal_tail_is_tolerated() {
    let cfg = pinned(Topology::single(), 200);
    let (full_lines, full_run) = full_tune_trace(&cfg);

    let dir = temp_dir("torn-tail");
    let k = 5u64;
    kill_tune_at(&cfg, &dir, k);
    let journal = dir.join("journal.wal");
    let mut bytes = std::fs::read(&journal).expect("journal");
    bytes.extend_from_slice(&[0x17, 0x00, 0x00, 0x00, 0xde, 0xad]);
    std::fs::write(&journal, bytes).expect("append garbage");

    let (resumed, run) = resume_tune(&cfg, &dir);
    assert!(resumed[0].contains("\"kind\":\"resume\""));
    assert_eq!(&resumed[1..], &full_lines[boundary(&full_lines, k)..]);
    assert_eq!(run.best_wips.to_bits(), full_run.best_wips.to_bits());
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// A corrupted newest snapshot is quarantined (renamed `.ckpt.corrupt`)
/// and recovery falls back to the previous good snapshot plus a longer
/// journal replay — still byte-identical.
#[test]
fn corrupted_snapshot_falls_back_to_previous() {
    let cfg = pinned(Topology::single(), 200);
    let (full_lines, full_run) = full_tune_trace(&cfg);

    let dir = temp_dir("bad-snap");
    let k = 7u64; // snapshots exist at iterations 2, 4, and 6
    kill_tune_at(&cfg, &dir, k);
    let newest = dir.join("snap-00000006.ckpt");
    let mut bytes = std::fs::read(&newest).expect("snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&newest, bytes).expect("corrupt snapshot");

    let (resumed, run) = resume_tune(&cfg, &dir);
    assert!(resumed[0].contains("\"kind\":\"resume\""));
    assert!(
        resumed[0].contains("\"snapshot_iteration\":4"),
        "fell back to the iteration-4 snapshot: {}",
        resumed[0]
    );
    assert_eq!(&resumed[1..], &full_lines[boundary(&full_lines, k)..]);
    assert_eq!(run.best_wips.to_bits(), full_run.best_wips.to_bits());
    assert!(
        dir.join("snap-00000006.ckpt.corrupt").exists(),
        "corrupt snapshot is quarantined, not deleted"
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Resuming under a *different* session configuration is refused: the
/// journal header carries a fingerprint of the session inputs.
#[test]
fn resume_with_mismatched_session_is_refused() {
    let cfg = pinned(Topology::single(), 200);
    let dir = temp_dir("fingerprint");
    kill_tune_at(&cfg, &dir, 4);

    let other = pinned(Topology::single(), 300).checkpoint(policy(&dir, true));
    let err = tune_observed(
        &other,
        TuningMethod::Default,
        ITERS,
        &mut SessionObserver::none(),
    )
    .unwrap_err();
    assert!(matches!(err, SessionError::Checkpoint(_)), "{err:?}");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
