//! Shared conformance suite for every tuner in the harmony registry.
//!
//! Whatever the algorithm — simplex geometry, divide-and-diverge
//! sampling, comparison classification, noise-robust confirmation, or a
//! baseline — a registered tuner must speak the same ask/tell v2
//! protocol: in-space proposals, typed measurement observation, batch
//! proposals with stable trial ids, `reset()` back to a fresh start,
//! `best()` consistent with what was observed, and bit-exact
//! `save_state`/`restore_state` round-trips through `persist::State`.
//! The four session tuners must additionally survive kill-and-resume
//! through the checkpoint path with byte-identical traces.

use ah_webtune::prelude::*;
use harmony::param::ParamDef;
use obs::Value;
use orchestrator::session::tune_observed;
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};

/// A small space every algorithm can search quickly.
fn space() -> ParamSpace {
    ParamSpace::new(vec![
        ParamDef::new("alpha", 0, 120, 12),
        ParamDef::new("beta", 1, 64, 48),
        ParamDef::new("gamma", 0, 9, 3),
    ])
}

/// Deterministic objective: peak at (84, 16, 7), no noise.
fn score(c: &Configuration) -> f64 {
    let target = [84i64, 16, 7];
    -target
        .iter()
        .enumerate()
        .map(|(i, t)| (c.get(i) - t).abs() as f64)
        .sum::<f64>()
}

fn fresh(name: &str) -> Box<dyn Tuner + Send> {
    make_tuner(name, space(), 0xC0FFEE).expect(name)
}

#[test]
fn ask_tell_protocol_is_honoured_by_every_tuner() {
    for name in tuner_names() {
        let s = space();
        let mut t = fresh(name);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut last_best = f64::NEG_INFINITY;
        for i in 0..30u64 {
            let c = t.propose();
            assert_eq!(c.values().len(), s.dims(), "{name}: proposal dims");
            for (d, def) in s.defs().iter().enumerate() {
                let v = c.get(d);
                assert!(
                    v >= def.min && v <= def.max,
                    "{name}: proposal {i} out of range on dim {d}: {v}"
                );
            }
            let p = score(&c);
            lo = lo.min(p);
            hi = hi.max(p);
            t.observe(p);
            assert_eq!(t.evaluations(), i + 1, "{name}: evaluations count");

            let (_, best_perf) = t
                .best()
                .unwrap_or_else(|| panic!("{name}: best after observe"));
            assert!(
                best_perf >= lo - 1e-9 && best_perf <= hi + 1e-9,
                "{name}: best {best_perf} outside observed [{lo}, {hi}]"
            );
            // Estimate-based tuners (tuna) may revise their best estimate
            // downward as replicated observations arrive; for everyone
            // else best() is the running maximum and must not regress.
            if *name != "tuna" {
                assert!(
                    best_perf >= last_best,
                    "{name}: best went backwards: {best_perf} < {last_best}"
                );
                last_best = best_perf;
            }
        }
    }
}

#[test]
fn typed_measurements_are_accepted_by_every_tuner() {
    for name in tuner_names() {
        let mut t = fresh(name);
        for i in 0..12u32 {
            let c = t.propose();
            let m = Measurement::point(score(&c))
                .with_ci(0.5 / (i + 1) as f64)
                .with_replications(1 + i % 3);
            t.observe_measurement(m);
        }
        assert_eq!(t.evaluations(), 12);
        assert!(t.best().is_some(), "{name}");
    }
}

#[test]
fn batch_protocol_has_unique_ids_and_out_of_order_observation() {
    for name in tuner_names() {
        let mut t = fresh(name);
        let before = t.evaluations();
        let batch = t.propose_batch();
        assert!(!batch.is_empty(), "{name}: empty batch");
        let mut ids: Vec<u64> = batch.iter().map(|trial| trial.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), batch.len(), "{name}: duplicate trial ids");
        // Observe in reverse order: ids, not arrival order, bind results.
        for trial in batch.iter().rev() {
            t.observe_trial(trial.id, Measurement::point(score(&trial.config)));
        }
        assert_eq!(
            t.evaluations(),
            before + batch.len() as u64,
            "{name}: batch observations must all count"
        );
        // The protocol continues cleanly after a full batch.
        let c = t.propose();
        t.observe(score(&c));
        assert!(t.batch_size() >= 1, "{name}");
    }
}

#[test]
fn reset_restores_a_fresh_start() {
    for name in tuner_names() {
        let mut used = fresh(name);
        for _ in 0..12 {
            let c = used.propose();
            used.observe(score(&c));
        }
        used.reset();
        assert_eq!(used.evaluations(), 0, "{name}: evaluations after reset");
        assert!(used.best().is_none(), "{name}: best after reset");

        // A reset tuner replays exactly like a freshly built one.
        let mut pristine = fresh(name);
        for i in 0..12 {
            let a = used.propose();
            let b = pristine.propose();
            assert_eq!(a, b, "{name}: diverged at post-reset proposal {i}");
            used.observe(score(&a));
            pristine.observe(score(&b));
        }
    }
}

#[test]
fn save_restore_round_trip_is_bit_exact() {
    for name in tuner_names() {
        let mut original = fresh(name);
        for _ in 0..17 {
            let c = original.propose();
            original.observe(score(&c));
        }
        let saved = original.save_state();

        let mut restored = fresh(name);
        restored
            .restore_state(&saved)
            .unwrap_or_else(|e| panic!("{name}: restore failed: {e}"));
        assert_eq!(
            restored.save_state(),
            saved,
            "{name}: save -> restore -> save must be bit-exact"
        );
        assert_eq!(restored.evaluations(), original.evaluations(), "{name}");

        // The restored tuner continues identically to the original.
        for i in 0..25 {
            let a = original.propose();
            let b = restored.propose();
            assert_eq!(a, b, "{name}: diverged at post-restore proposal {i}");
            original.observe(score(&a));
            restored.observe(score(&b));
        }
        assert_eq!(
            restored.save_state(),
            original.save_state(),
            "{name}: states must stay identical after continuing"
        );
    }
}

#[test]
fn restore_rejects_a_foreign_algorithms_state() {
    let saved = {
        let mut t = fresh("bestconfig");
        for _ in 0..5 {
            let c = t.propose();
            t.observe(score(&c));
        }
        t.save_state()
    };
    for name in ["simplex", "classytune", "tuna", "random"] {
        let mut t = fresh(name);
        assert!(
            t.restore_state(&saved).is_err(),
            "{name} must refuse bestconfig state"
        );
    }
}

// -- kill-and-resume through the checkpoint path ---------------------------

const ITERS: u32 = 8;

fn pinned(tuner: &str) -> SessionConfig {
    SessionConfig::new(Topology::single(), Workload::Shopping, 200)
        .plan(IntervalPlan::tiny())
        .pin_seed(true)
        .tuner(tuner)
}

fn strip_wall_ms(line: String) -> String {
    match line.find(",\"wall_ms\":") {
        Some(at) => format!("{}}}", &line[..at]),
        None => line,
    }
}

fn lines_of(sink: &MemorySink) -> Vec<String> {
    sink.records
        .iter()
        .map(|r| strip_wall_ms(r.to_json()))
        .collect()
}

/// Index of the first record of iteration `k` — the resume boundary.
fn boundary(lines: &[String], k: u64) -> usize {
    let tag = format!("\"iteration\":{k},");
    lines
        .iter()
        .position(|l| l.contains(&tag))
        .unwrap_or(lines.len())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tuner-conformance-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct KillSink {
    inner: MemorySink,
    kill_at: u64,
}

impl TraceSink for KillSink {
    fn emit(&mut self, record: &TraceRecord) {
        if let Some(Value::UInt(i)) = record.get("iteration") {
            if *i >= self.kill_at {
                panic!("simulated crash at iteration {i}");
            }
        }
        self.inner.emit(record);
    }
}

fn run_killed<F: FnOnce()>(f: F) {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(f));
    std::panic::set_hook(prev);
    assert!(outcome.is_err(), "the kill sink should have fired");
}

fn policy(dir: &Path, resume: bool) -> CheckpointPolicy {
    CheckpointPolicy::new(dir).every(2).resume(resume)
}

/// Every session tuner — not just the simplex — survives `kill -9`
/// mid-run and resumes byte-identically through the checkpoint path.
#[test]
fn every_session_tuner_kills_and_resumes_byte_identically() {
    for name in ["simplex", "bestconfig", "classytune", "tuna"] {
        let cfg = pinned(name);
        let mut full_sink = MemorySink::new();
        let mut observer = SessionObserver::with_sink(&mut full_sink);
        let full_run = tune_observed(&cfg, TuningMethod::Default, ITERS, &mut observer)
            .unwrap_or_else(|e| panic!("{name}: full run: {e}"));
        let full_lines = lines_of(&full_sink);
        assert!(
            full_lines
                .iter()
                .any(|l| l.contains(&format!("\"name\":\"{name}\""))),
            "{name}: tuner trace records must carry the registry name"
        );

        let k = 5u64;
        let dir = temp_dir(name);
        let ck_cfg = cfg.clone().checkpoint(policy(&dir, false));
        let mut sink = KillSink {
            inner: MemorySink::new(),
            kill_at: k,
        };
        run_killed(|| {
            let mut observer = SessionObserver::with_sink(&mut sink);
            let _ = tune_observed(&ck_cfg, TuningMethod::Default, ITERS, &mut observer);
        });
        let cut = boundary(&full_lines, k);
        assert_eq!(
            lines_of(&sink.inner),
            full_lines[..cut],
            "{name}: pre-kill trace"
        );

        let resume_cfg = cfg.clone().checkpoint(policy(&dir, true));
        let mut resumed_sink = MemorySink::new();
        let mut observer = SessionObserver::with_sink(&mut resumed_sink);
        let run = tune_observed(&resume_cfg, TuningMethod::Default, ITERS, &mut observer)
            .unwrap_or_else(|e| panic!("{name}: resume: {e}"));
        let resumed = lines_of(&resumed_sink);
        assert!(
            resumed[0].contains("\"kind\":\"resume\""),
            "{name}: {}",
            resumed[0]
        );
        assert_eq!(
            &resumed[1..],
            &full_lines[cut..],
            "{name}: post-resume trace"
        );
        assert_eq!(
            run.best_wips.to_bits(),
            full_run.best_wips.to_bits(),
            "{name}: best WIPS must be bit-equal after resume"
        );
        assert_eq!(run.best_config, full_run.best_config, "{name}");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

/// A checkpoint written under one tuner must refuse to resume under
/// another: the tuner name is folded into the session fingerprint.
#[test]
fn resume_under_a_different_tuner_is_refused() {
    let dir = temp_dir("mismatch");
    let cfg = pinned("bestconfig");
    let ck_cfg = cfg.clone().checkpoint(policy(&dir, false));
    let mut sink = KillSink {
        inner: MemorySink::new(),
        kill_at: 4,
    };
    run_killed(|| {
        let mut observer = SessionObserver::with_sink(&mut sink);
        let _ = tune_observed(&ck_cfg, TuningMethod::Default, ITERS, &mut observer);
    });

    let other = pinned("tuna").checkpoint(policy(&dir, true));
    let err = tune_observed(
        &other,
        TuningMethod::Default,
        ITERS,
        &mut SessionObserver::none(),
    )
    .unwrap_err();
    assert!(matches!(err, SessionError::Checkpoint(_)), "{err:?}");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// `--tuner`-style selection by name flows through the session layer,
/// and an unknown name is a typed error listing the registry.
#[test]
fn sessions_accept_every_registered_tuner_and_reject_unknown_names() {
    for name in tuner_names() {
        let cfg = pinned(name);
        let run =
            tune(&cfg, TuningMethod::Default, 2).unwrap_or_else(|e| panic!("{name}: session: {e}"));
        assert_eq!(run.records.len(), 2, "{name}");
    }
    let err = tune(&pinned("magic"), TuningMethod::Default, 2).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("unknown tuner 'magic'"), "{msg}");
    for name in tuner_names() {
        assert!(msg.contains(name), "error must list '{name}': {msg}");
    }
}
