//! Chaos conformance suite for the resilience policy stack.
//!
//! Contract: every registered tuner, driven through every plan in the
//! chaos library ([`faults::library`]), must **finish or degrade
//! gracefully** — never panic, never hang, never produce a non-finite
//! or negative throughput — and must do so deterministically. Killing a
//! chaos session at a policy-transition boundary (an iteration where
//! the stack retried, tripped, timed out, or degraded) and resuming it
//! must reproduce the uninterrupted run byte-for-byte: the policy state
//! (breaker counts, retry RNG position, fallback best, simulated clock)
//! restores from the journal without re-burning a single RNG draw.

use ah_webtune::faults::library;
use ah_webtune::prelude::*;
use obs::Value;
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;

const ITERS: u32 = 4;

fn window_s() -> f64 {
    IntervalPlan::tiny().total().as_secs_f64()
}

fn chaos_cfg(plan: FaultPlan, tuner: &str) -> SessionConfig {
    SessionConfig::new(
        Topology::tiers(1, 2, 1).expect("topology"),
        Workload::Shopping,
        150,
    )
    .plan(IntervalPlan::tiny())
    .pin_seed(true)
    .tuner(tuner)
    .fault_plan(plan)
}

/// The hardened policy profile the conformance contract runs under:
/// every optional layer is live.
fn chaos_settings() -> ResilienceSettings {
    ResilienceSettings {
        breaker_threshold: 2,
        breaker_half_open_after: Some(2),
        timeout_s: Some(window_s() * 2.0),
        bulkhead: Some(2),
        degrade_to_best: true,
        ..Default::default()
    }
}

/// Finish-or-degrade: the full tuner × chaos-plan matrix completes with
/// one finite, non-negative record per iteration. Degraded iterations
/// never report more than the best throughput actually measured.
#[test]
fn every_tuner_survives_every_chaos_plan() {
    for tuner in harmony::registry::tuner_names() {
        for chaos in library::all(window_s(), 4) {
            let cfg = chaos_cfg(chaos.plan.clone(), tuner);
            let run = run_resilient_session(&cfg, &chaos_settings(), ITERS)
                .unwrap_or_else(|e| panic!("{tuner} × {}: {e:?}", chaos.name));
            assert_eq!(
                run.records.len(),
                ITERS as usize,
                "{tuner} × {} must finish every iteration",
                chaos.name
            );
            for r in &run.records {
                assert!(
                    r.wips.is_finite() && r.wips >= 0.0,
                    "{tuner} × {}: bad wips {r:?}",
                    chaos.name
                );
            }
            assert!(run.best_wips.is_finite() && run.best_wips >= 0.0);
            for rec in &run.recoveries {
                if rec.action == "degraded" {
                    assert!(
                        rec.wips <= run.best_wips + 1e-9,
                        "{tuner} × {}: degraded above best-known: {rec:?} vs {}",
                        chaos.name,
                        run.best_wips
                    );
                }
            }
        }
    }
}

/// Determinism: the same tuner under the same chaos plan reproduces the
/// run bit-for-bit — WIPS series, recovery sequence, and node moves.
#[test]
fn chaos_runs_are_deterministic() {
    let mayhem = library::all(window_s(), 4)
        .into_iter()
        .find(|c| c.name == "mixed-mayhem")
        .expect("library has mixed-mayhem");
    for tuner in harmony::registry::tuner_names() {
        let cfg = chaos_cfg(mayhem.plan.clone(), tuner);
        let a = run_resilient_session(&cfg, &chaos_settings(), ITERS).expect("first run");
        let b = run_resilient_session(&cfg, &chaos_settings(), ITERS).expect("second run");
        let bits =
            |r: &ResilientRun| -> Vec<u64> { r.records.iter().map(|x| x.wips.to_bits()).collect() };
        assert_eq!(bits(&a), bits(&b), "{tuner}: WIPS series must be bit-equal");
        let actions = |r: &ResilientRun| -> Vec<(u32, &str, u32, u64)> {
            r.recoveries
                .iter()
                .map(|x| (x.iteration, x.action, x.attempt, x.delay_s.to_bits()))
                .collect()
        };
        assert_eq!(actions(&a), actions(&b), "{tuner}: recovery sequence");
        assert_eq!(a.reconfigs.len(), b.reconfigs.len(), "{tuner}: node moves");
        assert_eq!(a.best_wips.to_bits(), b.best_wips.to_bits(), "{tuner}");
    }
}

// --- kill-and-resume at policy-transition boundaries -------------------

fn strip_wall_ms(line: String) -> String {
    match line.find(",\"wall_ms\":") {
        Some(at) => format!("{}}}", &line[..at]),
        None => line,
    }
}

fn lines_of(sink: &MemorySink) -> Vec<String> {
    sink.records
        .iter()
        .map(|r| strip_wall_ms(r.to_json()))
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "chaos-conformance-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Simulated `kill -9`: panics on the first trace record of iteration
/// `kill_at`, leaving journal and trace covering iterations before it.
struct KillSink {
    inner: MemorySink,
    kill_at: u64,
}

impl TraceSink for KillSink {
    fn emit(&mut self, record: &TraceRecord) {
        if let Some(Value::UInt(i)) = record.get("iteration") {
            if *i >= self.kill_at {
                panic!("simulated crash at iteration {i}");
            }
        }
        self.inner.emit(record);
    }
}

fn run_killed<F: FnOnce()>(f: F) {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(f));
    std::panic::set_hook(prev);
    assert!(outcome.is_err(), "the kill sink should have fired");
}

/// Kill each chaos plan's session right after every iteration on which
/// the policy stack acted (a retry, trip, timeout, or degradation —
/// i.e. at a policy-transition boundary) and resume: the spliced trace
/// must be byte-identical to the uninterrupted one and the final state
/// bit-equal. No jitter draw is ever re-burned on restore.
#[test]
fn kill_and_resume_is_byte_identical_at_policy_transitions() {
    let settings = chaos_settings();
    for chaos in library::all(window_s(), 4) {
        let cfg = chaos_cfg(chaos.plan.clone(), "simplex");

        kill_resume_roundtrip(chaos.name, &cfg, &settings);
    }
}

/// Run the kill/resume byte-identity contract for one (config, settings)
/// pair: the boundaries are every iteration after which the stack acted
/// or (in detector mode) membership transitioned — the latter are
/// exactly the mid-suspicion boundaries where φ windows, membership
/// streaks, and pending arrivals must restore bit-exactly.
fn kill_resume_roundtrip(name: &str, cfg: &SessionConfig, settings: &ResilienceSettings) {
    let mut full_sink = MemorySink::new();
    let mut observer = SessionObserver::with_sink(&mut full_sink);
    let full_run = run_resilient_session_observed(cfg, settings, ITERS, &mut observer)
        .expect("uninterrupted chaos run");
    let full_lines = lines_of(&full_sink);

    // Resume right after each iteration where the stack acted or the
    // detector transitioned; the next iteration start is the kill point.
    let mut boundaries: Vec<u64> = full_run
        .recoveries
        .iter()
        .map(|r| r.iteration as u64 + 1)
        .chain(full_run.detections.iter().map(|d| d.iteration as u64 + 1))
        .filter(|&k| k < ITERS as u64)
        .collect();
    boundaries.sort_unstable();
    boundaries.dedup();
    assert!(
        !boundaries.is_empty(),
        "{name}: chaos plan must force at least one policy transition: {:?}",
        full_run.recoveries
    );

    for k in boundaries {
        let dir = temp_dir(&format!("{name}-{k}"));
        let ck = cfg.clone().checkpoint(CheckpointPolicy::new(&dir).every(2));
        let mut sink = KillSink {
            inner: MemorySink::new(),
            kill_at: k,
        };
        run_killed(|| {
            let mut observer = SessionObserver::with_sink(&mut sink);
            let _ = run_resilient_session_observed(&ck, settings, ITERS, &mut observer);
        });
        let pre = lines_of(&sink.inner);
        assert_eq!(pre, full_lines[..pre.len()], "{name} k={k}: pre-kill trace");

        let resume_cfg = cfg
            .clone()
            .checkpoint(CheckpointPolicy::new(&dir).every(2).resume(true));
        let mut resumed_sink = MemorySink::new();
        let mut observer = SessionObserver::with_sink(&mut resumed_sink);
        let run = run_resilient_session_observed(&resume_cfg, settings, ITERS, &mut observer)
            .expect("resumed chaos run");
        let resumed = lines_of(&resumed_sink);
        assert!(resumed[0].contains("\"kind\":\"resume\""), "{}", resumed[0]);
        assert_eq!(
            &resumed[1..],
            &full_lines[pre.len()..],
            "{name} k={k}: post-resume trace must splice byte-identically"
        );
        assert_eq!(run.best_wips.to_bits(), full_run.best_wips.to_bits());
        assert_eq!(run.final_topology, full_run.final_topology);
        assert_eq!(run.records.len(), full_run.records.len());
        assert_eq!(run.recoveries.len(), full_run.recoveries.len());
        assert_eq!(run.reconfigs.len(), full_run.reconfigs.len());
        assert_eq!(run.detections, full_run.detections, "{name} k={k}");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

// --- detector-mode conformance -----------------------------------------

/// The chaos profile with the failure detector on: reconfiguration is
/// gated on detected membership instead of the injector oracle.
fn detector_settings() -> ResilienceSettings {
    ResilienceSettings {
        detector: Some(DetectorConfig::default()),
        ..chaos_settings()
    }
}

/// Finish-or-degrade holds for every tuner × chaos plan with the
/// detector driving reconfiguration, and every detection the sessions
/// report is well-formed (known states, finite φ, in-range node).
#[test]
fn every_tuner_survives_every_chaos_plan_in_detector_mode() {
    let nodes = Topology::tiers(1, 2, 1).expect("topology").len();
    for tuner in harmony::registry::tuner_names() {
        for chaos in library::all(window_s(), 4) {
            let cfg = chaos_cfg(chaos.plan.clone(), tuner);
            let run = run_resilient_session(&cfg, &detector_settings(), ITERS)
                .unwrap_or_else(|e| panic!("{tuner} × {}: {e:?}", chaos.name));
            assert_eq!(
                run.records.len(),
                ITERS as usize,
                "{tuner} × {}",
                chaos.name
            );
            for r in &run.records {
                assert!(
                    r.wips.is_finite() && r.wips >= 0.0,
                    "{tuner} × {}: bad wips {r:?}",
                    chaos.name
                );
            }
            for d in &run.detections {
                assert!(d.node < nodes, "{tuner} × {}: {d:?}", chaos.name);
                assert!(d.phi.is_finite() && d.phi >= 0.0, "{d:?}");
                assert!(
                    ["up", "suspect", "down"].contains(&d.from)
                        && ["up", "suspect", "down"].contains(&d.to),
                    "{d:?}"
                );
            }
        }
    }
}

/// Detector-mode determinism: detections, WIPS series, and node moves
/// reproduce bit-for-bit across runs for every tuner.
#[test]
fn detector_chaos_runs_are_deterministic() {
    let mayhem = library::all(window_s(), 4)
        .into_iter()
        .find(|c| c.name == "mixed-mayhem")
        .expect("library has mixed-mayhem");
    for tuner in harmony::registry::tuner_names() {
        let cfg = chaos_cfg(mayhem.plan.clone(), tuner);
        let a = run_resilient_session(&cfg, &detector_settings(), ITERS).expect("first run");
        let b = run_resilient_session(&cfg, &detector_settings(), ITERS).expect("second run");
        assert_eq!(a.detections, b.detections, "{tuner}: detections");
        let bits =
            |r: &ResilientRun| -> Vec<u64> { r.records.iter().map(|x| x.wips.to_bits()).collect() };
        assert_eq!(bits(&a), bits(&b), "{tuner}: WIPS series must be bit-equal");
        assert_eq!(a.reconfigs.len(), b.reconfigs.len(), "{tuner}: node moves");
        assert_eq!(a.best_wips.to_bits(), b.best_wips.to_bits(), "{tuner}");
    }
}

/// Kill-and-resume byte-identity with the detector on, across the chaos
/// library — every detection iteration is a kill boundary, so sessions
/// are killed mid-suspicion (estimator windows part-filled, membership
/// streaks in flight, stalled beats pending) and must splice exactly.
#[test]
fn detector_kill_and_resume_is_byte_identical_mid_suspicion() {
    let settings = detector_settings();
    for chaos in library::all(window_s(), 4) {
        let cfg = chaos_cfg(chaos.plan.clone(), "simplex");
        kill_resume_roundtrip(&format!("det-{}", chaos.name), &cfg, &settings);
    }
    // And one plan built to straddle a boundary mid-confirmation: the
    // crash lands two beats before the window ends, so at the kill point
    // the node is Suspect but not yet confirmed Down.
    let w = window_s();
    let cfg = chaos_cfg(FaultPlan::new().crash(2.0 * w - 2.0, 1), "simplex");
    let run = run_resilient_session(&cfg, &settings, ITERS).expect("straddle run");
    assert!(
        run.detections
            .iter()
            .any(|d| d.to == "suspect" && d.iteration == 1)
            && run
                .detections
                .iter()
                .any(|d| d.is_down() && d.iteration == 2),
        "suspicion must straddle the boundary: {:?}",
        run.detections
    );
    kill_resume_roundtrip("det-straddle", &cfg, &settings);
}
