//! End-to-end integration: Active Harmony tuning the simulated TPC-W
//! cluster through the full public API (facade crate).

use ah_webtune::cluster::config::{ClusterConfig, Topology};
use ah_webtune::harmony::strategy::TuningMethod;
use ah_webtune::orchestrator::session::{tune, tune_default_method, SessionConfig};
use ah_webtune::tpcw::metrics::IntervalPlan;
use ah_webtune::tpcw::mix::Workload;

fn smoke_session(workload: Workload, pop: u32) -> SessionConfig {
    SessionConfig::new(Topology::single(), workload, pop).plan(IntervalPlan::tiny())
}

#[test]
fn tuning_loop_runs_and_never_crashes_across_methods() {
    for method in TuningMethod::ALL {
        let mut cfg = smoke_session(Workload::Shopping, 250);
        cfg.topology = Topology::tiers(2, 2, 2).unwrap();
        let run = tune(&cfg, method, 6).expect("tuning session");
        assert_eq!(run.records.len(), 6, "{method}");
        assert!(run.best_wips > 0.0, "{method}");
        assert!(run
            .records
            .iter()
            .all(|r| r.wips.is_finite() && r.wips >= 0.0));
    }
}

#[test]
fn full_stack_is_deterministic_for_pinned_seed() {
    let cfg = smoke_session(Workload::Browsing, 200).pin_seed(true);
    let a = tune_default_method(&cfg, 5).expect("run a");
    let b = tune_default_method(&cfg, 5).expect("run b");
    assert_eq!(a.wips_series(), b.wips_series());
    assert_eq!(a.best_config, b.best_config);
}

#[test]
fn tuner_proposals_always_yield_valid_cluster_configs() {
    // Drive 20 iterations and validate every evaluated configuration
    // against the topology (roles and bounds).
    let cfg = smoke_session(Workload::Ordering, 200);
    let run = tune_default_method(&cfg, 20).expect("tuning session");
    // The best config must be buildable and apply cleanly.
    let rebuilt = ClusterConfig::new(&cfg.topology, run.best_config.nodes().to_vec());
    assert!(rebuilt.is_ok());
}

#[test]
fn default_baseline_matches_none_method() {
    let cfg = smoke_session(Workload::Shopping, 200).pin_seed(true);
    let (baseline, _) = cfg.measure_default(1);
    let run = tune(&cfg, TuningMethod::None, 1).expect("tuning session");
    assert!((run.records[0].wips - baseline).abs() < 1e-9);
}

#[test]
fn partitioned_lines_account_for_all_throughput() {
    let cfg = smoke_session(Workload::Shopping, 300).topology(Topology::tiers(2, 2, 2).unwrap());
    let run = tune(&cfg, TuningMethod::Partitioning, 4).expect("tuning session");
    for rec in &run.records {
        let sum: f64 = rec.line_wips.iter().sum();
        assert!(
            (sum - rec.wips).abs() < 1e-6,
            "line WIPS must sum to total: {sum} vs {}",
            rec.wips
        );
    }
}

#[test]
fn workload_pressure_ordering_hits_db_hardest() {
    // Cross-crate sanity: the workload mix (tpcw) shapes tier load
    // (cluster) as the paper describes.
    let browsing = smoke_session(Workload::Browsing, 400)
        .evaluate(ClusterConfig::defaults(&Topology::single()), 0);
    let ordering = smoke_session(Workload::Ordering, 400)
        .evaluate(ClusterConfig::defaults(&Topology::single()), 0);
    assert!(ordering.node_utilization[2].cpu > browsing.node_utilization[2].cpu);
    assert!(browsing.node_utilization[0].disk > ordering.node_utilization[0].disk);
}
