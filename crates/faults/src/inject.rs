//! Projecting a fault plan onto measurement windows.

use crate::health::{Health, Slowdown};
use crate::plan::{FaultEvent, FaultKind, FaultPlan};
use simkit::rng::SimRng;
use simkit::time::{SimDuration, SimTime};

/// A health transition inside one measurement window, expressed as an
/// offset from the window's start so the DES can schedule it directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthChange {
    pub after: SimDuration,
    pub node: usize,
    pub health: Health,
}

/// The health schedule one simulation run applies: initial per-node
/// states plus in-run transitions. Attached to a `ClusterScenario`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HealthTimeline {
    pub initial: Vec<Health>,
    pub changes: Vec<HealthChange>,
}

impl HealthTimeline {
    /// True when the timeline does nothing (all nodes up, no changes) —
    /// callers can drop it to keep the no-fault path byte-identical.
    pub fn is_trivial(&self) -> bool {
        self.changes.is_empty() && self.initial.iter().all(Health::is_up)
    }
}

/// Everything a fault plan does to one measurement window `[start, end)`.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowFaults {
    /// Node health at the window's start (events strictly before `start`).
    pub initial: Vec<Health>,
    /// Transitions inside the window, sorted by offset.
    pub changes: Vec<HealthChange>,
    /// Product of noise-spike factors landing in the window (1.0 = none).
    pub noise: f64,
    /// The raw in-window events, for tracing.
    pub events: Vec<FaultEvent>,
}

impl WindowFaults {
    /// The timeline to attach to the scenario for this window.
    pub fn timeline(&self) -> HealthTimeline {
        HealthTimeline {
            initial: self.initial.clone(),
            changes: self.changes.clone(),
        }
    }

    pub fn is_trivial(&self) -> bool {
        self.changes.is_empty() && self.noise == 1.0 && self.initial.iter().all(Health::is_up)
    }

    /// Nodes that transition to `Down` inside the window.
    pub fn crashes(&self) -> Vec<usize> {
        self.changes
            .iter()
            .filter(|c| c.health.is_down())
            .map(|c| c.node)
            .collect()
    }

    /// The first crash whose offset falls in `[from, to)`, if any.
    pub fn crash_in(&self, from: SimDuration, to: SimDuration) -> Option<(usize, SimDuration)> {
        self.changes
            .iter()
            .find(|c| c.health.is_down() && c.after >= from && c.after < to)
            .map(|c| (c.node, c.after))
    }
}

/// Per-node fold state while replaying the schedule.
#[derive(Debug, Clone, Copy)]
struct NodeFold {
    down: bool,
    cpu: f64,
    disk: f64,
    nic: f64,
}

impl NodeFold {
    const PRISTINE: NodeFold = NodeFold {
        down: false,
        cpu: 1.0,
        disk: 1.0,
        nic: 1.0,
    };

    fn apply(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::Crash => self.down = true,
            FaultKind::Restart => *self = NodeFold::PRISTINE,
            FaultKind::CpuSlow(f) => self.cpu = f,
            FaultKind::DiskSlow(f) => self.disk = f,
            FaultKind::NicDegrade(f) => self.nic = f,
            FaultKind::NoiseSpike(_) => {}
        }
    }

    fn health(&self) -> Health {
        if self.down {
            Health::Down
        } else if self.cpu > 1.0 || self.disk > 1.0 || self.nic > 1.0 {
            Health::Degraded(Slowdown {
                cpu: self.cpu,
                disk: self.disk,
                nic: self.nic,
            })
        } else {
            Health::Up
        }
    }
}

/// A stateless projection of one plan + seed onto the session timeline.
/// Replaying the same window twice yields identical faults, which is what
/// makes retries and resumed sessions deterministic.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    seed: u64,
}

impl FaultInjector {
    pub fn new(plan: &FaultPlan, seed: u64) -> Self {
        FaultInjector {
            plan: plan.clone(),
            seed,
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn fold_until(&self, t: SimTime, nodes: usize) -> Vec<NodeFold> {
        let mut folds = vec![NodeFold::PRISTINE; nodes];
        for e in self.plan.events() {
            if e.at >= t {
                break;
            }
            if let Some(n) = e.node {
                if n < nodes {
                    folds[n].apply(e.kind);
                }
            }
        }
        folds
    }

    /// Node healths once every event strictly before `t` has applied.
    pub fn health_at(&self, t: SimTime, nodes: usize) -> Vec<Health> {
        self.fold_until(t, nodes)
            .iter()
            .map(NodeFold::health)
            .collect()
    }

    /// Project the plan onto the measurement window `[start, end)`.
    pub fn window(&self, start: SimTime, end: SimTime, nodes: usize) -> WindowFaults {
        let mut folds = self.fold_until(start, nodes);
        let initial: Vec<Health> = folds.iter().map(NodeFold::health).collect();
        let mut changes = Vec::new();
        let mut noise = 1.0;
        let mut events = Vec::new();
        for e in self.plan.events() {
            if e.at < start {
                continue;
            }
            if e.at >= end {
                break;
            }
            events.push(*e);
            match e.node {
                Some(n) if n < nodes => {
                    folds[n].apply(e.kind);
                    changes.push(HealthChange {
                        after: e.at.since(start),
                        node: n,
                        health: folds[n].health(),
                    });
                }
                _ => {
                    if let FaultKind::NoiseSpike(f) = e.kind {
                        noise *= f;
                    }
                }
            }
        }
        WindowFaults {
            initial,
            changes,
            noise,
            events,
        }
    }

    /// Deterministic multiplicative perturbation for a noisy window:
    /// a factor in `[1/noise, noise]` drawn from the injector seed and the
    /// window start, so the same window re-measured at a *different*
    /// session time draws a fresh value while an exact replay repeats it.
    pub fn wips_noise(&self, window_start: SimTime, noise: f64) -> f64 {
        if noise <= 1.0 {
            return 1.0;
        }
        let mut rng = SimRng::new(self.seed ^ window_start.as_micros().rotate_left(17));
        let u = rng.next_f64() * 2.0 - 1.0;
        noise.powf(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan::new()
            .crash(30.0, 3)
            .restart(55.0, 3)
            .cpu_slow(10.0, 1, 2.5)
            .noise_spike(40.0, 4.0)
    }

    #[test]
    fn health_folds_in_order() {
        let inj = FaultInjector::new(&plan(), 1);
        let h = inj.health_at(SimTime::from_secs(5), 5);
        assert!(h.iter().all(Health::is_up));
        let h = inj.health_at(SimTime::from_secs(31), 5);
        assert!(h[3].is_down());
        assert_eq!(h[1].cpu_factor(), 2.5);
        let h = inj.health_at(SimTime::from_secs(56), 5);
        assert!(h[3].is_up(), "restart heals the crash");
    }

    #[test]
    fn window_splits_initial_and_changes() {
        let inj = FaultInjector::new(&plan(), 1);
        let w = inj.window(SimTime::from_secs(20), SimTime::from_secs(50), 5);
        assert_eq!(
            w.initial[1].cpu_factor(),
            2.5,
            "pre-window slowdown is initial"
        );
        assert_eq!(w.changes.len(), 1);
        assert_eq!(
            w.changes[0],
            HealthChange {
                after: SimDuration::from_secs(10),
                node: 3,
                health: Health::Down
            }
        );
        assert_eq!(w.noise, 4.0);
        assert_eq!(w.crashes(), vec![3]);
        assert_eq!(
            w.crash_in(SimDuration::from_secs(5), SimDuration::from_secs(15)),
            Some((3, SimDuration::from_secs(10)))
        );
        assert_eq!(
            w.crash_in(SimDuration::ZERO, SimDuration::from_secs(5)),
            None
        );
    }

    #[test]
    fn empty_plan_windows_are_trivial() {
        let inj = FaultInjector::new(&FaultPlan::new(), 9);
        let w = inj.window(SimTime::ZERO, SimTime::from_secs(30), 4);
        assert!(w.is_trivial());
        assert!(w.timeline().is_trivial());
    }

    #[test]
    fn projection_is_deterministic() {
        let a = FaultInjector::new(&plan(), 7);
        let b = FaultInjector::new(&plan(), 7);
        let (s, e) = (SimTime::from_secs(25), SimTime::from_secs(60));
        assert_eq!(a.window(s, e, 5), b.window(s, e, 5));
        assert_eq!(a.wips_noise(s, 4.0), b.wips_noise(s, 4.0));
    }

    #[test]
    fn noise_draw_varies_with_window_but_stays_bounded() {
        let inj = FaultInjector::new(&plan(), 7);
        let a = inj.wips_noise(SimTime::from_secs(25), 4.0);
        let b = inj.wips_noise(SimTime::from_secs(26), 4.0);
        assert_ne!(a, b);
        for v in [a, b] {
            assert!((0.25..=4.0).contains(&v), "{v} outside [1/4, 4]");
        }
        assert_eq!(inj.wips_noise(SimTime::from_secs(25), 1.0), 1.0);
    }
}
