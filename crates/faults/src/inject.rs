//! Projecting a fault plan onto measurement windows.

use crate::health::{Health, Slowdown};
use crate::plan::{FaultEvent, FaultKind, FaultPlan};
use simkit::rng::SimRng;
use simkit::time::{SimDuration, SimTime};

/// A health transition inside one measurement window, expressed as an
/// offset from the window's start so the DES can schedule it directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthChange {
    pub after: SimDuration,
    pub node: usize,
    pub health: Health,
}

/// The health schedule one simulation run applies: initial per-node
/// states plus in-run transitions. Attached to a `ClusterScenario`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HealthTimeline {
    pub initial: Vec<Health>,
    pub changes: Vec<HealthChange>,
}

impl HealthTimeline {
    /// True when the timeline does nothing (all nodes up, no changes) —
    /// callers can drop it to keep the no-fault path byte-identical.
    pub fn is_trivial(&self) -> bool {
        self.changes.is_empty() && self.initial.iter().all(Health::is_up)
    }
}

/// Everything a fault plan does to one measurement window `[start, end)`.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowFaults {
    /// Node health at the window's start (events strictly before `start`).
    pub initial: Vec<Health>,
    /// Transitions inside the window, sorted by offset. Includes the
    /// implicit recoveries that end a stall.
    pub changes: Vec<HealthChange>,
    /// Product of noise-spike factors landing in the window (1.0 = none).
    pub noise: f64,
    /// The raw in-window events, for tracing. Stall *ends* are implicit
    /// and do not appear here.
    pub events: Vec<FaultEvent>,
    /// Offsets of `Crash` events inside the window. Stalls make nodes
    /// `Down` via `changes`, but only a crash invalidates the in-flight
    /// measurement and triggers reconfiguration — this list keeps
    /// `crashes()`/`crash_in()` crash-only.
    pub crash_offsets: Vec<(usize, SimDuration)>,
    /// Total stalled seconds overlapping the window, summed across stall
    /// events. The timeout policy charges this against its budget: a
    /// stalled node makes the evaluation *take longer*, it does not kill
    /// the measurement.
    pub stall_s: f64,
}

impl WindowFaults {
    /// The timeline to attach to the scenario for this window.
    pub fn timeline(&self) -> HealthTimeline {
        HealthTimeline {
            initial: self.initial.clone(),
            changes: self.changes.clone(),
        }
    }

    pub fn is_trivial(&self) -> bool {
        self.changes.is_empty() && self.noise == 1.0 && self.initial.iter().all(Health::is_up)
    }

    /// Nodes whose `Crash` event lands inside the window. Stalls are
    /// excluded: a stalled node recovers on its own and must not be
    /// treated as needing a restart.
    pub fn crashes(&self) -> Vec<usize> {
        self.crash_offsets.iter().map(|&(n, _)| n).collect()
    }

    /// The first crash whose offset falls in `[from, to)`, if any.
    pub fn crash_in(&self, from: SimDuration, to: SimDuration) -> Option<(usize, SimDuration)> {
        self.crash_offsets
            .iter()
            .find(|&&(_, after)| after >= from && after < to)
            .map(|&(n, after)| (n, after))
    }
}

/// One entry in the expanded schedule: either a plan event or the
/// implicit end of a stall (which has no raw event of its own).
#[derive(Debug, Clone, Copy)]
enum Action {
    Kind(FaultKind),
    StallEnd,
}

#[derive(Debug, Clone, Copy)]
struct Step {
    at: SimTime,
    node: Option<usize>,
    action: Action,
    raw: Option<FaultEvent>,
}

/// Per-node fold state while replaying the schedule.
#[derive(Debug, Clone, Copy)]
struct NodeFold {
    down: bool,
    stalled: bool,
    cpu: f64,
    disk: f64,
    nic: f64,
}

impl NodeFold {
    const PRISTINE: NodeFold = NodeFold {
        down: false,
        stalled: false,
        cpu: 1.0,
        disk: 1.0,
        nic: 1.0,
    };

    fn apply(&mut self, action: Action) {
        match action {
            Action::Kind(FaultKind::Crash) => self.down = true,
            Action::Kind(FaultKind::Restart) => *self = NodeFold::PRISTINE,
            Action::Kind(FaultKind::CpuSlow(f)) => self.cpu = f,
            Action::Kind(FaultKind::DiskSlow(f)) => self.disk = f,
            Action::Kind(FaultKind::NicDegrade(f)) => self.nic = f,
            Action::Kind(FaultKind::NoiseSpike(_)) => {}
            Action::Kind(FaultKind::Stall(_)) => self.stalled = true,
            // Only the stall lifts: a node that crashed mid-stall stays
            // down until an explicit restart.
            Action::StallEnd => self.stalled = false,
        }
    }

    fn health(&self) -> Health {
        if self.down || self.stalled {
            Health::Down
        } else if self.cpu > 1.0 || self.disk > 1.0 || self.nic > 1.0 {
            Health::Degraded(Slowdown {
                cpu: self.cpu,
                disk: self.disk,
                nic: self.nic,
            })
        } else {
            Health::Up
        }
    }
}

/// A node's raw operational state at an instant, as the monitoring plane
/// sees it. [`Health`] collapses crashes and stalls into `Down`, but a
/// failure detector needs the distinction: a crash silences heartbeats
/// outright, a stall only *defers* them until `stalled_until`, and
/// slowdowns merely stretch their latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeStatus {
    /// Crashed and not yet restarted: heartbeats stop entirely.
    pub crashed: bool,
    /// Mid-stall: heartbeats due before this instant arrive, late, when
    /// the stall lifts. Overlapping stalls merge to the latest end.
    pub stalled_until: Option<SimTime>,
    /// Resource degradation factors (1.0 = nominal) — these jitter
    /// heartbeat latency without ever suppressing the beat.
    pub slowdown: Slowdown,
}

impl NodeStatus {
    pub const UP: NodeStatus = NodeStatus {
        crashed: false,
        stalled_until: None,
        slowdown: Slowdown {
            cpu: 1.0,
            disk: 1.0,
            nic: 1.0,
        },
    };
}

/// A stateless projection of one plan + seed onto the session timeline.
/// Replaying the same window twice yields identical faults, which is what
/// makes retries and resumed sessions deterministic.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    seed: u64,
}

impl FaultInjector {
    pub fn new(plan: &FaultPlan, seed: u64) -> Self {
        FaultInjector {
            plan: plan.clone(),
            seed,
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan expanded into a sorted step schedule: every event, plus an
    /// implicit `StallEnd` step `duration_s` after each stall.
    fn steps(&self) -> Vec<Step> {
        let mut steps: Vec<Step> = Vec::with_capacity(self.plan.events().len());
        for e in self.plan.events() {
            steps.push(Step {
                at: e.at,
                node: e.node,
                action: Action::Kind(e.kind),
                raw: Some(*e),
            });
            if let Some(d) = e.kind.stall_duration_s() {
                steps.push(Step {
                    at: e
                        .at
                        .checked_add(SimDuration::from_secs_f64(d))
                        .unwrap_or(SimTime::MAX),
                    node: e.node,
                    action: Action::StallEnd,
                    raw: None,
                });
            }
        }
        // Stable: simultaneous steps keep plan order, ends after starts.
        steps.sort_by_key(|s| s.at);
        steps
    }

    fn fold_until(&self, t: SimTime, nodes: usize) -> Vec<NodeFold> {
        let mut folds = vec![NodeFold::PRISTINE; nodes];
        for s in self.steps() {
            if s.at >= t {
                break;
            }
            if let Some(n) = s.node {
                if n < nodes {
                    folds[n].apply(s.action);
                }
            }
        }
        folds
    }

    /// Node healths once every event strictly before `t` has applied.
    pub fn health_at(&self, t: SimTime, nodes: usize) -> Vec<Health> {
        self.fold_until(t, nodes)
            .iter()
            .map(NodeFold::health)
            .collect()
    }

    /// Raw node statuses once every event strictly before `t` has
    /// applied — the monitoring plane's ground truth. Unlike
    /// [`FaultInjector::health_at`], crashes and stalls stay distinct and
    /// a stall carries its end time, so heartbeat arrivals can be derived
    /// (stopped vs deferred vs jittered).
    pub fn status_at(&self, t: SimTime, nodes: usize) -> Vec<NodeStatus> {
        let mut statuses = vec![NodeStatus::UP; nodes];
        for s in self.steps() {
            if s.at >= t {
                break;
            }
            let Some(n) = s.node else { continue };
            if n >= nodes {
                continue;
            }
            let st = &mut statuses[n];
            match s.action {
                Action::Kind(FaultKind::Crash) => st.crashed = true,
                Action::Kind(FaultKind::Restart) => *st = NodeStatus::UP,
                Action::Kind(FaultKind::CpuSlow(f)) => st.slowdown.cpu = f,
                Action::Kind(FaultKind::DiskSlow(f)) => st.slowdown.disk = f,
                Action::Kind(FaultKind::NicDegrade(f)) => st.slowdown.nic = f,
                Action::Kind(FaultKind::NoiseSpike(_)) => {}
                Action::Kind(FaultKind::Stall(d)) => {
                    let until =
                        s.at.checked_add(SimDuration::from_secs_f64(d))
                            .unwrap_or(SimTime::MAX);
                    st.stalled_until = Some(match st.stalled_until {
                        Some(u) => u.max(until),
                        None => until,
                    });
                }
                // The merged `stalled_until` already encodes every end;
                // expired stalls are swept below.
                Action::StallEnd => {}
            }
        }
        for st in &mut statuses {
            if matches!(st.stalled_until, Some(u) if u < t) {
                st.stalled_until = None;
            }
        }
        statuses
    }

    /// Project the plan onto the measurement window `[start, end)`.
    pub fn window(&self, start: SimTime, end: SimTime, nodes: usize) -> WindowFaults {
        let mut folds = self.fold_until(start, nodes);
        let initial: Vec<Health> = folds.iter().map(NodeFold::health).collect();
        let mut changes = Vec::new();
        let mut noise = 1.0;
        let mut events = Vec::new();
        let mut crash_offsets = Vec::new();
        for s in self.steps() {
            if s.at < start {
                continue;
            }
            if s.at >= end {
                break;
            }
            if let Some(e) = s.raw {
                events.push(e);
            }
            match s.node {
                Some(n) if n < nodes => {
                    folds[n].apply(s.action);
                    changes.push(HealthChange {
                        after: s.at.since(start),
                        node: n,
                        health: folds[n].health(),
                    });
                    if matches!(s.action, Action::Kind(FaultKind::Crash)) {
                        crash_offsets.push((n, s.at.since(start)));
                    }
                }
                _ => {
                    if let Action::Kind(FaultKind::NoiseSpike(f)) = s.action {
                        noise *= f;
                    }
                }
            }
        }
        WindowFaults {
            initial,
            changes,
            noise,
            events,
            crash_offsets,
            stall_s: self.stall_overlap_s(start, end, nodes),
        }
    }

    /// Seconds of stall overlapping `[start, end)`, summed over stall
    /// events (concurrent stalls on different nodes each count).
    fn stall_overlap_s(&self, start: SimTime, end: SimTime, nodes: usize) -> f64 {
        let mut total = 0.0;
        for e in self.plan.events() {
            let Some(d) = e.kind.stall_duration_s() else {
                continue;
            };
            if !matches!(e.node, Some(n) if n < nodes) {
                continue;
            }
            let stall_end =
                e.at.checked_add(SimDuration::from_secs_f64(d))
                    .unwrap_or(SimTime::MAX);
            let lo = e.at.max(start);
            let hi = stall_end.min(end);
            if hi > lo {
                total += hi.since(lo).as_secs_f64();
            }
        }
        total
    }

    /// Deterministic multiplicative perturbation for a noisy window:
    /// a factor in `[1/noise, noise]` drawn from the injector seed and the
    /// window start, so the same window re-measured at a *different*
    /// session time draws a fresh value while an exact replay repeats it.
    pub fn wips_noise(&self, window_start: SimTime, noise: f64) -> f64 {
        if noise <= 1.0 {
            return 1.0;
        }
        let mut rng = SimRng::new(self.seed ^ window_start.as_micros().rotate_left(17));
        let u = rng.next_f64() * 2.0 - 1.0;
        noise.powf(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan::new()
            .crash(30.0, 3)
            .restart(55.0, 3)
            .cpu_slow(10.0, 1, 2.5)
            .noise_spike(40.0, 4.0)
    }

    #[test]
    fn health_folds_in_order() {
        let inj = FaultInjector::new(&plan(), 1);
        let h = inj.health_at(SimTime::from_secs(5), 5);
        assert!(h.iter().all(Health::is_up));
        let h = inj.health_at(SimTime::from_secs(31), 5);
        assert!(h[3].is_down());
        assert_eq!(h[1].cpu_factor(), 2.5);
        let h = inj.health_at(SimTime::from_secs(56), 5);
        assert!(h[3].is_up(), "restart heals the crash");
    }

    #[test]
    fn window_splits_initial_and_changes() {
        let inj = FaultInjector::new(&plan(), 1);
        let w = inj.window(SimTime::from_secs(20), SimTime::from_secs(50), 5);
        assert_eq!(
            w.initial[1].cpu_factor(),
            2.5,
            "pre-window slowdown is initial"
        );
        assert_eq!(w.changes.len(), 1);
        assert_eq!(
            w.changes[0],
            HealthChange {
                after: SimDuration::from_secs(10),
                node: 3,
                health: Health::Down
            }
        );
        assert_eq!(w.noise, 4.0);
        assert_eq!(w.crashes(), vec![3]);
        assert_eq!(
            w.crash_in(SimDuration::from_secs(5), SimDuration::from_secs(15)),
            Some((3, SimDuration::from_secs(10)))
        );
        assert_eq!(
            w.crash_in(SimDuration::ZERO, SimDuration::from_secs(5)),
            None
        );
        assert_eq!(w.stall_s, 0.0);
    }

    #[test]
    fn empty_plan_windows_are_trivial() {
        let inj = FaultInjector::new(&FaultPlan::new(), 9);
        let w = inj.window(SimTime::ZERO, SimTime::from_secs(30), 4);
        assert!(w.is_trivial());
        assert!(w.timeline().is_trivial());
    }

    #[test]
    fn projection_is_deterministic() {
        let a = FaultInjector::new(&plan(), 7);
        let b = FaultInjector::new(&plan(), 7);
        let (s, e) = (SimTime::from_secs(25), SimTime::from_secs(60));
        assert_eq!(a.window(s, e, 5), b.window(s, e, 5));
        assert_eq!(a.wips_noise(s, 4.0), b.wips_noise(s, 4.0));
    }

    #[test]
    fn noise_draw_varies_with_window_but_stays_bounded() {
        let inj = FaultInjector::new(&plan(), 7);
        let a = inj.wips_noise(SimTime::from_secs(25), 4.0);
        let b = inj.wips_noise(SimTime::from_secs(26), 4.0);
        assert_ne!(a, b);
        for v in [a, b] {
            assert!((0.25..=4.0).contains(&v), "{v} outside [1/4, 4]");
        }
        assert_eq!(inj.wips_noise(SimTime::from_secs(25), 1.0), 1.0);
    }

    #[test]
    fn stall_downs_the_node_then_recovers_without_a_restart() {
        let p = FaultPlan::new().stall(10.0, 2, 8.0);
        let inj = FaultInjector::new(&p, 1);
        assert!(inj.health_at(SimTime::from_secs(9), 4)[2].is_up());
        assert!(inj.health_at(SimTime::from_secs(11), 4)[2].is_down());
        assert!(
            inj.health_at(SimTime::from_secs(19), 4)[2].is_up(),
            "stall ends on its own at t=18"
        );
    }

    #[test]
    fn stall_is_not_a_crash() {
        let p = FaultPlan::new().stall(10.0, 2, 8.0);
        let inj = FaultInjector::new(&p, 1);
        let w = inj.window(SimTime::ZERO, SimTime::from_secs(30), 4);
        // The node goes Down and comes back in the health timeline...
        assert_eq!(w.changes.len(), 2);
        assert!(w.changes[0].health.is_down());
        assert_eq!(w.changes[1].after, SimDuration::from_secs(18));
        assert!(w.changes[1].health.is_up());
        // ...but no crash is reported: nothing to restart, nothing to
        // invalidate mid-measure.
        assert!(w.crashes().is_empty());
        assert_eq!(
            w.crash_in(SimDuration::ZERO, SimDuration::from_secs(30)),
            None
        );
        assert_eq!(w.stall_s, 8.0);
        assert_eq!(w.events.len(), 1, "the implicit end is not a raw event");
    }

    #[test]
    fn stall_overlap_is_clipped_to_the_window() {
        let p = FaultPlan::new().stall(10.0, 0, 20.0).stall(25.0, 1, 20.0);
        let inj = FaultInjector::new(&p, 1);
        // Window [15, 35): first stall contributes [15, 30) = 15 s, the
        // second [25, 35) = 10 s.
        let w = inj.window(SimTime::from_secs(15), SimTime::from_secs(35), 4);
        assert_eq!(w.stall_s, 25.0);
        // A window after both stalls sees nothing.
        let w = inj.window(SimTime::from_secs(50), SimTime::from_secs(60), 4);
        assert_eq!(w.stall_s, 0.0);
        assert!(w.is_trivial());
    }

    #[test]
    fn status_distinguishes_crash_from_stall() {
        let p = FaultPlan::new()
            .crash(10.0, 0)
            .stall(10.0, 1, 8.0)
            .cpu_slow(10.0, 2, 2.5)
            .restart(40.0, 0);
        let inj = FaultInjector::new(&p, 1);

        let st = inj.status_at(SimTime::from_secs(12), 4);
        assert!(st[0].crashed, "crash is a crash");
        assert!(st[0].stalled_until.is_none());
        assert!(!st[1].crashed, "a stall is not a crash");
        assert_eq!(st[1].stalled_until, Some(SimTime::from_secs(18)));
        assert_eq!(st[2].slowdown.cpu, 2.5);
        assert!(!st[2].crashed && st[2].stalled_until.is_none());
        assert_eq!(st[3], NodeStatus::UP);

        // The stall lifts on its own; the crash needs the restart.
        let st = inj.status_at(SimTime::from_secs(30), 4);
        assert!(st[0].crashed);
        assert!(st[1].stalled_until.is_none(), "stall expired at t=18");
        let st = inj.status_at(SimTime::from_secs(41), 4);
        assert!(!st[0].crashed, "restart clears the crash");
    }

    #[test]
    fn overlapping_stalls_merge_to_the_latest_end() {
        let p = FaultPlan::new().stall(10.0, 2, 10.0).stall(15.0, 2, 20.0);
        let inj = FaultInjector::new(&p, 1);
        let st = inj.status_at(SimTime::from_secs(22), 4);
        assert_eq!(
            st[2].stalled_until,
            Some(SimTime::from_secs(35)),
            "second stall extends the first"
        );
    }

    #[test]
    fn crash_during_stall_stays_down_after_the_stall_ends() {
        let p = FaultPlan::new().stall(10.0, 2, 8.0).crash(12.0, 2);
        let inj = FaultInjector::new(&p, 1);
        assert!(
            inj.health_at(SimTime::from_secs(20), 4)[2].is_down(),
            "the crash outlives the stall"
        );
        let w = inj.window(SimTime::ZERO, SimTime::from_secs(30), 4);
        assert_eq!(w.crashes(), vec![2], "only the crash needs a restart");
    }
}
