//! A library of named chaos plans for the conformance suite.
//!
//! Each plan is a deliberately nasty fault schedule, parameterized by the
//! session's measurement-window length and node count so the faults land
//! inside the iterations a session actually runs. The chaos suite drives
//! every registered tuner through every plan; see `tests/chaos.rs` in the
//! workspace root.

use crate::plan::FaultPlan;

/// A named, ready-to-validate chaos plan.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    pub name: &'static str,
    pub plan: FaultPlan,
}

/// Repeated crashes with late restarts: exercises retry, the circuit
/// breaker, and reconfiguration under sustained node loss.
pub fn crash_storm(window_s: f64, nodes: usize) -> FaultPlan {
    let mut plan = FaultPlan::new();
    let targets = nodes.max(2);
    for k in 0..4u32 {
        let node = (k as usize + 1) % targets;
        let at = window_s * (1.5 + 3.0 * k as f64);
        plan = plan.crash(at, node).restart(at + window_s * 2.2, node);
    }
    plan
}

/// Stacked noise spikes: every measurement in the storm is suspect, so
/// the outlier gate and remeasurement logic carry the load.
pub fn noise_storm(window_s: f64, _nodes: usize) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for k in 0..6u32 {
        plan = plan.noise_spike(window_s * (1.0 + 2.0 * k as f64), 6.0);
    }
    plan
}

/// Back-to-back stalls long enough to blow a per-attempt timeout budget:
/// the `Timeout` policy's reason to exist.
pub fn stall_burst(window_s: f64, nodes: usize) -> FaultPlan {
    let mut plan = FaultPlan::new();
    let targets = nodes.max(1);
    for k in 0..3u32 {
        let node = k as usize % targets;
        plan = plan.stall(window_s * (2.0 + 4.0 * k as f64), node, window_s * 1.5);
    }
    plan
}

/// A rolling restart sweep: every node goes down and comes back, one
/// after another, like a deploy gone slow.
pub fn rolling_restart(window_s: f64, nodes: usize) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for n in 0..nodes.max(1) {
        let at = window_s * (1.0 + 2.5 * n as f64);
        plan = plan.crash(at, n).restart(at + window_s * 1.2, n);
    }
    plan
}

/// Everything at once: slowdowns, a stall, a crash, and noise, overlapping.
pub fn mixed_mayhem(window_s: f64, nodes: usize) -> FaultPlan {
    let targets = nodes.max(2);
    FaultPlan::new()
        .cpu_slow(window_s * 0.5, 0, 3.0)
        .noise_spike(window_s * 1.5, 5.0)
        .stall(window_s * 2.0, 1 % targets, window_s * 1.8)
        .crash(window_s * 3.5, 0)
        .disk_slow(window_s * 4.0, 1 % targets, 2.5)
        .restart(window_s * 6.0, 0)
        .noise_spike(window_s * 7.0, 4.0)
}

/// Every plan in the library, instantiated for one session shape.
pub fn all(window_s: f64, nodes: usize) -> Vec<ChaosPlan> {
    vec![
        ChaosPlan {
            name: "crash-storm",
            plan: crash_storm(window_s, nodes),
        },
        ChaosPlan {
            name: "noise-storm",
            plan: noise_storm(window_s, nodes),
        },
        ChaosPlan {
            name: "stall-burst",
            plan: stall_burst(window_s, nodes),
        },
        ChaosPlan {
            name: "rolling-restart",
            plan: rolling_restart(window_s, nodes),
        },
        ChaosPlan {
            name: "mixed-mayhem",
            plan: mixed_mayhem(window_s, nodes),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_plan_validates_for_reasonable_shapes() {
        for nodes in [2usize, 4, 8] {
            for window_s in [10.0, 30.0] {
                for cp in all(window_s, nodes) {
                    assert!(
                        cp.plan.validate(nodes).is_ok(),
                        "{} invalid for nodes={nodes} window={window_s}: {:?}",
                        cp.name,
                        cp.plan.validate(nodes)
                    );
                    assert!(!cp.plan.is_empty(), "{} is empty", cp.name);
                }
            }
        }
    }

    #[test]
    fn library_names_are_unique() {
        let plans = all(30.0, 4);
        let mut names: Vec<&str> = plans.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), plans.len());
    }

    #[test]
    fn plans_roundtrip_through_json() {
        for cp in all(30.0, 4) {
            let parsed = FaultPlan::parse_json(&cp.plan.to_json()).unwrap();
            assert_eq!(parsed, cp.plan, "{} drifts through JSON", cp.name);
        }
    }
}
