//! Session-wide fault time.
//!
//! Each tuning iteration runs an independent simulation whose internal
//! clock restarts at zero, but faults are scheduled on one continuous
//! session timeline. The `FaultClock` maps iterations (and retry delays)
//! onto that timeline: every measurement window advances it by the
//! iteration span, and retry backoff consumes simulated hold time, so a
//! restart scheduled for later in the session can heal a retried
//! evaluation.

use persist::{Checkpointable, PersistError, State};
use simkit::time::{SimDuration, SimTime};

#[derive(Debug, Clone)]
pub struct FaultClock {
    span: SimDuration,
    now: SimTime,
}

impl Checkpointable for FaultClock {
    fn save_state(&self) -> State {
        State::map()
            .with("span_us", State::U64(self.span.as_micros()))
            .with("now_us", State::U64(self.now.as_micros()))
    }

    fn restore_state(&mut self, state: &State) -> Result<(), PersistError> {
        self.span = SimDuration::from_micros(state.field_u64("span_us")?);
        self.now = SimTime::from_micros(state.field_u64("now_us")?);
        Ok(())
    }
}

impl FaultClock {
    /// A clock whose measurement windows are `span` long.
    pub fn new(span: SimDuration) -> Self {
        FaultClock {
            span,
            now: SimTime::ZERO,
        }
    }

    /// Current position on the session timeline.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The span of one measurement window.
    pub fn span(&self) -> SimDuration {
        self.span
    }

    /// Claim the next measurement window `[start, end)` and advance.
    pub fn next_window(&mut self) -> (SimTime, SimTime) {
        let start = self.now;
        let end = start + self.span;
        self.now = end;
        (start, end)
    }

    /// Let `delay` of session time pass without measuring (retry backoff).
    pub fn hold(&mut self, delay: SimDuration) {
        self.now += delay;
    }

    /// The window iteration `i` would occupy if every window ran
    /// back-to-back with no retries — the static mapping used when a
    /// fault plan is attached to a plain (non-resilient) session.
    pub fn window_of(span: SimDuration, iteration: u32) -> (SimTime, SimTime) {
        let start = SimTime::ZERO + SimDuration::from_micros(span.as_micros() * iteration as u64);
        (start, start + span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_contiguous() {
        let mut clock = FaultClock::new(SimDuration::from_secs(30));
        assert_eq!(clock.next_window(), (SimTime::ZERO, SimTime::from_secs(30)));
        assert_eq!(
            clock.next_window(),
            (SimTime::from_secs(30), SimTime::from_secs(60))
        );
        assert_eq!(clock.now(), SimTime::from_secs(60));
    }

    #[test]
    fn hold_shifts_later_windows() {
        let mut clock = FaultClock::new(SimDuration::from_secs(10));
        clock.next_window();
        clock.hold(SimDuration::from_secs(5));
        assert_eq!(
            clock.next_window(),
            (SimTime::from_secs(15), SimTime::from_secs(25))
        );
    }

    #[test]
    fn checkpoint_roundtrip_resumes_the_timeline() {
        let mut clock = FaultClock::new(SimDuration::from_secs(30));
        clock.next_window();
        clock.hold(SimDuration::from_secs(7));
        let saved = clock.save_state();
        let mut resumed = FaultClock::new(SimDuration::from_secs(1));
        resumed.restore_state(&saved).unwrap();
        assert_eq!(resumed.span(), clock.span());
        assert_eq!(resumed.now(), clock.now());
        assert_eq!(resumed.next_window(), clock.next_window());
        assert!(resumed.restore_state(&State::Null).is_err());
    }

    #[test]
    fn static_window_mapping_matches_fresh_clock() {
        let span = SimDuration::from_secs(30);
        let mut clock = FaultClock::new(span);
        for i in 0..4 {
            assert_eq!(clock.next_window(), FaultClock::window_of(span, i));
        }
    }
}
