//! Per-node health state.

/// Service-time multipliers applied by a degraded node, all ≥ 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slowdown {
    pub cpu: f64,
    pub disk: f64,
    pub nic: f64,
}

impl Slowdown {
    /// No slowdown on any resource.
    pub const NONE: Slowdown = Slowdown {
        cpu: 1.0,
        disk: 1.0,
        nic: 1.0,
    };

    pub fn is_none(&self) -> bool {
        *self == Slowdown::NONE
    }
}

impl Default for Slowdown {
    fn default() -> Self {
        Slowdown::NONE
    }
}

/// The health of one cluster node.
///
/// `Down` nodes refuse new work (in-flight requests drain); `Degraded`
/// nodes serve but with their service times scaled by the slowdown
/// factors.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Health {
    #[default]
    Up,
    Degraded(Slowdown),
    Down,
}

impl Health {
    pub fn is_down(&self) -> bool {
        matches!(self, Health::Down)
    }

    pub fn is_up(&self) -> bool {
        matches!(self, Health::Up)
    }

    /// CPU service-time multiplier (1.0 unless degraded).
    pub fn cpu_factor(&self) -> f64 {
        match self {
            Health::Degraded(s) => s.cpu,
            _ => 1.0,
        }
    }

    /// Disk service-time multiplier (1.0 unless degraded).
    pub fn disk_factor(&self) -> f64 {
        match self {
            Health::Degraded(s) => s.disk,
            _ => 1.0,
        }
    }

    /// NIC transfer-time multiplier (1.0 unless degraded).
    pub fn nic_factor(&self) -> f64 {
        match self {
            Health::Degraded(s) => s.nic,
            _ => 1.0,
        }
    }

    /// Short label for trace records.
    pub fn name(&self) -> &'static str {
        match self {
            Health::Up => "up",
            Health::Degraded(_) => "degraded",
            Health::Down => "down",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_healthy() {
        assert_eq!(Health::default(), Health::Up);
        assert!(Slowdown::default().is_none());
        assert!(Health::Up.is_up());
        assert!(!Health::Up.is_down());
    }

    #[test]
    fn factors_reflect_slowdown() {
        let h = Health::Degraded(Slowdown {
            cpu: 2.0,
            disk: 3.0,
            nic: 4.0,
        });
        assert_eq!(h.cpu_factor(), 2.0);
        assert_eq!(h.disk_factor(), 3.0);
        assert_eq!(h.nic_factor(), 4.0);
        assert_eq!(Health::Up.cpu_factor(), 1.0);
        assert_eq!(Health::Down.nic_factor(), 1.0);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Health::Up.name(), "up");
        assert_eq!(Health::Degraded(Slowdown::NONE).name(), "degraded");
        assert_eq!(Health::Down.name(), "down");
    }
}
