//! # faults — deterministic fault injection
//!
//! A seedable, simulated-time fault model for the cluster testbed. The
//! paper's reconfiguration algorithm (Fig. 7) exists because real tiers
//! degrade and crash; this crate supplies the degradation:
//!
//! * [`plan::FaultPlan`] — a declarative schedule of [`plan::FaultEvent`]s
//!   (crash, restart, CPU/disk slowdown, NIC degradation, measurement-noise
//!   spike) at absolute simulated timestamps, loadable from a small JSON
//!   dialect with no external dependencies;
//! * [`health::Health`] — the per-node state machine (`Up` / `Degraded` /
//!   `Down`) the cluster consults when routing and when computing service
//!   times;
//! * [`clock::FaultClock`] — maps tuning iterations onto the session-wide
//!   fault timeline, including simulated hold time consumed by retries so a
//!   scheduled restart can heal a later attempt;
//! * [`inject::FaultInjector`] — a stateless, replayable projection of a
//!   plan onto any `[start, end)` measurement window, yielding the initial
//!   node healths, in-window transitions, the noise factor, and the
//!   stalled seconds a timeout budget must absorb;
//! * [`library`] — named chaos plans (crash storms, stall bursts, …) for
//!   the resilience conformance suite.
//!
//! Everything is a pure function of `(plan, seed, time)`: the same plan and
//! seed replay the same faults, byte for byte, which the determinism tests
//! rely on.

// Fault plans are user input: parsing and validation must return typed
// `PlanError`s, never panic. Test modules are exempt; CI enforces this
// with a dedicated clippy step.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod clock;
pub mod health;
pub mod inject;
mod json;
pub mod library;
pub mod plan;

pub use clock::FaultClock;
pub use health::{Health, Slowdown};
pub use inject::{FaultInjector, HealthChange, HealthTimeline, NodeStatus, WindowFaults};
pub use library::ChaosPlan;
pub use plan::{FaultEvent, FaultKind, FaultPlan, PlanError};
