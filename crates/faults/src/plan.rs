//! Declarative fault schedules.

use crate::json::{self, Json};
use simkit::time::SimTime;
use std::fmt;

/// What happens to a node (or to the measurement) at a scheduled instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Node stops accepting new work; in-flight requests drain.
    Crash,
    /// Node returns to pristine health (clears crash and slowdowns).
    Restart,
    /// CPU service times scaled by the factor (≥ 1).
    CpuSlow(f64),
    /// Disk service times scaled by the factor (≥ 1).
    DiskSlow(f64),
    /// NIC transfer times scaled by the factor (≥ 1) — congestion or
    /// packet loss forcing retransmits.
    NicDegrade(f64),
    /// Measurement noise multiplier for the window the event lands in;
    /// widens the reported confidence interval and perturbs the sample.
    NoiseSpike(f64),
    /// Node is unresponsive (refuses new work) for the given number of
    /// simulated seconds, then resumes with its prior slowdowns intact —
    /// a GC pause, a lock convoy, an I/O hiccup. Unlike a crash there is
    /// no restart event; the recovery instant is implied by the duration.
    Stall(f64),
}

impl FaultKind {
    /// Stable label used in JSON plans and trace records.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::Restart => "restart",
            FaultKind::CpuSlow(_) => "cpu_slow",
            FaultKind::DiskSlow(_) => "disk_slow",
            FaultKind::NicDegrade(_) => "nic_degrade",
            FaultKind::NoiseSpike(_) => "noise",
            FaultKind::Stall(_) => "stall",
        }
    }

    /// The slowdown/noise factor (1.0 for crash/restart/stall).
    pub fn factor(&self) -> f64 {
        match self {
            FaultKind::Crash | FaultKind::Restart | FaultKind::Stall(_) => 1.0,
            FaultKind::CpuSlow(f)
            | FaultKind::DiskSlow(f)
            | FaultKind::NicDegrade(f)
            | FaultKind::NoiseSpike(f) => *f,
        }
    }

    /// The stall duration, if this is a stall.
    pub fn stall_duration_s(&self) -> Option<f64> {
        match self {
            FaultKind::Stall(d) => Some(*d),
            _ => None,
        }
    }

    /// Whether this kind targets a specific node.
    pub fn needs_node(&self) -> bool {
        !matches!(self, FaultKind::NoiseSpike(_))
    }
}

/// One scheduled fault at an absolute simulated timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    pub at: SimTime,
    /// Target node, `None` for cluster-wide events (noise spikes).
    pub node: Option<usize>,
    pub kind: FaultKind,
    /// Optional caller-assigned event id. Ids must be unique within a
    /// plan; they let traces and tooling refer to specific events.
    pub id: Option<u64>,
}

/// Why a plan could not be parsed or validated.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    Json(String),
    MissingField(&'static str),
    UnknownKind(String),
    BadFactor {
        kind: String,
        factor: f64,
    },
    NodeOutOfRange {
        node: usize,
        nodes: usize,
    },
    MissingNode {
        kind: String,
    },
    /// A stall needs a positive, finite duration.
    BadDuration {
        duration_s: f64,
    },
    /// Two events share the same explicit id.
    DuplicateId(u64),
    /// An event timestamp is negative (times are simulated seconds ≥ 0).
    NegativeTime(f64),
    /// A node is scheduled to crash again while already down — the
    /// windows of the two crashes overlap with no restart in between.
    OverlappingCrash {
        node: usize,
        at_s: f64,
    },
    Io(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Json(msg) => write!(f, "invalid JSON: {msg}"),
            PlanError::MissingField(name) => write!(f, "fault event missing field '{name}'"),
            PlanError::UnknownKind(k) => write!(
                f,
                "unknown fault kind '{k}' (expected crash, restart, cpu_slow, disk_slow, nic_degrade, noise, or stall)"
            ),
            PlanError::BadFactor { kind, factor } => {
                write!(f, "fault '{kind}' needs a factor >= 1, got {factor}")
            }
            PlanError::NodeOutOfRange { node, nodes } => {
                write!(f, "fault targets node {node} but the cluster has {nodes} nodes")
            }
            PlanError::MissingNode { kind } => {
                write!(f, "fault '{kind}' requires a 'node' field")
            }
            PlanError::BadDuration { duration_s } => {
                write!(f, "fault 'stall' needs a positive finite duration_s, got {duration_s}")
            }
            PlanError::DuplicateId(id) => {
                write!(f, "duplicate fault event id {id}")
            }
            PlanError::NegativeTime(at_s) => {
                write!(f, "fault event time must be >= 0, got {at_s}")
            }
            PlanError::OverlappingCrash { node, at_s } => write!(
                f,
                "node {node} crashes again at {at_s}s while already down (no restart in between)"
            ),
            PlanError::Io(msg) => write!(f, "cannot read fault plan: {msg}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// A schedule of fault events, kept sorted by timestamp.
///
/// JSON format (all times in fractional seconds of simulated time):
///
/// ```json
/// {"events": [
///   {"at_s": 30.0, "node": 3, "kind": "crash"},
///   {"at_s": 55.0, "node": 3, "kind": "restart"},
///   {"at_s": 10.0, "node": 1, "kind": "cpu_slow", "factor": 2.5},
///   {"at_s": 40.0, "kind": "noise", "factor": 4.0}
/// ]}
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// The schedule, sorted by timestamp (stable for equal timestamps).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Add one event, keeping the schedule sorted.
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
        self.events.sort_by_key(|e| e.at);
    }

    fn with(mut self, at_s: f64, node: Option<usize>, kind: FaultKind) -> Self {
        self.push(FaultEvent {
            at: SimTime::from_micros(simkit::time::SimDuration::from_secs_f64(at_s).as_micros()),
            node,
            kind,
            id: None,
        });
        self
    }

    /// Schedule a crash of `node` at `at_s` simulated seconds.
    pub fn crash(self, at_s: f64, node: usize) -> Self {
        self.with(at_s, Some(node), FaultKind::Crash)
    }

    /// Schedule a restart of `node` at `at_s` simulated seconds.
    pub fn restart(self, at_s: f64, node: usize) -> Self {
        self.with(at_s, Some(node), FaultKind::Restart)
    }

    /// Scale `node`'s CPU service times by `factor` from `at_s` on.
    pub fn cpu_slow(self, at_s: f64, node: usize, factor: f64) -> Self {
        self.with(at_s, Some(node), FaultKind::CpuSlow(factor))
    }

    /// Scale `node`'s disk service times by `factor` from `at_s` on.
    pub fn disk_slow(self, at_s: f64, node: usize, factor: f64) -> Self {
        self.with(at_s, Some(node), FaultKind::DiskSlow(factor))
    }

    /// Scale `node`'s NIC transfer times by `factor` from `at_s` on.
    pub fn nic_degrade(self, at_s: f64, node: usize, factor: f64) -> Self {
        self.with(at_s, Some(node), FaultKind::NicDegrade(factor))
    }

    /// Spike measurement noise by `factor` for the window containing `at_s`.
    pub fn noise_spike(self, at_s: f64, factor: f64) -> Self {
        self.with(at_s, None, FaultKind::NoiseSpike(factor))
    }

    /// Stall `node` (unresponsive, no restart needed) for `duration_s`
    /// simulated seconds starting at `at_s`.
    pub fn stall(self, at_s: f64, node: usize, duration_s: f64) -> Self {
        self.with(at_s, Some(node), FaultKind::Stall(duration_s))
    }

    /// Check factors, node indices, id uniqueness, and crash/restart
    /// ordering against a cluster of `nodes` nodes.
    pub fn validate(&self, nodes: usize) -> Result<(), PlanError> {
        let mut seen_ids = Vec::new();
        for e in &self.events {
            let factor = e.kind.factor();
            if factor < 1.0 || !factor.is_finite() {
                return Err(PlanError::BadFactor {
                    kind: e.kind.name().to_string(),
                    factor,
                });
            }
            if let Some(duration_s) = e.kind.stall_duration_s() {
                if duration_s <= 0.0 || !duration_s.is_finite() {
                    return Err(PlanError::BadDuration { duration_s });
                }
            }
            match e.node {
                Some(n) if n >= nodes => return Err(PlanError::NodeOutOfRange { node: n, nodes }),
                None if e.kind.needs_node() => {
                    return Err(PlanError::MissingNode {
                        kind: e.kind.name().to_string(),
                    })
                }
                _ => {}
            }
            if let Some(id) = e.id {
                if seen_ids.contains(&id) {
                    return Err(PlanError::DuplicateId(id));
                }
                seen_ids.push(id);
            }
        }
        // Events are sorted by time: a second crash on a node that has
        // not restarted means the two outage windows overlap.
        let mut down = vec![false; nodes];
        for e in &self.events {
            let Some(n) = e.node else { continue };
            match e.kind {
                FaultKind::Crash => {
                    if down[n] {
                        return Err(PlanError::OverlappingCrash {
                            node: n,
                            at_s: e.at.as_secs_f64(),
                        });
                    }
                    down[n] = true;
                }
                FaultKind::Restart => down[n] = false,
                _ => {}
            }
        }
        Ok(())
    }

    /// Parse a plan from its JSON text.
    pub fn parse_json(text: &str) -> Result<Self, PlanError> {
        let doc = json::parse(text).map_err(PlanError::Json)?;
        let events = doc
            .get("events")
            .ok_or(PlanError::MissingField("events"))?
            .as_arr()
            .ok_or(PlanError::MissingField("events"))?;
        let mut plan = FaultPlan::new();
        let mut seen_ids = Vec::new();
        for item in events {
            let at_s = item
                .get("at_s")
                .and_then(Json::as_f64)
                .ok_or(PlanError::MissingField("at_s"))?;
            if at_s < 0.0 || !at_s.is_finite() {
                return Err(PlanError::NegativeTime(at_s));
            }
            let kind_name = item
                .get("kind")
                .and_then(Json::as_str)
                .ok_or(PlanError::MissingField("kind"))?;
            let node = item.get("node").and_then(Json::as_f64).map(|n| n as usize);
            let factor = item.get("factor").and_then(Json::as_f64);
            let duration_s = item.get("duration_s").and_then(Json::as_f64);
            let id = item.get("id").and_then(Json::as_f64).map(|v| v as u64);
            if let Some(id) = id {
                if seen_ids.contains(&id) {
                    return Err(PlanError::DuplicateId(id));
                }
                seen_ids.push(id);
            }
            let need_factor = || factor.ok_or(PlanError::MissingField("factor"));
            let kind = match kind_name {
                "crash" => FaultKind::Crash,
                "restart" => FaultKind::Restart,
                "cpu_slow" => FaultKind::CpuSlow(need_factor()?),
                "disk_slow" => FaultKind::DiskSlow(need_factor()?),
                "nic_degrade" => FaultKind::NicDegrade(need_factor()?),
                "noise" => FaultKind::NoiseSpike(need_factor()?),
                "stall" => {
                    let d = duration_s.ok_or(PlanError::MissingField("duration_s"))?;
                    if d <= 0.0 || !d.is_finite() {
                        return Err(PlanError::BadDuration { duration_s: d });
                    }
                    FaultKind::Stall(d)
                }
                other => return Err(PlanError::UnknownKind(other.to_string())),
            };
            if kind.needs_node() && node.is_none() {
                return Err(PlanError::MissingNode {
                    kind: kind.name().to_string(),
                });
            }
            plan.push(FaultEvent {
                at: SimTime::from_micros(
                    simkit::time::SimDuration::from_secs_f64(at_s).as_micros(),
                ),
                node,
                kind,
                id,
            });
        }
        Ok(plan)
    }

    /// Load and parse a plan file.
    pub fn load(path: &std::path::Path) -> Result<Self, PlanError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| PlanError::Io(format!("{}: {e}", path.display())))?;
        Self::parse_json(&text)
    }

    /// Serialize back to the JSON plan format.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{{\"at_s\": {}", e.at.as_secs_f64()));
            if let Some(n) = e.node {
                out.push_str(&format!(", \"node\": {n}"));
            }
            out.push_str(&format!(", \"kind\": \"{}\"", e.kind.name()));
            if let Some(d) = e.kind.stall_duration_s() {
                out.push_str(&format!(", \"duration_s\": {d}"));
            } else if !e.kind.needs_node() || e.kind.factor() != 1.0 {
                out.push_str(&format!(", \"factor\": {}", e.kind.factor()));
            }
            if let Some(id) = e.id {
                out.push_str(&format!(", \"id\": {id}"));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_keeps_events_sorted() {
        let plan = FaultPlan::new()
            .crash(30.0, 3)
            .cpu_slow(10.0, 1, 2.5)
            .restart(55.0, 3);
        let at: Vec<f64> = plan.events().iter().map(|e| e.at.as_secs_f64()).collect();
        assert_eq!(at, vec![10.0, 30.0, 55.0]);
    }

    #[test]
    fn json_roundtrip() {
        let plan = FaultPlan::new()
            .crash(30.0, 3)
            .noise_spike(40.0, 4.0)
            .nic_degrade(12.5, 0, 1.75);
        let parsed = FaultPlan::parse_json(&plan.to_json()).unwrap();
        assert_eq!(parsed, plan);
    }

    #[test]
    fn parse_rejects_unknown_kind() {
        let err =
            FaultPlan::parse_json(r#"{"events": [{"at_s": 1.0, "node": 0, "kind": "meltdown"}]}"#)
                .unwrap_err();
        assert_eq!(err, PlanError::UnknownKind("meltdown".into()));
    }

    #[test]
    fn parse_rejects_missing_fields() {
        assert_eq!(
            FaultPlan::parse_json(r#"{"plan": []}"#).unwrap_err(),
            PlanError::MissingField("events")
        );
        assert_eq!(
            FaultPlan::parse_json(r#"{"events": [{"kind": "crash", "node": 0}]}"#).unwrap_err(),
            PlanError::MissingField("at_s")
        );
        assert_eq!(
            FaultPlan::parse_json(r#"{"events": [{"at_s": 1.0, "node": 2, "kind": "cpu_slow"}]}"#)
                .unwrap_err(),
            PlanError::MissingField("factor")
        );
        assert_eq!(
            FaultPlan::parse_json(r#"{"events": [{"at_s": 1.0, "kind": "crash"}]}"#).unwrap_err(),
            PlanError::MissingNode {
                kind: "crash".into()
            }
        );
    }

    #[test]
    fn parse_rejects_bad_json() {
        assert!(matches!(
            FaultPlan::parse_json("{events: oops").unwrap_err(),
            PlanError::Json(_)
        ));
    }

    #[test]
    fn validate_checks_nodes_and_factors() {
        let plan = FaultPlan::new().crash(1.0, 7);
        assert_eq!(
            plan.validate(3).unwrap_err(),
            PlanError::NodeOutOfRange { node: 7, nodes: 3 }
        );
        let plan = FaultPlan::new().cpu_slow(1.0, 0, 0.5);
        assert!(matches!(
            plan.validate(3).unwrap_err(),
            PlanError::BadFactor { .. }
        ));
        assert!(FaultPlan::new().crash(1.0, 2).validate(3).is_ok());
    }

    #[test]
    fn json_roundtrip_preserves_event_ids() {
        let mut plan = FaultPlan::new();
        plan.push(FaultEvent {
            at: SimTime::from_secs(30),
            node: Some(3),
            kind: FaultKind::Crash,
            id: Some(7),
        });
        plan.push(FaultEvent {
            at: SimTime::from_secs(40),
            node: None,
            kind: FaultKind::NoiseSpike(4.0),
            id: Some(8),
        });
        let json = plan.to_json();
        assert!(json.contains("\"id\": 7"), "ids serialized: {json}");
        let parsed = FaultPlan::parse_json(&json).unwrap();
        assert_eq!(parsed, plan);
        assert_eq!(parsed.events()[0].id, Some(7));
    }

    #[test]
    fn parse_rejects_duplicate_ids() {
        let err = FaultPlan::parse_json(
            r#"{"events": [
                {"at_s": 1.0, "node": 0, "kind": "crash", "id": 5},
                {"at_s": 2.0, "node": 0, "kind": "restart", "id": 5}
            ]}"#,
        )
        .unwrap_err();
        assert_eq!(err, PlanError::DuplicateId(5));
        // validate() catches programmatically built duplicates too.
        let mut plan = FaultPlan::new();
        for at in [1, 2] {
            plan.push(FaultEvent {
                at: SimTime::from_secs(at),
                node: Some(0),
                kind: if at == 1 {
                    FaultKind::Crash
                } else {
                    FaultKind::Restart
                },
                id: Some(9),
            });
        }
        assert_eq!(plan.validate(2).unwrap_err(), PlanError::DuplicateId(9));
    }

    #[test]
    fn parse_rejects_negative_times() {
        let err =
            FaultPlan::parse_json(r#"{"events": [{"at_s": -3.5, "node": 0, "kind": "crash"}]}"#)
                .unwrap_err();
        assert_eq!(err, PlanError::NegativeTime(-3.5));
    }

    #[test]
    fn validate_rejects_overlapping_crash_windows() {
        // Node 1 crashes twice with no restart in between: the outage
        // windows overlap and the plan is ambiguous.
        let plan = FaultPlan::new().crash(10.0, 1).crash(20.0, 1);
        assert_eq!(
            plan.validate(3).unwrap_err(),
            PlanError::OverlappingCrash {
                node: 1,
                at_s: 20.0
            }
        );
        // An intervening restart makes it legal again.
        let plan = FaultPlan::new()
            .crash(10.0, 1)
            .restart(15.0, 1)
            .crash(20.0, 1);
        assert!(plan.validate(3).is_ok());
        // Crashes on different nodes never conflict.
        let plan = FaultPlan::new().crash(10.0, 0).crash(11.0, 1);
        assert!(plan.validate(3).is_ok());
    }

    #[test]
    fn stall_roundtrips_through_json() {
        let plan = FaultPlan::new().stall(12.5, 2, 8.0).crash(30.0, 1);
        let json = plan.to_json();
        assert!(json.contains("\"duration_s\": 8"), "duration kept: {json}");
        let parsed = FaultPlan::parse_json(&json).unwrap();
        assert_eq!(parsed, plan);
        assert_eq!(parsed.events()[0].kind, FaultKind::Stall(8.0));
        assert!(plan.validate(3).is_ok());
    }

    #[test]
    fn stall_requires_a_positive_finite_duration() {
        assert_eq!(
            FaultPlan::parse_json(r#"{"events": [{"at_s": 1.0, "node": 0, "kind": "stall"}]}"#)
                .unwrap_err(),
            PlanError::MissingField("duration_s")
        );
        for bad in ["0", "-2.5", "1e999"] {
            let text = format!(
                r#"{{"events": [{{"at_s": 1.0, "node": 0, "kind": "stall", "duration_s": {bad}}}]}}"#
            );
            assert!(
                matches!(
                    FaultPlan::parse_json(&text).unwrap_err(),
                    PlanError::BadDuration { .. }
                ),
                "accepted duration {bad}"
            );
        }
        // validate() catches programmatically built bad durations too.
        let plan = FaultPlan::new().stall(1.0, 0, 0.0);
        assert_eq!(
            plan.validate(2).unwrap_err(),
            PlanError::BadDuration { duration_s: 0.0 }
        );
    }

    #[test]
    fn malformed_inputs_never_panic() {
        for text in [
            "",
            "null",
            "[]",
            "{\"events\": 3}",
            "{\"events\": [{}]}",
            "{\"events\": [{\"at_s\": \"soon\", \"kind\": \"crash\", \"node\": 0}]}",
            "{\"events\": [{\"at_s\": 1e999, \"kind\": \"crash\", \"node\": 0}]}",
            "{\"events\": [{\"at_s\": 1.0, \"kind\": [], \"node\": 0}]}",
            "\u{0000}\u{0001}garbage",
        ] {
            assert!(FaultPlan::parse_json(text).is_err(), "accepted: {text:?}");
        }
    }

    #[test]
    fn load_reports_io_errors() {
        let err = FaultPlan::load(std::path::Path::new("/nonexistent/plan.json")).unwrap_err();
        assert!(matches!(err, PlanError::Io(_)));
    }
}
