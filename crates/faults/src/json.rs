//! A minimal JSON reader for fault-plan files.
//!
//! The workspace carries zero registry dependencies, so the plan format is
//! parsed by this small recursive-descent scanner instead of serde. It
//! accepts standard JSON (objects, arrays, strings with the usual escapes,
//! numbers, booleans, null) and reports errors with a byte offset.

#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = Vec::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    break;
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'n' => out.push(b'\n'),
                        b't' => out.push(b'\t'),
                        b'r' => out.push(b'\r'),
                        b'b' => out.push(0x08),
                        b'f' => out.push(0x0c),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            let ch =
                                char::from_u32(code).ok_or_else(|| self.err("bad \\u escape"))?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    out.push(self.bytes[self.pos]);
                    self.pos += 1;
                }
            }
        }
        String::from_utf8(out).map_err(|_| self.err("invalid UTF-8 in string"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(parse(r#""a\nb""#).unwrap(), Json::Str("a\nb".into()));
        assert_eq!(parse(r#""é""#).unwrap(), Json::Str("é".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v =
            parse(r#"{"events": [{"at_s": 30, "kind": "crash", "node": 3}], "x": []}"#).unwrap();
        let events = v.get("events").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("at_s").unwrap().as_f64(), Some(30.0));
        assert_eq!(events[0].get("kind").unwrap().as_str(), Some("crash"));
        assert_eq!(v.get("x").unwrap().as_arr().unwrap().len(), 0);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse(r#"{"a": 1,}"#).is_err());
        assert!(parse("1 2").is_err());
        assert!(parse(r#""unterminated"#).is_err());
        assert!(parse("tru").is_err());
    }

    #[test]
    fn errors_carry_byte_offsets() {
        let err = parse("[1, !]").unwrap_err();
        assert!(err.contains("at byte 4"), "{err}");
    }
}
