//! The append-only write-ahead journal.
//!
//! One journal file holds a sequence of [`frame`](crate::frame)-encoded
//! [`State`] records. Appends are buffered and flushed to the OS per
//! record (no per-record fsync — a crash may lose the very last frames,
//! and recovery's torn-tail tolerance absorbs exactly that). Opening a
//! journal for appending first *repairs* it: the file is truncated back
//! to the last clean frame boundary so new frames never land after
//! garbage.

use crate::frame;
use crate::state::State;
use crate::PersistError;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// What a journal file contained when scanned.
#[derive(Debug)]
pub struct JournalScan {
    /// Decoded records up to the first bad frame.
    pub records: Vec<State>,
    /// Bytes of valid frames (the repair truncation point).
    pub valid_len: u64,
    /// True if a torn/corrupt tail was present (and ignored).
    pub torn_tail: bool,
}

/// An open, appendable write-ahead journal.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    writer: BufWriter<File>,
}

impl Journal {
    /// Create a fresh journal, truncating any existing file.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(Journal {
            path,
            writer: BufWriter::new(file),
        })
    }

    /// Open an existing journal (or create an empty one) for appending,
    /// repairing a torn tail first so appends start at a clean frame
    /// boundary. Returns the journal and the records it already held.
    pub fn open_append(path: impl AsRef<Path>) -> Result<(Self, JournalScan), PersistError> {
        let path = path.as_ref().to_path_buf();
        let scan = Self::scan(&path)?;
        if scan.torn_tail {
            let file = OpenOptions::new().write(true).open(&path)?;
            file.set_len(scan.valid_len)?;
            file.sync_all()?;
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok((
            Journal {
                path,
                writer: BufWriter::new(file),
            },
            scan,
        ))
    }

    /// Scan a journal file without opening it for writes. A missing file
    /// reads as an empty journal.
    pub fn scan(path: impl AsRef<Path>) -> Result<JournalScan, PersistError> {
        let bytes = match std::fs::read(path.as_ref()) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(PersistError::Io(e)),
        };
        let scanned = frame::scan(&bytes);
        let mut records = Vec::with_capacity(scanned.payloads.len());
        let mut valid_len = 0u64;
        let mut decode_failed = false;
        let mut pos = 0u64;
        for payload in &scanned.payloads {
            pos += (frame::HEADER_LEN + payload.len()) as u64;
            match State::decode(payload) {
                Ok(state) => {
                    records.push(state);
                    valid_len = pos;
                }
                Err(_) => {
                    // A frame whose checksum passes but whose payload is
                    // not a State value: treat it (and everything after)
                    // as the torn tail.
                    decode_failed = true;
                    break;
                }
            }
        }
        let torn_tail = scanned.torn_tail || decode_failed;
        Ok(JournalScan {
            records,
            valid_len,
            torn_tail,
        })
    }

    /// Append one record. Buffered + flushed; durability against power
    /// loss comes from the periodic snapshots, not per-record fsync.
    pub fn append(&mut self, record: &State) -> Result<(), PersistError> {
        let payload = record.encode();
        let mut framed = Vec::with_capacity(frame::HEADER_LEN + payload.len());
        frame::write_frame(&mut framed, &payload);
        self.writer.write_all(&framed)?;
        self.writer.flush()?;
        Ok(())
    }

    /// Force the journal contents to disk (used before snapshots).
    pub fn sync(&mut self) -> Result<(), PersistError> {
        self.writer.flush()?;
        self.writer.get_ref().sync_all()?;
        Ok(())
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("persist-journal-{}-{name}", std::process::id()))
    }

    #[test]
    fn append_then_scan_roundtrips() {
        let path = temp_path("roundtrip.wal");
        let mut j = Journal::create(&path).unwrap();
        for i in 0..5u64 {
            j.append(&State::map().with("iteration", State::U64(i)))
                .unwrap();
        }
        drop(j);
        let scan = Journal::scan(&path).unwrap();
        assert_eq!(scan.records.len(), 5);
        assert!(!scan.torn_tail);
        assert_eq!(scan.records[3].field_u64("iteration").unwrap(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_append_repairs_torn_tail_and_continues() {
        let path = temp_path("repair.wal");
        let mut j = Journal::create(&path).unwrap();
        j.append(&State::U64(1)).unwrap();
        j.append(&State::U64(2)).unwrap();
        drop(j);
        // Simulate a crash mid-append: garbage half-frame at the tail.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0x10, 0x00, 0x00, 0x00, 0xDE, 0xAD]).unwrap();
        }
        let (mut j, scan) = Journal::open_append(&path).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert!(scan.torn_tail);
        j.append(&State::U64(3)).unwrap();
        drop(j);
        let healed = Journal::scan(&path).unwrap();
        assert_eq!(
            healed.records,
            vec![State::U64(1), State::U64(2), State::U64(3)]
        );
        assert!(!healed.torn_tail);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_scans_empty() {
        let scan = Journal::scan(temp_path("never-created.wal")).unwrap();
        assert!(scan.records.is_empty());
        assert!(!scan.torn_tail);
    }

    #[test]
    fn valid_frame_with_non_state_payload_is_a_torn_tail() {
        let path = temp_path("badpayload.wal");
        let mut bytes = Vec::new();
        frame::write_frame(&mut bytes, &State::U64(9).encode());
        frame::write_frame(&mut bytes, &[0xFF, 0xFF]); // checksums fine, not a State
        std::fs::write(&path, &bytes).unwrap();
        let scan = Journal::scan(&path).unwrap();
        assert_eq!(scan.records, vec![State::U64(9)]);
        assert!(scan.torn_tail);
        std::fs::remove_file(&path).unwrap();
    }
}
