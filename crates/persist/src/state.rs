//! A self-describing value tree with a compact binary codec.
//!
//! `State` is the single interchange format for everything this crate
//! persists: snapshot bodies and journal frame payloads are encoded
//! `State` values. The codec is deliberately trivial — one tag byte per
//! value, little-endian fixed-width scalars, u32-prefixed lengths — so
//! it can be audited by eye and never drifts with an external library.
//!
//! Floats are stored as their IEEE-754 bit pattern ([`f64::to_bits`]):
//! a decoded value is *bit-identical* to the encoded one, which the
//! byte-identical resume guarantee depends on.

use crate::PersistError;

/// Codec tags (first byte of every encoded value).
const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_I64: u8 = 3;
const TAG_U64: u8 = 4;
const TAG_F64: u8 = 5;
const TAG_STR: u8 = 6;
const TAG_LIST: u8 = 7;
const TAG_MAP: u8 = 8;

/// A dynamically typed, serializable state value.
#[derive(Debug, Clone, PartialEq)]
pub enum State {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    List(Vec<State>),
    /// Ordered key/value pairs (insertion order is preserved and
    /// round-trips through the codec).
    Map(Vec<(String, State)>),
}

impl State {
    /// An empty map, ready for [`State::set`].
    pub fn map() -> State {
        State::Map(Vec::new())
    }

    /// Insert (or replace) a key in a map; no-op on non-maps.
    pub fn set(&mut self, key: &str, value: State) {
        if let State::Map(pairs) = self {
            if let Some(pair) = pairs.iter_mut().find(|(k, _)| k == key) {
                pair.1 = value;
            } else {
                pairs.push((key.to_string(), value));
            }
        }
    }

    /// Builder-style [`State::set`].
    pub fn with(mut self, key: &str, value: State) -> State {
        self.set(key, value);
        self
    }

    /// Map lookup.
    pub fn get(&self, key: &str) -> Option<&State> {
        match self {
            State::Map(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required-field map lookup with a typed error.
    pub fn require(&self, key: &str) -> Result<&State, PersistError> {
        self.get(key)
            .ok_or_else(|| PersistError::Schema(format!("missing field '{key}'")))
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            State::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            State::I64(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            State::U64(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            State::F64(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            State::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_list(&self) -> Option<&[State]> {
        match self {
            State::List(items) => Some(items),
            _ => None,
        }
    }

    /// Typed accessors for required fields, with schema errors naming
    /// the offending key.
    pub fn field_u64(&self, key: &str) -> Result<u64, PersistError> {
        self.require(key)?
            .as_u64()
            .ok_or_else(|| PersistError::Schema(format!("field '{key}' is not a u64")))
    }

    pub fn field_i64(&self, key: &str) -> Result<i64, PersistError> {
        self.require(key)?
            .as_i64()
            .ok_or_else(|| PersistError::Schema(format!("field '{key}' is not an i64")))
    }

    pub fn field_f64(&self, key: &str) -> Result<f64, PersistError> {
        self.require(key)?
            .as_f64()
            .ok_or_else(|| PersistError::Schema(format!("field '{key}' is not an f64")))
    }

    pub fn field_bool(&self, key: &str) -> Result<bool, PersistError> {
        self.require(key)?
            .as_bool()
            .ok_or_else(|| PersistError::Schema(format!("field '{key}' is not a bool")))
    }

    pub fn field_str(&self, key: &str) -> Result<&str, PersistError> {
        self.require(key)?
            .as_str()
            .ok_or_else(|| PersistError::Schema(format!("field '{key}' is not a string")))
    }

    pub fn field_list(&self, key: &str) -> Result<&[State], PersistError> {
        self.require(key)?
            .as_list()
            .ok_or_else(|| PersistError::Schema(format!("field '{key}' is not a list")))
    }

    /// Convenience: a list of f64s from native values (exact bits).
    pub fn f64_list(values: &[f64]) -> State {
        State::List(values.iter().map(|&v| State::F64(v)).collect())
    }

    /// Convenience: a list of i64s.
    pub fn i64_list(values: &[i64]) -> State {
        State::List(values.iter().map(|&v| State::I64(v)).collect())
    }

    /// Decode a list of f64s.
    pub fn to_f64_vec(&self) -> Result<Vec<f64>, PersistError> {
        self.as_list()
            .ok_or_else(|| PersistError::Schema("expected f64 list".into()))?
            .iter()
            .map(|s| {
                s.as_f64()
                    .ok_or_else(|| PersistError::Schema("expected f64 list item".into()))
            })
            .collect()
    }

    /// Decode a list of i64s.
    pub fn to_i64_vec(&self) -> Result<Vec<i64>, PersistError> {
        self.as_list()
            .ok_or_else(|| PersistError::Schema("expected i64 list".into()))?
            .iter()
            .map(|s| {
                s.as_i64()
                    .ok_or_else(|| PersistError::Schema("expected i64 list item".into()))
            })
            .collect()
    }

    /// Append the binary encoding of this value to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            State::Null => out.push(TAG_NULL),
            State::Bool(false) => out.push(TAG_FALSE),
            State::Bool(true) => out.push(TAG_TRUE),
            State::I64(v) => {
                out.push(TAG_I64);
                out.extend_from_slice(&v.to_le_bytes());
            }
            State::U64(v) => {
                out.push(TAG_U64);
                out.extend_from_slice(&v.to_le_bytes());
            }
            State::F64(v) => {
                out.push(TAG_F64);
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            State::Str(s) => {
                out.push(TAG_STR);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            State::List(items) => {
                out.push(TAG_LIST);
                out.extend_from_slice(&(items.len() as u32).to_le_bytes());
                for item in items {
                    item.encode_into(out);
                }
            }
            State::Map(pairs) => {
                out.push(TAG_MAP);
                out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
                for (k, v) in pairs {
                    out.extend_from_slice(&(k.len() as u32).to_le_bytes());
                    out.extend_from_slice(k.as_bytes());
                    v.encode_into(out);
                }
            }
        }
    }

    /// Encode to a fresh byte vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Decode one value from the start of `bytes`; the whole slice must
    /// be consumed (no trailing garbage).
    pub fn decode(bytes: &[u8]) -> Result<State, PersistError> {
        let mut cursor = Cursor { bytes, pos: 0 };
        let value = cursor.value()?;
        if cursor.pos != bytes.len() {
            return Err(PersistError::Corrupt(format!(
                "{} trailing bytes after state value",
                bytes.len() - cursor.pos
            )));
        }
        Ok(value)
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], PersistError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| PersistError::Corrupt("state value truncated".into()))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        let mut buf = [0u8; 4];
        buf.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(buf))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(buf))
    }

    fn string(&mut self) -> Result<String, PersistError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PersistError::Corrupt("invalid UTF-8 in state string".into()))
    }

    fn value(&mut self) -> Result<State, PersistError> {
        let tag = self.take(1)?[0];
        Ok(match tag {
            TAG_NULL => State::Null,
            TAG_FALSE => State::Bool(false),
            TAG_TRUE => State::Bool(true),
            TAG_I64 => State::I64(self.u64()? as i64),
            TAG_U64 => State::U64(self.u64()?),
            TAG_F64 => State::F64(f64::from_bits(self.u64()?)),
            TAG_STR => State::Str(self.string()?),
            TAG_LIST => {
                let count = self.u32()? as usize;
                // Each item is at least one tag byte — bound up front so
                // a corrupt huge count cannot trigger a giant allocation.
                if count > self.bytes.len() - self.pos {
                    return Err(PersistError::Corrupt("list count exceeds payload".into()));
                }
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    items.push(self.value()?);
                }
                State::List(items)
            }
            TAG_MAP => {
                let count = self.u32()? as usize;
                if count > self.bytes.len() - self.pos {
                    return Err(PersistError::Corrupt("map count exceeds payload".into()));
                }
                let mut pairs = Vec::with_capacity(count);
                for _ in 0..count {
                    let key = self.string()?;
                    let value = self.value()?;
                    pairs.push((key, value));
                }
                State::Map(pairs)
            }
            other => {
                return Err(PersistError::Corrupt(format!(
                    "unknown state tag {other} at offset {}",
                    self.pos - 1
                )))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(value: State) {
        let encoded = value.encode();
        assert_eq!(State::decode(&encoded).unwrap(), value);
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(State::Null);
        roundtrip(State::Bool(true));
        roundtrip(State::Bool(false));
        roundtrip(State::I64(-42));
        roundtrip(State::I64(i64::MIN));
        roundtrip(State::U64(u64::MAX));
        roundtrip(State::Str("hello ✓".into()));
    }

    #[test]
    fn floats_roundtrip_bit_exact() {
        for v in [0.1, -0.0, f64::NEG_INFINITY, 1e-300, 123.456789] {
            let encoded = State::F64(v).encode();
            match State::decode(&encoded).unwrap() {
                State::F64(back) => assert_eq!(back.to_bits(), v.to_bits()),
                other => panic!("decoded {other:?}"),
            }
        }
        // NaN survives with its exact payload too.
        let nan = f64::from_bits(0x7FF8_0000_DEAD_BEEF);
        let encoded = State::F64(nan).encode();
        match State::decode(&encoded).unwrap() {
            State::F64(back) => assert_eq!(back.to_bits(), nan.to_bits()),
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn nested_structures_roundtrip() {
        let value = State::map()
            .with("iteration", State::U64(17))
            .with("wips", State::F64(104.25))
            .with("line_wips", State::f64_list(&[1.0, 2.5, 3.25]))
            .with(
                "servers",
                State::List(vec![
                    State::map().with("values", State::i64_list(&[1, -2, 3])),
                    State::Null,
                ]),
            );
        roundtrip(value);
    }

    #[test]
    fn map_preserves_insertion_order() {
        let m = State::map()
            .with("zeta", State::U64(1))
            .with("alpha", State::U64(2));
        let decoded = State::decode(&m.encode()).unwrap();
        match decoded {
            State::Map(pairs) => {
                assert_eq!(pairs[0].0, "zeta");
                assert_eq!(pairs[1].0, "alpha");
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn set_replaces_existing_key() {
        let mut m = State::map().with("k", State::U64(1));
        m.set("k", State::U64(2));
        assert_eq!(m.get("k").unwrap().as_u64(), Some(2));
        match &m {
            State::Map(pairs) => assert_eq!(pairs.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(State::decode(&[]).is_err());
        assert!(State::decode(&[99]).is_err(), "unknown tag");
        assert!(State::decode(&[TAG_I64, 1, 2]).is_err(), "truncated i64");
        // Trailing bytes after a valid value.
        let mut bytes = State::U64(5).encode();
        bytes.push(0);
        assert!(State::decode(&bytes).is_err());
        // Huge list count with no payload must not allocate or panic.
        let mut huge = vec![TAG_LIST];
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(State::decode(&huge).is_err());
    }

    #[test]
    fn typed_field_accessors_report_schema_errors() {
        let m = State::map()
            .with("n", State::U64(3))
            .with("s", State::Str("x".into()));
        assert_eq!(m.field_u64("n").unwrap(), 3);
        assert_eq!(m.field_str("s").unwrap(), "x");
        assert!(matches!(
            m.field_u64("missing"),
            Err(PersistError::Schema(_))
        ));
        assert!(matches!(m.field_f64("n"), Err(PersistError::Schema(_))));
    }

    #[test]
    fn int_list_helpers() {
        let l = State::i64_list(&[5, -6]);
        assert_eq!(l.to_i64_vec().unwrap(), vec![5, -6]);
        let f = State::f64_list(&[0.5]);
        assert_eq!(f.to_f64_vec().unwrap(), vec![0.5]);
        assert!(State::U64(1).to_i64_vec().is_err());
    }
}
