//! # persist — crash-safe session persistence
//!
//! Long tuning sessions must survive the tuner process dying mid-run:
//! the paper's Fig. 4/5 curves take hundreds of measured iterations, and
//! losing the simplex state to a crash means rerunning the whole
//! workload. This crate provides the durability layer:
//!
//! * [`state::State`] — a small self-describing value tree (null, bool,
//!   integers, exact-bit floats, strings, lists, maps) with a compact
//!   binary codec. Everything that is checkpointed round-trips through
//!   `State`, so snapshot and journal payloads share one format.
//! * [`Checkpointable`] — the trait session components implement to
//!   export and restore their state as a `State` value.
//! * [`journal::Journal`] — an append-only write-ahead log of
//!   length-prefixed, CRC-32-checksummed frames. Reading tolerates a
//!   torn or truncated tail (the crash case) by stopping at the first
//!   bad frame.
//! * [`snapshot`] — whole-state snapshot files written atomically
//!   (temp file + fsync + rename) and verified by checksum on load.
//! * [`store::CheckpointStore`] — the on-disk layout tying both
//!   together: periodic snapshots plus a journal of per-iteration
//!   deltas. Recovery loads the newest intact snapshot (quarantining
//!   corrupt ones rather than panicking) and replays the journal tail.
//!
//! The crate is deliberately dependency-free and knows nothing about
//! tuning: callers define what their `State` trees mean.

// Persistence code must surface failures as `PersistError`, never
// panic; test modules are exempt. CI enforces this with a clippy step.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod crc;
pub mod frame;
pub mod journal;
pub mod snapshot;
pub mod state;
pub mod store;

pub use journal::{Journal, JournalScan};
pub use state::State;
pub use store::{CheckpointStore, Recovery};

use std::fmt;

/// Why a persistence operation failed.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// Stored bytes fail checksum or structural validation.
    Corrupt(String),
    /// The bytes decode but do not match the expected state shape.
    Schema(String),
    /// The component does not support checkpointing.
    Unsupported(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            PersistError::Corrupt(msg) => write!(f, "corrupt checkpoint data: {msg}"),
            PersistError::Schema(msg) => write!(f, "checkpoint schema mismatch: {msg}"),
            PersistError::Unsupported(what) => {
                write!(f, "component does not support checkpointing: {what}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// A component whose live state can be exported to a [`State`] value and
/// later restored from one, reproducing the original behaviour exactly
/// (same proposals, same RNG draws, same decisions).
pub trait Checkpointable {
    /// Export the current state.
    fn save_state(&self) -> State;

    /// Restore from a previously saved state. Implementations must
    /// validate the shape and return [`PersistError::Schema`] on
    /// mismatch rather than panicking.
    fn restore_state(&mut self, state: &State) -> Result<(), PersistError>;
}
