//! Length-prefixed, checksummed journal frames.
//!
//! Wire layout of one frame:
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! ```
//!
//! The reader walks frames front to back and stops at the first frame
//! that is incomplete (torn write at a crash) or fails its checksum —
//! everything before that point is trusted, everything after is
//! discarded. [`scan`] reports how many bytes of the buffer were valid
//! so the caller can truncate the file back to a clean frame boundary
//! before appending again.

use crate::crc::crc32;
use crate::PersistError;

/// Frame header size: length + checksum.
pub const HEADER_LEN: usize = 8;

/// Upper bound on a single frame payload (16 MiB) — a sanity check that
/// stops a corrupt length prefix from looking like a gigantic frame.
pub const MAX_PAYLOAD: usize = 16 << 20;

/// Append one frame wrapping `payload` to `out`.
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// The result of scanning a frame buffer.
#[derive(Debug)]
pub struct FrameScan {
    /// Payloads of all frames up to the first bad/incomplete one.
    pub payloads: Vec<Vec<u8>>,
    /// Bytes of the buffer covered by valid frames (a clean boundary).
    pub valid_len: u64,
    /// Whether trailing bytes past `valid_len` were discarded.
    pub torn_tail: bool,
}

/// Scan `bytes` for consecutive valid frames, tolerating a torn tail.
pub fn scan(bytes: &[u8]) -> FrameScan {
    let mut payloads = Vec::new();
    let mut pos = 0usize;
    while let Some(header) = bytes.get(pos..pos + HEADER_LEN) {
        let mut len_buf = [0u8; 4];
        len_buf.copy_from_slice(&header[..4]);
        let len = u32::from_le_bytes(len_buf) as usize;
        let mut crc_buf = [0u8; 4];
        crc_buf.copy_from_slice(&header[4..]);
        let expected_crc = u32::from_le_bytes(crc_buf);
        if len > MAX_PAYLOAD {
            break;
        }
        let Some(payload) = bytes.get(pos + HEADER_LEN..pos + HEADER_LEN + len) else {
            break;
        };
        if crc32(payload) != expected_crc {
            break;
        }
        payloads.push(payload.to_vec());
        pos += HEADER_LEN + len;
    }
    FrameScan {
        payloads,
        valid_len: pos as u64,
        torn_tail: pos != bytes.len(),
    }
}

/// Scan, but treat any torn tail as corruption (used for snapshot-style
/// payloads where partial data is never acceptable).
pub fn scan_strict(bytes: &[u8]) -> Result<Vec<Vec<u8>>, PersistError> {
    let result = scan(bytes);
    if result.torn_tail {
        return Err(PersistError::Corrupt(format!(
            "invalid frame data after byte {}",
            result.valid_len
        )));
    }
    Ok(result.payloads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first");
        write_frame(&mut buf, b"");
        write_frame(&mut buf, b"third frame");
        let result = scan(&buf);
        assert_eq!(
            result.payloads,
            vec![b"first".to_vec(), Vec::new(), b"third frame".to_vec()]
        );
        assert_eq!(result.valid_len, buf.len() as u64);
        assert!(!result.torn_tail);
    }

    #[test]
    fn torn_tail_is_discarded_at_a_clean_boundary() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"kept");
        let clean = buf.len() as u64;
        // A torn write: header promises 100 bytes but only 3 arrived.
        buf.extend_from_slice(&100u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(b"abc");
        let result = scan(&buf);
        assert_eq!(result.payloads, vec![b"kept".to_vec()]);
        assert_eq!(result.valid_len, clean);
        assert!(result.torn_tail);
    }

    #[test]
    fn checksum_mismatch_stops_the_scan() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"good");
        let boundary = buf.len();
        write_frame(&mut buf, b"flipped");
        *buf.last_mut().unwrap() ^= 0xFF;
        let result = scan(&buf);
        assert_eq!(result.payloads.len(), 1);
        assert_eq!(result.valid_len, boundary as u64);
        assert!(result.torn_tail);
    }

    #[test]
    fn absurd_length_prefix_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let result = scan(&buf);
        assert!(result.payloads.is_empty());
        assert_eq!(result.valid_len, 0);
    }

    #[test]
    fn strict_scan_errors_on_tail() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"ok");
        assert!(scan_strict(&buf).is_ok());
        buf.push(7);
        assert!(matches!(scan_strict(&buf), Err(PersistError::Corrupt(_))));
    }
}
