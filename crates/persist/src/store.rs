//! The on-disk checkpoint layout: snapshots + journal in one directory.
//!
//! ```text
//! <dir>/
//!   journal.wal            append-only per-iteration frames
//!   snap-00000040.ckpt     atomic snapshot taken after iteration 40
//!   snap-00000080.ckpt     ... the newest two snapshots are kept
//!   snap-00000120.ckpt.corrupt   quarantined (failed checksum on load)
//! ```
//!
//! Recovery policy: load the newest snapshot that passes its checksum —
//! corrupt ones are renamed aside (quarantined), never deleted and never
//! trusted — then replay the journal records that come after it. A torn
//! journal tail is truncated back to the last clean frame boundary. If
//! no snapshot survives, replay starts from the beginning of the
//! journal.

use crate::journal::Journal;
use crate::snapshot;
use crate::state::State;
use crate::PersistError;
use std::path::{Path, PathBuf};

/// Journal file name inside a checkpoint directory.
pub const JOURNAL_FILE: &str = "journal.wal";

/// How many recent snapshots to keep on disk.
pub const KEEP_SNAPSHOTS: usize = 2;

/// What recovery found in a checkpoint directory.
#[derive(Debug)]
pub struct Recovery {
    /// Newest intact snapshot, as `(iteration, state)`.
    pub snapshot: Option<(u64, State)>,
    /// All valid journal records, oldest first (including ones already
    /// covered by the snapshot — the caller filters by iteration).
    pub journal: Vec<State>,
    /// Snapshot files that failed verification and were renamed aside.
    pub quarantined: Vec<PathBuf>,
    /// Whether the journal had a torn tail (now truncated away).
    pub torn_tail: bool,
}

/// A checkpoint directory opened for writing.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    journal: Option<Journal>,
}

impl CheckpointStore {
    /// Open (creating if needed) a checkpoint directory. No journal is
    /// opened yet: call [`CheckpointStore::start_fresh`] or
    /// [`CheckpointStore::recover`] first.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, PersistError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(CheckpointStore { dir, journal: None })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn journal_path(&self) -> PathBuf {
        self.dir.join(JOURNAL_FILE)
    }

    fn snapshot_path(&self, iteration: u64) -> PathBuf {
        self.dir.join(format!("snap-{iteration:08}.ckpt"))
    }

    /// Snapshot files present, sorted oldest → newest by iteration.
    fn snapshot_files(&self) -> Result<Vec<(u64, PathBuf)>, PersistError> {
        let mut found = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if let Some(digits) = name
                .strip_prefix("snap-")
                .and_then(|rest| rest.strip_suffix(".ckpt"))
            {
                if let Ok(iteration) = digits.parse::<u64>() {
                    found.push((iteration, path));
                }
            }
        }
        found.sort_by_key(|(iteration, _)| *iteration);
        Ok(found)
    }

    /// Wipe any previous session's artifacts and start an empty journal.
    pub fn start_fresh(&mut self) -> Result<(), PersistError> {
        for (_, path) in self.snapshot_files()? {
            std::fs::remove_file(&path)?;
        }
        let journal_path = self.journal_path();
        if journal_path.exists() {
            std::fs::remove_file(&journal_path)?;
        }
        self.journal = Some(Journal::create(journal_path)?);
        Ok(())
    }

    /// Recover a previous session: pick the newest intact snapshot
    /// (quarantining corrupt ones), repair and reopen the journal for
    /// appending, and return everything found.
    pub fn recover(&mut self) -> Result<Recovery, PersistError> {
        let mut snapshot_state = None;
        let mut quarantined = Vec::new();
        let mut files = self.snapshot_files()?;
        while let Some((iteration, path)) = files.pop() {
            match snapshot::load(&path) {
                Ok(state) => {
                    snapshot_state = Some((iteration, state));
                    break;
                }
                Err(PersistError::Corrupt(_)) | Err(PersistError::Schema(_)) => {
                    let aside = path.with_extension("ckpt.corrupt");
                    std::fs::rename(&path, &aside)?;
                    quarantined.push(aside);
                }
                Err(e) => return Err(e),
            }
        }
        let (journal, scan) = Journal::open_append(self.journal_path())?;
        self.journal = Some(journal);
        Ok(Recovery {
            snapshot: snapshot_state,
            journal: scan.records,
            quarantined,
            torn_tail: scan.torn_tail,
        })
    }

    /// Append one record to the journal.
    pub fn append(&mut self, record: &State) -> Result<(), PersistError> {
        match self.journal.as_mut() {
            Some(journal) => journal.append(record),
            None => Err(PersistError::Schema(
                "checkpoint store has no open journal (call start_fresh or recover)".into(),
            )),
        }
    }

    /// Write an atomic snapshot for `iteration` and prune old ones down
    /// to [`KEEP_SNAPSHOTS`]. The journal is fsynced first so a snapshot
    /// never claims more progress than the journal can prove.
    pub fn write_snapshot(&mut self, iteration: u64, state: &State) -> Result<(), PersistError> {
        if let Some(journal) = self.journal.as_mut() {
            journal.sync()?;
        }
        snapshot::write(&self.snapshot_path(iteration), state)?;
        let files = self.snapshot_files()?;
        if files.len() > KEEP_SNAPSHOTS {
            for (_, path) in &files[..files.len() - KEEP_SNAPSHOTS] {
                std::fs::remove_file(path)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("persist-store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn record(i: u64) -> State {
        State::map().with("iteration", State::U64(i))
    }

    #[test]
    fn fresh_session_then_recover_replays_everything() {
        let dir = temp_dir("fresh");
        let mut store = CheckpointStore::open(&dir).unwrap();
        store.start_fresh().unwrap();
        for i in 0..6 {
            store.append(&record(i)).unwrap();
            if (i + 1) % 3 == 0 {
                store.write_snapshot(i + 1, &State::U64(i + 1)).unwrap();
            }
        }
        drop(store);

        let mut store = CheckpointStore::open(&dir).unwrap();
        let rec = store.recover().unwrap();
        let (snap_iter, snap_state) = rec.snapshot.unwrap();
        assert_eq!(snap_iter, 6);
        assert_eq!(snap_state, State::U64(6));
        assert_eq!(rec.journal.len(), 6);
        assert!(rec.quarantined.is_empty());
        assert!(!rec.torn_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prunes_to_two_snapshots() {
        let dir = temp_dir("prune");
        let mut store = CheckpointStore::open(&dir).unwrap();
        store.start_fresh().unwrap();
        for i in 1..=5u64 {
            store.write_snapshot(i, &State::U64(i)).unwrap();
        }
        let names: Vec<_> = store.snapshot_files().unwrap();
        assert_eq!(
            names.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![4, 5]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_and_quarantines() {
        let dir = temp_dir("quarantine");
        let mut store = CheckpointStore::open(&dir).unwrap();
        store.start_fresh().unwrap();
        store.write_snapshot(2, &State::U64(2)).unwrap();
        store.write_snapshot(4, &State::U64(4)).unwrap();
        drop(store);
        // Flip a byte in the newest snapshot body.
        let newest = dir.join("snap-00000004.ckpt");
        let mut bytes = std::fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();

        let mut store = CheckpointStore::open(&dir).unwrap();
        let rec = store.recover().unwrap();
        assert_eq!(rec.snapshot.unwrap(), (2, State::U64(2)));
        assert_eq!(rec.quarantined.len(), 1);
        assert!(rec.quarantined[0].to_string_lossy().ends_with(".corrupt"));
        assert!(!newest.exists(), "corrupt file renamed aside");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn all_snapshots_corrupt_means_journal_only_recovery() {
        let dir = temp_dir("allbad");
        let mut store = CheckpointStore::open(&dir).unwrap();
        store.start_fresh().unwrap();
        store.append(&record(0)).unwrap();
        store.write_snapshot(1, &State::U64(1)).unwrap();
        drop(store);
        let snap = dir.join("snap-00000001.ckpt");
        std::fs::write(&snap, b"AHCKPT\x00\x01garbage").unwrap();

        let mut store = CheckpointStore::open(&dir).unwrap();
        let rec = store.recover().unwrap();
        assert!(rec.snapshot.is_none());
        assert_eq!(rec.journal.len(), 1);
        assert_eq!(rec.quarantined.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn start_fresh_wipes_previous_session() {
        let dir = temp_dir("wipe");
        let mut store = CheckpointStore::open(&dir).unwrap();
        store.start_fresh().unwrap();
        store.append(&record(0)).unwrap();
        store.write_snapshot(1, &State::U64(1)).unwrap();
        store.start_fresh().unwrap();
        let rec = store.recover().unwrap();
        assert!(rec.snapshot.is_none());
        assert!(rec.journal.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_without_journal_is_a_typed_error() {
        let dir = temp_dir("nojournal");
        let mut store = CheckpointStore::open(&dir).unwrap();
        assert!(matches!(
            store.append(&record(0)),
            Err(PersistError::Schema(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
