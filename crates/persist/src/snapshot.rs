//! Atomic whole-state snapshots.
//!
//! File layout:
//!
//! ```text
//! [magic: 8 bytes "AHCKPT\x00\x01"] [crc32(body): u32 LE] [body: State]
//! ```
//!
//! Writes are atomic: the bytes go to a `.tmp` sibling, are fsynced,
//! and the file is renamed into place (rename is atomic on POSIX
//! filesystems), so a crash leaves either the old snapshot or the new
//! one — never a half-written file under the real name. Loads verify
//! magic and checksum and surface [`PersistError::Corrupt`] so callers
//! can quarantine the file and fall back to an older snapshot.

use crate::crc::crc32;
use crate::state::State;
use crate::PersistError;
use std::fs::File;
use std::io::Write;
use std::path::Path;

/// Snapshot file magic: format name + version byte.
pub const MAGIC: &[u8; 8] = b"AHCKPT\x00\x01";

/// Write `state` to `path` atomically (temp + fsync + rename).
pub fn write(path: &Path, state: &State) -> Result<(), PersistError> {
    let body = state.encode();
    let mut bytes = Vec::with_capacity(MAGIC.len() + 4 + body.len());
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&crc32(&body).to_le_bytes());
    bytes.extend_from_slice(&body);

    let tmp = path.with_extension("tmp");
    {
        let mut file = File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // Persist the rename itself (directory entry); best-effort on
    // filesystems that do not support directory fsync.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Load and verify a snapshot.
pub fn load(path: &Path) -> Result<State, PersistError> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < MAGIC.len() + 4 {
        return Err(PersistError::Corrupt("snapshot file too short".into()));
    }
    let (magic, rest) = bytes.split_at(MAGIC.len());
    if magic != MAGIC {
        return Err(PersistError::Corrupt("bad snapshot magic".into()));
    }
    let (crc_bytes, body) = rest.split_at(4);
    let mut crc_buf = [0u8; 4];
    crc_buf.copy_from_slice(crc_bytes);
    let expected = u32::from_le_bytes(crc_buf);
    if crc32(body) != expected {
        return Err(PersistError::Corrupt("snapshot checksum mismatch".into()));
    }
    State::decode(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("persist-snap-{}-{name}", std::process::id()))
    }

    #[test]
    fn write_then_load_roundtrips() {
        let path = temp_path("ok.ckpt");
        let state = State::map()
            .with("iteration", State::U64(40))
            .with("best", State::F64(123.456));
        write(&path, &state).unwrap();
        assert_eq!(load(&path).unwrap(), state);
        assert!(
            !path.with_extension("tmp").exists(),
            "tmp cleaned up by rename"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flip_is_detected() {
        let path = temp_path("flip.ckpt");
        write(&path, &State::map().with("v", State::U64(7))).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() - 3;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(load(&path), Err(PersistError::Corrupt(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_and_bad_magic_are_corrupt() {
        let path = temp_path("short.ckpt");
        std::fs::write(&path, b"AHCK").unwrap();
        assert!(matches!(load(&path), Err(PersistError::Corrupt(_))));
        std::fs::write(&path, b"NOTMAGIC\x00\x00\x00\x00").unwrap();
        assert!(matches!(load(&path), Err(PersistError::Corrupt(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load(&temp_path("never.ckpt")),
            Err(PersistError::Io(_))
        ));
    }
}
