//! Zero-dependency observability layer.
//!
//! Two halves, deliberately decoupled:
//!
//! * **Metrics** — a [`Registry`] of named [`Counter`]s, [`Gauge`]s and
//!   log-bucketed [`Histogram`]s. Handles are `Arc`-backed and lock-free
//!   on the hot path (one atomic op per update); the registry mutex is
//!   touched only at registration and snapshot time. Snapshots are plain
//!   data and mergeable, so per-thread or per-replication registries can
//!   be combined after a parallel run.
//!
//! * **Traces** — append-only streams of [`TraceRecord`]s (a record kind
//!   plus ordered key/value fields) written through the [`TraceSink`]
//!   trait. [`JsonlWriter`] emits one JSON object per line, [`CsvWriter`]
//!   a header + rows, [`MemorySink`] collects records for tests, and
//!   [`NullSink`] discards everything at zero cost. [`Span`] wraps a
//!   record with a wall-clock duration.
//!
//! Everything here is `std`-only: no serde, no external crates.

// Library code must surface failures as typed errors, never panic;
// test modules (cfg(test)) are exempt. CI enforces this with a clippy
// step dedicated to these crates.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod hist;
mod metrics;
mod span;
mod trace;
mod value;

pub use hist::{HistSnapshot, Histogram, BUCKETS};
pub use metrics::{Counter, Gauge, MetricsSnapshot, Registry};
pub use span::Span;
pub use trace::{CsvWriter, JsonlWriter, MemorySink, NullSink, TraceRecord, TraceSink};
pub use value::Value;
