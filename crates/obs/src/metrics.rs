//! Named metrics: counters, gauges, histograms, and the registry that
//! owns them. Handles are cheap clones of `Arc`ed atomics — updating a
//! metric never touches the registry lock.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::hist::{HistSnapshot, Histogram};

/// Monotonic counter.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins float gauge (f64 bits in an atomic word).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Keep the larger of the current value and `v` (high-water mark).
    pub fn set_max(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            if f64::from_bits(cur) >= v {
                return;
            }
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Lock a registry map, recovering from poisoning: the maps hold only
/// `Arc` handles, so state left by a panicked thread is still coherent.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[derive(Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    hists: Mutex<BTreeMap<String, Histogram>>,
}

/// Shared, thread-safe metrics registry. Cloning shares the metrics.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name` and hand back a lock-free handle.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = lock(&self.inner.counters);
        map.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = lock(&self.inner.gauges);
        map.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = lock(&self.inner.hists);
        map.entry(name.to_string()).or_default().clone()
    }

    /// Copy out every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: lock(&self.inner.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: lock(&self.inner.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            hists: lock(&self.inner.hists)
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Plain-data copy of a registry at one instant.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub hists: Vec<(String, HistSnapshot)>,
}

impl MetricsSnapshot {
    /// Human-readable dump for the `--metrics` CLI flag.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "{k} = {v}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "{k} = {v:.4}");
        }
        for (k, h) in &self.hists {
            if h.count == 0 {
                let _ = writeln!(out, "{k}: count=0");
            } else {
                let _ = writeln!(
                    out,
                    "{k}: count={} mean={:.4} min={:.4} p50~{:.4} max={:.4}",
                    h.count,
                    h.mean(),
                    h.min,
                    h.quantile(0.5),
                    h.max
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_state_across_handles() {
        let reg = Registry::new();
        let a = reg.counter("events");
        let b = reg.counter("events");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("events").get(), 3);

        let g = reg.gauge("depth");
        g.set(4.5);
        assert_eq!(reg.gauge("depth").get(), 4.5);
        g.set_max(2.0);
        assert_eq!(g.get(), 4.5);
        g.set_max(9.0);
        assert_eq!(g.get(), 9.0);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = Registry::new();
        reg.counter("z").inc();
        reg.counter("a").inc();
        reg.gauge("g").set(1.0);
        reg.histogram("h").record(2.0);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters
                .iter()
                .map(|(k, _)| k.as_str())
                .collect::<Vec<_>>(),
            vec!["a", "z"]
        );
        assert_eq!(snap.gauges.len(), 1);
        assert_eq!(snap.hists[0].1.count, 1);
        let text = snap.render_text();
        assert!(text.contains("a = 1"));
        assert!(text.contains("h: count=1"));
    }
}
