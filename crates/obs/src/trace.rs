//! Structured trace records and the sinks that persist them.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::value::Value;

/// One structured event: a `kind` tag plus ordered key/value fields.
/// Field order is preserved — JSONL keys and CSV columns come out in
/// insertion order, which keeps golden files stable.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    kind: String,
    fields: Vec<(String, Value)>,
}

impl TraceRecord {
    pub fn new(kind: impl Into<String>) -> Self {
        TraceRecord {
            kind: kind.into(),
            fields: Vec::new(),
        }
    }

    /// Builder-style field append.
    pub fn field(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.push(key, value);
        self
    }

    /// In-place field append.
    pub fn push(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        self.fields.push((key.into(), value.into()));
    }

    pub fn kind(&self) -> &str {
        &self.kind
    }

    pub fn fields(&self) -> &[(String, Value)] {
        &self.fields
    }

    /// First field named `key`, if any.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// One JSON object: `{"kind":"...","k1":v1,...}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.fields.len() * 16);
        out.push_str("{\"kind\":");
        Value::Str(self.kind.clone()).write_json(&mut out);
        for (k, v) in &self.fields {
            out.push(',');
            Value::Str(k.clone()).write_json(&mut out);
            out.push(':');
            v.write_json(&mut out);
        }
        out.push('}');
        out
    }
}

/// Destination for trace records. Implementations decide the encoding.
pub trait TraceSink {
    fn emit(&mut self, record: &TraceRecord);

    fn flush(&mut self) {}
}

/// One JSON object per line.
pub struct JsonlWriter<W: Write> {
    w: W,
}

impl JsonlWriter<BufWriter<File>> {
    /// Create (truncating) a JSONL file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlWriter {
            w: BufWriter::new(File::create(path)?),
        })
    }

    /// Open `path` for appending (creating it if absent) — used by
    /// resumed sessions so the continued trace lands in the same stream
    /// as the interrupted run.
    pub fn append(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlWriter {
            w: BufWriter::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            ),
        })
    }
}

impl<W: Write> JsonlWriter<W> {
    pub fn new(w: W) -> Self {
        JsonlWriter { w }
    }

    pub fn into_inner(self) -> W {
        self.w
    }
}

impl<W: Write> TraceSink for JsonlWriter<W> {
    fn emit(&mut self, record: &TraceRecord) {
        let _ = writeln!(self.w, "{}", record.to_json());
        // Flush per record, matching the checkpoint journal's durability:
        // an abrupt process death must not leave the trace behind the
        // journal, or a resumed session's spliced JSONL would have a
        // hole where the buffered tail died with the process.
        let _ = self.w.flush();
    }

    fn flush(&mut self) {
        let _ = self.w.flush();
    }
}

/// CSV with a header derived from the first record's field names (the
/// `kind` is not a column; mixed-kind streams should use JSONL). Later
/// records are emitted positionally by header lookup; missing fields
/// become empty cells.
pub struct CsvWriter<W: Write> {
    w: W,
    header: Option<Vec<String>>,
}

impl CsvWriter<BufWriter<File>> {
    /// Create (truncating) a CSV file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(CsvWriter::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> CsvWriter<W> {
    pub fn new(w: W) -> Self {
        CsvWriter { w, header: None }
    }

    pub fn into_inner(self) -> W {
        self.w
    }
}

/// Quote a CSV cell if it needs quoting (comma, quote, newline).
pub(crate) fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

impl<W: Write> TraceSink for CsvWriter<W> {
    fn emit(&mut self, record: &TraceRecord) {
        let header = match &mut self.header {
            Some(header) => header,
            none => {
                let cols: Vec<String> = record.fields().iter().map(|(k, _)| k.clone()).collect();
                let _ = writeln!(
                    self.w,
                    "{}",
                    cols.iter()
                        .map(|c| csv_field(c))
                        .collect::<Vec<_>>()
                        .join(",")
                );
                none.insert(cols)
            }
        };
        let row: Vec<String> = header
            .iter()
            .map(|col| {
                record
                    .get(col)
                    .map(|v| csv_field(&v.to_csv_cell()))
                    .unwrap_or_default()
            })
            .collect();
        let _ = writeln!(self.w, "{}", row.join(","));
    }

    fn flush(&mut self) {
        let _ = self.w.flush();
    }
}

/// Collects records in memory — the test sink.
#[derive(Default)]
pub struct MemorySink {
    pub records: Vec<TraceRecord>,
}

impl MemorySink {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }
}

impl TraceSink for MemorySink {
    fn emit(&mut self, record: &TraceRecord) {
        self.records.push(record.clone());
    }
}

/// Discards everything.
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&mut self, _record: &TraceRecord) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> TraceRecord {
        TraceRecord::new("iteration")
            .field("i", 3u32)
            .field("wips", 12.5)
            .field("workload", "Browsing")
    }

    #[test]
    fn jsonl_format() {
        let mut w = JsonlWriter::new(Vec::new());
        w.emit(&rec());
        let out = String::from_utf8(w.into_inner()).unwrap();
        assert_eq!(
            out,
            "{\"kind\":\"iteration\",\"i\":3,\"wips\":12.5,\"workload\":\"Browsing\"}\n"
        );
    }

    #[test]
    fn csv_header_from_first_record_and_missing_fields_empty() {
        let mut w = CsvWriter::new(Vec::new());
        w.emit(&rec());
        w.emit(&TraceRecord::new("iteration").field("i", 4u32));
        let out = String::from_utf8(w.into_inner()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "i,wips,workload");
        assert_eq!(lines[1], "3,12.5,Browsing");
        assert_eq!(lines[2], "4,,");
    }

    #[test]
    fn csv_quoting() {
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("plain"), "plain");
    }

    #[test]
    fn memory_sink_collects() {
        let mut m = MemorySink::new();
        m.emit(&rec());
        assert_eq!(m.records.len(), 1);
        assert_eq!(m.records[0].get("i"), Some(&Value::UInt(3)));
        assert_eq!(m.records[0].kind(), "iteration");
    }
}
