//! Log-bucketed histogram with a lock-free hot path.
//!
//! Values land in one of [`BUCKETS`] power-of-two buckets keyed by the
//! IEEE-754 exponent of the sample, so `record` is a handful of atomic
//! ops and no floating-point log. Bucket 0 collects non-positive and
//! subnormal samples; bucket `i` (for `i >= 1`) covers
//! `[2^(i - 1 - ZERO_BUCKET), 2^(i - ZERO_BUCKET))`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of buckets (1 underflow + 63 exponent ranges, covering
/// roughly `2^-31 .. 2^32` — queue depths, seconds, WIPS all fit).
pub const BUCKETS: usize = 64;

/// Bucket index whose range starts at `2^0 = 1.0`.
const ZERO_BUCKET: i64 = 32;

struct Core {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    /// f64 bits, updated with a CAS loop.
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// Cloneable handle to a shared histogram.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<Core>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Map a sample to its bucket index.
fn bucket_of(v: f64) -> usize {
    if v.is_nan() || v <= 0.0 {
        return 0;
    }
    if !v.is_finite() {
        return BUCKETS - 1;
    }
    let exp = ((v.to_bits() >> 52) & 0x7ff) as i64 - 1023;
    let idx = exp + ZERO_BUCKET;
    idx.clamp(0, BUCKETS as i64 - 1) as usize
}

/// Lower bound of bucket `i` (`0.0` for the underflow bucket).
pub(crate) fn bucket_lower(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        (2.0f64).powi((i as i64 - ZERO_BUCKET) as i32)
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            core: Arc::new(Core {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0f64.to_bits()),
                min: AtomicU64::new(f64::INFINITY.to_bits()),
                max: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            }),
        }
    }

    /// Record one sample. Lock-free; safe from any thread.
    pub fn record(&self, v: f64) {
        let c = &self.core;
        c.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        cas_f64(&c.sum, |s| s + v);
        cas_f64(&c.min, |m| m.min(v));
        cas_f64(&c.max, |m| m.max(v));
    }

    /// Number of samples so far.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Copy out the current state.
    pub fn snapshot(&self) -> HistSnapshot {
        let c = &self.core;
        HistSnapshot {
            buckets: std::array::from_fn(|i| c.buckets[i].load(Ordering::Relaxed)),
            count: c.count.load(Ordering::Relaxed),
            sum: f64::from_bits(c.sum.load(Ordering::Relaxed)),
            min: f64::from_bits(c.min.load(Ordering::Relaxed)),
            max: f64::from_bits(c.max.load(Ordering::Relaxed)),
        }
    }
}

fn cas_f64(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Plain-data copy of a histogram; mergeable across registries.
#[derive(Debug, Clone)]
pub struct HistSnapshot {
    pub buckets: [u64; BUCKETS],
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl HistSnapshot {
    pub fn empty() -> Self {
        HistSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Fold another snapshot into this one (e.g. per-thread histograms
    /// after a parallel sweep).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Approximate quantile (`0.0 ..= 1.0`) from the bucket counts: walks
    /// to the bucket holding the target rank and returns its geometric
    /// interior. Exact `min`/`max` are used at the extremes.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = (q * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let lo = bucket_lower(i).max(self.min.max(0.0));
                let hi = if i + 1 < BUCKETS {
                    bucket_lower(i + 1)
                } else {
                    self.max
                }
                .min(self.max);
                // Geometric midpoint where defined, else arithmetic.
                return if lo > 0.0 && hi > lo {
                    (lo * hi).sqrt()
                } else {
                    (lo + hi) / 2.0
                };
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_powers_of_two() {
        // 1.0 lives in the bucket starting at 2^0.
        assert_eq!(bucket_of(1.0), ZERO_BUCKET as usize);
        assert_eq!(bucket_of(1.5), ZERO_BUCKET as usize);
        assert_eq!(bucket_of(2.0), ZERO_BUCKET as usize + 1);
        assert_eq!(bucket_of(0.5), ZERO_BUCKET as usize - 1);
        assert_eq!(bucket_of(0.75), ZERO_BUCKET as usize - 1);
    }

    #[test]
    fn bucketing_edge_cases() {
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(-3.0), 0);
        assert_eq!(bucket_of(f64::NAN), 0);
        assert_eq!(bucket_of(f64::INFINITY), BUCKETS - 1);
        assert_eq!(bucket_of(1e300), BUCKETS - 1);
        assert_eq!(bucket_of(1e-300), 0);
    }

    #[test]
    fn bucket_bounds_bracket_samples() {
        for &v in &[0.001, 0.1, 0.5, 1.0, 3.0, 17.0, 1000.0, 123456.0] {
            let i = bucket_of(v);
            assert!(v >= bucket_lower(i), "{v} < lower of bucket {i}");
            if i + 1 < BUCKETS {
                assert!(v < bucket_lower(i + 1), "{v} >= upper of bucket {i}");
            }
        }
    }

    #[test]
    fn record_and_snapshot() {
        let h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert!((s.sum - 10.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4);
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(1.0);
        a.record(2.0);
        b.record(100.0);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.sum - 103.0).abs() < 1e-9);
        assert_eq!(s.buckets.iter().sum::<u64>(), 3);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a = Histogram::new();
        a.record(5.0);
        let mut s = a.snapshot();
        s.merge(&HistSnapshot::empty());
        assert_eq!(s.count, 1);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn quantile_is_order_of_magnitude_right() {
        let h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.5);
        assert!((250.0..=1000.0).contains(&p50), "p50 = {p50}");
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 1000.0);
    }

    #[test]
    fn concurrent_recording() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..1000 {
                        h.record(1.0 + (i % 7) as f64);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 4000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4000);
    }
}
