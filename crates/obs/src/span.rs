//! Wall-clock spans: a trace record that measures its own duration.

use std::time::Instant;

use crate::trace::{TraceRecord, TraceSink};
use crate::value::Value;

/// A span starts timing at [`Span::begin`], accumulates fields, and on
/// [`Span::end`] emits its record with a trailing `wall_ms` field.
pub struct Span {
    record: TraceRecord,
    start: Instant,
}

impl Span {
    pub fn begin(kind: impl Into<String>) -> Self {
        Span {
            record: TraceRecord::new(kind),
            start: Instant::now(),
        }
    }

    /// Builder-style field append.
    pub fn field(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.record.push(key, value);
        self
    }

    /// In-place field append.
    pub fn push(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        self.record.push(key, value);
    }

    /// Elapsed milliseconds since `begin`.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// Stamp `wall_ms` and emit into `sink`.
    pub fn end(mut self, sink: &mut dyn TraceSink) {
        let ms = self.elapsed_ms();
        self.record.push("wall_ms", ms);
        sink.emit(&self.record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::MemorySink;

    #[test]
    fn span_appends_wall_ms_last() {
        let mut sink = MemorySink::new();
        let mut span = Span::begin("step").field("a", 1u32);
        span.push("b", 2u32);
        span.end(&mut sink);
        let rec = &sink.records[0];
        assert_eq!(rec.kind(), "step");
        let keys: Vec<&str> = rec.fields().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["a", "b", "wall_ms"]);
        assert!(rec.get("wall_ms").unwrap().as_f64().unwrap() >= 0.0);
    }
}
