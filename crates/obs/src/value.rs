//! Trace field values and their JSON serialisation.

use std::fmt::Write as _;

/// A trace-record field value. The variants cover everything the tuning
/// loop emits; [`Value::to_json`] produces strict JSON for each.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    /// A list of floats (e.g. per-line WIPS). Serialised as a JSON array.
    FloatList(Vec<f64>),
}

impl Value {
    /// Append this value's JSON encoding to `out`. Non-finite floats
    /// become `null` (JSON has no NaN/Infinity).
    pub fn write_json(&self, out: &mut String) {
        match self {
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Value::Float(f) => write_json_f64(out, *f),
            Value::Str(s) => write_json_str(out, s),
            Value::FloatList(v) => {
                out.push('[');
                for (i, f) in v.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_f64(out, *f);
                }
                out.push(']');
            }
        }
    }

    /// This value's JSON encoding as a fresh string.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s);
        s
    }

    /// A flat textual form for CSV cells: like JSON but strings are
    /// unquoted and float lists join with `;` (the repo's historical CSV
    /// convention for per-line WIPS).
    pub fn to_csv_cell(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::FloatList(v) => {
                let parts: Vec<String> = v.iter().map(|f| format!("{f:.3}")).collect();
                parts.join(";")
            }
            other => other.to_json(),
        }
    }

    /// The float content, if this is a numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }
}

fn write_json_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{:?}` is Rust's shortest round-trip float formatting; it always
        // contains a '.' or 'e' so the JSON value stays a double.
        let _ = write!(out, "{f:?}");
    } else {
        out.push_str("null");
    }
}

fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::UInt(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::UInt(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::UInt(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Vec<f64>> for Value {
    fn from(v: Vec<f64>) -> Self {
        Value::FloatList(v)
    }
}
impl From<&[f64]> for Value {
    fn from(v: &[f64]) -> Self {
        Value::FloatList(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(Value::from("a\"b\\c\nd").to_json(), r#""a\"b\\c\nd""#);
        assert_eq!(Value::from("\u{1}").to_json(), r#""\u0001""#);
    }

    #[test]
    fn json_floats() {
        assert_eq!(Value::from(1.5).to_json(), "1.5");
        assert_eq!(Value::from(2.0).to_json(), "2.0");
        assert_eq!(Value::Float(f64::NAN).to_json(), "null");
        assert_eq!(Value::Float(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn json_lists_and_ints() {
        assert_eq!(Value::from(vec![1.0, 2.5]).to_json(), "[1.0,2.5]");
        assert_eq!(Value::from(-3i64).to_json(), "-3");
        assert_eq!(Value::from(7u32).to_json(), "7");
    }

    #[test]
    fn csv_cells() {
        assert_eq!(Value::from("plain").to_csv_cell(), "plain");
        assert_eq!(Value::from(vec![1.0, 2.0]).to_csv_cell(), "1.000;2.000");
        assert_eq!(Value::from(true).to_csv_cell(), "true");
    }
}
