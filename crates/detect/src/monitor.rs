//! The in-DES monitoring plane: deriving heartbeat arrivals from a fault
//! plan.
//!
//! Every node emits a heartbeat each `heartbeat_s` of simulated time.
//! What the detector *receives* is a pure function of
//! `(plan, seed, window)`, so replays and resumed sessions observe the
//! same arrivals byte for byte:
//!
//! * a **crashed** node's beats are suppressed outright — silence is the
//!   only signal a crash emits;
//! * a **stalled** node keeps its beats, but every beat due mid-stall is
//!   delivered late, at the stall's end (the node froze, it didn't die);
//! * **CPU/NIC degradation** stretches delivery latency by the
//!   corresponding slowdown factors, and a **noise spike** in the window
//!   widens the latency jitter — load looks like wobble, never like
//!   death.
//!
//! Jitter draws are keyed by `(seed, node, beat-due-time)` — stateless,
//! like [`FaultInjector::wips_noise`] — so no RNG position needs to be
//! checkpointed and re-measuring a window replays identical arrivals.

use crate::detector::DetectorConfig;
use faults::FaultInjector;
use simkit::rng::SimRng;
use simkit::time::{SimDuration, SimTime};

/// Seed-domain separator for heartbeat jitter draws.
const BEAT_SEED_DOMAIN: u64 = 0xDE7E_C7ED_0BEA_75ED;

/// Everything the monitoring plane produced for one window `[start, end)`.
#[derive(Debug, Clone, PartialEq)]
pub struct HeartbeatWindow {
    /// Arrival instants, sorted by time then node. Arrivals may land
    /// beyond `end` (a stall crossing the boundary); the detector carries
    /// those forward as pending.
    pub arrivals: Vec<(SimTime, usize)>,
    /// Beats due in the window across all nodes.
    pub beats: u64,
    /// Beats suppressed because the node was crashed when they were due.
    pub missed: u64,
}

/// Derive the heartbeat arrivals for `[start, end)` across `nodes`.
pub fn heartbeat_arrivals(
    injector: &FaultInjector,
    config: &DetectorConfig,
    seed: u64,
    nodes: usize,
    start: SimTime,
    end: SimTime,
) -> HeartbeatWindow {
    let period_us = SimDuration::from_secs_f64(config.heartbeat_s)
        .as_micros()
        .max(1);
    // Noise spikes widen the latency jitter, capped so latency stays
    // positive: load perturbs delivery, it never fakes a death.
    let noise = injector.window(start, end, nodes).noise;
    let jitter_amp = (config.jitter * noise.max(1.0)).min(0.95);

    let mut arrivals = Vec::new();
    let mut beats = 0u64;
    let mut missed = 0u64;
    let mut k = start.as_micros().div_ceil(period_us);
    loop {
        let due_us = k.saturating_mul(period_us);
        if due_us >= end.as_micros() {
            break;
        }
        let due = SimTime::from_micros(due_us);
        // Events at exactly `due` take effect for this beat.
        let statuses = injector.status_at(SimTime::from_micros(due_us + 1), nodes);
        for (node, status) in statuses.iter().enumerate() {
            beats += 1;
            if status.crashed {
                missed += 1;
                continue;
            }
            let emit_at = match status.stalled_until {
                Some(until) if until > due => until,
                _ => due,
            };
            let mut rng = SimRng::new(
                seed ^ BEAT_SEED_DOMAIN
                    ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ due_us.rotate_left(23),
            );
            let u = rng.next_f64() * 2.0 - 1.0;
            let latency_s = (config.latency_s
                * status.slowdown.cpu.max(1.0)
                * status.slowdown.nic.max(1.0)
                * (1.0 + jitter_amp * u))
                .max(1e-6);
            let arrival = emit_at
                .checked_add(SimDuration::from_secs_f64(latency_s))
                .unwrap_or(SimTime::MAX);
            arrivals.push((arrival, node));
        }
        k += 1;
    }
    arrivals.sort_unstable_by_key(|&(t, n)| (t, n));
    HeartbeatWindow {
        arrivals,
        beats,
        missed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faults::FaultPlan;

    fn cfg() -> DetectorConfig {
        DetectorConfig::default()
    }

    fn window(plan: &FaultPlan, start: u64, end: u64) -> HeartbeatWindow {
        let inj = FaultInjector::new(plan, 7);
        heartbeat_arrivals(
            &inj,
            &cfg(),
            99,
            4,
            SimTime::from_secs(start),
            SimTime::from_secs(end),
        )
    }

    #[test]
    fn healthy_nodes_beat_once_per_period() {
        let hw = window(&FaultPlan::new(), 0, 10);
        assert_eq!(hw.beats, 40, "10 beats x 4 nodes");
        assert_eq!(hw.missed, 0);
        assert_eq!(hw.arrivals.len(), 40);
        for &(at, _) in &hw.arrivals {
            let s = at.as_secs_f64();
            let lag = s - s.floor();
            assert!(
                (0.0..0.1).contains(&lag),
                "arrival {s} should trail its beat by ~latency"
            );
        }
    }

    #[test]
    fn a_crash_silences_and_a_restart_resumes() {
        let plan = FaultPlan::new().crash(3.0, 2).restart(7.0, 2);
        let hw = window(&plan, 0, 10);
        // Node 2 misses beats at t = 3..6 (the restart at 7 revives the
        // beat due at exactly 7).
        assert_eq!(hw.missed, 4);
        assert!(!hw
            .arrivals
            .iter()
            .any(|&(at, n)| { n == 2 && (3.0..7.0).contains(&at.as_secs_f64()) }));
        assert!(hw
            .arrivals
            .iter()
            .any(|&(at, n)| n == 2 && at.as_secs_f64() > 7.0));
    }

    #[test]
    fn a_stall_defers_beats_to_its_end() {
        let plan = FaultPlan::new().stall(3.0, 1, 4.0);
        let hw = window(&plan, 0, 10);
        assert_eq!(hw.missed, 0, "stalls defer, they never suppress");
        let node1: Vec<f64> = hw
            .arrivals
            .iter()
            .filter(|&&(_, n)| n == 1)
            .map(|&(at, _)| at.as_secs_f64())
            .collect();
        // Beats due at 3..6 all arrive just after the stall lifts at 7,
        // alongside the on-time beat due at 7 itself.
        let thawed = node1.iter().filter(|&&t| (7.0..7.2).contains(&t)).count();
        assert_eq!(thawed, 5, "arrivals: {node1:?}");
        assert!(
            !node1.iter().any(|&t| (3.1..7.0).contains(&t)),
            "nothing arrives mid-stall: {node1:?}"
        );
    }

    #[test]
    fn arrivals_are_a_pure_function_of_plan_seed_window() {
        let plan = FaultPlan::new().stall(3.0, 1, 4.0).crash(5.0, 0);
        assert_eq!(window(&plan, 0, 10), window(&plan, 0, 10));
        let other_seed = heartbeat_arrivals(
            &FaultInjector::new(&plan, 7),
            &cfg(),
            100,
            4,
            SimTime::ZERO,
            SimTime::from_secs(10),
        );
        assert_ne!(window(&plan, 0, 10), other_seed, "seed moves the jitter");
    }

    #[test]
    fn windows_partition_the_beat_schedule() {
        let plan = FaultPlan::new();
        let all = window(&plan, 0, 20);
        let a = window(&plan, 0, 10);
        let b = window(&plan, 10, 20);
        assert_eq!(a.beats + b.beats, all.beats);
        let mut spliced = a.arrivals.clone();
        spliced.extend(b.arrivals.clone());
        spliced.sort_unstable_by_key(|&(t, n)| (t, n));
        assert_eq!(spliced, all.arrivals, "same beats, same jitter draws");
    }
}
