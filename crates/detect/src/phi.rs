//! The φ-accrual suspicion estimator (Hayashibara et al., SRDS 2004).
//!
//! Instead of a binary "timed out / alive" verdict, the estimator keeps a
//! sliding window of observed heartbeat inter-arrival intervals and maps
//! the current silence (time since the last arrival) to a continuous
//! suspicion level:
//!
//! ```text
//!   φ(now) = -log10( P(a later heartbeat arrives after `now`) )
//! ```
//!
//! φ ≈ 1 means roughly a 10% chance the node is still alive given its
//! arrival history, φ ≈ 8 about 10⁻⁸. The tail probability uses the
//! logistic approximation to the normal CDF (the same one production
//! φ-accrual detectors ship), which is cheap, branch-light, and — being
//! plain `f64` arithmetic on integer-derived inputs — bit-deterministic:
//!
//! ```text
//!   P_later(y) = 1 / (1 + e^{ y (1.5976 + 0.070566 y²) }),  y = (t-μ)/σ
//! ```
//!
//! The polynomial `y(1.5976 + 0.070566y²)` has strictly positive
//! derivative, so φ is strictly monotone in the silence duration — the
//! property the detect property tests pin.

use persist::{Checkpointable, PersistError, State};
use simkit::time::SimTime;

const MICROS_PER_SEC: f64 = 1_000_000.0;

/// Per-node φ-accrual state: a bounded history of inter-arrival
/// intervals plus the last arrival instant. The window capacity and the
/// μ/σ bootstrap values are configuration, not state — they live in
/// [`crate::DetectorConfig`] and are passed per call.
#[derive(Debug, Clone, PartialEq)]
pub struct PhiAccrual {
    capacity: usize,
    /// Observed inter-arrival intervals, oldest first, in microseconds.
    intervals_us: Vec<u64>,
    /// The most recent arrival, if any heartbeat has ever been seen.
    last_arrival_us: Option<u64>,
}

impl PhiAccrual {
    pub fn new(capacity: usize) -> PhiAccrual {
        PhiAccrual {
            capacity: capacity.max(2),
            intervals_us: Vec::new(),
            last_arrival_us: None,
        }
    }

    /// Record a heartbeat arrival. Arrivals must be delivered in
    /// nondecreasing time order; simultaneous arrivals record a zero
    /// interval.
    pub fn record(&mut self, at: SimTime) {
        let at_us = at.as_micros();
        if let Some(last) = self.last_arrival_us {
            self.intervals_us.push(at_us.saturating_sub(last));
            if self.intervals_us.len() > self.capacity {
                self.intervals_us.remove(0);
            }
        }
        self.last_arrival_us = Some(at_us.max(self.last_arrival_us.unwrap_or(0)));
    }

    /// Number of intervals currently in the window.
    pub fn samples(&self) -> usize {
        self.intervals_us.len()
    }

    /// Current suspicion level. Zero until the first heartbeat arrives
    /// (an unseen node is given the benefit of the doubt at bootstrap);
    /// with fewer than two observed intervals the estimator falls back to
    /// `bootstrap_s` as the expected interval. `min_std_s` floors σ so a
    /// perfectly regular history cannot make the detector hair-triggered.
    pub fn phi(&self, now: SimTime, bootstrap_s: f64, min_std_s: f64) -> f64 {
        let Some(last) = self.last_arrival_us else {
            return 0.0;
        };
        let silence_s = now.as_micros().saturating_sub(last) as f64 / MICROS_PER_SEC;
        let (mean, std) = if self.intervals_us.len() >= 2 {
            let n = self.intervals_us.len() as f64;
            let mean_us = self.intervals_us.iter().map(|&v| v as f64).sum::<f64>() / n;
            let var_us = self
                .intervals_us
                .iter()
                .map(|&v| {
                    let d = v as f64 - mean_us;
                    d * d
                })
                .sum::<f64>()
                / n;
            (mean_us / MICROS_PER_SEC, var_us.sqrt() / MICROS_PER_SEC)
        } else {
            (bootstrap_s, bootstrap_s / 4.0)
        };
        let y = (silence_s - mean) / std.max(min_std_s).max(1e-9);
        let expo = y * (1.5976 + 0.070566 * y * y);
        // log10(1 + e^expo), computed without overflowing exp().
        if expo > 30.0 {
            expo / core::f64::consts::LN_10
        } else {
            (1.0 + expo.exp()).log10()
        }
    }
}

impl Checkpointable for PhiAccrual {
    fn save_state(&self) -> State {
        State::map()
            .with(
                "last",
                match self.last_arrival_us {
                    Some(us) => State::U64(us),
                    None => State::Null,
                },
            )
            .with(
                "intervals",
                State::List(self.intervals_us.iter().map(|&v| State::U64(v)).collect()),
            )
    }

    fn restore_state(&mut self, state: &State) -> Result<(), PersistError> {
        self.last_arrival_us = match state.require("last")? {
            State::Null => None,
            State::U64(us) => Some(*us),
            other => {
                return Err(PersistError::Schema(format!(
                    "phi last: expected u64 or null, got {other:?}"
                )))
            }
        };
        let items = state.field_list("intervals")?;
        if items.len() > self.capacity {
            return Err(PersistError::Schema(format!(
                "phi intervals: {} samples exceed window capacity {}",
                items.len(),
                self.capacity
            )));
        }
        self.intervals_us = items
            .iter()
            .map(|s| {
                s.as_u64()
                    .ok_or_else(|| PersistError::Schema("phi interval: expected u64".into()))
            })
            .collect::<Result<_, _>>()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fed(beats: &[u64]) -> PhiAccrual {
        let mut p = PhiAccrual::new(16);
        for &s in beats {
            p.record(SimTime::from_secs(s));
        }
        p
    }

    #[test]
    fn unseen_node_has_zero_suspicion() {
        let p = PhiAccrual::new(8);
        assert_eq!(p.phi(SimTime::from_secs(1_000), 1.0, 0.1), 0.0);
    }

    #[test]
    fn phi_is_monotone_in_silence() {
        let p = fed(&[1, 2, 3, 4, 5]);
        // Non-strict everywhere (the far-left tail underflows to exactly
        // zero)...
        let mut prev = -1.0;
        for us in (5_000_001..9_000_000).step_by(137_911) {
            let phi = p.phi(SimTime::from_micros(us), 1.0, 0.1);
            assert!(
                phi >= prev,
                "phi must never shrink with silence: phi({us})={phi} vs {prev}"
            );
            prev = phi;
        }
        // ...strict once the silence exceeds the expected interval.
        let mut prev = p.phi(SimTime::from_micros(6_100_000), 1.0, 0.1);
        assert!(prev > 0.0);
        for us in (6_200_000..9_000_000).step_by(137_911) {
            let phi = p.phi(SimTime::from_micros(us), 1.0, 0.1);
            assert!(
                phi > prev,
                "phi must grow past the mean: phi({us})={phi} vs {prev}"
            );
            prev = phi;
        }
    }

    #[test]
    fn an_arrival_collapses_suspicion() {
        let mut p = fed(&[1, 2, 3, 4, 5]);
        let late = SimTime::from_secs(9);
        let suspicious = p.phi(late, 1.0, 0.1);
        assert!(
            suspicious > 8.0,
            "4s of silence on a 1s cadence: {suspicious}"
        );
        p.record(late);
        let calmed = p.phi(SimTime::from_micros(9_000_001), 1.0, 0.1);
        assert!(
            calmed < 0.5,
            "fresh arrival must calm the estimator: {calmed}"
        );
    }

    #[test]
    fn regular_cadence_stays_calm_at_the_next_beat() {
        let p = fed(&[1, 2, 3, 4, 5]);
        // Right around when the next beat is due, suspicion is mild.
        let phi = p.phi(SimTime::from_secs(6), 1.0, 0.25);
        assert!(phi < 1.0, "on-time cadence must not look suspicious: {phi}");
    }

    #[test]
    fn window_is_bounded() {
        let mut p = PhiAccrual::new(4);
        for s in 0..100 {
            p.record(SimTime::from_secs(s));
        }
        assert_eq!(p.samples(), 4);
    }

    #[test]
    fn bootstrap_prior_applies_before_two_samples() {
        let mut p = PhiAccrual::new(8);
        p.record(SimTime::from_secs(10));
        // One arrival, zero intervals: μ falls back to the bootstrap.
        let phi = p.phi(SimTime::from_secs(14), 1.0, 0.1);
        assert!(phi > 8.0, "4s silent against a 1s prior: {phi}");
    }

    #[test]
    fn save_restore_save_is_bit_exact() {
        let p = fed(&[1, 2, 3, 5, 8]);
        let saved = p.save_state();
        let mut fresh = PhiAccrual::new(16);
        fresh.restore_state(&saved).expect("restore");
        assert_eq!(fresh, p);
        assert_eq!(fresh.save_state().encode(), saved.encode());
    }

    #[test]
    fn restore_rejects_oversized_windows() {
        let p = fed(&[1, 2, 3, 4, 5]);
        let mut tiny = PhiAccrual::new(2);
        assert!(tiny.restore_state(&p.save_state()).is_err());
    }
}
