//! Suspicion → membership: hysteresis and flap damping.
//!
//! Raw φ values are continuous and twitchy; reconfiguration is expensive
//! and irreversible within a session. This module is the debouncing layer
//! between them: each node carries an `Up` / `Suspect` / `Down` state,
//! and suspicion must *persist* before it is believed —
//!
//! * **hysteresis** — a node is `Suspect` the first assessment φ crosses
//!   the threshold, but only `confirm` consecutive suspicious assessments
//!   confirm it `Down`; `recover` consecutive calm assessments bring a
//!   `Down` node back `Up`;
//! * **flap damping** — every false alarm (`Suspect` that clears without
//!   confirming) adds a penalty point, bounded by `flap_max_penalty`, and
//!   each point raises the effective confirmation streak by one. Penalty
//!   decays one point per `flap_decay` consecutive calm assessments, so a
//!   formerly jittery node eventually earns back fast detection.
//!
//! The view is plain integer bookkeeping — no clocks, no RNG — so it is
//! trivially deterministic and checkpoints bit-exactly.

use persist::{Checkpointable, PersistError, State};

/// Detected membership of one node. `Suspect` is visible to observers
/// (trace records, experiments) but only `Down` may gate reconfiguration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    Up,
    Suspect,
    Down,
}

impl NodeState {
    pub fn name(&self) -> &'static str {
        match self {
            NodeState::Up => "up",
            NodeState::Suspect => "suspect",
            NodeState::Down => "down",
        }
    }

    pub fn from_name(name: &str) -> Result<NodeState, PersistError> {
        match name {
            "up" => Ok(NodeState::Up),
            "suspect" => Ok(NodeState::Suspect),
            "down" => Ok(NodeState::Down),
            other => Err(PersistError::Schema(format!(
                "membership state: unknown name {other:?}"
            ))),
        }
    }
}

/// Debouncing knobs. Kept separate from the φ estimator's config so the
/// two layers can be tested in isolation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MembershipConfig {
    /// φ at or above this is a suspicious assessment.
    pub phi_threshold: f64,
    /// Consecutive suspicious assessments before `Suspect` confirms `Down`.
    pub confirm: u32,
    /// Consecutive calm assessments before `Down` recovers to `Up`.
    pub recover: u32,
    /// Upper bound on the flap penalty (bounds the effective confirm
    /// streak at `confirm + flap_max_penalty`).
    pub flap_max_penalty: u32,
    /// Calm assessments required to shed one penalty point.
    pub flap_decay: u32,
}

/// A state change the view decided on during one assessment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition {
    pub node: usize,
    pub from: NodeState,
    pub to: NodeState,
    /// The φ that triggered the assessment.
    pub phi: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct NodeMembership {
    state: NodeState,
    /// Consecutive suspicious assessments while `Suspect`.
    suspect_streak: u32,
    /// Consecutive calm assessments while `Down`.
    calm_streak: u32,
    /// Flap-damping penalty points.
    penalty: u32,
    /// Consecutive calm `Up` assessments counted toward penalty decay.
    calm_run: u32,
}

impl NodeMembership {
    const FRESH: NodeMembership = NodeMembership {
        state: NodeState::Up,
        suspect_streak: 0,
        calm_streak: 0,
        penalty: 0,
        calm_run: 0,
    };
}

/// The per-node membership state machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MembershipView {
    config: MembershipConfig,
    nodes: Vec<NodeMembership>,
}

impl MembershipView {
    pub fn new(config: MembershipConfig, nodes: usize) -> MembershipView {
        MembershipView {
            config,
            nodes: vec![NodeMembership::FRESH; nodes],
        }
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn state(&self, node: usize) -> NodeState {
        self.nodes.get(node).map_or(NodeState::Up, |n| n.state)
    }

    pub fn states(&self) -> Vec<NodeState> {
        self.nodes.iter().map(|n| n.state).collect()
    }

    pub fn is_down(&self, node: usize) -> bool {
        self.state(node) == NodeState::Down
    }

    /// The suspicious streak currently required to confirm this node
    /// `Down`: the base `confirm` plus accrued flap penalty.
    pub fn effective_confirm(&self, node: usize) -> u32 {
        let penalty = self.nodes.get(node).map_or(0, |n| n.penalty);
        self.config.confirm.saturating_add(penalty)
    }

    /// Feed one assessment (a φ reading at a heartbeat tick) for `node`.
    /// Returns the transition, if this assessment caused one.
    pub fn assess(&mut self, node: usize, phi: f64) -> Option<Transition> {
        let cfg = self.config;
        let m = self.nodes.get_mut(node)?;
        let suspicious = phi.is_finite() && phi >= cfg.phi_threshold;
        let from = m.state;
        match m.state {
            NodeState::Up => {
                if suspicious {
                    m.state = NodeState::Suspect;
                    m.suspect_streak = 1;
                    m.calm_run = 0;
                } else {
                    m.calm_run = m.calm_run.saturating_add(1);
                    if m.penalty > 0 && m.calm_run >= cfg.flap_decay {
                        m.penalty -= 1;
                        m.calm_run = 0;
                    }
                }
            }
            NodeState::Suspect => {
                if suspicious {
                    m.suspect_streak = m.suspect_streak.saturating_add(1);
                    if m.suspect_streak >= cfg.confirm.saturating_add(m.penalty) {
                        m.state = NodeState::Down;
                        m.calm_streak = 0;
                    }
                } else {
                    // A false alarm: the node cleared before confirming.
                    // Remember the flap so the next one confirms slower.
                    m.state = NodeState::Up;
                    m.suspect_streak = 0;
                    m.penalty = (m.penalty + 1).min(cfg.flap_max_penalty);
                    m.calm_run = 0;
                }
            }
            NodeState::Down => {
                if suspicious {
                    m.calm_streak = 0;
                } else {
                    m.calm_streak = m.calm_streak.saturating_add(1);
                    if m.calm_streak >= cfg.recover {
                        // A genuine recovery (restart observed), not a
                        // flap: no penalty.
                        m.state = NodeState::Up;
                        m.suspect_streak = 0;
                        m.calm_streak = 0;
                        m.calm_run = 0;
                    }
                }
            }
        }
        (m.state != from).then_some(Transition {
            node,
            from,
            to: m.state,
            phi,
        })
    }
}

impl Checkpointable for MembershipView {
    fn save_state(&self) -> State {
        State::map().with(
            "nodes",
            State::List(
                self.nodes
                    .iter()
                    .map(|n| {
                        State::map()
                            .with("state", State::Str(n.state.name().to_string()))
                            .with("suspect", State::U64(n.suspect_streak as u64))
                            .with("calm", State::U64(n.calm_streak as u64))
                            .with("penalty", State::U64(n.penalty as u64))
                            .with("calm_run", State::U64(n.calm_run as u64))
                    })
                    .collect(),
            ),
        )
    }

    fn restore_state(&mut self, state: &State) -> Result<(), PersistError> {
        let items = state.field_list("nodes")?;
        if items.len() != self.nodes.len() {
            return Err(PersistError::Schema(format!(
                "membership: {} nodes saved, view has {}",
                items.len(),
                self.nodes.len()
            )));
        }
        let mut nodes = Vec::with_capacity(items.len());
        for item in items {
            nodes.push(NodeMembership {
                state: NodeState::from_name(item.field_str("state")?)?,
                suspect_streak: item.field_u64("suspect")? as u32,
                calm_streak: item.field_u64("calm")? as u32,
                penalty: item.field_u64("penalty")? as u32,
                calm_run: item.field_u64("calm_run")? as u32,
            });
        }
        self.nodes = nodes;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MembershipConfig {
        MembershipConfig {
            phi_threshold: 8.0,
            confirm: 3,
            recover: 2,
            flap_max_penalty: 4,
            flap_decay: 3,
        }
    }

    const HOT: f64 = 20.0;
    const COLD: f64 = 0.1;

    #[test]
    fn confirmation_needs_a_sustained_streak() {
        let mut v = MembershipView::new(cfg(), 2);
        assert_eq!(
            v.assess(0, HOT).map(|t| (t.from, t.to)),
            Some((NodeState::Up, NodeState::Suspect))
        );
        assert_eq!(v.assess(0, HOT), None, "streak 2 of 3");
        let t = v.assess(0, HOT).expect("third in a row confirms");
        assert_eq!((t.from, t.to), (NodeState::Suspect, NodeState::Down));
        assert_eq!(v.state(1), NodeState::Up, "other nodes untouched");
    }

    #[test]
    fn a_cleared_suspect_is_a_flap_and_raises_the_bar() {
        let mut v = MembershipView::new(cfg(), 1);
        assert_eq!(v.effective_confirm(0), 3);
        v.assess(0, HOT);
        let t = v.assess(0, COLD).expect("clearing is a transition");
        assert_eq!((t.from, t.to), (NodeState::Suspect, NodeState::Up));
        assert_eq!(v.effective_confirm(0), 4, "one flap, one penalty point");
        // Now confirmation takes confirm + penalty = 4 suspicious beats.
        v.assess(0, HOT);
        v.assess(0, HOT);
        v.assess(0, HOT);
        assert_eq!(v.state(0), NodeState::Suspect, "3 < 4: still suspect");
        v.assess(0, HOT);
        assert_eq!(v.state(0), NodeState::Down);
    }

    #[test]
    fn flap_penalty_is_bounded_and_decays() {
        let mut v = MembershipView::new(cfg(), 1);
        for _ in 0..10 {
            v.assess(0, HOT);
            v.assess(0, COLD);
        }
        assert_eq!(
            v.effective_confirm(0),
            3 + 4,
            "penalty saturates at flap_max_penalty"
        );
        // flap_decay calm assessments shed one point each.
        for _ in 0..3 {
            v.assess(0, COLD);
        }
        assert_eq!(v.effective_confirm(0), 3 + 3);
        for _ in 0..9 {
            v.assess(0, COLD);
        }
        assert_eq!(v.effective_confirm(0), 3, "fully decayed");
    }

    #[test]
    fn down_recovers_after_calm_streak_without_penalty() {
        let mut v = MembershipView::new(cfg(), 1);
        for _ in 0..3 {
            v.assess(0, HOT);
        }
        assert_eq!(v.state(0), NodeState::Down);
        assert_eq!(v.assess(0, COLD), None, "calm 1 of 2");
        let t = v.assess(0, COLD).expect("recovered");
        assert_eq!((t.from, t.to), (NodeState::Down, NodeState::Up));
        assert_eq!(v.effective_confirm(0), 3, "recovery is not a flap");
    }

    #[test]
    fn suspicion_while_down_resets_the_recovery_streak() {
        let mut v = MembershipView::new(cfg(), 1);
        for _ in 0..3 {
            v.assess(0, HOT);
        }
        v.assess(0, COLD);
        v.assess(0, HOT);
        v.assess(0, COLD);
        assert_eq!(v.state(0), NodeState::Down, "streak was reset");
        v.assess(0, COLD);
        assert_eq!(v.state(0), NodeState::Up);
    }

    #[test]
    fn nan_phi_is_never_suspicious() {
        let mut v = MembershipView::new(cfg(), 1);
        assert_eq!(v.assess(0, f64::NAN), None);
        assert_eq!(v.state(0), NodeState::Up);
    }

    #[test]
    fn save_restore_save_is_bit_exact() {
        let mut v = MembershipView::new(cfg(), 3);
        v.assess(0, HOT);
        v.assess(1, HOT);
        v.assess(1, COLD);
        for _ in 0..3 {
            v.assess(2, HOT);
        }
        let saved = v.save_state();
        let mut fresh = MembershipView::new(cfg(), 3);
        fresh.restore_state(&saved).expect("restore");
        assert_eq!(fresh, v);
        assert_eq!(fresh.save_state().encode(), saved.encode());
    }

    #[test]
    fn restore_rejects_node_count_mismatch() {
        let v = MembershipView::new(cfg(), 3);
        let mut other = MembershipView::new(cfg(), 2);
        assert!(other.restore_state(&v.save_state()).is_err());
    }
}
