//! # detect — deterministic failure detection for the simulated cluster
//!
//! The sensing layer the reconfiguration loop was missing: until now the
//! resilient session asked the fault injector *directly* which nodes were
//! down — an oracle no real middleware has. This crate replaces that with
//! an observation-driven pipeline, entirely on the simulated clock:
//!
//! ```text
//!   FaultInjector ──▶ heartbeat arrivals ──▶ φ-accrual ──▶ membership ──▶ decide()
//!   (ground truth)    (monitor: crashes     (suspicion     (Up/Suspect/    (§IV Fig. 7,
//!                      stop beats, stalls    per node)      Down w/         gated on a
//!                      defer them, load                     hysteresis +    confirmed
//!                      jitters them)                        flap damping)   Down)
//! ```
//!
//! * [`monitor`] — derives per-node heartbeat arrival times as a pure
//!   function of `(plan, seed, window)`: a crashed node stops beating, a
//!   stalled node's beats are deferred to the stall's end, slowdowns and
//!   noise spikes jitter delivery latency;
//! * [`phi::PhiAccrual`] — the Hayashibara φ-accrual estimator over a
//!   sliding window of inter-arrival intervals: φ grows continuously and
//!   monotonically with silence instead of flipping a binary timeout;
//! * [`membership::MembershipView`] — maps suspicion to `Up` / `Suspect`
//!   / `Down` with a confirmation streak (hysteresis) and bounded flap
//!   damping, so one jittery beat cannot trigger a reconfiguration;
//! * [`detector::Detector`] — ties the three together per measurement
//!   window and reports transitions, peak suspicion, and beat counts.
//!
//! Everything is deterministic (jitter draws are keyed by `(seed, node,
//! beat)`) and checkpointable: every piece of mutable state round-trips
//! through [`persist::State`] bit-exactly, so a killed session resumes
//! mid-suspicion without re-burning a draw or losing a streak.
//!
//! Because the detector sees only arrivals — never [`faults::Health`] —
//! false positives (a long stall confirmed `Down`) and detection latency
//! (windows elapsing before confirmation) are real, measurable behaviors
//! rather than modeling artifacts.

// The detector runs inside long sessions: malformed state must surface as
// typed errors, never panics. Test modules are exempt; CI enforces this
// with a dedicated clippy step.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod detector;
pub mod membership;
pub mod monitor;
pub mod phi;

pub use detector::{DetectedTransition, Detector, DetectorConfig, WindowReport};
pub use membership::{MembershipConfig, MembershipView, NodeState, Transition};
pub use monitor::{heartbeat_arrivals, HeartbeatWindow};
pub use phi::PhiAccrual;
