//! The assembled failure detector: monitor → φ → membership, per window.
//!
//! [`Detector::observe_window`] is the one entry point a session drives:
//! it derives the window's heartbeat arrivals from the injector, delivers
//! them to the per-node [`PhiAccrual`] estimators in time order, and at
//! every heartbeat tick assesses each node's φ against the
//! [`MembershipView`]. Arrivals landing beyond the window (a stall
//! thawing after the boundary) are carried as pending into the next
//! window, so contiguous windows observe exactly the beat schedule.
//!
//! The detector never sees [`faults::Health`] — only arrival times — and
//! its whole mutable state (estimator windows, membership streaks,
//! pending arrivals) is [`Checkpointable`] bit-exactly.

use crate::membership::{MembershipConfig, MembershipView, NodeState};
use crate::monitor;
use crate::phi::PhiAccrual;
use faults::FaultInjector;
use persist::{Checkpointable, PersistError, State};
use simkit::time::{SimDuration, SimTime};

/// Detector tuning. Defaults confirm a hard crash in a handful of beats
/// while never false-positiving on jitter alone; the EXP-DETECT sweep
/// maps the φ-threshold tradeoff empirically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Heartbeat period (simulated seconds). Also the φ bootstrap prior.
    pub heartbeat_s: f64,
    /// Nominal delivery latency for a healthy beat.
    pub latency_s: f64,
    /// Fractional latency jitter amplitude (widened by noise spikes).
    pub jitter: f64,
    /// φ sliding-window capacity (inter-arrival samples per node).
    pub window: usize,
    /// Floor on the interval σ so a metronomic history cannot make the
    /// estimator hair-triggered.
    pub min_std_s: f64,
    /// φ at or above this is a suspicious assessment.
    pub phi_threshold: f64,
    /// Consecutive suspicious assessments confirming `Suspect` → `Down`.
    pub confirm: u32,
    /// Consecutive calm assessments recovering `Down` → `Up`.
    pub recover: u32,
    /// Flap-damping penalty bound.
    pub flap_max_penalty: u32,
    /// Calm assessments to shed one penalty point.
    pub flap_decay: u32,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            heartbeat_s: 1.0,
            latency_s: 0.05,
            jitter: 0.25,
            window: 64,
            min_std_s: 0.25,
            phi_threshold: 8.0,
            confirm: 3,
            recover: 2,
            flap_max_penalty: 4,
            flap_decay: 4,
        }
    }
}

impl DetectorConfig {
    fn membership(&self) -> MembershipConfig {
        MembershipConfig {
            phi_threshold: self.phi_threshold,
            confirm: self.confirm,
            recover: self.recover,
            flap_max_penalty: self.flap_max_penalty,
            flap_decay: self.flap_decay,
        }
    }
}

/// A membership change, stamped with the assessment tick that caused it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectedTransition {
    pub at: SimTime,
    pub node: usize,
    pub from: NodeState,
    pub to: NodeState,
    pub phi: f64,
}

/// What one window of observation produced.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowReport {
    /// Membership transitions, in assessment order.
    pub transitions: Vec<DetectedTransition>,
    /// Per-node maximum φ over the window's assessment ticks.
    pub peak_phi: Vec<f64>,
    /// Membership at the window's end.
    pub states: Vec<NodeState>,
    /// Beats due in the window.
    pub beats: u64,
    /// Arrivals delivered to the estimators this window.
    pub delivered: u64,
    /// Beats suppressed by a crash.
    pub missed: u64,
}

impl WindowReport {
    /// Nodes newly confirmed `Down` this window — the only signal allowed
    /// to gate reconfiguration.
    pub fn confirmed_down(&self) -> Vec<usize> {
        self.transitions
            .iter()
            .filter(|t| t.to == NodeState::Down)
            .map(|t| t.node)
            .collect()
    }
}

/// The per-session failure detector.
#[derive(Debug, Clone, PartialEq)]
pub struct Detector {
    config: DetectorConfig,
    seed: u64,
    nodes: usize,
    phis: Vec<PhiAccrual>,
    view: MembershipView,
    /// Arrivals computed in an earlier window that land in a later one,
    /// as `(arrival_us, node)`, sorted.
    pending_us: Vec<(u64, usize)>,
}

impl Detector {
    pub fn new(config: DetectorConfig, nodes: usize, seed: u64) -> Detector {
        Detector {
            seed,
            nodes,
            phis: vec![PhiAccrual::new(config.window); nodes],
            view: MembershipView::new(config.membership(), nodes),
            pending_us: Vec::new(),
            config,
        }
    }

    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Current membership of one node.
    pub fn state(&self, node: usize) -> NodeState {
        self.view.state(node)
    }

    /// Current membership of every node.
    pub fn states(&self) -> Vec<NodeState> {
        self.view.states()
    }

    /// Per-node liveness as the detector believes it: `true` unless the
    /// node is confirmed `Down`. (`Suspect` still counts as live — only a
    /// confirmed failure may trigger recovery.)
    pub fn live(&self) -> Vec<bool> {
        (0..self.nodes).map(|n| !self.view.is_down(n)).collect()
    }

    /// Observe one measurement window `[start, end)`: derive heartbeat
    /// arrivals from the injector, deliver them in time order, and assess
    /// membership at each heartbeat tick in `(start, end]`.
    pub fn observe_window(
        &mut self,
        injector: &FaultInjector,
        start: SimTime,
        end: SimTime,
    ) -> WindowReport {
        let hw =
            monitor::heartbeat_arrivals(injector, &self.config, self.seed, self.nodes, start, end);
        let mut queue = std::mem::take(&mut self.pending_us);
        queue.extend(hw.arrivals.iter().map(|&(t, n)| (t.as_micros(), n)));
        queue.sort_unstable();

        let period_us = SimDuration::from_secs_f64(self.config.heartbeat_s)
            .as_micros()
            .max(1);
        let mut transitions = Vec::new();
        let mut peak_phi = vec![0.0f64; self.nodes];
        let mut delivered = 0u64;
        let mut qi = 0usize;
        let mut m = start.as_micros() / period_us + 1;
        loop {
            let tick_us = m.saturating_mul(period_us);
            if tick_us > end.as_micros() {
                break;
            }
            while qi < queue.len() && queue[qi].0 <= tick_us {
                let (at_us, node) = queue[qi];
                if let Some(phi) = self.phis.get_mut(node) {
                    phi.record(SimTime::from_micros(at_us));
                    delivered += 1;
                }
                qi += 1;
            }
            let tick = SimTime::from_micros(tick_us);
            for (n, peak) in peak_phi.iter_mut().enumerate() {
                let phi = self.phis[n].phi(tick, self.config.heartbeat_s, self.config.min_std_s);
                if phi > *peak {
                    *peak = phi;
                }
                if let Some(t) = self.view.assess(n, phi) {
                    transitions.push(DetectedTransition {
                        at: tick,
                        node: t.node,
                        from: t.from,
                        to: t.to,
                        phi: t.phi,
                    });
                }
            }
            m += 1;
        }
        self.pending_us = queue.split_off(qi);
        WindowReport {
            transitions,
            peak_phi,
            states: self.view.states(),
            beats: hw.beats,
            delivered,
            missed: hw.missed,
        }
    }
}

impl Checkpointable for Detector {
    fn save_state(&self) -> State {
        State::map()
            .with(
                "phis",
                State::List(self.phis.iter().map(|p| p.save_state()).collect()),
            )
            .with("membership", self.view.save_state())
            .with(
                "pending",
                State::List(
                    self.pending_us
                        .iter()
                        .map(|&(at, node)| {
                            State::map()
                                .with("at", State::U64(at))
                                .with("node", State::U64(node as u64))
                        })
                        .collect(),
                ),
            )
    }

    fn restore_state(&mut self, state: &State) -> Result<(), PersistError> {
        let phis = state.field_list("phis")?;
        if phis.len() != self.nodes {
            return Err(PersistError::Schema(format!(
                "detector: {} phi estimators saved, session has {} nodes",
                phis.len(),
                self.nodes
            )));
        }
        for (p, s) in self.phis.iter_mut().zip(phis) {
            p.restore_state(s)?;
        }
        self.view.restore_state(state.require("membership")?)?;
        let mut pending = Vec::new();
        for item in state.field_list("pending")? {
            pending.push((item.field_u64("at")?, item.field_u64("node")? as usize));
        }
        self.pending_us = pending;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faults::FaultPlan;

    const W: u64 = 40;

    fn detector() -> Detector {
        Detector::new(DetectorConfig::default(), 4, 42)
    }

    fn drive(det: &mut Detector, plan: &FaultPlan, windows: u64) -> Vec<WindowReport> {
        let inj = FaultInjector::new(plan, 7);
        (0..windows)
            .map(|i| {
                det.observe_window(
                    &inj,
                    SimTime::from_secs(i * W),
                    SimTime::from_secs((i + 1) * W),
                )
            })
            .collect()
    }

    #[test]
    fn clean_plan_never_transitions() {
        let mut det = detector();
        for report in drive(&mut det, &FaultPlan::new(), 4) {
            assert!(report.transitions.is_empty(), "{:?}", report.transitions);
            assert_eq!(report.missed, 0);
            for &phi in &report.peak_phi {
                assert!(
                    phi < det.config().phi_threshold / 2.0,
                    "jitter alone must stay far from the threshold: {phi}"
                );
            }
        }
        assert_eq!(det.live(), vec![true; 4]);
    }

    #[test]
    fn a_hard_crash_is_confirmed_down_within_seconds() {
        let plan = FaultPlan::new().crash(10.0, 2);
        let mut det = detector();
        let reports = drive(&mut det, &plan, 1);
        let down: Vec<_> = reports[0]
            .transitions
            .iter()
            .filter(|t| t.to == NodeState::Down)
            .collect();
        assert_eq!(down.len(), 1, "{:?}", reports[0].transitions);
        assert_eq!(down[0].node, 2);
        let latency = down[0].at.as_secs_f64() - 10.0;
        assert!(
            (0.0..10.0).contains(&latency),
            "confirmation {latency}s after the crash"
        );
        assert_eq!(det.state(2), NodeState::Down);
        assert_eq!(det.live(), vec![true, true, false, true]);
        assert_eq!(reports[0].confirmed_down(), vec![2]);
    }

    #[test]
    fn a_restart_recovers_membership() {
        let plan = FaultPlan::new().crash(10.0, 2).restart(25.0, 2);
        let mut det = detector();
        let reports = drive(&mut det, &plan, 1);
        let seq: Vec<_> = reports[0]
            .transitions
            .iter()
            .filter(|t| t.node == 2)
            .map(|t| t.to)
            .collect();
        assert_eq!(
            seq,
            vec![NodeState::Suspect, NodeState::Down, NodeState::Up],
            "down while crashed, up after the restart"
        );
        assert_eq!(det.state(2), NodeState::Up);
    }

    #[test]
    fn a_short_stall_flaps_but_never_confirms() {
        let plan = FaultPlan::new().stall(10.0, 1, 2.0);
        let mut det = detector();
        let reports = drive(&mut det, &plan, 1);
        assert!(
            !reports[0]
                .transitions
                .iter()
                .any(|t| t.to == NodeState::Down),
            "a 2s stall must not be confirmed dead: {:?}",
            reports[0].transitions
        );
        assert_eq!(det.state(1), NodeState::Up);
    }

    #[test]
    fn a_stall_crossing_the_window_boundary_is_carried_as_pending() {
        let plan = FaultPlan::new().stall(37.0, 0, 6.0);
        let mut det = detector();
        let reports = drive(&mut det, &plan, 2);
        let total_beats: u64 = reports.iter().map(|r| r.beats).sum();
        let total_delivered: u64 = reports.iter().map(|r| r.delivered).sum();
        let total_missed: u64 = reports.iter().map(|r| r.missed).sum();
        assert_eq!(total_missed, 0);
        assert_eq!(
            total_delivered, total_beats,
            "deferred beats must arrive in the next window, not vanish"
        );
        assert_eq!(det.state(0), NodeState::Up);
    }

    #[test]
    fn observation_is_deterministic() {
        let plan = FaultPlan::new().crash(10.0, 2).stall(50.0, 1, 8.0);
        let mut a = detector();
        let mut b = detector();
        let ra = drive(&mut a, &plan, 3);
        let rb = drive(&mut b, &plan, 3);
        assert_eq!(ra, rb);
        assert_eq!(a.save_state().encode(), b.save_state().encode());
    }

    #[test]
    fn kill_and_resume_mid_suspicion_is_bit_exact() {
        // Crash late in window 1 so suspicion is still building at the
        // boundary; the restored detector must continue the streak.
        let plan = FaultPlan::new().crash(78.0, 3);
        let mut full = detector();
        let full_reports = drive(&mut full, &plan, 3);

        let mut front = detector();
        let inj = FaultInjector::new(&plan, 7);
        let r0 = front.observe_window(&inj, SimTime::ZERO, SimTime::from_secs(W));
        let r1 = front.observe_window(&inj, SimTime::from_secs(W), SimTime::from_secs(2 * W));
        assert_eq!(r0, full_reports[0]);
        assert_eq!(r1, full_reports[1]);
        let saved = front.save_state();

        let mut resumed = detector();
        resumed.restore_state(&saved).expect("restore");
        let r2 = resumed.observe_window(&inj, SimTime::from_secs(2 * W), SimTime::from_secs(3 * W));
        assert_eq!(r2, full_reports[2], "post-resume window must splice");
        assert_eq!(resumed.save_state().encode(), full.save_state().encode());
    }

    #[test]
    fn restore_rejects_node_count_mismatch() {
        let det = detector();
        let mut other = Detector::new(DetectorConfig::default(), 3, 42);
        assert!(other.restore_state(&det.save_state()).is_err());
    }
}
