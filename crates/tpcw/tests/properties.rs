//! Property-based tests of the TPC-W workload model.

use proptest::prelude::*;
use simkit::rng::SimRng;
use simkit::time::{SimDuration, SimTime};
use tpcw::interaction::Interaction;
use tpcw::metrics::{IntervalPlan, MetricsCollector, Phase};
use tpcw::mix::Workload;

proptest! {
    /// Sampling from a mix only yields interactions with positive weight.
    #[test]
    fn sampling_respects_support(seed in any::<u64>(), w_idx in 0usize..3) {
        let workload = Workload::ALL[w_idx];
        let mix = workload.mix();
        let mut rng = SimRng::new(seed);
        for _ in 0..200 {
            let ix = mix.sample(&mut rng);
            prop_assert!(mix.percent(ix) > 0.0, "{ix} has zero weight");
        }
    }

    /// Every instant of an iteration belongs to exactly one phase, and the
    /// phases appear in order.
    #[test]
    fn phases_partition_time(
        warm in 1u64..500, measure in 1u64..5_000, cool in 1u64..500,
        probe in 0u64..7_000,
    ) {
        let plan = IntervalPlan {
            warmup: SimDuration::from_secs(warm),
            measure: SimDuration::from_secs(measure),
            cooldown: SimDuration::from_secs(cool),
        };
        let t = SimDuration::from_secs(probe);
        let phase = plan.phase_at(t);
        let expected = if probe < warm {
            Phase::Warmup
        } else if probe < warm + measure {
            Phase::Measure
        } else if probe < warm + measure + cool {
            Phase::Cooldown
        } else {
            Phase::Done
        };
        prop_assert_eq!(phase, expected);
        prop_assert_eq!(plan.total(), SimDuration::from_secs(warm + measure + cool));
    }

    /// WIPS equals counted completions divided by the measurement window,
    /// no matter when the completions arrive.
    #[test]
    fn wips_counts_only_measure_window(
        arrivals in prop::collection::vec(0u64..400, 0..200),
    ) {
        let plan = IntervalPlan {
            warmup: SimDuration::from_secs(50),
            measure: SimDuration::from_secs(200),
            cooldown: SimDuration::from_secs(50),
        };
        let start = SimTime::from_secs(1_000);
        let mut m = MetricsCollector::new(plan, start);
        let mut counted = 0u64;
        for &s in &arrivals {
            let at = start + SimDuration::from_secs(s);
            m.record_completion(at, Interaction::Home, SimDuration::from_millis(80));
            if (50..250).contains(&s) {
                counted += 1;
            }
        }
        prop_assert_eq!(m.total_completed(), counted);
        let expected_wips = counted as f64 / 200.0;
        prop_assert!((m.wips() - expected_wips).abs() < 1e-12);
        prop_assert_eq!(m.outside_window(), arrivals.len() as u64 - counted);
    }

    /// Class counts always sum to the total.
    #[test]
    fn class_counts_sum(picks in prop::collection::vec(0usize..14, 1..100)) {
        let plan = IntervalPlan::tiny();
        let mut m = MetricsCollector::new(plan, SimTime::ZERO);
        let inside = SimTime::from_secs(10); // measure window of tiny plan
        for &p in &picks {
            let ix = Interaction::from_index(p).unwrap();
            m.record_completion(inside, ix, SimDuration::from_millis(10));
        }
        let s = m.summarise();
        prop_assert_eq!(s.browse_completed + s.order_completed, s.completed);
        prop_assert_eq!(s.completed, picks.len() as u64);
    }

    /// Demand profiles: sampled response sizes and think times stay
    /// positive and finite for every interaction.
    #[test]
    fn demand_sampling_sane(seed in any::<u64>(), idx in 0usize..14) {
        let ix = Interaction::from_index(idx).unwrap();
        let profile = tpcw::demand::profile(ix);
        let mut rng = SimRng::new(seed);
        for _ in 0..20 {
            let kb = rng.lognormal_mean_cv(profile.object_kb.max(0.5), tpcw::demand::OBJECT_SIZE_CV);
            prop_assert!(kb.is_finite() && kb > 0.0);
            let cpu = rng.lognormal_mean_cv(profile.app_cpu_ms.max(0.05), tpcw::demand::CPU_DEMAND_CV);
            prop_assert!(cpu.is_finite() && cpu > 0.0);
        }
    }
}
