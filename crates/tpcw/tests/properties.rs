//! Randomised invariant tests of the TPC-W workload model (seeded
//! `SimRng` loops; no external test crates).

use simkit::rng::SimRng;
use simkit::time::{SimDuration, SimTime};
use tpcw::interaction::Interaction;
use tpcw::metrics::{IntervalPlan, MetricsCollector, Phase};
use tpcw::mix::Workload;

/// Sampling from a mix only yields interactions with positive weight.
#[test]
fn sampling_respects_support() {
    let mut meta = SimRng::new(0x7C91);
    for workload in Workload::ALL {
        let mix = workload.mix();
        for _ in 0..10 {
            let mut rng = SimRng::new(meta.next_u64());
            for _ in 0..200 {
                let ix = mix.sample(&mut rng);
                assert!(mix.percent(ix) > 0.0, "{ix:?} has zero weight");
            }
        }
    }
}

/// Every instant of an iteration belongs to exactly one phase, and the
/// phases appear in order.
#[test]
fn phases_partition_time() {
    let mut rng = SimRng::new(0x9A5E);
    for case in 0..200 {
        let warm = rng.uniform_i64(1, 500) as u64;
        let measure = rng.uniform_i64(1, 5_000) as u64;
        let cool = rng.uniform_i64(1, 500) as u64;
        let probe = rng.uniform_i64(0, 7_000) as u64;
        let plan = IntervalPlan {
            warmup: SimDuration::from_secs(warm),
            measure: SimDuration::from_secs(measure),
            cooldown: SimDuration::from_secs(cool),
        };
        let t = SimDuration::from_secs(probe);
        let phase = plan.phase_at(t);
        let expected = if probe < warm {
            Phase::Warmup
        } else if probe < warm + measure {
            Phase::Measure
        } else if probe < warm + measure + cool {
            Phase::Cooldown
        } else {
            Phase::Done
        };
        assert_eq!(phase, expected, "case {case}");
        assert_eq!(plan.total(), SimDuration::from_secs(warm + measure + cool));
    }
}

/// WIPS equals counted completions divided by the measurement window,
/// no matter when the completions arrive.
#[test]
fn wips_counts_only_measure_window() {
    let mut rng = SimRng::new(0x317F);
    for case in 0..50 {
        let n = rng.uniform_i64(0, 200) as usize;
        let arrivals: Vec<u64> = (0..n).map(|_| rng.uniform_i64(0, 399) as u64).collect();
        let plan = IntervalPlan {
            warmup: SimDuration::from_secs(50),
            measure: SimDuration::from_secs(200),
            cooldown: SimDuration::from_secs(50),
        };
        let start = SimTime::from_secs(1_000);
        let mut m = MetricsCollector::new(plan, start);
        let mut counted = 0u64;
        for &s in &arrivals {
            let at = start + SimDuration::from_secs(s);
            m.record_completion(at, Interaction::Home, SimDuration::from_millis(80));
            if (50..250).contains(&s) {
                counted += 1;
            }
        }
        assert_eq!(m.total_completed(), counted, "case {case}");
        let expected_wips = counted as f64 / 200.0;
        assert!((m.wips() - expected_wips).abs() < 1e-12, "case {case}");
        assert_eq!(
            m.outside_window(),
            arrivals.len() as u64 - counted,
            "case {case}"
        );
    }
}

/// Class counts always sum to the total.
#[test]
fn class_counts_sum() {
    let mut rng = SimRng::new(0xC1A5);
    for case in 0..50 {
        let n = rng.uniform_i64(1, 100) as usize;
        let plan = IntervalPlan::tiny();
        let mut m = MetricsCollector::new(plan, SimTime::ZERO);
        let inside = SimTime::from_secs(10); // measure window of tiny plan
        for _ in 0..n {
            let p = rng.uniform_i64(0, 13) as usize;
            let ix = Interaction::from_index(p).unwrap();
            m.record_completion(inside, ix, SimDuration::from_millis(10));
        }
        let s = m.summarise();
        assert_eq!(
            s.browse_completed + s.order_completed,
            s.completed,
            "case {case}"
        );
        assert_eq!(s.completed, n as u64, "case {case}");
    }
}

/// Demand profiles: sampled response sizes and think times stay
/// positive and finite for every interaction.
#[test]
fn demand_sampling_sane() {
    let mut meta = SimRng::new(0xDE3A);
    for idx in 0..14 {
        let ix = Interaction::from_index(idx).unwrap();
        let profile = tpcw::demand::profile(ix);
        for _ in 0..10 {
            let mut rng = SimRng::new(meta.next_u64());
            for _ in 0..20 {
                let kb =
                    rng.lognormal_mean_cv(profile.object_kb.max(0.5), tpcw::demand::OBJECT_SIZE_CV);
                assert!(kb.is_finite() && kb > 0.0);
                let cpu = rng
                    .lognormal_mean_cv(profile.app_cpu_ms.max(0.05), tpcw::demand::CPU_DEMAND_CV);
                assert!(cpu.is_finite() && cpu > 0.0);
            }
        }
    }
}
