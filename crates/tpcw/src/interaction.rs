//! The fourteen TPC-W web interactions.
//!
//! TPC-W models an online bookstore. Every page a customer can request is
//! one of fourteen *web interactions*, each classified as either **Browse**
//! (searching/viewing the catalogue) or **Order** (anything that plays an
//! explicit role in the ordering process) — the classification used by
//! Table 1 of the paper.

use std::fmt;

/// One of the fourteen TPC-W web interactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Interaction {
    Home,
    NewProducts,
    BestSellers,
    ProductDetail,
    SearchRequest,
    SearchResults,
    ShoppingCart,
    CustomerRegistration,
    BuyRequest,
    BuyConfirm,
    OrderInquiry,
    OrderDisplay,
    AdminRequest,
    AdminConfirm,
}

/// Browse-vs-Order classification (Table 1's two groups).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InteractionClass {
    Browse,
    Order,
}

impl Interaction {
    /// All fourteen interactions, in Table 1 order.
    pub const ALL: [Interaction; 14] = [
        Interaction::Home,
        Interaction::NewProducts,
        Interaction::BestSellers,
        Interaction::ProductDetail,
        Interaction::SearchRequest,
        Interaction::SearchResults,
        Interaction::ShoppingCart,
        Interaction::CustomerRegistration,
        Interaction::BuyRequest,
        Interaction::BuyConfirm,
        Interaction::OrderInquiry,
        Interaction::OrderDisplay,
        Interaction::AdminRequest,
        Interaction::AdminConfirm,
    ];

    /// Number of distinct interactions.
    pub const COUNT: usize = 14;

    /// Stable dense index (Table 1 order), usable for array-indexed stats.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Interaction::Home => 0,
            Interaction::NewProducts => 1,
            Interaction::BestSellers => 2,
            Interaction::ProductDetail => 3,
            Interaction::SearchRequest => 4,
            Interaction::SearchResults => 5,
            Interaction::ShoppingCart => 6,
            Interaction::CustomerRegistration => 7,
            Interaction::BuyRequest => 8,
            Interaction::BuyConfirm => 9,
            Interaction::OrderInquiry => 10,
            Interaction::OrderDisplay => 11,
            Interaction::AdminRequest => 12,
            Interaction::AdminConfirm => 13,
        }
    }

    /// Inverse of [`Interaction::index`].
    pub fn from_index(i: usize) -> Option<Interaction> {
        Interaction::ALL.get(i).copied()
    }

    /// Browse/Order classification per Table 1.
    pub fn class(self) -> InteractionClass {
        match self {
            Interaction::Home
            | Interaction::NewProducts
            | Interaction::BestSellers
            | Interaction::ProductDetail
            | Interaction::SearchRequest
            | Interaction::SearchResults => InteractionClass::Browse,
            Interaction::ShoppingCart
            | Interaction::CustomerRegistration
            | Interaction::BuyRequest
            | Interaction::BuyConfirm
            | Interaction::OrderInquiry
            | Interaction::OrderDisplay
            | Interaction::AdminRequest
            | Interaction::AdminConfirm => InteractionClass::Order,
        }
    }

    /// Human-readable name (matches Table 1 row labels).
    pub fn name(self) -> &'static str {
        match self {
            Interaction::Home => "Home",
            Interaction::NewProducts => "New Products",
            Interaction::BestSellers => "Best Sellers",
            Interaction::ProductDetail => "Product Detail",
            Interaction::SearchRequest => "Search Request",
            Interaction::SearchResults => "Search Results",
            Interaction::ShoppingCart => "Shopping Cart",
            Interaction::CustomerRegistration => "Customer Registration",
            Interaction::BuyRequest => "Buy Request",
            Interaction::BuyConfirm => "Buy Confirm",
            Interaction::OrderInquiry => "Order Inquiry",
            Interaction::OrderDisplay => "Order Display",
            Interaction::AdminRequest => "Admin Request",
            Interaction::AdminConfirm => "Admin Confirm",
        }
    }
}

impl fmt::Display for Interaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_fourteen_unique() {
        assert_eq!(Interaction::ALL.len(), Interaction::COUNT);
        let mut sorted = Interaction::ALL.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 14);
    }

    #[test]
    fn index_roundtrip() {
        for (i, &ix) in Interaction::ALL.iter().enumerate() {
            assert_eq!(ix.index(), i);
            assert_eq!(Interaction::from_index(i), Some(ix));
        }
        assert_eq!(Interaction::from_index(14), None);
    }

    #[test]
    fn classification_matches_table1_groups() {
        let browse: Vec<_> = Interaction::ALL
            .iter()
            .filter(|i| i.class() == InteractionClass::Browse)
            .collect();
        let order: Vec<_> = Interaction::ALL
            .iter()
            .filter(|i| i.class() == InteractionClass::Order)
            .collect();
        assert_eq!(browse.len(), 6);
        assert_eq!(order.len(), 8);
        assert_eq!(Interaction::BuyConfirm.class(), InteractionClass::Order);
        assert_eq!(Interaction::Home.class(), InteractionClass::Browse);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Interaction::ALL.iter().map(|i| i.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 14);
        assert_eq!(format!("{}", Interaction::BestSellers), "Best Sellers");
    }
}
