//! Emulated browsers (EBs).
//!
//! TPC-W load is *closed-loop*: a fixed population of emulated browsers
//! each cycles think → request → wait-for-response → think. Each browser
//! owns an independent RNG substream so the draw sequence of one browser is
//! unaffected by the interleaving of others.

use crate::interaction::Interaction;
use crate::mix::Mix;
use simkit::rng::SimRng;
use simkit::time::SimDuration;

/// Identifier of an emulated browser (dense, `0..population`).
pub type BrowserId = u32;

/// Configuration of the emulated-browser population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrowserConfig {
    /// Number of concurrent emulated browsers.
    pub population: u32,
    /// Mean think time between interactions (TPC-W: exponential, 7 s).
    pub think_mean: SimDuration,
    /// Per-interaction client timeout; a response slower than this counts
    /// as an error (the EB gives up).
    pub timeout: SimDuration,
}

impl BrowserConfig {
    /// TPC-W-style defaults at the paper's operating point.
    pub fn hpdc04(population: u32) -> Self {
        BrowserConfig {
            population,
            think_mean: SimDuration::from_secs(7),
            timeout: SimDuration::from_secs(90),
        }
    }
}

/// The population of emulated browsers.
#[derive(Debug, Clone)]
pub struct BrowserPool {
    config: BrowserConfig,
    rngs: Vec<SimRng>,
}

impl BrowserPool {
    /// Create the pool; browser `i` gets substream `i` of `seed_rng`.
    pub fn new(config: BrowserConfig, seed_rng: &SimRng) -> Self {
        let rngs = (0..config.population)
            .map(|i| seed_rng.substream(i as u64))
            .collect();
        BrowserPool { config, rngs }
    }

    pub fn population(&self) -> u32 {
        self.config.population
    }

    pub fn config(&self) -> &BrowserConfig {
        &self.config
    }

    /// Sample the think time before browser `id`'s next request.
    pub fn sample_think(&mut self, id: BrowserId) -> SimDuration {
        let mean = self.config.think_mean;
        self.rngs[id as usize].exp_duration(mean)
    }

    /// Sample the interaction browser `id` requests next, given the mix.
    pub fn sample_interaction(&mut self, id: BrowserId, mix: &Mix) -> Interaction {
        mix.sample(&mut self.rngs[id as usize])
    }

    /// Direct access to a browser's RNG (object choice, size jitter).
    pub fn rng(&mut self, id: BrowserId) -> &mut SimRng {
        &mut self.rngs[id as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::Workload;

    fn pool(n: u32) -> BrowserPool {
        BrowserPool::new(BrowserConfig::hpdc04(n), &SimRng::new(42))
    }

    #[test]
    fn think_times_average_to_mean() {
        let mut p = pool(4);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| p.sample_think(1).as_micros()).sum();
        let avg = total as f64 / n as f64 / 1e6;
        assert!((6.6..7.4).contains(&avg), "avg think {avg}");
    }

    #[test]
    fn browsers_have_independent_streams() {
        let mut p1 = pool(2);
        let mut p2 = pool(2);
        // Same browser in two identically-seeded pools: identical sequence.
        for _ in 0..100 {
            assert_eq!(p1.sample_think(0), p2.sample_think(0));
        }
        // Different browsers: different sequences.
        let same = (0..100)
            .filter(|_| p1.sample_think(0) == p1.sample_think(1))
            .count();
        assert!(same < 3);
    }

    #[test]
    fn interleaving_does_not_perturb_streams() {
        let mut a = pool(2);
        let mut b = pool(2);
        // Drain browser 1 heavily in pool a only.
        for _ in 0..500 {
            a.sample_think(1);
        }
        // Browser 0 must still match between pools.
        for _ in 0..50 {
            assert_eq!(a.sample_think(0), b.sample_think(0));
        }
    }

    #[test]
    fn interactions_follow_mix() {
        let mut p = pool(1);
        let mix = Workload::Browsing.mix();
        let n = 50_000;
        let home = (0..n)
            .filter(|_| p.sample_interaction(0, mix) == Interaction::Home)
            .count();
        let frac = home as f64 / n as f64;
        assert!((0.27..0.31).contains(&frac), "home fraction {frac}");
    }
}
