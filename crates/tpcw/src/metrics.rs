//! TPC-W measurement: intervals, WIPS, and per-class accounting.
//!
//! The paper measures one *iteration* as 100 s warm-up + 1000 s
//! measurement + 100 s cool-down (simulated time here). Only interactions
//! completing inside the measurement window count toward WIPS.

use crate::interaction::{Interaction, InteractionClass};
use simkit::stats::{DurationHistogram, Welford};
use simkit::time::{SimDuration, SimTime};

/// The three phases of a measurement iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    Warmup,
    Measure,
    Cooldown,
    /// After the cooldown has elapsed.
    Done,
}

/// Interval plan for one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalPlan {
    pub warmup: SimDuration,
    pub measure: SimDuration,
    pub cooldown: SimDuration,
}

impl IntervalPlan {
    /// The paper's intervals: 100 s / 1000 s / 100 s.
    pub fn hpdc04() -> Self {
        IntervalPlan {
            warmup: SimDuration::from_secs(100),
            measure: SimDuration::from_secs(1000),
            cooldown: SimDuration::from_secs(100),
        }
    }

    /// Reduced intervals for fast experimentation (same proportions).
    pub fn fast() -> Self {
        IntervalPlan {
            warmup: SimDuration::from_secs(20),
            measure: SimDuration::from_secs(200),
            cooldown: SimDuration::from_secs(20),
        }
    }

    /// Minimal intervals for unit tests.
    pub fn tiny() -> Self {
        IntervalPlan {
            warmup: SimDuration::from_secs(5),
            measure: SimDuration::from_secs(30),
            cooldown: SimDuration::from_secs(5),
        }
    }

    /// Total duration of one iteration.
    pub fn total(&self) -> SimDuration {
        self.warmup + self.measure + self.cooldown
    }

    /// Phase at `elapsed` time since the iteration started.
    pub fn phase_at(&self, elapsed: SimDuration) -> Phase {
        if elapsed < self.warmup {
            Phase::Warmup
        } else if elapsed < self.warmup + self.measure {
            Phase::Measure
        } else if elapsed < self.total() {
            Phase::Cooldown
        } else {
            Phase::Done
        }
    }
}

/// Collects interaction completions for one iteration.
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    plan: IntervalPlan,
    started_at: SimTime,
    completed: [u64; Interaction::COUNT],
    errors: u64,
    dropped: u64,
    response: Welford,
    response_hist: DurationHistogram,
    /// Response-time accumulators per interaction (Table 1 order).
    per_interaction_response: [Welford; Interaction::COUNT],
    /// Completions outside the measurement window (not counted in WIPS).
    outside_window: u64,
}

impl MetricsCollector {
    pub fn new(plan: IntervalPlan, started_at: SimTime) -> Self {
        MetricsCollector {
            plan,
            started_at,
            completed: [0; Interaction::COUNT],
            errors: 0,
            dropped: 0,
            response: Welford::new(),
            response_hist: DurationHistogram::new(SimDuration::from_millis(5), 4_000),
            per_interaction_response: std::array::from_fn(|_| Welford::new()),
            outside_window: 0,
        }
    }

    pub fn plan(&self) -> &IntervalPlan {
        &self.plan
    }

    /// Phase at absolute time `now`.
    pub fn phase(&self, now: SimTime) -> Phase {
        self.plan.phase_at(now.since(self.started_at))
    }

    fn in_measure_window(&self, now: SimTime) -> bool {
        self.phase(now) == Phase::Measure
    }

    /// Record a successfully completed interaction.
    pub fn record_completion(&mut self, now: SimTime, ix: Interaction, response: SimDuration) {
        self.record_completion_weighted(now, ix, response, 1);
    }

    /// Record `weight` completed interactions sharing one response time
    /// (a cohort token standing for `weight` browsers). The response
    /// sample is recorded once: token responses are *convoy* responses,
    /// and replicating the sample would only fake confidence in a
    /// distribution the cohort model quantises anyway.
    pub fn record_completion_weighted(
        &mut self,
        now: SimTime,
        ix: Interaction,
        response: SimDuration,
        weight: u64,
    ) {
        if self.in_measure_window(now) {
            self.completed[ix.index()] += weight;
            self.response.record(response.as_secs_f64());
            self.response_hist.record(response);
            self.per_interaction_response[ix.index()].record(response.as_secs_f64());
        } else {
            self.outside_window += weight;
        }
    }

    /// Record an interaction that failed (timeout, connection reset).
    pub fn record_error(&mut self, now: SimTime) {
        self.record_error_weighted(now, 1);
    }

    /// Record `weight` failed interactions (cohort token weight).
    pub fn record_error_weighted(&mut self, now: SimTime, weight: u64) {
        if self.in_measure_window(now) {
            self.errors += weight;
        }
    }

    /// Record a request dropped at admission (full accept queue).
    pub fn record_drop(&mut self, now: SimTime) {
        self.record_drop_weighted(now, 1);
    }

    /// Record `weight` admission drops (cohort token weight).
    pub fn record_drop_weighted(&mut self, now: SimTime, weight: u64) {
        if self.in_measure_window(now) {
            self.dropped += weight;
        }
    }

    /// Total successful interactions in the measurement window.
    pub fn total_completed(&self) -> u64 {
        self.completed.iter().sum()
    }

    /// Completions of one interaction.
    pub fn completed(&self, ix: Interaction) -> u64 {
        self.completed[ix.index()]
    }

    /// Completions of one class.
    pub fn completed_class(&self, class: InteractionClass) -> u64 {
        Interaction::ALL
            .iter()
            .filter(|i| i.class() == class)
            .map(|i| self.completed[i.index()])
            .sum()
    }

    pub fn errors(&self) -> u64 {
        self.errors
    }

    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn outside_window(&self) -> u64 {
        self.outside_window
    }

    /// Web interactions per second over the measurement window.
    pub fn wips(&self) -> f64 {
        let secs = self.plan.measure.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.total_completed() as f64 / secs
        }
    }

    /// Mean response time (seconds) of counted interactions.
    pub fn mean_response_secs(&self) -> f64 {
        self.response.mean()
    }

    /// Mean response time (seconds) of one interaction (0 if never seen).
    pub fn mean_response_of(&self, ix: Interaction) -> f64 {
        self.per_interaction_response[ix.index()].mean()
    }

    /// Completion-weighted mean response time of one class.
    pub fn mean_response_of_class(&self, class: InteractionClass) -> f64 {
        let mut merged = Welford::new();
        for ix in Interaction::ALL {
            if ix.class() == class {
                merged.merge(&self.per_interaction_response[ix.index()]);
            }
        }
        merged.mean()
    }

    /// Approximate response-time percentile.
    pub fn response_percentile(&self, q: f64) -> SimDuration {
        self.response_hist.percentile(q)
    }

    /// Summarise into an immutable result.
    pub fn summarise(&self) -> IterationMetrics {
        IterationMetrics {
            wips: self.wips(),
            completed: self.total_completed(),
            browse_completed: self.completed_class(InteractionClass::Browse),
            order_completed: self.completed_class(InteractionClass::Order),
            errors: self.errors,
            dropped: self.dropped,
            mean_response_secs: self.mean_response_secs(),
            p90_response: self.response_percentile(0.90),
        }
    }
}

/// Immutable summary of one iteration's measurement window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationMetrics {
    pub wips: f64,
    pub completed: u64,
    pub browse_completed: u64,
    pub order_completed: u64,
    pub errors: u64,
    pub dropped: u64,
    pub mean_response_secs: f64,
    pub p90_response: SimDuration,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collector() -> MetricsCollector {
        MetricsCollector::new(IntervalPlan::tiny(), SimTime::from_secs(100))
    }

    #[test]
    fn phases_partition_the_iteration() {
        let plan = IntervalPlan::hpdc04();
        assert_eq!(plan.phase_at(SimDuration::ZERO), Phase::Warmup);
        assert_eq!(plan.phase_at(SimDuration::from_secs(99)), Phase::Warmup);
        assert_eq!(plan.phase_at(SimDuration::from_secs(100)), Phase::Measure);
        assert_eq!(plan.phase_at(SimDuration::from_secs(1099)), Phase::Measure);
        assert_eq!(plan.phase_at(SimDuration::from_secs(1100)), Phase::Cooldown);
        assert_eq!(plan.phase_at(SimDuration::from_secs(1199)), Phase::Cooldown);
        assert_eq!(plan.phase_at(SimDuration::from_secs(1200)), Phase::Done);
        assert_eq!(plan.total(), SimDuration::from_secs(1200));
    }

    #[test]
    fn only_measure_window_counts() {
        let mut m = collector();
        // Started at t=100, tiny plan: warmup 5s, measure 30s, cooldown 5s.
        let r = SimDuration::from_millis(100);
        m.record_completion(SimTime::from_secs(102), Interaction::Home, r); // warmup
        m.record_completion(SimTime::from_secs(110), Interaction::Home, r); // measure
        m.record_completion(SimTime::from_secs(134), Interaction::BuyConfirm, r); // measure
        m.record_completion(SimTime::from_secs(136), Interaction::Home, r); // cooldown
        assert_eq!(m.total_completed(), 2);
        assert_eq!(m.outside_window(), 2);
        assert_eq!(m.completed(Interaction::Home), 1);
        assert_eq!(m.completed_class(InteractionClass::Order), 1);
    }

    #[test]
    fn wips_normalises_by_measure_window() {
        let mut m = collector();
        for _ in 0..60 {
            m.record_completion(
                SimTime::from_secs(110),
                Interaction::Home,
                SimDuration::from_millis(50),
            );
        }
        // 60 completions over a 30 s window = 2 WIPS.
        assert!((m.wips() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn errors_and_drops_count_only_in_window() {
        let mut m = collector();
        m.record_error(SimTime::from_secs(101)); // warmup — ignored
        m.record_error(SimTime::from_secs(120));
        m.record_drop(SimTime::from_secs(120));
        m.record_drop(SimTime::from_secs(139)); // cooldown — ignored
        assert_eq!(m.errors(), 1);
        assert_eq!(m.dropped(), 1);
    }

    #[test]
    fn weighted_records_count_weight_browsers_one_sample() {
        let mut m = collector();
        let inside = SimTime::from_secs(115);
        m.record_completion_weighted(inside, Interaction::Home, SimDuration::from_millis(50), 12);
        m.record_error_weighted(inside, 5);
        m.record_drop_weighted(inside, 7);
        assert_eq!(m.total_completed(), 12);
        assert_eq!(m.errors(), 5);
        assert_eq!(m.dropped(), 7);
        // One response sample for the whole cohort token.
        assert!((m.mean_response_secs() - 0.05).abs() < 1e-9);
        // Outside the window the full weight lands in outside_window.
        m.record_completion_weighted(
            SimTime::from_secs(101),
            Interaction::Home,
            SimDuration::from_millis(50),
            9,
        );
        assert_eq!(m.outside_window(), 9);
    }

    #[test]
    fn per_interaction_response_tracked() {
        let mut m = collector();
        let inside = SimTime::from_secs(115);
        m.record_completion(inside, Interaction::Home, SimDuration::from_millis(50));
        m.record_completion(inside, Interaction::Home, SimDuration::from_millis(150));
        m.record_completion(
            inside,
            Interaction::BuyConfirm,
            SimDuration::from_millis(400),
        );
        assert!((m.mean_response_of(Interaction::Home) - 0.1).abs() < 1e-9);
        assert!((m.mean_response_of(Interaction::BuyConfirm) - 0.4).abs() < 1e-9);
        assert_eq!(m.mean_response_of(Interaction::SearchRequest), 0.0);
        assert!((m.mean_response_of_class(InteractionClass::Browse) - 0.1).abs() < 1e-9);
        assert!((m.mean_response_of_class(InteractionClass::Order) - 0.4).abs() < 1e-9);
    }

    #[test]
    fn summary_is_consistent() {
        let mut m = collector();
        m.record_completion(
            SimTime::from_secs(115),
            Interaction::Home,
            SimDuration::from_millis(200),
        );
        m.record_completion(
            SimTime::from_secs(116),
            Interaction::BuyConfirm,
            SimDuration::from_millis(400),
        );
        let s = m.summarise();
        assert_eq!(s.completed, 2);
        assert_eq!(s.browse_completed, 1);
        assert_eq!(s.order_completed, 1);
        assert!((s.mean_response_secs - 0.3).abs() < 1e-9);
        assert!(s.wips > 0.0);
    }
}
