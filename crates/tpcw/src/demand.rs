//! Per-interaction resource-demand profiles.
//!
//! The paper ran real Squid/Tomcat/MySQL servers; the *reason* each
//! workload stresses the cluster differently is the per-page resource
//! profile: browsing pages are mostly cacheable static content, ordering
//! pages hold an application thread across several database round-trips and
//! write to the transaction log. This module encodes those profiles as
//! calibration constants for the simulated tiers.
//!
//! Calibration rationale (per interaction):
//! * `cacheable` — fraction of requests a warm proxy could serve without
//!   touching the app tier. High for catalogue pages, zero for anything
//!   carrying per-customer state (cart, buy, order display).
//! * `object_kb` — mean response size; drives cache capacity pressure and
//!   NIC transfer time. Catalogue pages with cover images are the largest.
//! * `app_cpu_ms` — servlet CPU on the application server.
//! * `db_queries` — round-trips to the database when the page is dynamic.
//! * `db_cpu_ms` — CPU per query; `join_heavy` queries (best-sellers,
//!   search) touch multiple tables and benefit from a (small) join buffer.
//! * `db_write` — page performs an INSERT/UPDATE inside a transaction and
//!   pays a binlog flush unless the binlog cache absorbs it.

use crate::interaction::Interaction;

/// Static demand profile of one interaction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DemandProfile {
    /// Probability the response is static/cacheable content.
    pub cacheable: f64,
    /// Mean response object size in KB (lognormal, cv ~0.8 at sampling).
    pub object_kb: f64,
    /// Mean application-server CPU per request, milliseconds.
    pub app_cpu_ms: f64,
    /// Number of database queries when served dynamically.
    pub db_queries: u32,
    /// Mean database CPU per query, milliseconds.
    pub db_cpu_ms: f64,
    /// Probability each query needs a disk read on a cold buffer.
    pub db_io_prob: f64,
    /// Query touches multiple tables (join buffer relevant).
    pub join_heavy: bool,
    /// Page writes to the database (binlog/transaction cost).
    pub db_write: bool,
    /// Mean transaction-log volume of the write, KB (0 for read-only
    /// pages). Drives `binlog_cache_size`: logs larger than the cache
    /// spill to a temporary disk file.
    pub write_log_kb: f64,
}

/// Coefficient of variation used when sampling object sizes.
pub const OBJECT_SIZE_CV: f64 = 0.8;

/// Coefficient of variation used when sampling CPU demands.
pub const CPU_DEMAND_CV: f64 = 0.3;

/// Demand profile for each interaction (see module docs for rationale).
pub fn profile(ix: Interaction) -> DemandProfile {
    use Interaction::*;
    match ix {
        Home => DemandProfile {
            cacheable: 0.90,
            object_kb: 8.0,
            app_cpu_ms: 3.0,
            db_queries: 1,
            db_cpu_ms: 2.0,
            db_io_prob: 0.06,
            join_heavy: false,
            db_write: false,
            write_log_kb: 0.0,
        },
        NewProducts => DemandProfile {
            cacheable: 0.80,
            object_kb: 14.0,
            app_cpu_ms: 5.0,
            db_queries: 2,
            db_cpu_ms: 4.0,
            db_io_prob: 0.12,
            join_heavy: false,
            db_write: false,
            write_log_kb: 0.0,
        },
        BestSellers => DemandProfile {
            cacheable: 0.70,
            object_kb: 14.0,
            app_cpu_ms: 6.0,
            db_queries: 2,
            db_cpu_ms: 8.0,
            db_io_prob: 0.15,
            join_heavy: true,
            db_write: false,
            write_log_kb: 0.0,
        },
        ProductDetail => DemandProfile {
            cacheable: 0.85,
            object_kb: 12.0,
            app_cpu_ms: 4.0,
            db_queries: 1,
            db_cpu_ms: 3.0,
            db_io_prob: 0.10,
            join_heavy: false,
            db_write: false,
            write_log_kb: 0.0,
        },
        SearchRequest => DemandProfile {
            cacheable: 0.95,
            object_kb: 4.0,
            app_cpu_ms: 2.0,
            db_queries: 0,
            db_cpu_ms: 0.0,
            db_io_prob: 0.0,
            join_heavy: false,
            db_write: false,
            write_log_kb: 0.0,
        },
        SearchResults => DemandProfile {
            cacheable: 0.10,
            object_kb: 10.0,
            app_cpu_ms: 8.0,
            db_queries: 2,
            db_cpu_ms: 7.0,
            db_io_prob: 0.18,
            join_heavy: true,
            db_write: false,
            write_log_kb: 0.0,
        },
        ShoppingCart => DemandProfile {
            cacheable: 0.0,
            object_kb: 8.0,
            app_cpu_ms: 7.0,
            db_queries: 2,
            db_cpu_ms: 5.0,
            db_io_prob: 0.08,
            join_heavy: false,
            db_write: true,
            write_log_kb: 24.0,
        },
        CustomerRegistration => DemandProfile {
            cacheable: 0.30,
            object_kb: 6.0,
            app_cpu_ms: 4.0,
            db_queries: 1,
            db_cpu_ms: 4.0,
            db_io_prob: 0.08,
            join_heavy: false,
            db_write: true,
            write_log_kb: 16.0,
        },
        BuyRequest => DemandProfile {
            cacheable: 0.0,
            object_kb: 8.0,
            app_cpu_ms: 8.0,
            db_queries: 3,
            db_cpu_ms: 6.0,
            db_io_prob: 0.12,
            join_heavy: false,
            db_write: true,
            write_log_kb: 48.0,
        },
        BuyConfirm => DemandProfile {
            cacheable: 0.0,
            object_kb: 9.0,
            app_cpu_ms: 10.0,
            db_queries: 4,
            db_cpu_ms: 7.0,
            db_io_prob: 0.15,
            join_heavy: false,
            db_write: true,
            write_log_kb: 120.0,
        },
        OrderInquiry => DemandProfile {
            cacheable: 0.60,
            object_kb: 5.0,
            app_cpu_ms: 3.0,
            db_queries: 1,
            db_cpu_ms: 3.0,
            db_io_prob: 0.08,
            join_heavy: false,
            db_write: false,
            write_log_kb: 0.0,
        },
        OrderDisplay => DemandProfile {
            cacheable: 0.0,
            object_kb: 9.0,
            app_cpu_ms: 6.0,
            db_queries: 2,
            db_cpu_ms: 5.0,
            db_io_prob: 0.14,
            join_heavy: true,
            db_write: false,
            write_log_kb: 0.0,
        },
        AdminRequest => DemandProfile {
            cacheable: 0.20,
            object_kb: 7.0,
            app_cpu_ms: 5.0,
            db_queries: 1,
            db_cpu_ms: 4.0,
            db_io_prob: 0.10,
            join_heavy: false,
            db_write: false,
            write_log_kb: 0.0,
        },
        AdminConfirm => DemandProfile {
            cacheable: 0.0,
            object_kb: 7.0,
            app_cpu_ms: 8.0,
            db_queries: 2,
            db_cpu_ms: 7.0,
            db_io_prob: 0.12,
            join_heavy: false,
            db_write: true,
            write_log_kb: 64.0,
        },
    }
}

/// Mix-weighted expectation of a profile field over a workload mix.
pub fn weighted_mean(mix: &crate::mix::Mix, f: impl Fn(&DemandProfile) -> f64) -> f64 {
    Interaction::ALL
        .iter()
        .map(|&ix| mix.probability(ix) * f(&profile(ix)))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::Workload;

    #[test]
    fn profiles_are_sane() {
        for ix in Interaction::ALL {
            let p = profile(ix);
            assert!((0.0..=1.0).contains(&p.cacheable), "{ix}: cacheable");
            assert!(p.object_kb > 0.0, "{ix}: size");
            assert!(p.app_cpu_ms > 0.0, "{ix}: app cpu");
            assert!((0.0..=1.0).contains(&p.db_io_prob), "{ix}: io prob");
            if p.db_queries == 0 {
                assert_eq!(p.db_cpu_ms, 0.0, "{ix}: no queries but cpu");
            } else {
                assert!(p.db_cpu_ms > 0.0, "{ix}: queries but no cpu");
            }
        }
    }

    #[test]
    fn browsing_is_more_cacheable_than_ordering() {
        let cache_b = weighted_mean(Workload::Browsing.mix(), |p| p.cacheable);
        let cache_s = weighted_mean(Workload::Shopping.mix(), |p| p.cacheable);
        let cache_o = weighted_mean(Workload::Ordering.mix(), |p| p.cacheable);
        assert!(
            cache_b > cache_s && cache_s > cache_o,
            "cacheability should fall monotonically: {cache_b:.2} {cache_s:.2} {cache_o:.2}"
        );
        assert!(cache_b > 0.6, "browsing should be largely cacheable");
        assert!(cache_o < 0.45, "ordering should be mostly dynamic");
    }

    #[test]
    fn ordering_is_more_db_and_write_heavy() {
        let q_b = weighted_mean(Workload::Browsing.mix(), |p| p.db_queries as f64);
        let q_o = weighted_mean(Workload::Ordering.mix(), |p| p.db_queries as f64);
        assert!(
            q_o > q_b,
            "ordering does more DB work: {q_o:.2} vs {q_b:.2}"
        );

        let w_b = weighted_mean(Workload::Browsing.mix(), |p| p.db_write as u8 as f64);
        let w_o = weighted_mean(Workload::Ordering.mix(), |p| p.db_write as u8 as f64);
        assert!(
            w_o > 5.0 * w_b,
            "ordering writes far more: {w_o:.2} vs {w_b:.2}"
        );
    }

    #[test]
    fn write_pages_are_order_class() {
        for ix in Interaction::ALL {
            if profile(ix).db_write {
                assert_eq!(
                    ix.class(),
                    crate::interaction::InteractionClass::Order,
                    "{ix} writes but is Browse-class"
                );
            }
        }
    }
}
