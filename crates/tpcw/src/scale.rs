//! TPC-W scale: catalogue size and derived working sets.
//!
//! The paper ran at a scale factor of 10,000 items. The catalogue size
//! determines how many distinct cacheable objects exist (product pages,
//! images, static pages) and therefore how much proxy cache memory is
//! needed for a given hit ratio, and how many database tables/segments the
//! table cache must cover.

/// Catalogue scale parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CatalogScale {
    /// Number of items the store sells (paper: 10,000).
    pub items: u64,
    /// Zipf-like skew of object popularity in [0,1). Web object popularity
    /// is classically Zipf with theta around 0.7–0.8.
    pub popularity_theta: f64,
}

impl CatalogScale {
    /// The paper's configuration: 10,000 items.
    pub fn hpdc04() -> Self {
        CatalogScale {
            items: 10_000,
            popularity_theta: 0.75,
        }
    }

    /// A reduced scale for fast tests.
    pub fn tiny() -> Self {
        CatalogScale {
            items: 100,
            popularity_theta: 0.75,
        }
    }

    /// Number of distinct cacheable objects: one detail page and one image
    /// set per item, plus a fixed set of site-wide static pages.
    pub fn static_objects(&self) -> u64 {
        self.items * 2 + 50
    }

    /// Number of "hot" database table-cache slots the workload touches:
    /// TPC-W has 8 base tables; MySQL 3.23 opens one descriptor per table
    /// per concurrent user, so the needed cache grows with catalogue scale
    /// (modelled as 8 tables × segments of 2,000 items, bounded below).
    pub fn hot_table_slots(&self) -> u64 {
        let segments = (self.items / 2_000).max(1);
        8 * segments.max(1) * 16
    }

    /// Validate the scale parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.items == 0 {
            return Err("scale must have at least one item".into());
        }
        if !(0.0..1.0).contains(&self.popularity_theta) {
            return Err(format!(
                "popularity_theta {} outside [0,1)",
                self.popularity_theta
            ));
        }
        Ok(())
    }
}

impl Default for CatalogScale {
    fn default() -> Self {
        CatalogScale::hpdc04()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hpdc04_scale() {
        let s = CatalogScale::hpdc04();
        assert_eq!(s.items, 10_000);
        assert_eq!(s.static_objects(), 20_050);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn hot_table_slots_scale_with_items() {
        let small = CatalogScale::tiny();
        let big = CatalogScale::hpdc04();
        assert!(big.hot_table_slots() > small.hot_table_slots());
        // Paper's table_cache tuned to ~760-900 from default 64 — our hot
        // set at scale 10k should sit in that range so the tuner has room.
        let slots = big.hot_table_slots();
        assert!((400..1200).contains(&slots), "slots = {slots}");
    }

    #[test]
    fn validation_rejects_bad_params() {
        let mut s = CatalogScale::hpdc04();
        s.items = 0;
        assert!(s.validate().is_err());
        let mut s = CatalogScale::hpdc04();
        s.popularity_theta = 1.5;
        assert!(s.validate().is_err());
    }
}
