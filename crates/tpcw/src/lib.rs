//! # tpcw — the TPC-W transactional web benchmark model
//!
//! Everything the HPDC'04 paper takes from TPC-W: the fourteen
//! [`interaction::Interaction`]s, the three Table 1 workload
//! [`mix::Mix`]es, closed-loop [`browser`] emulation with exponential
//! think times, per-interaction resource [`demand`] profiles (our
//! calibration of what each page costs each tier), the catalogue
//! [`scale`], and WIPS [`metrics`] with warm-up/measure/cool-down
//! intervals.
//!
//! This crate knows nothing about the cluster or the tuner; it is the
//! workload side of the experiment only.
//!
//! ```
//! use tpcw::mix::Workload;
//! use tpcw::interaction::InteractionClass;
//! use simkit::rng::SimRng;
//!
//! // Table 1: the ordering mix is half Browse, half Order.
//! let mix = Workload::Ordering.mix();
//! assert_eq!(mix.class_percent(InteractionClass::Order), 50.0);
//!
//! // Sample interactions the way an emulated browser does.
//! let mut rng = SimRng::new(7);
//! let ix = mix.sample(&mut rng);
//! assert!(mix.percent(ix) > 0.0);
//! ```

// Library code must surface failures as typed errors, never panic;
// test modules (cfg(test)) are exempt. CI enforces this with a clippy
// step dedicated to these crates.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod browser;
pub mod cohort;
pub mod demand;
pub mod interaction;
pub mod metrics;
pub mod mix;
pub mod navigation;
pub mod scale;

pub use browser::{BrowserConfig, BrowserId, BrowserPool};
pub use cohort::{CohortPlan, LoadModel, DEFAULT_COHORT_BINS};
pub use demand::{profile, DemandProfile};
pub use interaction::{Interaction, InteractionClass};
pub use metrics::{IntervalPlan, IterationMetrics, MetricsCollector, Phase};
pub use mix::{Mix, Workload, BROWSING_MIX, ORDERING_MIX, SHOPPING_MIX};
pub use scale::CatalogScale;
