//! Markov session navigation.
//!
//! The real TPC-W driver walks a page-to-page navigation graph (you reach
//! *Buy Confirm* from *Buy Request*, not from *Search*). The paper only
//! publishes the steady-state frequencies (Table 1), so the default
//! browser model samples i.i.d. from the mix. This module provides the
//! higher-fidelity option: a [`NavigationModel`] fits a row-stochastic
//! transition matrix over the TPC-W link structure whose **stationary
//! distribution matches the Table 1 mix**, then browsers walk it as
//! sessions.
//!
//! Fitting uses iterative proportional scaling: start from
//! `P[i][j] ∝ A[i][j]·π[j]` (link structure times target popularity),
//! then repeatedly rescale columns toward the target stationary
//! distribution and re-normalise rows. On the (strongly connected) TPC-W
//! graph this converges to sub-percent accuracy in a few dozen rounds.

use crate::interaction::Interaction;
use crate::mix::Mix;
use simkit::rng::SimRng;

const N: usize = Interaction::COUNT;

/// Which pages link to which (1 = a link exists). Derived from the TPC-W
/// page flow: every page carries the navigation bar (Home, Search,
/// Shopping Cart); catalogue pages link between themselves; the ordering
/// funnel is Cart → Customer Registration → Buy Request → Buy Confirm;
/// admin and order-status pages hang off Home.
fn adjacency() -> [[bool; N]; N] {
    use Interaction::*;
    let mut a = [[false; N]; N];
    let nav = [Home, SearchRequest, ShoppingCart];
    let catalogue = [NewProducts, BestSellers, ProductDetail];
    let mut link = |from: Interaction, to: Interaction| {
        a[from.index()][to.index()] = true;
    };
    // Navigation bar from every page.
    for from in Interaction::ALL {
        for to in nav {
            link(from, to);
        }
    }
    // Home fans out to everything a storefront shows.
    for to in catalogue {
        link(Home, to);
    }
    link(Home, OrderInquiry);
    link(Home, AdminRequest);
    // Catalogue browsing cross-links.
    for from in catalogue {
        for to in catalogue {
            link(from, to);
        }
    }
    link(SearchRequest, SearchResults);
    link(SearchResults, ProductDetail);
    link(SearchResults, SearchResults); // refine the search
    link(ProductDetail, ShoppingCart); // add to cart
    link(ProductDetail, AdminRequest);
    // The ordering funnel.
    link(ShoppingCart, CustomerRegistration);
    link(CustomerRegistration, BuyRequest);
    link(BuyRequest, BuyConfirm);
    link(BuyConfirm, Home);
    link(BuyConfirm, OrderInquiry);
    // Order status pages.
    link(OrderInquiry, OrderDisplay);
    link(OrderDisplay, Home);
    link(OrderDisplay, OrderInquiry);
    // Admin pages.
    link(AdminRequest, AdminConfirm);
    link(AdminConfirm, Home);
    link(AdminConfirm, AdminRequest);
    a
}

/// A fitted session-navigation model for one workload mix.
#[derive(Debug, Clone)]
pub struct NavigationModel {
    /// Row-stochastic transition matrix.
    rows: Vec<[f64; N]>,
    /// Fitted stationary distribution (diagnostics).
    stationary: [f64; N],
    /// Worst relative error of the fit vs the target mix.
    fit_error: f64,
}

impl NavigationModel {
    /// Fit the navigation matrix to `mix`'s steady-state frequencies.
    pub fn fit(mix: &Mix) -> NavigationModel {
        let target: [f64; N] = {
            let mut t = [0.0; N];
            for ix in Interaction::ALL {
                t[ix.index()] = mix.probability(ix).max(1e-9);
            }
            t
        };
        let adj = adjacency();

        // Start: link structure weighted by target popularity.
        let mut p: Vec<[f64; N]> = (0..N)
            .map(|i| {
                let mut row = [0.0; N];
                for (j, cell) in row.iter_mut().enumerate() {
                    if adj[i][j] {
                        *cell = target[j];
                    }
                }
                normalize(&mut row);
                row
            })
            .collect();

        // Iterative proportional fitting toward the target stationary.
        let mut stationary = target;
        for _ in 0..200 {
            stationary = stationary_of(&p, &stationary);
            let mut max_err = 0.0f64;
            for j in 0..N {
                let ratio = target[j] / stationary[j].max(1e-12);
                max_err = max_err.max((ratio - 1.0).abs());
                for row in p.iter_mut() {
                    if row[j] > 0.0 {
                        row[j] *= ratio;
                    }
                }
            }
            for row in p.iter_mut() {
                normalize(row);
            }
            if max_err < 1e-6 {
                break;
            }
        }
        stationary = stationary_of(&p, &stationary);
        let fit_error = (0..N)
            .map(|j| (stationary[j] / target[j] - 1.0).abs())
            .fold(0.0, f64::max);

        NavigationModel {
            rows: p,
            stationary,
            fit_error,
        }
    }

    /// Transition probability `from → to`.
    pub fn probability(&self, from: Interaction, to: Interaction) -> f64 {
        self.rows[from.index()][to.index()]
    }

    /// Sample the next page of a session.
    pub fn next(&self, from: Interaction, rng: &mut SimRng) -> Interaction {
        let row = &self.rows[from.index()];
        let idx = rng.weighted_index(row);
        Interaction::ALL[idx.min(Interaction::COUNT - 1)]
    }

    /// Sample a session entry page (stationary-distributed, so entering
    /// and leaving sessions do not perturb the mix).
    pub fn entry(&self, rng: &mut SimRng) -> Interaction {
        let idx = rng.weighted_index(&self.stationary);
        Interaction::ALL[idx.min(Interaction::COUNT - 1)]
    }

    /// The fitted stationary distribution.
    pub fn stationary(&self) -> &[f64; N] {
        &self.stationary
    }

    /// Worst relative deviation of the fitted stationary distribution
    /// from the target mix.
    pub fn fit_error(&self) -> f64 {
        self.fit_error
    }
}

fn normalize(row: &mut [f64; N]) {
    let total: f64 = row.iter().sum();
    if total > 0.0 {
        for v in row.iter_mut() {
            *v /= total;
        }
    }
}

/// Stationary distribution by power iteration from a warm start.
fn stationary_of(p: &[[f64; N]], warm: &[f64; N]) -> [f64; N] {
    let mut pi = *warm;
    let mut next = [0.0; N];
    for _ in 0..500 {
        next = [0.0; N];
        for (i, row) in p.iter().enumerate() {
            for (j, &pr) in row.iter().enumerate() {
                next[j] += pi[i] * pr;
            }
        }
        let total: f64 = next.iter().sum();
        for v in next.iter_mut() {
            *v /= total.max(1e-12);
        }
        let delta: f64 = pi.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        pi = next;
        if delta < 1e-12 {
            break;
        }
    }
    let _ = next;
    pi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::Workload;

    #[test]
    fn graph_is_strongly_connected() {
        // Every page can reach every other page (BFS from each node).
        let adj = adjacency();
        for start in 0..N {
            let mut seen = [false; N];
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(i) = stack.pop() {
                for (j, seen_j) in seen.iter_mut().enumerate() {
                    if adj[i][j] && !*seen_j {
                        *seen_j = true;
                        stack.push(j);
                    }
                }
            }
            assert!(seen.iter().all(|s| *s), "node {start} cannot reach all");
        }
    }

    #[test]
    fn rows_are_stochastic() {
        for w in Workload::ALL {
            let m = NavigationModel::fit(w.mix());
            for i in 0..N {
                let row_sum: f64 = Interaction::ALL
                    .iter()
                    .map(|to| m.probability(Interaction::from_index(i).unwrap(), *to))
                    .sum();
                assert!((row_sum - 1.0).abs() < 1e-9, "{w} row {i} sums {row_sum}");
            }
        }
    }

    #[test]
    fn stationary_matches_table1_for_all_workloads() {
        for w in Workload::ALL {
            let m = NavigationModel::fit(w.mix());
            assert!(
                m.fit_error() < 0.02,
                "{w}: fit error {:.4} too large",
                m.fit_error()
            );
            for ix in Interaction::ALL {
                let target = w.mix().probability(ix);
                let got = m.stationary()[ix.index()];
                assert!(
                    (got - target).abs() < 0.004,
                    "{w}/{ix}: stationary {got:.4} vs target {target:.4}"
                );
            }
        }
    }

    #[test]
    fn long_walk_reproduces_the_mix() {
        let w = Workload::Shopping;
        let m = NavigationModel::fit(w.mix());
        let mut rng = SimRng::new(77);
        let mut counts = [0u64; N];
        let mut page = m.entry(&mut rng);
        let steps = 400_000;
        for _ in 0..steps {
            counts[page.index()] += 1;
            page = m.next(page, &mut rng);
        }
        for ix in Interaction::ALL {
            let frac = counts[ix.index()] as f64 / steps as f64;
            let target = w.mix().probability(ix);
            assert!(
                (frac - target).abs() < 0.01,
                "{ix}: walked {frac:.4}, target {target:.4}"
            );
        }
    }

    #[test]
    fn funnel_structure_respected() {
        let m = NavigationModel::fit(Workload::Ordering.mix());
        // You cannot jump into Buy Confirm from Home.
        assert_eq!(
            m.probability(Interaction::Home, Interaction::BuyConfirm),
            0.0
        );
        // But you can from Buy Request.
        assert!(m.probability(Interaction::BuyRequest, Interaction::BuyConfirm) > 0.0);
        // Search results only follow a search request or a refinement.
        assert_eq!(
            m.probability(Interaction::ProductDetail, Interaction::SearchResults),
            0.0
        );
    }

    #[test]
    fn entry_sampling_is_stationary() {
        let m = NavigationModel::fit(Workload::Browsing.mix());
        let mut rng = SimRng::new(5);
        let n = 100_000;
        let home = (0..n)
            .filter(|_| m.entry(&mut rng) == Interaction::Home)
            .count();
        let frac = home as f64 / n as f64;
        let target = Workload::Browsing.mix().probability(Interaction::Home);
        assert!((frac - target).abs() < 0.01, "{frac} vs {target}");
    }
}
