//! Cohort-batched load model: collapse N emulated browsers into a
//! bounded set of weighted *tokens* whose think-time returns are
//! quantised onto a slot wheel.
//!
//! The per-browser model schedules one think-time event per browser,
//! so the calendar queue's pending set — and the event count — grows
//! linearly with population. The cohort model caps the number of
//! circulating entities at `bins × Interaction::COUNT` tokens; each
//! token stands for `weight` browsers. Service demand is multiplied by
//! the token weight (so tier utilisation and the saturation throughput
//! `capacity / demand` match the per-browser model exactly) and every
//! completion/error/drop is counted `weight` times. Think-time returns
//! are rounded to the nearest multiple of `bin_width =
//! think_mean / bins`; all tokens landing in the same slot are
//! released by a single batch event. Round-to-nearest keeps the
//! quantisation zero-mean, so the long-run cycle rate — and therefore
//! WIPS — is unbiased.
//!
//! When `population <= bins × Interaction::COUNT` the weight is 1 and
//! the cohort model differs from the per-browser model only by think
//! quantisation and batched releases — that is the regime where the
//! equivalence gates are tight.

use crate::interaction::Interaction;
use simkit::time::{SimDuration, SimTime};

/// Default number of think-time bins for the cohort model. With 14
/// interactions this caps the circulating population at 896 tokens.
pub const DEFAULT_COHORT_BINS: u32 = 64;

/// Which browser-population model drives the closed loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadModel {
    /// One discrete entity (and one think-time event) per browser.
    /// The historical model; all golden fingerprints are pinned to it.
    #[default]
    PerBrowser,
    /// Weighted tokens on a think-time slot wheel; event count is
    /// bounded by `bins × Interaction::COUNT` regardless of population.
    Cohort {
        /// Number of think-time quantisation bins (slot wheel width is
        /// `think_mean / bins`). Must be at least 1.
        bins: u32,
    },
}

impl LoadModel {
    /// Short human-readable name (`per-browser` / `cohort`), matching
    /// the CLI spelling.
    pub fn name(&self) -> &'static str {
        match self {
            LoadModel::PerBrowser => "per-browser",
            LoadModel::Cohort { .. } => "cohort",
        }
    }

    /// Bin count, if this is the cohort model.
    pub fn bins(&self) -> Option<u32> {
        match self {
            LoadModel::PerBrowser => None,
            LoadModel::Cohort { bins } => Some(*bins),
        }
    }
}

impl std::fmt::Display for LoadModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadModel::PerBrowser => write!(f, "per-browser"),
            LoadModel::Cohort { bins } => write!(f, "cohort({bins})"),
        }
    }
}

/// The resolved cohort geometry for one scenario: how many tokens
/// circulate, what each is worth, and how think returns quantise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CohortPlan {
    /// The browser population the tokens stand for.
    pub population: u32,
    /// Number of circulating tokens (`<= bins × Interaction::COUNT`).
    pub tokens: u32,
    /// Browsers per token; the last token may carry a remainder (see
    /// [`CohortPlan::token_weight`]). Weights sum to `population`.
    pub weight: u32,
    /// Width of one think-time slot.
    pub bin_width: SimDuration,
}

impl CohortPlan {
    /// Build the plan for `population` browsers with mean think time
    /// `think_mean` and `bins` quantisation bins (clamped to >= 1).
    pub fn build(population: u32, think_mean: SimDuration, bins: u32) -> CohortPlan {
        let bins = bins.max(1);
        let max_tokens = bins.saturating_mul(Interaction::COUNT as u32).max(1);
        let weight = population.div_ceil(max_tokens).max(1);
        let tokens = population.div_ceil(weight).max(1);
        let width_us = (think_mean.as_micros() / u64::from(bins)).max(1);
        CohortPlan {
            population,
            tokens,
            weight,
            bin_width: SimDuration::from_micros(width_us),
        }
    }

    /// How many browsers token `token` stands for. Every token weighs
    /// `weight` except the last, which carries the remainder so the
    /// weights sum exactly to `population`.
    pub fn token_weight(&self, token: u32) -> u32 {
        if token + 1 < self.tokens {
            self.weight
        } else {
            let full = u64::from(self.weight) * u64::from(self.tokens - 1);
            (u64::from(self.population).saturating_sub(full)).max(1) as u32
        }
    }

    /// Slot index nearest to `at` (round-to-nearest keeps quantisation
    /// zero-mean). Saturates at `u32::MAX` slots — ~71 simulated
    /// minutes per slot-microsecond of width, far beyond any plan.
    pub fn slot_of(&self, at: SimTime) -> u32 {
        let w = self.bin_width.as_micros().max(1);
        ((at.as_micros().saturating_add(w / 2)) / w).min(u64::from(u32::MAX)) as u32
    }

    /// Absolute release time of slot `slot`.
    pub fn slot_time(&self, slot: u32) -> SimTime {
        SimTime::ZERO
            + SimDuration::from_micros(self.bin_width.as_micros().saturating_mul(u64::from(slot)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn think() -> SimDuration {
        SimDuration::from_secs_f64(7.0)
    }

    #[test]
    fn small_populations_keep_weight_one() {
        for pop in [1, 14, 100, 896] {
            let p = CohortPlan::build(pop, think(), DEFAULT_COHORT_BINS);
            assert_eq!(p.weight, 1, "population {pop}");
            assert_eq!(p.tokens, pop);
        }
    }

    #[test]
    fn token_weights_sum_to_population() {
        for pop in [1, 13, 100, 897, 1_000, 10_000, 123_457, 1_000_000] {
            for bins in [1, 4, 48, 64] {
                let p = CohortPlan::build(pop, think(), bins);
                let sum: u64 = (0..p.tokens).map(|t| u64::from(p.token_weight(t))).sum();
                assert_eq!(sum, u64::from(pop), "pop {pop} bins {bins}");
                assert!(
                    p.tokens <= bins.max(1) * Interaction::COUNT as u32,
                    "pop {pop} bins {bins}: {} tokens",
                    p.tokens
                );
            }
        }
    }

    #[test]
    fn million_browsers_need_bounded_tokens() {
        let p = CohortPlan::build(1_000_000, think(), DEFAULT_COHORT_BINS);
        assert_eq!(p.tokens, 896);
        assert_eq!(p.weight, 1117);
        // 895 tokens at full weight plus one remainder token.
        assert_eq!(p.token_weight(0), 1117);
        assert_eq!(p.token_weight(p.tokens - 1), 1_000_000 - 1117 * 895);
    }

    #[test]
    fn slot_rounding_is_nearest() {
        let p = CohortPlan::build(1_000, think(), 64);
        let w = p.bin_width.as_micros();
        assert_eq!(p.slot_of(SimTime::ZERO), 0);
        // Just below the halfway point rounds down; at or past it, up.
        assert_eq!(
            p.slot_of(SimTime::ZERO + SimDuration::from_micros(w / 2 - 1)),
            0
        );
        assert_eq!(
            p.slot_of(SimTime::ZERO + SimDuration::from_micros(w.div_ceil(2))),
            1
        );
        // Round-trip error is at most half a slot.
        for us in [0_u64, 123_456, 7_000_000, 90_000_000] {
            let t = SimTime::ZERO + SimDuration::from_micros(us);
            let back = p.slot_time(p.slot_of(t));
            let err = back.as_micros().abs_diff(us);
            assert!(err * 2 <= w, "t={us} err={err} w={w}");
        }
    }

    #[test]
    fn zero_bins_is_clamped() {
        // bins=0 clamps to 1 bin: 14 token slots, weight ceil(100/14)=8,
        // tokens ceil(100/8)=13.
        let p = CohortPlan::build(100, think(), 0);
        assert_eq!(p.weight, 8);
        assert_eq!(p.tokens, 13);
        assert!(p.bin_width.as_micros() >= 1);
    }

    #[test]
    fn load_model_names() {
        assert_eq!(LoadModel::PerBrowser.name(), "per-browser");
        assert_eq!(LoadModel::Cohort { bins: 64 }.name(), "cohort");
        assert_eq!(LoadModel::default(), LoadModel::PerBrowser);
        assert_eq!(LoadModel::Cohort { bins: 8 }.bins(), Some(8));
        assert_eq!(format!("{}", LoadModel::Cohort { bins: 8 }), "cohort(8)");
    }
}
