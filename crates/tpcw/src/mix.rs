//! The three TPC-W workload mixes (Table 1 of the paper).
//!
//! A *mix* assigns a relative weight to each of the fourteen interactions.
//! TPC-W defines three: **Browsing** (WIPSb, 95% browse), **Shopping**
//! (WIPS, 80% browse), and **Ordering** (WIPSo, 50% browse). The weights
//! here are exactly the percentages printed in Table 1.

use crate::interaction::{Interaction, InteractionClass};
use simkit::rng::SimRng;
use std::fmt;

/// One of the three standard TPC-W workload mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// 95% browse / 5% order — the WIPSb interval.
    Browsing,
    /// 80% browse / 20% order — the primary WIPS metric.
    Shopping,
    /// 50% browse / 50% order — the WIPSo interval.
    Ordering,
}

impl Workload {
    pub const ALL: [Workload; 3] = [Workload::Browsing, Workload::Shopping, Workload::Ordering];

    pub fn name(self) -> &'static str {
        match self {
            Workload::Browsing => "Browsing",
            Workload::Shopping => "Shopping",
            Workload::Ordering => "Ordering",
        }
    }

    /// The TPC-W metric label for this interval.
    pub fn metric_label(self) -> &'static str {
        match self {
            Workload::Browsing => "WIPSb",
            Workload::Shopping => "WIPS",
            Workload::Ordering => "WIPSo",
        }
    }

    /// The interaction mix for this workload.
    pub fn mix(self) -> &'static Mix {
        match self {
            Workload::Browsing => &BROWSING_MIX,
            Workload::Shopping => &SHOPPING_MIX,
            Workload::Ordering => &ORDERING_MIX,
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An interaction mix: per-interaction weights in percent (summing to 100).
#[derive(Debug, Clone, PartialEq)]
pub struct Mix {
    /// Percent weight per interaction, indexed by [`Interaction::index`].
    weights: [f64; Interaction::COUNT],
}

impl Mix {
    /// Build a mix from `(interaction, percent)` pairs. Every interaction
    /// must appear exactly once and the percentages must sum to 100 (within
    /// 1e-6).
    pub fn new(entries: [(Interaction, f64); Interaction::COUNT]) -> Result<Mix, MixError> {
        let mut weights = [f64::NAN; Interaction::COUNT];
        for (ix, pct) in entries {
            if pct < 0.0 {
                return Err(MixError::NegativeWeight(ix));
            }
            if !weights[ix.index()].is_nan() {
                return Err(MixError::DuplicateInteraction(ix));
            }
            weights[ix.index()] = pct;
        }
        let total: f64 = weights.iter().sum();
        if (total - 100.0).abs() > 1e-6 {
            return Err(MixError::BadTotal(total));
        }
        Ok(Mix { weights })
    }

    /// Percent weight of one interaction.
    pub fn percent(&self, ix: Interaction) -> f64 {
        self.weights[ix.index()]
    }

    /// Probability (0..1) of one interaction.
    pub fn probability(&self, ix: Interaction) -> f64 {
        self.weights[ix.index()] / 100.0
    }

    /// Total percent weight of a class (Browse or Order).
    pub fn class_percent(&self, class: InteractionClass) -> f64 {
        Interaction::ALL
            .iter()
            .filter(|i| i.class() == class)
            .map(|i| self.percent(*i))
            .sum()
    }

    /// Sample an interaction according to the mix weights.
    ///
    /// The paper's driver walks the TPC-W Markov navigation graph; the
    /// published table only pins the steady-state frequencies, so we sample
    /// i.i.d. from them directly (documented substitution in DESIGN.md §1).
    pub fn sample(&self, rng: &mut SimRng) -> Interaction {
        let idx = rng.weighted_index(&self.weights);
        // `weighted_index` returns a position inside `self.weights`,
        // which has exactly `Interaction::COUNT` entries.
        Interaction::ALL[idx.min(Interaction::COUNT - 1)]
    }

    /// The raw weight array (for property tests and reporting).
    pub fn weights(&self) -> &[f64; Interaction::COUNT] {
        &self.weights
    }
}

/// Mix construction failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MixError {
    NegativeWeight(Interaction),
    DuplicateInteraction(Interaction),
    BadTotal(f64),
}

impl fmt::Display for MixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MixError::NegativeWeight(ix) => write!(f, "negative weight for {ix}"),
            MixError::DuplicateInteraction(ix) => write!(f, "duplicate entry for {ix}"),
            MixError::BadTotal(t) => write!(f, "mix weights sum to {t}, expected 100"),
        }
    }
}

impl std::error::Error for MixError {}

macro_rules! static_mix {
    ($(($ix:ident, $pct:expr)),+ $(,)?) => {{
        let mut weights = [0.0; Interaction::COUNT];
        $(weights[Interaction::$ix.index()] = $pct;)+
        Mix { weights }
    }};
}

/// Table 1, Browsing column (WIPSb): 95% browse / 5% order.
pub static BROWSING_MIX: Mix = static_mix![
    (Home, 29.00),
    (NewProducts, 11.00),
    (BestSellers, 11.00),
    (ProductDetail, 21.00),
    (SearchRequest, 12.00),
    (SearchResults, 11.00),
    (ShoppingCart, 2.00),
    (CustomerRegistration, 0.82),
    (BuyRequest, 0.75),
    (BuyConfirm, 0.69),
    (OrderInquiry, 0.30),
    (OrderDisplay, 0.25),
    (AdminRequest, 0.10),
    (AdminConfirm, 0.09),
];

/// Table 1, Shopping column (WIPS): 80% browse / 20% order.
pub static SHOPPING_MIX: Mix = static_mix![
    (Home, 16.00),
    (NewProducts, 5.00),
    (BestSellers, 5.00),
    (ProductDetail, 17.00),
    (SearchRequest, 20.00),
    (SearchResults, 17.00),
    (ShoppingCart, 11.60),
    (CustomerRegistration, 3.00),
    (BuyRequest, 2.60),
    (BuyConfirm, 1.20),
    (OrderInquiry, 0.75),
    (OrderDisplay, 0.66),
    (AdminRequest, 0.10),
    (AdminConfirm, 0.09),
];

/// Table 1, Ordering column (WIPSo): 50% browse / 50% order.
pub static ORDERING_MIX: Mix = static_mix![
    (Home, 9.12),
    (NewProducts, 0.46),
    (BestSellers, 0.46),
    (ProductDetail, 12.35),
    (SearchRequest, 14.53),
    (SearchResults, 13.08),
    (ShoppingCart, 13.53),
    (CustomerRegistration, 12.86),
    (BuyRequest, 12.73),
    (BuyConfirm, 10.18),
    (OrderInquiry, 0.25),
    (OrderDisplay, 0.22),
    (AdminRequest, 0.12),
    (AdminConfirm, 0.11),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_totals_are_100_percent() {
        for w in Workload::ALL {
            let total: f64 = w.mix().weights().iter().sum();
            assert!((total - 100.0).abs() < 1e-9, "{w} mix sums to {total}");
        }
    }

    #[test]
    fn table1_class_splits_match_paper() {
        // Table 1 header row: Browse 95/80/50, Order 5/20/50.
        let cases = [
            (Workload::Browsing, 95.0, 5.0),
            (Workload::Shopping, 80.0, 20.0),
            (Workload::Ordering, 50.0, 50.0),
        ];
        for (w, browse, order) in cases {
            let mix = w.mix();
            assert!(
                (mix.class_percent(InteractionClass::Browse) - browse).abs() < 1e-9,
                "{w}: browse"
            );
            assert!(
                (mix.class_percent(InteractionClass::Order) - order).abs() < 1e-9,
                "{w}: order"
            );
        }
    }

    #[test]
    fn table1_spot_values() {
        assert_eq!(BROWSING_MIX.percent(Interaction::Home), 29.00);
        assert_eq!(SHOPPING_MIX.percent(Interaction::ShoppingCart), 11.60);
        assert_eq!(ORDERING_MIX.percent(Interaction::BuyConfirm), 10.18);
        assert_eq!(ORDERING_MIX.percent(Interaction::AdminConfirm), 0.11);
        assert_eq!(BROWSING_MIX.percent(Interaction::SearchRequest), 12.00);
    }

    #[test]
    fn sampling_matches_weights() {
        let mut rng = SimRng::new(99);
        let mix = Workload::Ordering.mix();
        let n = 200_000;
        let mut counts = [0u64; Interaction::COUNT];
        for _ in 0..n {
            counts[mix.sample(&mut rng).index()] += 1;
        }
        for ix in Interaction::ALL {
            let expected = mix.probability(ix);
            let got = counts[ix.index()] as f64 / n as f64;
            assert!(
                (got - expected).abs() < 0.01,
                "{ix}: expected {expected:.4}, got {got:.4}"
            );
        }
    }

    #[test]
    fn mix_new_validates() {
        // Valid reconstruction of the browsing mix.
        let entries = [
            (Interaction::Home, 29.00),
            (Interaction::NewProducts, 11.00),
            (Interaction::BestSellers, 11.00),
            (Interaction::ProductDetail, 21.00),
            (Interaction::SearchRequest, 12.00),
            (Interaction::SearchResults, 11.00),
            (Interaction::ShoppingCart, 2.00),
            (Interaction::CustomerRegistration, 0.82),
            (Interaction::BuyRequest, 0.75),
            (Interaction::BuyConfirm, 0.69),
            (Interaction::OrderInquiry, 0.30),
            (Interaction::OrderDisplay, 0.25),
            (Interaction::AdminRequest, 0.10),
            (Interaction::AdminConfirm, 0.09),
        ];
        let mix = Mix::new(entries).unwrap();
        assert_eq!(&mix, &BROWSING_MIX);

        // Bad total.
        let mut bad = entries;
        bad[0].1 = 10.0;
        assert!(matches!(Mix::new(bad), Err(MixError::BadTotal(_))));

        // Duplicate.
        let mut dup = entries;
        dup[1].0 = Interaction::Home;
        assert!(matches!(
            Mix::new(dup),
            Err(MixError::DuplicateInteraction(Interaction::Home))
        ));

        // Negative.
        let mut neg = entries;
        neg[2].1 = -1.0;
        assert!(matches!(
            Mix::new(neg),
            Err(MixError::NegativeWeight(Interaction::BestSellers))
        ));
    }

    #[test]
    fn metric_labels() {
        assert_eq!(Workload::Browsing.metric_label(), "WIPSb");
        assert_eq!(Workload::Shopping.metric_label(), "WIPS");
        assert_eq!(Workload::Ordering.metric_label(), "WIPSo");
    }
}
