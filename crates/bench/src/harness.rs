//! Minimal benchmark harness (std-only) with a Criterion-shaped API.
//!
//! The `benches/*.rs` targets are built with `harness = false` and call
//! [`Criterion::from_args`] from their own `main`. Each benchmark warms
//! up once, then runs timed batches until both a minimum wall-time and a
//! minimum iteration count are reached, and prints the per-iteration
//! mean. A substring filter can be passed on the command line
//! (`cargo bench -- lru`).

use std::time::{Duration, Instant};

/// One benchmark's timing result.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    pub iters: u64,
    pub total: Duration,
}

impl Measurement {
    /// Mean seconds per iteration.
    pub fn secs_per_iter(&self) -> f64 {
        if self.iters == 0 {
            0.0
        } else {
            self.total.as_secs_f64() / self.iters as f64
        }
    }
}

/// Time `f` repeatedly until both `min_time` and `min_iters` are met.
pub fn measure<O>(mut f: impl FnMut() -> O, min_time: Duration, min_iters: u64) -> Measurement {
    std::hint::black_box(f()); // warmup, also primes caches/allocations
    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        std::hint::black_box(f());
        iters += 1;
        if iters >= min_iters && start.elapsed() >= min_time {
            break;
        }
        // Hard cap so micro-benches cannot spin forever under a long
        // min_time on very fast operations.
        if iters >= 1_000_000 {
            break;
        }
    }
    Measurement {
        iters,
        total: start.elapsed(),
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Benchmark driver: filters, runs, and reports.
pub struct Criterion {
    filter: Option<String>,
    min_iters: u64,
    min_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            min_iters: 10,
            min_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Build from CLI args: the first non-flag argument is a substring
    /// filter; `--quick` lowers the measurement floor. Flags injected by
    /// `cargo bench` (e.g. `--bench`) are ignored.
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            if arg == "--quick" {
                c.min_iters = 3;
                c.min_time = Duration::from_millis(20);
            } else if !arg.starts_with('-') && c.filter.is_none() {
                c.filter = Some(arg);
            }
        }
        c
    }

    fn selected(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Run one named benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        if !self.selected(name) {
            return;
        }
        let mut b = Bencher {
            min_iters: self.min_iters,
            min_time: self.min_time,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some(m) => println!(
                "{name:<44} {:>12}/iter  ({} iters in {:.2} s)",
                fmt_time(m.secs_per_iter()),
                m.iters,
                m.total.as_secs_f64()
            ),
            None => println!("{name:<44} (no measurement)"),
        }
    }

    /// Open a named group; benchmark names become `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            prefix: name.to_string(),
            min_iters: None,
        }
    }
}

/// A prefix + per-group sample-size override.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    prefix: String,
    min_iters: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Override the minimum iteration count for this group.
    pub fn sample_size(&mut self, n: u64) -> &mut Self {
        self.min_iters = Some(n);
        self
    }

    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.prefix, name);
        if !self.c.selected(&full) {
            return;
        }
        let saved = self.c.min_iters;
        if let Some(n) = self.min_iters {
            self.c.min_iters = n;
        }
        self.c.bench_function(&full, |b| f(b));
        self.c.min_iters = saved;
    }

    pub fn finish(&mut self) {}
}

/// Handed to each benchmark closure; call [`Bencher::iter`] exactly once.
pub struct Bencher {
    min_iters: u64,
    min_time: Duration,
    result: Option<Measurement>,
}

impl Bencher {
    pub fn iter<O>(&mut self, f: impl FnMut() -> O) {
        self.result = Some(measure(f, self.min_time, self.min_iters));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_runs_at_least_min_iters() {
        let mut n = 0u64;
        let m = measure(
            || {
                n += 1;
                n
            },
            Duration::from_millis(1),
            5,
        );
        assert!(m.iters >= 5);
        assert!(m.secs_per_iter() >= 0.0);
    }

    #[test]
    fn group_prefixes_and_filters() {
        let mut c = Criterion {
            filter: Some("grp/yes".to_string()),
            min_iters: 1,
            min_time: Duration::from_millis(0),
        };
        let mut ran = Vec::new();
        {
            let mut g = c.benchmark_group("grp");
            g.bench_function("yes", |b| {
                ran.push("yes");
                b.iter(|| 1 + 1)
            });
            g.bench_function("no", |b| {
                ran.push("no");
                b.iter(|| 1 + 1)
            });
            g.finish();
        }
        assert_eq!(ran, vec!["yes"]);
    }
}
