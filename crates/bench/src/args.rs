//! Minimal command-line parsing for the regeneration binaries.
//!
//! Every binary accepts:
//! * `--effort smoke|quick|paper` (default `quick`)
//! * `--seed <u64>` (default 42)
//! * `--csv <dir>` (optional: also write raw series as CSV files)
//! * `--trace <path>` (optional: structured JSONL trace of the run)
//! * `--faults <plan.json>` (optional: fault plan for fault-aware runners)
//! * `--fault-seed <u64>` (optional: fault noise/jitter seed)

use obs::JsonlWriter;
use orchestrator::experiments::Effort;

/// Parsed common options.
#[derive(Debug, Clone)]
pub struct Options {
    pub effort: Effort,
    pub effort_name: &'static str,
    pub seed: u64,
    /// Directory for optional CSV dumps.
    pub csv_dir: Option<std::path::PathBuf>,
    /// Path for an optional JSONL trace of the run.
    pub trace_path: Option<std::path::PathBuf>,
    /// Path to an optional JSON fault plan (fault-aware runners only).
    pub fault_plan_path: Option<std::path::PathBuf>,
    /// Optional fault noise/jitter seed override.
    pub fault_seed: Option<u64>,
}

impl Options {
    /// Write `csv` to `<csv_dir>/<name>` when `--csv` was given.
    pub fn maybe_write_csv(&self, name: &str, csv: &str) {
        if let Some(dir) = &self.csv_dir {
            let path = dir.join(name);
            match orchestrator::export::write_csv(&path, csv) {
                Ok(()) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("could not write {}: {e}", path.display()),
            }
        }
    }

    /// Load the `--faults` plan, if given. Exits on parse errors: a fault
    /// plan the user asked for must not be silently dropped.
    pub fn maybe_fault_plan(&self) -> Option<faults::FaultPlan> {
        self.fault_plan_path
            .as_deref()
            .map(|path| match faults::FaultPlan::load(path) {
                Ok(plan) => plan,
                Err(e) => {
                    eprintln!("could not load fault plan {}: {e}", path.display());
                    std::process::exit(2);
                }
            })
    }

    /// Open the `--trace` JSONL sink, if requested. Exits on I/O errors.
    pub fn maybe_trace_sink(&self) -> Option<JsonlWriter<std::io::BufWriter<std::fs::File>>> {
        self.trace_path
            .as_deref()
            .map(|path| match JsonlWriter::create(path) {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("could not open trace file {}: {e}", path.display());
                    std::process::exit(2);
                }
            })
    }
}

/// Parse from an iterator of arguments (excluding `argv[0]`).
pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Result<Options, String> {
    let mut effort = Effort::quick();
    let mut effort_name = "quick";
    let mut seed = 42u64;
    let mut csv_dir = None;
    let mut trace_path = None;
    let mut fault_plan_path = None;
    let mut fault_seed = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--effort" => {
                let v = it.next().ok_or("--effort needs a value")?;
                (effort, effort_name) = match v.as_str() {
                    "smoke" => (Effort::smoke(), "smoke"),
                    "quick" => (Effort::quick(), "quick"),
                    "paper" => (Effort::paper(), "paper"),
                    other => return Err(format!("unknown effort '{other}'")),
                };
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("bad seed '{v}'"))?;
            }
            "--csv" => {
                let v = it.next().ok_or("--csv needs a directory")?;
                csv_dir = Some(std::path::PathBuf::from(v));
            }
            "--trace" => {
                let v = it.next().ok_or("--trace needs a path")?;
                trace_path = Some(std::path::PathBuf::from(v));
            }
            "--faults" => {
                let v = it.next().ok_or("--faults needs a path")?;
                fault_plan_path = Some(std::path::PathBuf::from(v));
            }
            "--fault-seed" => {
                let v = it.next().ok_or("--fault-seed needs a value")?;
                fault_seed = Some(v.parse().map_err(|_| format!("bad fault seed '{v}'"))?);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: [--effort smoke|quick|paper] [--seed N] [--csv DIR] [--trace PATH] \
                     [--faults PLAN.json] [--fault-seed N]"
                        .into(),
                );
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(Options {
        effort,
        effort_name,
        seed,
        csv_dir,
        trace_path,
        fault_plan_path,
        fault_seed,
    })
}

/// Parse the process arguments, exiting with a message on error.
pub fn parse() -> Options {
    match parse_from(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let o = parse_from(args(&[])).unwrap();
        assert_eq!(o.seed, 42);
        assert_eq!(o.effort_name, "quick");
    }

    #[test]
    fn parses_effort_and_seed() {
        let o = parse_from(args(&["--effort", "paper", "--seed", "7"])).unwrap();
        assert_eq!(o.effort_name, "paper");
        assert_eq!(o.seed, 7);
        assert_eq!(o.effort.iterations, 200);
    }

    #[test]
    fn parses_csv_dir() {
        let o = parse_from(args(&["--csv", "/tmp/out"])).unwrap();
        assert_eq!(o.csv_dir, Some(std::path::PathBuf::from("/tmp/out")));
        assert!(parse_from(args(&["--csv"])).is_err());
    }

    #[test]
    fn parses_trace_path() {
        let o = parse_from(args(&["--trace", "/tmp/run.jsonl"])).unwrap();
        assert_eq!(
            o.trace_path,
            Some(std::path::PathBuf::from("/tmp/run.jsonl"))
        );
        assert!(parse_from(args(&["--trace"])).is_err());
    }

    #[test]
    fn parses_fault_flags() {
        let o = parse_from(args(&["--faults", "plan.json", "--fault-seed", "99"])).unwrap();
        assert_eq!(
            o.fault_plan_path,
            Some(std::path::PathBuf::from("plan.json"))
        );
        assert_eq!(o.fault_seed, Some(99));
        let o = parse_from(args(&[])).unwrap();
        assert_eq!(o.fault_plan_path, None);
        assert_eq!(o.fault_seed, None);
    }

    #[test]
    fn rejects_bad_fault_flags() {
        assert!(parse_from(args(&["--faults"])).is_err());
        assert!(parse_from(args(&["--fault-seed"])).is_err());
        assert!(parse_from(args(&["--fault-seed", "many"])).is_err());
    }

    #[test]
    fn rejects_unknown() {
        assert!(parse_from(args(&["--bogus"])).is_err());
        assert!(parse_from(args(&["--effort", "huge"])).is_err());
        assert!(parse_from(args(&["--seed", "abc"])).is_err());
        assert!(parse_from(args(&["--seed"])).is_err());
    }
}
