//! EXP-TUNERS: the tuner zoo — simplex vs BestConfig vs ClassyTune vs
//! TUNA across workloads, plus the noise duel.
//!
//! Prints the cross-tuner comparison (best WIPS, improvement over the
//! default configuration, iterations-to-best, clean and faulted
//! stability) and the noise duel: what each tuner *claims* its best
//! configuration achieves after tuning against 4× measurement-noise
//! spikes, vs a fault-free re-measurement of that configuration.

use bench::args;
use orchestrator::experiments::tuners;
use orchestrator::report::{fmt_f, fmt_pct, TextTable};

fn main() {
    let opts = args::parse();
    println!(
        "== Tuner zoo: cross-tuner, cross-workload comparison (effort: {}, seed: {}) ==\n",
        opts.effort_name, opts.seed
    );
    println!(
        "Running {} tuners x {} workloads, clean + noise-faulted ({} iterations each)...\n",
        tuners::ZOO.len(),
        tuners::WORKLOADS.len(),
        opts.effort.iterations
    );
    let result = match tuners::run(&opts.effort, opts.seed) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    let mut table = TextTable::new([
        "Tuner",
        "Workload",
        "Default",
        "Best WIPS",
        "Improvement",
        "Best @ iter",
        "2nd-half sd",
        "Faulted CV",
    ]);
    for c in &result.cells {
        table.row([
            c.tuner.to_string(),
            c.workload.to_string(),
            fmt_f(c.default_wips, 1),
            fmt_f(c.best_wips, 1),
            fmt_pct(c.improvement),
            c.iterations_to_best.to_string(),
            fmt_f(c.second_half_sd, 2),
            fmt_f(c.faulted_cv, 3),
        ]);
    }
    println!("{}", table.render());

    let mut csv = String::from(
        "tuner,workload,default_wips,best_wips,improvement,iterations_to_best,second_half_sd,faulted_cv\n",
    );
    for c in &result.cells {
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            c.tuner,
            c.workload,
            c.default_wips,
            c.best_wips,
            c.improvement,
            c.iterations_to_best,
            c.second_half_sd,
            c.faulted_cv
        ));
    }
    opts.maybe_write_csv("exp_tuners.csv", &csv);

    println!("Noise duel (Shopping, 4x spikes every 3rd window):");
    let mut duel = TextTable::new(["Tuner", "Claimed best", "Clean re-measure", "Overstatement"]);
    for n in &result.noise {
        duel.row([
            n.tuner.to_string(),
            fmt_f(n.reported_best, 1),
            fmt_f(n.clean_wips, 1),
            fmt_pct(n.regression),
        ]);
    }
    println!("{}", duel.render());

    let fooled = result.noise_for("simplex").map(|n| n.regression);
    let robust = result.noise_for("tuna").map(|n| n.regression);
    if let (Some(s), Some(t)) = (fooled, robust) {
        println!(
            "Expectation: the simplex keeps the spiked maximum it observed \
             ({} overstated), while TUNA's CI-weighted confirmation median \
             discards it ({}).",
            fmt_pct(s),
            fmt_pct(t)
        );
        if t >= s {
            eprintln!("UNEXPECTED: TUNA regressed at least as much as the simplex");
            std::process::exit(1);
        }
    }
}
