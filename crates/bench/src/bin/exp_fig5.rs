//! Figure 5 (EXP-F5): tuning responsiveness to changing workloads.

use bench::args;
use obs::{TraceRecord, TraceSink};
use orchestrator::experiments::fig5;
use orchestrator::report::sparkline;

fn main() {
    let opts = args::parse();
    println!(
        "== Figure 5: responsiveness to changing workloads (effort: {}, seed: {}) ==\n",
        opts.effort_name, opts.seed
    );
    let r = fig5::run(&opts.effort, opts.seed);

    println!(
        "WIPS per iteration (workload changes at {:?}):",
        r.change_points
    );
    println!("  {}", sparkline(&r.wips_series));
    // Segment annotations.
    let mut labels = String::from("  ");
    let mut prev = 0usize;
    let mut names: Vec<&str> = r.workloads.iter().map(|w| w.name()).collect::<Vec<_>>();
    names.dedup();
    for (i, cp) in r
        .change_points
        .iter()
        .copied()
        .chain([r.wips_series.len() as u32])
        .enumerate()
    {
        let width = cp as usize - prev;
        let name = names.get(i).copied().unwrap_or("?");
        labels.push_str(&format!("{name:^width$}"));
        prev = cp as usize;
    }
    println!("{labels}\n");

    println!("Recovery after each workload change (iterations to reach 90% of the");
    println!("segment's median WIPS):");
    for (cp, rec) in &r.recovery {
        match rec {
            Some(n) => println!("  change @ {cp}: recovered in {n} iteration(s)"),
            None => println!("  change @ {cp}: did not recover within the segment"),
        }
    }
    if let Some(mean) = r.mean_recovery() {
        println!("\nMean recovery: {mean:.1} iterations");
    }
    opts.maybe_write_csv(
        "fig5_wips.csv",
        &orchestrator::export::series_csv(&["wips"], std::slice::from_ref(&r.wips_series)),
    );
    if let Some(mut sink) = opts.maybe_trace_sink() {
        for (i, (wips, workload)) in r.wips_series.iter().zip(&r.workloads).enumerate() {
            let rec = TraceRecord::new("fig5_iteration")
                .field("iteration", i as u32)
                .field("workload", workload.name())
                .field("wips", *wips)
                .field("change_point", r.change_points.contains(&(i as u32)));
            sink.emit(&rec);
        }
        sink.flush();
    }
    println!("Paper claim: only a few iterations are needed to adapt to the new workload.");
}
