//! EXP-CHAOS: the chaos conformance matrix — every registered tuner
//! against every plan in the chaos library, under the fully hardened
//! resilience policy stack (retry ∘ timeout ∘ breaker ∘ bulkhead with
//! graceful degradation).
//!
//! Prints one row per tuner × plan cell: throughput reached, how many
//! iterations stayed usable, and which policies fired. Every cell must
//! be conformant (finish or degrade — never panic, hang, or report a
//! non-finite throughput); a non-conformant cell fails the run.

use bench::args;
use orchestrator::experiments::chaos;
use orchestrator::report::{fmt_f, TextTable};

fn main() {
    let opts = args::parse();
    println!(
        "== Chaos conformance matrix (effort: {}, seed: {}) ==\n",
        opts.effort_name, opts.seed
    );
    let result = match chaos::run(&opts.effort, opts.seed) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "Ran {} tuners x {} chaos plans ({} iterations each).\n",
        result.tuners.len(),
        result.plans.len(),
        opts.effort.iterations
    );

    let mut table = TextTable::new([
        "Tuner",
        "Chaos plan",
        "Best WIPS",
        "Mean WIPS",
        "Usable",
        "Retries",
        "Timeouts",
        "Trips",
        "Degraded",
        "Reconfigs",
    ]);
    let mut nonconformant = 0;
    for c in &result.cells {
        table.row([
            c.tuner.to_string(),
            c.plan.to_string(),
            fmt_f(c.best_wips, 1),
            fmt_f(c.mean_wips, 1),
            format!("{}/{}", c.ok_iterations, c.iterations),
            c.retries.to_string(),
            c.timeouts.to_string(),
            c.breaker_opens.to_string(),
            c.degraded.to_string(),
            c.reconfigs.to_string(),
        ]);
        if !c.conformant() {
            nonconformant += 1;
            eprintln!("NON-CONFORMANT: {c:?}");
        }
    }
    println!("{}", table.render());
    opts.maybe_write_csv("exp_chaos.csv", &result.to_csv());

    if nonconformant > 0 {
        eprintln!("{nonconformant} non-conformant cell(s)");
        std::process::exit(1);
    }
    println!(
        "All {} cells conformant: every tuner finished or degraded gracefully.",
        result.cells.len()
    );
}
