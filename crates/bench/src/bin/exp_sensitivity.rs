//! Parameter sensitivity (the paper's "identify the parameters that
//! actually affect system performance" claim, §III.A).

use bench::args;
use orchestrator::experiments::sensitivity;
use orchestrator::par::parallel_map;
use orchestrator::report::{fmt_f, TextTable};
use tpcw::mix::Workload;

fn main() {
    let opts = args::parse();
    println!(
        "== Parameter sensitivity: one-at-a-time sweeps to range boundaries \
         (effort: {}, seed: {}) ==\n",
        opts.effort_name, opts.seed
    );
    let workloads = [Workload::Browsing, Workload::Ordering];
    let results = parallel_map(&workloads, 0, |&w| {
        sensitivity::run(w, &opts.effort, opts.seed)
    });

    for r in &results {
        println!(
            "{} (default {:.1} WIPS) — top 8 / bottom 4 parameters by impact:",
            r.workload, r.default_wips
        );
        let mut table = TextTable::new(["Parameter", "WIPS @ min", "WIPS @ max", "Impact"]);
        for e in r.entries.iter().take(8) {
            table.row([
                e.name.clone(),
                fmt_f(e.at_min, 1),
                fmt_f(e.at_max, 1),
                format!("{:.1}%", e.impact * 100.0),
            ]);
        }
        table.row([
            "...".to_string(),
            String::new(),
            String::new(),
            String::new(),
        ]);
        for e in r.entries.iter().rev().take(4).rev() {
            table.row([
                e.name.clone(),
                fmt_f(e.at_min, 1),
                fmt_f(e.at_max, 1),
                format!("{:.1}%", e.impact * 100.0),
            ]);
        }
        println!("{}", table.render());
    }
    println!("Paper's reading: thread counts and buffer sizes matter; the proxy's");
    println!("cache_swap_low/cache_swap_high thresholds do not.");
}
