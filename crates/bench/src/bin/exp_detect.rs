//! EXP-DETECT: the φ-accrual failure detector scored against injector
//! ground truth, plus an oracle-vs-detector recovery comparison.
//!
//! Sweeps the φ threshold over every chaos-library plan (and a clean
//! control) in detector-gated resilient sessions. Per cell: true/false
//! `Down` confirmations, mean crash→confirmation latency, and hard
//! crashes missed inside the detection horizon. Then the crash-storm
//! plan runs once oracle-gated and once detector-gated on the same
//! seeds to price detection in recovery iterations.
//!
//! Exits non-zero if, at the default threshold, any hard crash goes
//! undetected, the clean plan false-positives, or detector-gated
//! recovery costs more than one extra iteration over the oracle.

use bench::args;
use orchestrator::experiments::detect;
use orchestrator::report::{fmt_f, TextTable};

fn main() {
    let opts = args::parse();
    println!(
        "== Failure-detector sweep (effort: {}, seed: {}) ==\n",
        opts.effort_name, opts.seed
    );
    let result = match detect::run(&opts.effort, opts.seed) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "Swept {} phi thresholds x {} plans ({} iterations each; detection horizon {}s).\n",
        result.thresholds.len(),
        result.plans.len(),
        opts.effort.iterations,
        detect::DETECTION_HORIZON_S
    );

    let mut table = TextTable::new([
        "Phi",
        "Plan",
        "TruePos",
        "FalsePos",
        "Missed",
        "Latency (s)",
        "Reconfigs",
        "Best WIPS",
    ]);
    for c in &result.cells {
        table.row([
            fmt_f(c.phi_threshold, 1),
            c.plan.to_string(),
            c.true_positives.to_string(),
            c.false_positives.to_string(),
            c.missed_crashes.to_string(),
            if c.mean_latency_s >= 0.0 {
                fmt_f(c.mean_latency_s, 2)
            } else {
                "-".to_string()
            },
            c.reconfigs.to_string(),
            fmt_f(c.best_wips, 1),
        ]);
    }
    println!("{}", table.render());

    let cmp = &result.comparison;
    let show = |r: Option<u32>| match r {
        Some(i) => format!("{i} iter"),
        None => "never".to_string(),
    };
    println!("Crash-storm recovery (50% of pre-crash best, same seeds):");
    println!(
        "  oracle-gated:   recovered in {:>8}, best WIPS {}, {} reconfig(s)",
        show(cmp.oracle_recovery),
        fmt_f(cmp.oracle_best_wips, 1),
        cmp.oracle_reconfigs
    );
    println!(
        "  detector-gated: recovered in {:>8}, best WIPS {}, {} reconfig(s)\n",
        show(cmp.detector_recovery),
        fmt_f(cmp.detector_best_wips, 1),
        cmp.detector_reconfigs
    );

    opts.maybe_write_csv("exp_detect.csv", &result.to_csv());

    let mut failures = 0;
    for c in result.default_cells() {
        if c.missed_crashes > 0 {
            failures += 1;
            eprintln!(
                "MISSED CRASH at default threshold: plan {} left {} hard crash(es) undetected",
                c.plan, c.missed_crashes
            );
        }
        if c.plan == "clean" && c.false_positives > 0 {
            failures += 1;
            eprintln!(
                "FALSE POSITIVE at default threshold: clean plan confirmed {} node(s) Down",
                c.false_positives
            );
        }
    }
    let extra = cmp.detector_extra_iterations();
    if extra > 1 {
        failures += 1;
        eprintln!("RECOVERY GAP: detector-gated recovery cost {extra} extra iteration(s) (> 1)");
    }
    if failures > 0 {
        eprintln!("{failures} detector gate(s) failed");
        std::process::exit(1);
    }
    println!(
        "Detector conformant at the default threshold: no missed hard crashes, \
         clean plan quiet, recovery within {extra} extra iteration(s) of the oracle."
    );
}
