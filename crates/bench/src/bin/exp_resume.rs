//! EXP-RESUME: kill-and-resume torture of crash-safe persistence.
//!
//! Runs the Default-method tuner on a single work line to completion for
//! reference, then kills a checkpointed copy at each of five seeded
//! interrupt points, resumes it from the directory left on disk, and
//! reports whether the spliced run was byte-identical to the
//! uninterrupted one (same trace records, bit-equal best WIPS).

use bench::args;
use orchestrator::experiments::resume;

fn main() {
    let opts = args::parse();
    println!(
        "== Kill-and-resume: crash-safe persistence (effort: {}, seed: {}) ==\n",
        opts.effort_name, opts.seed
    );
    let r = match resume::run(&opts.effort, opts.seed) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "{} iterations per session, journal append every iteration, snapshot every {}",
        r.iterations, r.snapshot_every
    );
    println!("uninterrupted best: {:.1} WIPS\n", r.baseline_best_wips);
    println!("killed at   recovered from    replayed   trace      result");
    for o in &r.outcomes {
        println!(
            "  {:5}     snapshot {:5}    {:5}      {}      {}",
            o.kill_at,
            o.snapshot_iteration,
            o.replayed,
            if o.prefix_identical && o.tail_identical {
                "exact  "
            } else {
                "DRIFTED"
            },
            if o.result_identical {
                "bit-equal"
            } else {
                "DIFFERS"
            },
        );
    }
    let csv = {
        let mut s = String::from(
            "kill_at,snapshot_iteration,replayed,prefix_identical,tail_identical,result_identical\n",
        );
        for o in &r.outcomes {
            s.push_str(&format!(
                "{},{},{},{},{},{}\n",
                o.kill_at,
                o.snapshot_iteration,
                o.replayed,
                o.prefix_identical,
                o.tail_identical,
                o.result_identical
            ));
        }
        s
    };
    opts.maybe_write_csv("resume_torture.csv", &csv);

    if r.all_exact() {
        println!("\nEvery interrupt point resumed byte-identically to the uninterrupted run.");
    } else {
        println!("\nFAIL: at least one interrupt point diverged after resume.");
        std::process::exit(1);
    }
}
