//! EXP-FAULTS: resilient tuning under deterministic fault injection.
//!
//! Runs the duplication tuner on a 2p/3a/2d cluster while the canonical
//! fault plan (or one given with `--faults`) injects a noise spike and a
//! mid-measurement crash of an application-tier node. Expected shape:
//! WIPS dips when the node dies and recovers after the failure-driven
//! reconfiguration pulls a spare into the wounded tier.

use bench::args;
use obs::TraceSink;
use orchestrator::experiments::faults;
use orchestrator::report::sparkline;
use orchestrator::session::SessionObserver;

fn main() {
    let opts = args::parse();
    println!(
        "== Fault injection: dip and recover (effort: {}, seed: {}) ==\n",
        opts.effort_name, opts.seed
    );
    let plan = opts.maybe_fault_plan();
    let mut sink = opts.maybe_trace_sink();
    let mut observer = SessionObserver::new(sink.as_mut().map(|s| s as &mut dyn TraceSink), None);
    let r = match faults::run_custom(
        &opts.effort,
        opts.seed,
        plan,
        opts.fault_seed,
        &mut observer,
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    println!("WIPS per iteration:");
    println!("  {}", sparkline(&r.wips_series));
    match r.crash_iteration {
        Some(ci) => println!(
            "\ncrash at iteration {ci} (pre-crash best {:.1} WIPS)",
            r.pre_crash_best
        ),
        None => println!("\nno crash in the plan"),
    }
    match r.recovery_iterations {
        Some(n) => println!("recovered to 90% of the pre-crash best in {n} iteration(s)"),
        None => {
            if r.crash_iteration.is_some() {
                println!("did not reach 90% of the pre-crash best within the run");
            }
        }
    }
    println!(
        "resilience actions: {} retries, {} re-measurements, {} breaker trips",
        r.retries, r.remeasures, r.breaker_opens
    );
    for e in &r.reconfigs {
        println!(
            "  iteration {:3}: spare node {} pulled {} -> {}",
            e.iteration, e.node, e.from_tier, e.to_tier
        );
    }
    println!(
        "layout (proxy, app, db): {:?} -> {:?}  (crashed nodes keep their tier)",
        r.initial_layout, r.final_layout
    );
    opts.maybe_write_csv(
        "faults_wips.csv",
        &orchestrator::export::series_csv(&["wips"], std::slice::from_ref(&r.wips_series)),
    );
    println!("\nExpected shape: WIPS dips at the crash, the reconfiguration backfills");
    println!("the wounded tier, and the tuner re-converges within a few iterations.");
}
