//! Table 3 (EXP-T3): tuned parameter values per workload, with the
//! paper's directional claims checked.

use bench::{args, tuned};
use orchestrator::experiments::table3;
use orchestrator::report::TextTable;

fn main() {
    let opts = args::parse();
    println!(
        "== Table 3: tuned parameters per workload (effort: {}, seed: {}) ==\n",
        opts.effort_name, opts.seed
    );
    println!(
        "Tuning all three workloads ({} iterations each)...\n",
        opts.effort.iterations
    );
    let (_, configs) = tuned::tune_all_workloads(&opts.effort, opts.seed);
    let rows = table3::build(&configs);

    let mut section = "";
    let mut table = TextTable::new([
        "Tunable parameter",
        "Default",
        "Browsing",
        "Shopping",
        "Ordering",
    ]);
    for r in &rows {
        if r.section != section {
            section = r.section;
            table.row([
                format!("-- {} --", r.section),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ]);
        }
        table.row([
            r.name.to_string(),
            r.default.to_string(),
            r.tuned[0].to_string(),
            r.tuned[1].to_string(),
            r.tuned[2].to_string(),
        ]);
    }
    println!("{}", table.render());

    println!("Directional claims from the paper:");
    for (claim, holds) in table3::directional_checks(&rows) {
        println!("  [{}] {}", if holds { "ok" } else { "MISS" }, claim);
    }
    println!("\n(Individual weak parameters wander under measurement noise — the paper's");
    println!("own Table 3 shows the same, e.g. store_objects_per_bucket 15/25/105.)");
}
