//! Ablation: the paper's future-work hybrid tuning method.
//!
//! §III.B closes with "we plan to investigate the possibility to have the
//! hybrid tuning — using the parameter duplication method first, and then
//! using separate tuning server for each group for fine-granularity
//! tuning." This ablation runs it next to its two ingredients on the
//! Table 4 cluster.

use bench::args;
use harmony::strategy::TuningMethod;
use orchestrator::experiments::table4;
use orchestrator::report::{fmt_f, fmt_pct, TextTable};

fn main() {
    let opts = args::parse();
    println!(
        "== Ablation: hybrid tuning (duplication then partitioning) \
         (effort: {}, seed: {}) ==\n",
        opts.effort_name, opts.seed
    );
    let methods = vec![
        TuningMethod::Duplication,
        TuningMethod::Partitioning,
        TuningMethod::Hybrid,
    ];
    let r = table4::run(&methods, &opts.effort, opts.seed);

    let mut table = TextTable::new([
        "Method",
        "WIPS",
        "Std dev (2nd half)",
        "Improvement",
        "Iterations to 99%",
    ]);
    table.row([
        "None (No Tuning)".to_string(),
        fmt_f(r.baseline_wips, 1),
        fmt_f(r.baseline_std, 1),
        "-".to_string(),
        "-".to_string(),
    ]);
    for row in &r.rows {
        table.row([
            row.method.label().to_string(),
            fmt_f(row.best_wips, 1),
            fmt_f(row.stability_std, 1),
            fmt_pct(row.improvement),
            row.iterations_to_converge.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("Expectation: hybrid inherits duplication's fast start and ends at or");
    println!("above the pure methods once the per-line servers fine-tune.");
}
