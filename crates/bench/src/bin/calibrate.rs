//! Calibration probe: prints WIPS for default and hand-tuned
//! configurations across workloads and browser populations. Not a paper
//! experiment — a diagnostic for picking the operating point (see
//! DESIGN.md §4).

use cluster::model::ClusterScenario;
use cluster::params::{DbParams, ProxyParams, WebParams};
use cluster::runner::run_iteration;
use cluster::{ClusterConfig, Topology};
use tpcw::metrics::IntervalPlan;
use tpcw::mix::Workload;

fn hand_tuned(workload: Workload) -> (ProxyParams, WebParams, DbParams) {
    let mut p = ProxyParams::default_config();
    let mut w = WebParams::default_config();
    let mut d = DbParams::default_config();
    match workload {
        Workload::Browsing => {
            p.cache_mem = 24;
            p.maximum_object_size_in_memory = 64;
            d.join_buffer_size = 407_552;
            d.table_cache = 800;
        }
        Workload::Shopping => {
            p.cache_mem = 20;
            p.maximum_object_size_in_memory = 256;
            w.max_processors = 64;
            w.ajp_max_processors = 64;
            w.accept_count = 64;
            w.ajp_accept_count = 64;
            d.join_buffer_size = 407_552;
            d.table_cache = 800;
            d.thread_concurrency = 48;
            d.binlog_cache_size = 160_000;
        }
        Workload::Ordering => {
            p.cache_mem = 20;
            p.maximum_object_size_in_memory = 256;
            w.min_processors = 64;
            w.max_processors = 128;
            w.ajp_max_processors = 128;
            w.accept_count = 128;
            w.ajp_accept_count = 256;
            w.buffer_size = 6_656;
            d.join_buffer_size = 407_552;
            d.table_cache = 800;
            d.thread_concurrency = 64;
            d.binlog_cache_size = 284_672;
            d.max_connections = 400;
        }
    }
    (p, w, d)
}

fn main() {
    let plan = IntervalPlan::fast();
    let topology = Topology::single();
    for workload in Workload::ALL {
        println!("== {workload} ==");
        for pop in [1300u32, 1400, 1500, 1700] {
            let mut def = ClusterScenario::single(workload, pop, plan, 42);
            def.config = ClusterConfig::defaults(&topology);
            let d = run_iteration(&def);

            let (pp, ww, dd) = hand_tuned(workload);
            let mut tun = ClusterScenario::single(workload, pop, plan, 42);
            tun.config = ClusterConfig::uniform(&topology, pp, ww, dd);
            let t = run_iteration(&tun);

            println!(
                "pop {pop:5}: default {:7.1} WIPS (fail {:5}, resp {:6.3}s) | tuned {:7.1} WIPS (fail {:5}, resp {:6.3}s) | gain {:+.1}%",
                d.metrics.wips,
                d.total_failed,
                d.metrics.mean_response_secs,
                t.metrics.wips,
                t.total_failed,
                t.metrics.mean_response_secs,
                (t.metrics.wips / d.metrics.wips - 1.0) * 100.0
            );
            let u = &d.node_utilization;
            println!(
                "             util default: proxy cpu {:.2} disk {:.2} net {:.2} | app cpu {:.2} | db cpu {:.2} disk {:.2}",
                u[0].cpu, u[0].disk, u[0].net, u[1].cpu, u[2].cpu, u[2].disk
            );
        }
    }
}
