//! Table 4 (EXP-T4): performance of the cluster tuning methods.

use bench::args;
use harmony::strategy::TuningMethod;
use orchestrator::experiments::table4;
use orchestrator::report::{fmt_f, fmt_pct, TextTable};

fn main() {
    let opts = args::parse();
    println!(
        "== Table 4: cluster tuning methods (effort: {}, seed: {}) ==\n",
        opts.effort_name, opts.seed
    );
    let methods = table4::paper_methods();
    let r = table4::run(&methods, &opts.effort, opts.seed);

    let mut table = TextTable::new([
        "Tuning method",
        "WIPS",
        "Std dev",
        "Improvement",
        "Iterations",
    ]);
    table.row([
        TuningMethod::None.label().to_string(),
        fmt_f(r.baseline_wips, 1),
        fmt_f(r.baseline_std, 1),
        "-".to_string(),
        "-".to_string(),
    ]);
    for row in &r.rows {
        table.row([
            row.method.label().to_string(),
            fmt_f(row.best_wips, 1),
            fmt_f(row.stability_std, 1),
            fmt_pct(row.improvement),
            row.iterations_to_converge.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("Paper shape: all methods reach similar best WIPS (~18-21% over untuned);");
    println!("duplication converges far fastest (33 vs 159 iterations); partitioning is");
    println!("the most stable (std 9.7 vs 30 for the default method).");
}
