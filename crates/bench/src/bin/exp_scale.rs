//! EXP-SCALE: population scaling of the cohort load model.
//!
//! Three checks, one artifact (the `population_scaling` section merged
//! into `BENCH_6.json`, every other section preserved):
//!
//! 1. **Determinism** — the seeded cohort run at N=1000 is executed
//!    twice; the two fingerprints must be bit-identical.
//! 2. **Equivalence** — cohort WIPS must match per-browser WIPS within
//!    the stated bound at N=100 (weight 1: think-quantisation only),
//!    N=1000, and N=10000 (weighted tokens against rescaled pools).
//! 3. **Scaling** — at N=10000 the cohort model must carry at least
//!    10x fewer events per simulated second than the per-browser
//!    model, and (full effort) the 1k -> 1M curve must grow events/sec
//!    sublinearly in population.
//!
//! `--effort smoke` (the CI gate) runs determinism + equivalence +
//! the 10k events win. `--effort full` (the weekly artifact) adds the
//! 1k -> 1M cohort curve with per-browser comparison points up to 100k.
//!
//! Usage:
//!   exp_scale [--effort smoke|full] [--out PATH] [--base PATH] [--bins N]

use bench::scale::{merge_top_level, point_json, run_point, wips_rel_err, ScalePoint, SCALE_SEED};
use cluster::model::{LoadModel, DEFAULT_COHORT_BINS};

/// Stated CI bounds on |cohort WIPS - per-browser WIPS| / per-browser
/// WIPS. At N=100 the token weight is 1 and only think-time
/// quantisation separates the models; at N=1000 (weight 2) batched
/// convoys shift the closed-loop cycle slightly; at N=10000 (weight 12)
/// the comparison runs deep in admission-controlled overload, where
/// pool rescaling keeps refusal dynamics only approximately aligned.
const EQUIV_BOUNDS: [(u32, f64); 3] = [(100, 0.05), (1_000, 0.10), (10_000, 0.25)];

/// Minimum per-browser/cohort ratio of events per simulated second at
/// N=10000 — the tentpole's scaling win.
const EVENTS_WIN_10K_MIN: f64 = 10.0;

/// Full-effort sublinearity gate: from 1k to 1M the population grows
/// 1000x; cohort events/sim-sec must grow by less than 100x.
const SUBLINEAR_MAX_RATIO: f64 = 100.0;

struct Cli {
    effort: String,
    out: std::path::PathBuf,
    base: std::path::PathBuf,
    bins: u32,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        effort: "smoke".to_string(),
        out: "BENCH_6.json".into(),
        base: "BENCH_6.json".into(),
        bins: DEFAULT_COHORT_BINS,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--effort" => {
                cli.effort = val("--effort");
                if cli.effort != "smoke" && cli.effort != "full" {
                    eprintln!("--effort must be smoke or full");
                    std::process::exit(2);
                }
            }
            "--out" => cli.out = val("--out").into(),
            "--base" => cli.base = val("--base").into(),
            "--bins" => {
                cli.bins = val("--bins").parse().unwrap_or_else(|_| {
                    eprintln!("bad --bins");
                    std::process::exit(2);
                });
                if cli.bins == 0 {
                    eprintln!("--bins must be at least 1");
                    std::process::exit(2);
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: exp_scale [--effort smoke|full] [--out PATH] [--base PATH] [--bins N]"
                );
                std::process::exit(2);
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    cli
}

fn print_point(p: &ScalePoint) {
    println!(
        "  {:>9} {:<11} wips {:>8.2}  resp {:>7.1} ms  p90 {:>7.1} ms  failed {:>8}  \
         events {:>10}  ev/simsec {:>9.1}  wall {:>9.1} ms",
        p.population,
        p.model,
        p.wips,
        p.mean_response_ms,
        p.p90_response_ms,
        p.failed,
        p.events,
        p.events_per_sim_sec,
        p.wall_ms
    );
}

fn main() {
    let cli = parse_cli();
    let cohort = LoadModel::Cohort { bins: cli.bins };
    println!(
        "== Population scaling: cohort load model ({} bins, seed {SCALE_SEED}, {} effort) ==\n",
        cli.bins, cli.effort
    );

    // 1. Determinism: the same seeded cohort scenario twice.
    let d1 = run_point(1_000, cohort);
    let d2 = run_point(1_000, cohort);
    let deterministic = d1.fingerprint == d2.fingerprint;
    println!(
        "determinism at N=1000: {:016x} / {:016x} — {}",
        d1.fingerprint,
        d2.fingerprint,
        if deterministic {
            "identical"
        } else {
            "MISMATCH"
        }
    );

    // 2. Equivalence at N=100 / 1k / 10k.
    println!("\nequivalence (cohort vs per-browser WIPS):");
    let mut equiv_rows = Vec::new();
    let mut equiv_pass = true;
    let mut pairs: Vec<(u32, ScalePoint, ScalePoint)> = Vec::new();
    for &(population, bound) in &EQUIV_BOUNDS {
        let pb = run_point(population, LoadModel::PerBrowser);
        let co = run_point(population, cohort);
        let rel = wips_rel_err(&pb, &co);
        let pass = rel <= bound;
        equiv_pass &= pass;
        println!(
            "  N={population:<6} per-browser {:>8.2} wips, cohort {:>8.2} wips, \
             rel err {:>6.2}% (bound {:.0}%) — {}",
            pb.wips,
            co.wips,
            rel * 100.0,
            bound * 100.0,
            if pass { "PASS" } else { "FAIL" }
        );
        equiv_rows.push(format!(
            "      {{ \"population\": {population}, \"wips_per_browser\": {:.3}, \
             \"wips_cohort\": {:.3}, \"rel_err\": {:.4}, \"bound\": {bound}, \"pass\": {pass} }}",
            pb.wips, co.wips, rel
        ));
        pairs.push((population, pb, co));
    }

    // 3. The 10k events/sec win (the pair was just measured).
    let (_, pb10k, co10k) = pairs
        .iter()
        .find(|(n, _, _)| *n == 10_000)
        .expect("10k is in EQUIV_BOUNDS");
    let win = if co10k.events_per_sim_sec > 0.0 {
        pb10k.events_per_sim_sec / co10k.events_per_sim_sec
    } else {
        f64::INFINITY
    };
    let win_pass = win >= EVENTS_WIN_10K_MIN;
    println!(
        "\nevents per simulated second at N=10000: per-browser {:.1}, cohort {:.1} \
         — {:.1}x win (need >= {EVENTS_WIN_10K_MIN:.0}x) — {}",
        pb10k.events_per_sim_sec,
        co10k.events_per_sim_sec,
        win,
        if win_pass { "PASS" } else { "FAIL" }
    );

    // 4. The curve. Smoke reuses the equivalence points; full sweeps to
    //    a million browsers (per-browser comparison up to 100k — beyond
    //    that the per-browser run is exactly the cost this model exists
    //    to avoid).
    let mut curve: Vec<ScalePoint> = Vec::new();
    for (_, pb, co) in &pairs {
        curve.push(pb.clone());
        curve.push(co.clone());
    }
    let mut sublinear_json = "null".to_string();
    let mut sublinear_pass = true;
    if cli.effort == "full" {
        println!("\npopulation curve (1k -> 1M):");
        for p in &curve {
            print_point(p);
        }
        let pb_extra = [100_000u32];
        let cohort_extra = [100_000u32, 1_000_000];
        for &n in &pb_extra {
            let p = run_point(n, LoadModel::PerBrowser);
            print_point(&p);
            curve.push(p);
        }
        let mut ev_1k = curve
            .iter()
            .find(|p| p.population == 1_000 && p.model == "cohort")
            .map(|p| p.events_per_sim_sec)
            .unwrap_or(0.0);
        if ev_1k <= 0.0 {
            ev_1k = f64::MIN_POSITIVE;
        }
        let mut ev_1m = 0.0;
        for &n in &cohort_extra {
            let p = run_point(n, cohort);
            print_point(&p);
            if n == 1_000_000 {
                ev_1m = p.events_per_sim_sec;
            }
            curve.push(p);
        }
        let ratio = ev_1m / ev_1k;
        sublinear_pass = ratio < SUBLINEAR_MAX_RATIO;
        println!(
            "\nsublinearity: events/sim-sec grew {ratio:.2}x while population grew 1000x \
             (max {SUBLINEAR_MAX_RATIO:.0}x) — {}",
            if sublinear_pass { "PASS" } else { "FAIL" }
        );
        sublinear_json = format!(
            "{{ \"pop_ratio\": 1000, \"events_per_sim_sec_ratio\": {ratio:.3}, \
             \"max\": {SUBLINEAR_MAX_RATIO}, \"pass\": {sublinear_pass} }}"
        );
    }

    // 5. Merge the artifact section into BENCH_6.json.
    let points = curve
        .iter()
        .map(|p| point_json(p, "      "))
        .collect::<Vec<_>>()
        .join(",\n");
    let section = format!
        ("{{\n    \"schema\": \"bench-scale-v1\",\n    \"effort\": \"{}\",\n    \
          \"bins\": {},\n    \"seed\": {SCALE_SEED},\n    \
          \"scenario\": \"single work line, Shopping mix, tiny plan\",\n    \
          \"determinism\": {{ \"population\": 1000, \"fingerprints_identical\": {deterministic} }},\n    \
          \"equivalence\": [\n{}\n    ],\n    \
          \"events_win_10k\": {{ \"ratio\": {win:.3}, \"min\": {EVENTS_WIN_10K_MIN}, \"pass\": {win_pass} }},\n    \
          \"sublinear\": {sublinear_json},\n    \
          \"points\": [\n{}\n    ],\n    \
          \"method\": \"each point is one seeded iteration; events_per_sim_sec = events / plan \
          duration; equivalence compares cohort vs per-browser WIPS at the same seed; the \
          cohort model multiplies service demand by token weight and rescales held pools to \
          token units, so utilisation and saturation throughput match by construction while \
          response times convoy (see DESIGN.md)\"\n  }}",
        cli.effort,
        cli.bins,
        equiv_rows.join(",\n"),
        points,
    );
    let base = std::fs::read_to_string(&cli.base).unwrap_or_else(|_| "{\n}\n".to_string());
    let merged = merge_top_level(&base, "population_scaling", &section).unwrap_or_else(|| {
        eprintln!(
            "could not merge into {}: not a JSON object",
            cli.base.display()
        );
        std::process::exit(2);
    });
    if let Err(e) = std::fs::write(&cli.out, merged) {
        eprintln!("could not write {}: {e}", cli.out.display());
        std::process::exit(2);
    }
    println!(
        "\nwrote population_scaling section -> {}",
        cli.out.display()
    );

    // 6. Gates (after the artifact is on disk so CI can upload the
    //    evidence of a failure).
    let mut failed = false;
    if !deterministic {
        eprintln!("FAIL: seeded cohort run is not deterministic");
        failed = true;
    }
    if !equiv_pass {
        eprintln!("FAIL: cohort WIPS outside the stated equivalence bound");
        failed = true;
    }
    if !win_pass {
        eprintln!("FAIL: cohort events/sec win at 10k below {EVENTS_WIN_10K_MIN:.0}x");
        failed = true;
    }
    if !sublinear_pass {
        eprintln!("FAIL: events/sec grew superlinearly on the population curve");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "gates: determinism, equivalence, 10k events win{} — PASS",
        if cli.effort == "full" {
            ", sublinearity"
        } else {
            ""
        }
    );
}
