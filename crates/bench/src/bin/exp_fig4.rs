//! Figure 4 (EXP-F4): applying each workload's best configuration to the
//! other workloads — no universal configuration exists.

use bench::{args, tuned};
use obs::{TraceRecord, TraceSink};
use orchestrator::experiments::{fig4, table3};
use orchestrator::report::{fmt_f, fmt_pct, TextTable};
use tpcw::mix::Workload;

fn main() {
    let opts = args::parse();
    println!(
        "== Figure 4: cross-workload configuration matrix (effort: {}, seed: {}) ==\n",
        opts.effort_name, opts.seed
    );
    println!(
        "Tuning all three workloads ({} iterations each)...",
        opts.effort.iterations
    );
    let (summaries, configs) = tuned::tune_all_workloads(&opts.effort, opts.seed);
    for s in &summaries {
        println!(
            "  {:9} tuned: best {:.1} WIPS ({} vs default {:.1})",
            s.workload.name(),
            s.best_wips,
            fmt_pct(s.best_improvement),
            s.default_wips
        );
    }
    println!("\nEvaluating the 3x3 matrix (plus defaults)...\n");
    let r = fig4::run_with_configs(&configs, &opts.effort, opts.seed);

    let mut table = TextTable::new(["Config \\ Workload", "Browsing", "Shopping", "Ordering"]);
    for (c, w) in Workload::ALL.iter().enumerate() {
        table.row([
            format!("best-for-{}", w.name()),
            fmt_f(r.wips[c][0], 1),
            fmt_f(r.wips[c][1], 1),
            fmt_f(r.wips[c][2], 1),
        ]);
    }
    table.row([
        "default".to_string(),
        fmt_f(r.default_wips[0], 1),
        fmt_f(r.default_wips[1], 1),
        fmt_f(r.default_wips[2], 1),
    ]);
    println!("{}", table.render());

    if let Some(mut sink) = opts.maybe_trace_sink() {
        for (c, cw) in Workload::ALL.iter().enumerate() {
            for (w, ww) in Workload::ALL.iter().enumerate() {
                let rec = TraceRecord::new("fig4_cell")
                    .field("config", format!("best-for-{}", cw.name()))
                    .field("workload", ww.name())
                    .field("wips", r.wips[c][w])
                    .field("default_wips", r.default_wips[w]);
                sink.emit(&rec);
            }
        }
        sink.flush();
    }

    let mut imp = TextTable::new(["", "Browsing", "Shopping", "Ordering"]);
    imp.row([
        "Improvement vs default".to_string(),
        fmt_pct(r.improvement[0]),
        fmt_pct(r.improvement[1]),
        fmt_pct(r.improvement[2]),
    ]);
    println!("{}", imp.render());

    println!(
        "Diagonal dominates its column (paper's claim): {}",
        if r.diagonal_dominates() {
            "YES"
        } else {
            "no — see EXPERIMENTS.md for noise discussion"
        }
    );
    println!("Paper improvements: Browsing 15%, Shopping 16%, Ordering 5%.");

    // Table 3 falls out of the same tuning runs — print it too.
    println!("\n== Table 3: tuned parameters (same runs) ==\n");
    let rows = table3::build(&configs);
    let mut t3 = TextTable::new([
        "Tunable parameter",
        "Default",
        "Browsing",
        "Shopping",
        "Ordering",
    ]);
    let mut section = "";
    for row in &rows {
        if row.section != section {
            section = row.section;
            t3.row([
                format!("-- {} --", row.section),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ]);
        }
        t3.row([
            row.name.to_string(),
            row.default.to_string(),
            row.tuned[0].to_string(),
            row.tuned[1].to_string(),
            row.tuned[2].to_string(),
        ]);
    }
    println!("{}", t3.render());
    println!("Directional claims:");
    for (claim, holds) in table3::directional_checks(&rows) {
        println!("  [{}] {}", if holds { "ok" } else { "MISS" }, claim);
    }
}
