//! Quick deterministic benchmark for CI ("bench-smoke").
//!
//! Runs the canonical cold-path scenario, writes `BENCH_5.json`, and
//! (when `--baseline` points at the committed copy) fails the process
//! with exit code 1 on a >tolerance normalized regression. Also
//! re-runs every seeded scenario twice and fails on any fingerprint
//! mismatch — a determinism smoke test — then replays the battery
//! through the shared worker pool at width 2 and fails if any pool
//! fingerprint differs from the sequential one (the multi-core engine
//! must be a wall-clock knob, never a results knob).
//!
//! Usage:
//!   bench_smoke [--out PATH] [--baseline PATH] [--tolerance FRAC]
//!               [--rounds N] [--iters M]

use bench::smoke::{
    self, extract_f64, fingerprint, fingerprint_scenarios, gate, SmokeReport, Verdict,
};
use cluster::runner::run_iteration;

struct Cli {
    out: std::path::PathBuf,
    baseline: Option<std::path::PathBuf>,
    tolerance: f64,
    rounds: u32,
    iters: u32,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        out: "BENCH_5.json".into(),
        baseline: None,
        tolerance: smoke::DEFAULT_TOLERANCE,
        rounds: 16,
        iters: 15,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--out" => cli.out = val("--out").into(),
            "--baseline" => cli.baseline = Some(val("--baseline").into()),
            "--tolerance" => {
                cli.tolerance = val("--tolerance").parse().unwrap_or_else(|_| {
                    eprintln!("bad --tolerance");
                    std::process::exit(2);
                })
            }
            "--rounds" => {
                cli.rounds = val("--rounds").parse().unwrap_or_else(|_| {
                    eprintln!("bad --rounds");
                    std::process::exit(2);
                })
            }
            "--iters" => {
                cli.iters = val("--iters").parse().unwrap_or_else(|_| {
                    eprintln!("bad --iters");
                    std::process::exit(2);
                })
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_smoke [--out PATH] [--baseline PATH] \
                     [--tolerance FRAC] [--rounds N] [--iters M]"
                );
                std::process::exit(2);
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    cli
}

fn main() {
    let cli = parse_cli();

    // 1. Determinism: every seeded scenario, run twice, must
    //    fingerprint identically.
    let mut fingerprints = Vec::new();
    let mut determinism_ok = true;
    for (name, s) in fingerprint_scenarios() {
        let a = fingerprint(&run_iteration(&s));
        let b = fingerprint(&run_iteration(&s));
        if a != b {
            eprintln!("DETERMINISM FAIL {name}: {a:016x} != {b:016x}");
            determinism_ok = false;
        }
        println!("fingerprint {name:<12} {a:016x}");
        fingerprints.push((name, a));
    }
    if !determinism_ok {
        eprintln!("bench-smoke: determinism check failed");
        std::process::exit(1);
    }

    // 1b. Pool determinism: the same battery through the shared worker
    //     pool at width 2 must fingerprint identically to the
    //     sequential pass above.
    for (name, fp) in smoke::pool_fingerprints(2) {
        match fingerprints.iter().find(|(n, _)| *n == name) {
            Some((_, seq)) if *seq == fp => {}
            Some((_, seq)) => {
                eprintln!("POOL DETERMINISM FAIL {name}: {fp:016x} != sequential {seq:016x}");
                determinism_ok = false;
            }
            None => {
                eprintln!("POOL DETERMINISM FAIL {name}: scenario missing from sequential pass");
                determinism_ok = false;
            }
        }
    }
    if !determinism_ok {
        eprintln!("bench-smoke: 2-thread pool determinism check failed");
        std::process::exit(1);
    }
    println!("pool fingerprints at width 2: identical to sequential");

    // 2. Timing: cold-path scenario + pure-CPU reference spin,
    //    interleaved so both minimums sample the same noise windows.
    let (ms_per_iter, spin_ms) = smoke::measure_interleaved(cli.rounds, cli.iters);
    let report = SmokeReport {
        ms_per_iter,
        spin_ms,
        rounds: cli.rounds,
        iters_per_round: cli.iters,
        fingerprints,
    };
    println!(
        "cold path: {ms_per_iter:.3} ms/iter  spin: {spin_ms:.3} ms  normalized: {:.4}",
        report.normalized()
    );

    // 3. Emit BENCH_5.json (the CI artifact).
    if let Err(e) = std::fs::write(&cli.out, report.to_json()) {
        eprintln!("could not write {}: {e}", cli.out.display());
        std::process::exit(2);
    }
    println!("wrote {}", cli.out.display());

    // 4. Regression gate against the committed baseline.
    if let Some(path) = &cli.baseline {
        let json = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("could not read baseline {}: {e}", path.display());
            std::process::exit(2);
        });
        // Baselines are allowed to carry sections this binary does not
        // know about (other bench binaries merge their own sections into
        // the same file), and a baseline from a different schema epoch
        // may not carry ours. Missing key -> warn and skip the gate; a
        // gate that cannot run is not a regression.
        let Some(base) = extract_f64(&json, "normalized") else {
            eprintln!(
                "gate: SKIP — baseline {} has no \"normalized\" field \
                 (unknown or pre-smoke schema); nothing to compare against",
                path.display()
            );
            return;
        };
        match gate(report.normalized(), base, cli.tolerance) {
            Verdict::Pass(change) => println!(
                "gate: PASS ({:+.1}% vs baseline, tolerance {:.0}%)",
                change * 100.0,
                cli.tolerance * 100.0
            ),
            Verdict::Regression(change) => {
                eprintln!(
                    "gate: FAIL — normalized cost {:+.1}% vs baseline (tolerance {:.0}%)",
                    change * 100.0,
                    cli.tolerance * 100.0
                );
                std::process::exit(1);
            }
        }
    }
}
