//! Ablation: conservative stepping (the paper's planned fix for extreme
//! parameter values).
//!
//! §III.A: "we plan to modify the kernel of the Active Harmony tuning
//! algorithm so it will avoid jumping to extreme values, but instead
//! slowly approach them only when performance gains warrant it." Our
//! simplex implements this as an option; this ablation measures its effect
//! on the browsing workload, where the paper observed the extreme-value
//! variance.

use bench::args;
use cluster::config::Topology;
use harmony::server::HarmonyServer;
use harmony::simplex::SimplexTuner;
use orchestrator::binding;
use orchestrator::experiments::population_for;
use orchestrator::par::parallel_map;
use orchestrator::report::{fmt_f, fmt_pct, TextTable};
use orchestrator::session::SessionConfig;
use tpcw::mix::Workload;

fn main() {
    let opts = args::parse();
    println!(
        "== Ablation: conservative stepping vs plain simplex \
         (effort: {}, seed: {}) ==\n",
        opts.effort_name, opts.seed
    );
    let workload = Workload::Browsing;
    let base = SessionConfig::new(
        Topology::single(),
        workload,
        population_for(workload, &opts.effort),
    )
    .plan(opts.effort.plan)
    .base_seed(opts.seed);
    let (default_wips, _) = base.measure_default(opts.effort.reps);

    let variants = [false, true];
    let runs = parallel_map(&variants, 0, |&conservative| {
        let space = binding::full_space(&base.topology);
        let tuner = SimplexTuner::new(space.clone()).conservative(conservative);
        let mut server = HarmonyServer::new(
            if conservative {
                "conservative"
            } else {
                "plain"
            },
            Box::new(tuner),
        );
        let mut series = Vec::new();
        let mut extremeness_sum = 0.0;
        for i in 0..opts.effort.iterations {
            let proposal = server.next_config();
            extremeness_sum += space.extremeness(&proposal);
            let config = binding::config_from_full(&base.topology, &proposal);
            let wips = base.evaluate(config, i).metrics.wips;
            server.report(wips);
            series.push(wips);
        }
        (
            conservative,
            series,
            extremeness_sum / opts.effort.iterations as f64,
        )
    });

    let mut table = TextTable::new([
        "Kernel",
        "Best WIPS",
        "Improvement",
        "2nd-half std",
        "Worst iteration",
        "Mean extremeness",
    ]);
    for (conservative, series, extremeness) in &runs {
        let half = series.len() / 2;
        let second = &series[half..];
        let mean = second.iter().sum::<f64>() / second.len() as f64;
        let var = second.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / second.len() as f64;
        let best = series.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let worst = second.iter().cloned().fold(f64::INFINITY, f64::min);
        table.row([
            if *conservative {
                "conservative"
            } else {
                "plain simplex"
            }
            .to_string(),
            fmt_f(best, 1),
            fmt_pct(best / default_wips - 1.0),
            fmt_f(var.sqrt(), 1),
            fmt_f(worst, 1),
            format!("{:.1}%", extremeness * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!("Extremeness = share of proposed parameters sitting on a range boundary.");
    println!("Expectation: conservative stepping proposes fewer boundary values and");
    println!("avoids the deep worst-case iterations the paper attributed to them.");
}
