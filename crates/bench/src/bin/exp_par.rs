//! EXP-PAR: the deterministic multi-core evaluation engine.
//!
//! Three checks, one artifact (`BENCH_6.json`):
//!
//! 1. **Determinism** — every seeded probe scenario is evaluated
//!    through the shared worker pool at widths 1, 2, and 8; all three
//!    passes must produce bit-identical fingerprints. Exit 1 on drift.
//! 2. **Cold-path speculation scaling** — each scenario of the battery
//!    (a stand-in for one speculative candidate batch) is timed
//!    individually, and the batch is projected onto 2/4/8 workers with
//!    the pool's own greedy submission-order schedule. The 4-worker
//!    projection must beat sequential (speedup > 1).
//! 3. **Replication-sweep scaling** — eight measurement replications of
//!    a 2p2a2d session are timed individually and projected the same
//!    way. The 4-worker projection must reach >= 2x.
//!
//! Wall-clock speedups measured on the build host are reported too,
//! clearly labeled: on a single-core CI runner they hover around 1x by
//! construction, which is why the gates read the schedule projection
//! (see `bench::par`) rather than this host's core count.
//!
//! Usage:
//!   exp_par [--out PATH] [--rounds N]

use bench::par::{makespan, projected_speedup};
use bench::smoke::{fingerprint, fingerprint_scenarios, pool_fingerprints};
use cluster::config::ClusterConfig;
use cluster::runner::run_iteration;
use orchestrator::par::shared_pool;
use orchestrator::session::SessionConfig;
use std::time::Instant;
use tpcw::metrics::IntervalPlan;
use tpcw::mix::Workload;

const WIDTHS: [usize; 3] = [1, 2, 8];
const PROJECTED: [usize; 3] = [2, 4, 8];
const REPS: u32 = 8;

struct Cli {
    out: std::path::PathBuf,
    rounds: u32,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        out: "BENCH_6.json".into(),
        rounds: 3,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--out" => cli.out = val("--out").into(),
            "--rounds" => {
                cli.rounds = val("--rounds").parse().unwrap_or_else(|_| {
                    eprintln!("bad --rounds");
                    std::process::exit(2);
                })
            }
            "--help" | "-h" => {
                eprintln!("usage: exp_par [--out PATH] [--rounds N]");
                std::process::exit(2);
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    cli
}

/// Minimum duration of `f` over `rounds` runs, in ms.
fn time_min_ms<F: FnMut()>(rounds: u32, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn json_speedups(durations: &[f64]) -> String {
    PROJECTED
        .iter()
        .map(|&w| format!("\"{w}\": {:.3}", projected_speedup(durations, w)))
        .collect::<Vec<_>>()
        .join(", ")
}

fn main() {
    let cli = parse_cli();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("== Deterministic multi-core evaluation engine (cores on this host: {cores}) ==\n");

    // 1. Fingerprint identity at widths 1 / 2 / 8 through the pool.
    let passes: Vec<Vec<(String, u64)>> = WIDTHS.iter().map(|&w| pool_fingerprints(w)).collect();
    let mut identical = true;
    println!("scenario       width-1          width-2          width-8");
    for (i, (name, fp1)) in passes[0].iter().enumerate() {
        let fp2 = passes[1][i].1;
        let fp8 = passes[2][i].1;
        let ok = *fp1 == fp2 && *fp1 == fp8;
        identical &= ok;
        println!(
            "  {name:<12} {fp1:016x} {fp2:016x} {fp8:016x}{}",
            if ok { "" } else { "  MISMATCH" }
        );
    }
    if !identical {
        eprintln!("\nFAIL: pool width changed a scenario fingerprint");
        std::process::exit(1);
    }
    println!(
        "all {} fingerprints bit-identical at widths 1/2/8\n",
        passes[0].len()
    );

    // 2. Cold-path speculative batch: per-candidate durations, then the
    //    pool's greedy schedule projected onto 2/4/8 workers. Also time
    //    the real pool batch on this host for the measured column.
    let scenarios: Vec<_> = fingerprint_scenarios();
    let spec_durations: Vec<f64> = scenarios
        .iter()
        .map(|(_, s)| {
            time_min_ms(cli.rounds, || {
                std::hint::black_box(fingerprint(&run_iteration(s)));
            })
        })
        .collect();
    let spec_seq_ms: f64 = spec_durations.iter().sum();
    let batch: Vec<_> = scenarios.iter().map(|(_, s)| s.clone()).collect();
    let spec_wall_pool_ms = time_min_ms(cli.rounds, || {
        std::hint::black_box(
            shared_pool().run_batch(batch.clone(), 0, |s| run_iteration(s).events),
        );
    });
    println!("cold-path speculative batch ({} candidates):", batch.len());
    println!("  sequential {spec_seq_ms:.1} ms; measured pool wall on this host {spec_wall_pool_ms:.1} ms");
    for &w in &PROJECTED {
        println!(
            "  projected at {w} workers: makespan {:.1} ms, speedup {:.2}x",
            makespan(&spec_durations, w),
            projected_speedup(&spec_durations, w)
        );
    }

    // 3. Replication sweep: REPS independent measurement replications
    //    of the 2p2a2d Shopping session.
    let topology = match cluster::config::Topology::tiers(2, 2, 2) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("topology: {e}");
            std::process::exit(2);
        }
    };
    let cfg = SessionConfig::new(topology, Workload::Shopping, 600)
        .plan(IntervalPlan::tiny())
        .pin_seed(true);
    let defaults = ClusterConfig::defaults(&cfg.topology);
    let rep_durations: Vec<f64> = (0..REPS)
        .map(|rep| {
            let cfg = &cfg;
            let defaults = &defaults;
            time_min_ms(cli.rounds, move || {
                std::hint::black_box(cfg.evaluate(defaults.clone(), rep));
            })
        })
        .collect();
    let rep_seq_ms: f64 = rep_durations.iter().sum();
    let rep_wall_seq_ms = time_min_ms(cli.rounds, || {
        std::hint::black_box(cfg.measure_default(REPS));
    });
    let cfg_pool = cfg.clone().replication_threads(0);
    let rep_wall_pool_ms = time_min_ms(cli.rounds, || {
        std::hint::black_box(cfg_pool.measure_default(REPS));
    });
    println!("\nreplication sweep ({REPS} replications, 2p2a2d Shopping):");
    println!(
        "  sequential {rep_seq_ms:.1} ms; measured wall on this host: threads=1 {rep_wall_seq_ms:.1} ms, pool {rep_wall_pool_ms:.1} ms"
    );
    for &w in &PROJECTED {
        println!(
            "  projected at {w} workers: makespan {:.1} ms, speedup {:.2}x",
            makespan(&rep_durations, w),
            projected_speedup(&rep_durations, w)
        );
    }

    // 4. Artifact.
    let fps = passes[0]
        .iter()
        .map(|(name, fp)| format!("    \"{name}\": \"{fp:016x}\""))
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"schema\": \"bench-par-v1\",\n  \"cores_on_build_host\": {cores},\n  \
         \"widths_checked\": [1, 2, 8],\n  \"fingerprints_identical\": {identical},\n  \
         \"fingerprints\": {{\n{fps}\n  }},\n  \"speculation\": {{\n    \
         \"batch\": \"{n} seeded candidate scenarios, cold cache\",\n    \
         \"sequential_ms\": {spec_seq_ms:.3},\n    \
         \"measured_pool_wall_ms\": {spec_wall_pool_ms:.3},\n    \
         \"projected_speedup\": {{ {spec_speedups} }}\n  }},\n  \"replications\": {{\n    \
         \"sweep\": \"{REPS} replications, 2p2a2d Shopping, tiny plan\",\n    \
         \"sequential_ms\": {rep_seq_ms:.3},\n    \
         \"measured_wall_ms_threads_1\": {rep_wall_seq_ms:.3},\n    \
         \"measured_pool_wall_ms\": {rep_wall_pool_ms:.3},\n    \
         \"projected_speedup\": {{ {rep_speedups} }}\n  }},\n  \"method\": \
         \"projected_speedup = sum of individually timed task durations (min over {rounds} \
         rounds) divided by the greedy submission-order schedule makespan at that width — the \
         exact schedule the shared pool runs; measured_*_wall_ms are honest wall times on this \
         host and track its core count, not the projection\"\n}}\n",
        n = batch.len(),
        spec_speedups = json_speedups(&spec_durations),
        rep_speedups = json_speedups(&rep_durations),
        rounds = cli.rounds.max(1),
    );
    if let Err(e) = std::fs::write(&cli.out, json) {
        eprintln!("could not write {}: {e}", cli.out.display());
        std::process::exit(2);
    }
    println!("\nwrote {}", cli.out.display());

    // 5. Gates: the engine must actually buy parallel speedup on the
    //    schedules it runs.
    let spec_4 = projected_speedup(&spec_durations, 4);
    let rep_4 = projected_speedup(&rep_durations, 4);
    if spec_4 <= 1.0 {
        eprintln!("FAIL: cold-path speculation projects {spec_4:.2}x at 4 workers (need > 1)");
        std::process::exit(1);
    }
    if rep_4 < 2.0 {
        eprintln!("FAIL: replication sweep projects {rep_4:.2}x at 4 workers (need >= 2)");
        std::process::exit(1);
    }
    println!(
        "gates: speculation {spec_4:.2}x > 1 and replications {rep_4:.2}x >= 2 at 4 workers — PASS"
    );
}
