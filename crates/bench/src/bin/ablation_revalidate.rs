//! Ablation: the winner's curse in noisy tuning, and revalidation.
//!
//! The tuner's raw "best observed WIPS" is an optimistic statistic: over
//! hundreds of noisy iterations, the maximum includes luck. This ablation
//! wraps the simplex in [`harmony::revalidate::Revalidating`] (every 5th
//! iteration re-measures the incumbent) and compares the raw best against
//! the noise-corrected estimate and against a fresh-seed re-measurement.

use bench::args;
use cluster::config::Topology;
use harmony::revalidate::Revalidating;
use harmony::simplex::SimplexTuner;
use harmony::tuner::Tuner;
use orchestrator::binding;
use orchestrator::experiments::population_for;
use orchestrator::report::{fmt_f, TextTable};
use orchestrator::session::SessionConfig;
use tpcw::mix::Workload;

fn main() {
    let opts = args::parse();
    println!(
        "== Ablation: best-configuration revalidation (effort: {}, seed: {}) ==\n",
        opts.effort_name, opts.seed
    );
    let workload = Workload::Browsing;
    let base = SessionConfig::new(
        Topology::single(),
        workload,
        population_for(workload, &opts.effort),
    )
    .plan(opts.effort.plan)
    .base_seed(opts.seed);

    let space = binding::full_space(&base.topology);
    let mut tuner = Revalidating::new(SimplexTuner::new(space), 5);
    for i in 0..opts.effort.iterations {
        let proposal = tuner.propose();
        let config = binding::config_from_full(&base.topology, &proposal);
        let wips = base.evaluate(config, i).metrics.wips;
        tuner.observe(wips);
    }

    let (raw_config, raw_best) = {
        let (c, p) = tuner.best().expect("observed");
        (c.clone(), p)
    };
    let (val_config, val_mean, val_n) = tuner.validated_best().expect("validated");

    // Honest re-measurement of both configurations on fresh seeds
    // (disjoint from every seed the tuning run used).
    let check = base
        .clone()
        .base_seed(opts.seed.wrapping_add(0x00F5_E5ED_0000));
    let fresh = |cfg: &harmony::space::Configuration| -> f64 {
        let config = binding::config_from_full(&check.topology, cfg);
        let ci = check.measure_until_precise(&config, 0.02, opts.effort.reps.max(3));
        ci.mean
    };
    let raw_fresh = fresh(&raw_config);
    let val_fresh = fresh(&val_config);

    let mut table = TextTable::new(["Estimate", "WIPS", "Fresh-seed re-measurement"]);
    table.row([
        "raw best observation".to_string(),
        fmt_f(raw_best, 1),
        fmt_f(raw_fresh, 1),
    ]);
    table.row([
        format!("revalidated mean (n={val_n})"),
        fmt_f(val_mean, 1),
        fmt_f(val_fresh, 1),
    ]);
    println!("{}", table.render());
    println!(
        "Winner's-curse bias of the raw estimate: {:+.1} WIPS ({:+.1}%)",
        raw_best - raw_fresh,
        (raw_best / raw_fresh - 1.0) * 100.0
    );
    println!("The revalidated estimate should sit much closer to its re-measurement.");
}
