//! Ablation: the Nelder–Mead simplex kernel vs baseline tuners.
//!
//! The paper uses the simplex without comparison; this ablation shows what
//! it buys over uniform random search and cyclic coordinate descent on the
//! real 23-parameter tuning problem (browsing workload, single work line).

use bench::args;
use cluster::config::Topology;
use harmony::annealing::SimulatedAnnealing;
use harmony::baseline::{CoordinateDescent, RandomSearch};
use harmony::server::HarmonyServer;
use harmony::simplex::SimplexTuner;
use harmony::tuner::Tuner;
use orchestrator::binding;
use orchestrator::experiments::population_for;
use orchestrator::par::parallel_map;
use orchestrator::report::{fmt_f, fmt_pct, TextTable};
use orchestrator::session::SessionConfig;
use tpcw::mix::Workload;

fn make_tuner(name: &str, seed: u64) -> Box<dyn Tuner + Send> {
    let space = binding::full_space(&Topology::single());
    match name {
        "simplex" => Box::new(SimplexTuner::new(space)),
        "simplex-conservative" => Box::new(SimplexTuner::new(space).conservative(true)),
        "random" => Box::new(RandomSearch::new(space, seed)),
        "coordinate" => Box::new(CoordinateDescent::new(space)),
        "annealing" => Box::new(SimulatedAnnealing::new(space, seed)),
        _ => unreachable!(),
    }
}

fn main() {
    let opts = args::parse();
    println!(
        "== Ablation: tuning algorithms on the 23-parameter browsing problem \
         (effort: {}, seed: {}) ==\n",
        opts.effort_name, opts.seed
    );
    let workload = Workload::Browsing;
    let base = SessionConfig::new(
        Topology::single(),
        workload,
        population_for(workload, &opts.effort),
    )
    .plan(opts.effort.plan)
    .base_seed(opts.seed);
    let (default_wips, _) = base.measure_default(opts.effort.reps);

    let names = [
        "simplex",
        "simplex-conservative",
        "coordinate",
        "annealing",
        "random",
    ];
    let runs = parallel_map(&names, 0, |&name| {
        let mut server = HarmonyServer::new(name, make_tuner(name, opts.seed));
        let mut best = f64::NEG_INFINITY;
        let mut best_iter = 0;
        let mut series = Vec::new();
        for i in 0..opts.effort.iterations {
            let proposal = server.next_config();
            let config = binding::config_from_full(&base.topology, &proposal);
            let wips = base.evaluate(config, i).metrics.wips;
            server.report(wips);
            if wips > best {
                best = wips;
                best_iter = i;
            }
            series.push(wips);
        }
        (name, best, best_iter, series)
    });

    let mut table = TextTable::new([
        "Algorithm",
        "Best WIPS",
        "Improvement",
        "Found @ iter",
        "Mean 2nd half",
    ]);
    table.row([
        "(default config)".to_string(),
        fmt_f(default_wips, 1),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
    ]);
    for (name, best, best_iter, series) in &runs {
        let half = series.len() / 2;
        let mean2: f64 = series[half..].iter().sum::<f64>() / (series.len() - half) as f64;
        table.row([
            name.to_string(),
            fmt_f(*best, 1),
            fmt_pct(best / default_wips - 1.0),
            best_iter.to_string(),
            fmt_f(mean2, 1),
        ]);
    }
    println!("{}", table.render());
    println!("Expectation: the simplex variants dominate random search and converge");
    println!("faster than coordinate descent; conservative stepping trades a little");
    println!("peak for steadier second-half performance.");
}
