//! Figure 7 (EXP-F7A / EXP-F7B): automatic cluster reconfiguration.

use bench::args;
use obs::{TraceRecord, TraceSink};
use orchestrator::experiments::fig7::{self, Fig7Variant};
use orchestrator::par::parallel_map;
use orchestrator::report::{fmt_f, fmt_pct, sparkline, TextTable};

fn main() {
    let opts = args::parse();
    println!(
        "== Figure 7: automatic cluster reconfiguration (effort: {}, seed: {}) ==\n",
        opts.effort_name, opts.seed
    );
    let variants = [Fig7Variant::ProxyToApp, Fig7Variant::AppToProxy];
    let results = parallel_map(&variants, 0, |&v| fig7::run(v, &opts.effort, opts.seed));

    let mut table = TextTable::new([
        "Experiment",
        "Layout before",
        "Layout after",
        "Moved",
        "WIPS before",
        "WIPS after",
        "Improvement",
    ]);
    for r in &results {
        let name = match r.variant {
            Fig7Variant::ProxyToApp => "(a) browsing->ordering",
            Fig7Variant::AppToProxy => "(b) browsing",
        };
        let moved = match (r.from_tier, r.to_tier) {
            (Some(f), Some(t)) => format!("{f} -> {t} @ iter {}", r.reconfig_iteration.unwrap()),
            _ => "(no move)".to_string(),
        };
        table.row([
            name.to_string(),
            format!(
                "{}p/{}a/{}d",
                r.initial_layout.0, r.initial_layout.1, r.initial_layout.2
            ),
            format!(
                "{}p/{}a/{}d",
                r.final_layout.0, r.final_layout.1, r.final_layout.2
            ),
            moved,
            fmt_f(r.before_wips, 1),
            fmt_f(r.after_wips, 1),
            fmt_pct(r.improvement),
        ]);
    }
    println!("{}", table.render());

    for r in &results {
        let name = match r.variant {
            Fig7Variant::ProxyToApp => "(a)",
            Fig7Variant::AppToProxy => "(b)",
        };
        println!("{name} WIPS/iteration: {}", sparkline(&r.wips_series));
    }
    if let Some(mut sink) = opts.maybe_trace_sink() {
        for r in &results {
            let variant = match r.variant {
                Fig7Variant::ProxyToApp => "proxy_to_app",
                Fig7Variant::AppToProxy => "app_to_proxy",
            };
            let rec = TraceRecord::new("fig7_variant")
                .field("variant", variant)
                .field(
                    "layout_before",
                    format!(
                        "{}p/{}a/{}d",
                        r.initial_layout.0, r.initial_layout.1, r.initial_layout.2
                    ),
                )
                .field(
                    "layout_after",
                    format!(
                        "{}p/{}a/{}d",
                        r.final_layout.0, r.final_layout.1, r.final_layout.2
                    ),
                )
                .field(
                    "reconfig_iteration",
                    r.reconfig_iteration.map(f64::from).unwrap_or(-1.0),
                )
                .field("before_wips", r.before_wips)
                .field("after_wips", r.after_wips)
                .field("improvement", r.improvement)
                .field("wips_series", r.wips_series.clone());
            sink.emit(&rec);
        }
        sink.flush();
    }
    println!();
    println!("Paper shape: (a) one node moves proxy->app after the workload turns to");
    println!("ordering, throughput +62%; (b) one node moves app->proxy under browsing,");
    println!("throughput +70%. Gains combine the extra tier capacity with re-tuning.");
}
