//! §III.A tuning-process experiment (EXP-TP-B / EXP-TP-O).
//!
//! Regenerates the browsing and ordering tuning curves and the paper's
//! summary claims: browsing — default config poor, ~78% of the second
//! 100 iterations beat it; ordering — default already good, ~85% beat it,
//! improvement limited.

use bench::args;
use orchestrator::experiments::tuning_process;
use orchestrator::par::parallel_map;
use orchestrator::report::{fmt_f, fmt_pct, sparkline, TextTable};
use tpcw::mix::Workload;

fn main() {
    let opts = args::parse();
    println!(
        "== §III.A tuning process (effort: {}, seed: {}) ==\n",
        opts.effort_name, opts.seed
    );
    let workloads = [Workload::Browsing, Workload::Ordering];
    let results = parallel_map(&workloads, 0, |&w| {
        tuning_process::run(w, &opts.effort, opts.seed).0
    });

    let mut table = TextTable::new([
        "Workload",
        "Default WIPS",
        "Best WIPS",
        "Best impr.",
        "2nd-half mean",
        "2nd-half std",
        "% iters > default",
        "Converged @",
    ]);
    for r in &results {
        table.row([
            r.workload.name().to_string(),
            fmt_f(r.default_wips, 1),
            fmt_f(r.best_wips, 1),
            fmt_pct(r.best_improvement),
            fmt_f(r.second_half_mean, 1),
            fmt_f(r.second_half_std, 1),
            format!("{:.0}%", r.fraction_better_than_default * 100.0),
            r.convergence_iteration.to_string(),
        ]);
    }
    println!("{}", table.render());

    for r in &results {
        println!(
            "{:9} WIPS/iteration: {}",
            r.workload.name(),
            sparkline(&r.wips_series)
        );
        opts.maybe_write_csv(
            &format!("tuning_process_{}.csv", r.workload.name().to_lowercase()),
            &orchestrator::export::series_csv(&["wips"], std::slice::from_ref(&r.wips_series)),
        );
    }
    println!();
    println!("Paper shape: browsing default is poor (≈78% of 2nd-half iterations beat it,");
    println!("≈3% average gain); ordering default is good (≈85% beat it, ≤5% gain).");
}
