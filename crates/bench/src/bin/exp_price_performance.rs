//! Dollars/WIPS across cluster sizes — TPC-W's second primary metric
//! (§II.C of the paper) applied to the provisioning question the
//! introduction motivates: systems "should be cost-effective".
//!
//! For each candidate topology the harness finds the saturated WIPS
//! (population sweep until WIPS stops growing) and prices the system,
//! reporting throughput, cost, and $/WIPS with 95% confidence intervals.

use bench::args;
use cluster::config::{ClusterConfig, Topology};
use cluster::pricing::PriceList;
use orchestrator::par::parallel_map;
use orchestrator::report::{fmt_f, TextTable};
use orchestrator::session::SessionConfig;
use simkit::ci::replication_ci;
use tpcw::mix::Workload;

fn saturated_wips(topology: &Topology, opts: &args::Options) -> (f64, f64, u32) {
    // Sweep the population upward until WIPS gains fall under 5%.
    let mut population = 600u32;
    let mut last = 0.0f64;
    let mut best_ci = (0.0, 0.0);
    for _ in 0..8 {
        let cfg = SessionConfig::new(topology.clone(), Workload::Shopping, population)
            .plan(opts.effort.plan)
            .base_seed(opts.seed);
        let samples: Vec<f64> = (0..opts.effort.reps.max(2))
            .map(|i| {
                cfg.evaluate(ClusterConfig::defaults(topology), i)
                    .metrics
                    .wips
            })
            .collect();
        let ci = replication_ci(&samples);
        if ci.mean < last * 1.05 {
            return (best_ci.0, best_ci.1, population);
        }
        last = ci.mean;
        best_ci = (ci.mean, ci.half_width);
        population = (population as f64 * 1.5) as u32;
    }
    (best_ci.0, best_ci.1, population)
}

fn main() {
    let opts = args::parse();
    println!(
        "== Price/performance (Dollars/WIPS) across cluster sizes \
         (effort: {}, seed: {}) ==\n",
        opts.effort_name, opts.seed
    );
    let prices = PriceList::hpdc04();
    let candidates = [
        Topology::tiers(1, 1, 1).unwrap(),
        Topology::tiers(2, 1, 1).unwrap(),
        Topology::tiers(2, 2, 1).unwrap(),
        Topology::tiers(2, 2, 2).unwrap(),
        Topology::tiers(3, 2, 2).unwrap(),
    ];
    let results = parallel_map(&candidates, 0, |t| saturated_wips(t, &opts));

    let mut table = TextTable::new(["Layout", "Saturated WIPS (95% CI)", "System cost", "$/WIPS"]);
    for (t, (wips, hw, _pop)) in candidates.iter().zip(&results) {
        let cost = prices.system_cost(t, 1);
        table.row([
            t.to_string(),
            format!("{} ± {}", fmt_f(*wips, 1), fmt_f(*hw, 1)),
            format!("${cost:.0}"),
            fmt_f(prices.dollars_per_wips(t, 1, *wips), 2),
        ]);
    }
    println!("{}", table.render());
    println!("TPC-W's price metric rewards the smallest cluster that still meets the");
    println!("throughput target — adding machines to a non-bottleneck tier only");
    println!("raises $/WIPS, which is the economic face of §IV's reconfiguration.");
}
