//! Schedule projection for EXP-PAR (the multi-core evaluation engine).
//!
//! CI runners for this repo frequently expose a single core, where a
//! measured wall-clock "speedup" would say nothing about the engine.
//! EXP-PAR therefore reports two labeled numbers per width: the honest
//! measured wall time *on this host*, and a **projected** speedup from
//! greedy list-scheduling of individually measured task durations. The
//! projection models exactly the schedule the shared worker pool runs —
//! tasks claimed in submission order by the earliest-free worker — so
//! it is the wall time a `width`-core host would see, not an idealized
//! `total / width` bound.

/// Makespan of scheduling `durations` (in submission order) over
/// `width` workers, each task claimed by the earliest-free worker: the
/// shared pool's claim-next-index discipline.
pub fn makespan(durations: &[f64], width: usize) -> f64 {
    let mut workers = vec![0.0f64; width.max(1)];
    for &d in durations {
        let mut idx = 0;
        for (i, w) in workers.iter().enumerate() {
            if *w < workers[idx] {
                idx = i;
            }
        }
        workers[idx] += d;
    }
    workers.iter().fold(0.0f64, |a, &b| a.max(b))
}

/// Projected speedup at `width` versus running the same tasks
/// sequentially (0 when the schedule is empty).
pub fn projected_speedup(durations: &[f64], width: usize) -> f64 {
    let total: f64 = durations.iter().sum();
    let span = makespan(durations, width);
    if span > 0.0 {
        total / span
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_one_is_the_sequential_sum() {
        let d = [3.0, 1.0, 2.0];
        assert_eq!(makespan(&d, 1), 6.0);
        assert_eq!(makespan(&d, 0), 6.0, "width 0 clamps to 1");
        assert!((projected_speedup(&d, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn equal_tasks_pack_perfectly() {
        let d = [1.0; 8];
        assert_eq!(makespan(&d, 4), 2.0);
        assert!((projected_speedup(&d, 4) - 4.0).abs() < 1e-12);
        assert_eq!(makespan(&d, 8), 1.0);
    }

    #[test]
    fn greedy_schedule_follows_submission_order() {
        // Two workers, tasks [4, 1, 1, 1]: worker A takes the 4, worker
        // B takes 1+1+1 — makespan 4.
        let d = [4.0, 1.0, 1.0, 1.0];
        assert_eq!(makespan(&d, 2), 4.0);
        // Long task *last*: the pool claims in submission order, so the
        // 4 lands on a worker that already did work — makespan 5, not
        // the sorted-order 4. The projection must model this honestly.
        let d = [1.0, 1.0, 1.0, 4.0];
        assert_eq!(makespan(&d, 2), 5.0);
    }

    #[test]
    fn empty_schedule_is_zero() {
        assert_eq!(makespan(&[], 4), 0.0);
        assert_eq!(projected_speedup(&[], 4), 0.0);
    }

    #[test]
    fn wider_never_slower() {
        let d = [2.0, 3.0, 1.0, 5.0, 2.0, 2.0];
        let mut prev = f64::INFINITY;
        for w in 1..=8 {
            let m = makespan(&d, w);
            assert!(m <= prev, "width {w} got slower: {m} > {prev}");
            prev = m;
        }
    }
}
