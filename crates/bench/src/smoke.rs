//! Deterministic quick-bench ("bench-smoke") support.
//!
//! The `bench_smoke` binary runs the canonical cold-path scenario
//! (single node, Shopping mix, population 400, seed 42 — the same
//! scenario as `cluster_iteration/iteration/cold`) a fixed number of
//! times, takes the **minimum** batch time (robust against one-sided
//! scheduler noise on shared CI runners), and writes a machine-readable
//! `BENCH_5.json`.
//!
//! Absolute milliseconds are not comparable across runner generations,
//! so the regression gate compares a **normalized** cost: ms/iteration
//! divided by the time of a fixed pure-CPU reference spin (SplitMix64)
//! measured in the same process. A runner that is 2x slower overall
//! scales both numbers; genuine hot-path regressions scale only the
//! numerator. The gate fails when the normalized cost exceeds the
//! committed baseline by more than the tolerance (default 10%).
//!
//! The binary also re-runs every seeded probe scenario twice and
//! requires bit-identical fingerprints between the two runs — a cheap
//! in-CI determinism check that catches stray `HashMap` iteration or
//! uninitialised state without golden files.

use cluster::config::{ClusterConfig, Topology};
use cluster::model::{ClusterScenario, LoadBalancing};
use cluster::runner::{run_iteration, IterationOutcome};
use cluster::{Health, HealthChange, HealthTimeline};
use simkit::time::SimDuration;
use std::time::Instant;
use tpcw::metrics::IntervalPlan;
use tpcw::mix::Workload;

/// Relative regression tolerance for the normalized-cost gate.
pub const DEFAULT_TOLERANCE: f64 = 0.10;

fn scen(topo: Topology, w: Workload, pop: u32, seed: u64) -> ClusterScenario {
    let mut s = ClusterScenario::single(w, pop, IntervalPlan::tiny(), seed);
    s.config = ClusterConfig::defaults(&topo);
    s.topology = topo;
    s
}

/// The canonical cold-path timing scenario (matches the
/// `cluster_iteration` bench's `iteration/cold` case).
pub fn cold_scenario() -> ClusterScenario {
    scen(Topology::single(), Workload::Shopping, 400, 42)
}

/// The seeded scenario battery used for the determinism fingerprints:
/// every workload mix plus multi-tier, partitioned-lines,
/// least-connections, Markov-session, and fault-timeline variants.
pub fn fingerprint_scenarios() -> Vec<(String, ClusterScenario)> {
    let mut scenarios: Vec<(String, ClusterScenario)> = Vec::new();
    for w in Workload::ALL {
        scenarios.push((
            format!("w/{}", w.name()),
            scen(Topology::single(), w, 400, 42),
        ));
    }
    if let Ok(t) = Topology::tiers(2, 2, 2) {
        scenarios.push(("2p2a2d".into(), scen(t, Workload::Shopping, 800, 7)));
    }
    if let Ok(t) = Topology::tiers(2, 2, 2) {
        let mut lines = scen(t, Workload::Shopping, 800, 9);
        lines.lines = Some(vec![vec![0, 2, 4], vec![1, 3, 5]]);
        scenarios.push(("lines".into(), lines));
    }
    if let Ok(t) = Topology::tiers(2, 2, 1) {
        let mut lc = scen(t, Workload::Ordering, 500, 13);
        lc.load_balancing = LoadBalancing::LeastConnections;
        scenarios.push(("leastconn".into(), lc));
    }
    let mut mk = scen(Topology::single(), Workload::Shopping, 300, 11);
    mk.markov_sessions = true;
    scenarios.push(("markov".into(), mk));
    if let Ok(t) = Topology::tiers(1, 2, 1) {
        let mut ft = scen(t, Workload::Shopping, 600, 23);
        ft.faults = Some(HealthTimeline {
            initial: vec![Health::Up; 4],
            changes: vec![HealthChange {
                after: SimDuration::from_secs(10),
                node: 1,
                health: Health::Down,
            }],
        });
        scenarios.push(("fault".into(), ft));
    }
    scenarios
}

/// Fold one iteration's observable outputs (event count, completion
/// counters, WIPS bits, per-line WIPS, per-resource utilization) into a
/// single 64-bit fingerprint. Any behavioural drift flips it.
pub fn fingerprint(out: &IterationOutcome) -> u64 {
    let mut fp = out.events ^ out.total_done.rotate_left(17) ^ out.total_failed.rotate_left(31);
    fp ^= out.metrics.wips.to_bits();
    for lw in &out.line_wips {
        fp = fp.rotate_left(7) ^ lw.to_bits();
    }
    for u in &out.node_utilization {
        for (_, v) in u.resources() {
            fp = fp.rotate_left(3) ^ v.to_bits();
        }
    }
    fp
}

/// Fingerprint the seeded scenario battery through the shared worker
/// pool at the given batch width (0 = one worker per core). The pool
/// merges results in submission order, so the returned list must be
/// bit-identical to fingerprinting the battery sequentially — the
/// in-CI check for the deterministic multi-core evaluation engine.
pub fn pool_fingerprints(width: usize) -> Vec<(String, u64)> {
    let (names, scenarios): (Vec<String>, Vec<ClusterScenario>) =
        fingerprint_scenarios().into_iter().unzip();
    let fps = orchestrator::par::shared_pool()
        .run_batch(scenarios, width, |s| fingerprint(&run_iteration(s)));
    names.into_iter().zip(fps).collect()
}

/// One reference-spin batch: a fixed SplitMix64 chain, in ms.
fn spin_batch_ms(round: u32) -> f64 {
    const CHAIN: u64 = 4_000_000;
    let t = Instant::now();
    let mut x = 0x9E37_79B9_7F4A_7C15u64.wrapping_add(round as u64);
    for _ in 0..CHAIN {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
    }
    std::hint::black_box(x);
    t.elapsed().as_secs_f64() * 1e3
}

/// Time the cold-path scenario against the pure-CPU reference spin,
/// **interleaved**: each round times one spin batch and one scenario
/// batch back to back, and both report their minimum over all rounds.
/// Interleaving matters on shared runners — noise comes in windows, so
/// a round where the machine was quiet gives both measurements their
/// true value, while sequential blocks can land entirely inside a
/// slow window and skew only one side of the ratio.
///
/// Returns `(scenario ms/iter, spin ms)`, each a min over rounds.
pub fn measure_interleaved(rounds: u32, iters: u32) -> (f64, f64) {
    let s = cold_scenario();
    let mut best_scen = f64::INFINITY;
    let mut best_spin = f64::INFINITY;
    let mut acc = 0.0;
    for r in 0..rounds.max(1) {
        best_spin = best_spin.min(spin_batch_ms(r));
        let t = Instant::now();
        for _ in 0..iters.max(1) {
            acc += run_iteration(&s).metrics.wips;
        }
        best_scen = best_scen.min(t.elapsed().as_secs_f64() * 1e3 / iters.max(1) as f64);
    }
    std::hint::black_box(acc);
    (best_scen, best_spin)
}

/// One bench-smoke measurement, serializable to `BENCH_5.json`.
#[derive(Debug, Clone)]
pub struct SmokeReport {
    pub ms_per_iter: f64,
    pub spin_ms: f64,
    pub rounds: u32,
    pub iters_per_round: u32,
    /// `(name, fingerprint)` per seeded scenario.
    pub fingerprints: Vec<(String, u64)>,
}

impl SmokeReport {
    /// Normalized cost: scenario ms/iter per reference-spin ms.
    pub fn normalized(&self) -> f64 {
        if self.spin_ms > 0.0 {
            self.ms_per_iter / self.spin_ms
        } else {
            f64::INFINITY
        }
    }

    /// Render as the `BENCH_5.json` schema (`bench-smoke-v1`).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"bench-smoke-v1\",\n");
        s.push_str("  \"bench\": \"cluster_iteration/iteration/cold\",\n");
        s.push_str(&format!("  \"ms_per_iter\": {:.6},\n", self.ms_per_iter));
        s.push_str(&format!("  \"spin_ms\": {:.6},\n", self.spin_ms));
        s.push_str(&format!("  \"normalized\": {:.6},\n", self.normalized()));
        s.push_str(&format!("  \"rounds\": {},\n", self.rounds));
        s.push_str(&format!(
            "  \"iters_per_round\": {},\n",
            self.iters_per_round
        ));
        s.push_str("  \"fingerprints\": {\n");
        for (i, (name, fp)) in self.fingerprints.iter().enumerate() {
            let comma = if i + 1 == self.fingerprints.len() {
                ""
            } else {
                ","
            };
            s.push_str(&format!("    \"{name}\": \"{fp:016x}\"{comma}\n"));
        }
        s.push_str("  }\n");
        s.push_str("}\n");
        s
    }
}

/// Extract the numeric value of `"key": <number>` from a JSON document
/// this crate wrote itself. Not a general JSON parser — the baseline
/// file is machine-generated with a flat known schema, and avoiding a
/// parser keeps the bench crate dependency-free.
pub fn extract_f64(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)? + needle.len();
    let rest = json.get(at..)?;
    let colon = rest.find(':')?;
    let val = rest.get(colon + 1..)?.trim_start();
    let end = val
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(val.len());
    val.get(..end)?.trim().parse().ok()
}

/// Gate verdict comparing a fresh measurement against the committed
/// baseline's normalized cost.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Within tolerance; payload is the relative change (+ = slower).
    Pass(f64),
    /// Regression beyond tolerance; payload is the relative change.
    Regression(f64),
}

/// Compare normalized costs: fail when `current` exceeds `baseline` by
/// more than `tolerance` (relative). Improvements always pass.
pub fn gate(current: f64, baseline: f64, tolerance: f64) -> Verdict {
    let change = current / baseline - 1.0;
    if change > tolerance {
        Verdict::Regression(change)
    } else {
        Verdict::Pass(change)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_passes_within_tolerance_and_on_improvement() {
        assert!(matches!(gate(1.05, 1.0, 0.10), Verdict::Pass(_)));
        assert!(matches!(gate(0.7, 1.0, 0.10), Verdict::Pass(_)));
        assert!(matches!(gate(1.099, 1.0, 0.10), Verdict::Pass(_)));
    }

    #[test]
    fn gate_fails_beyond_tolerance() {
        match gate(1.2, 1.0, 0.10) {
            Verdict::Regression(c) => assert!((c - 0.2).abs() < 1e-9),
            v => panic!("expected regression, got {v:?}"),
        }
    }

    #[test]
    fn json_roundtrip_through_extract() {
        let report = SmokeReport {
            ms_per_iter: 2.845,
            spin_ms: 10.5,
            rounds: 8,
            iters_per_round: 25,
            fingerprints: vec![("w/Shopping".into(), 0x058263b0cd5e7afd)],
        };
        let json = report.to_json();
        assert_eq!(extract_f64(&json, "ms_per_iter"), Some(2.845));
        assert_eq!(extract_f64(&json, "spin_ms"), Some(10.5));
        let norm = extract_f64(&json, "normalized").unwrap();
        assert!((norm - 2.845 / 10.5).abs() < 1e-5);
        assert!(json.contains("\"w/Shopping\": \"058263b0cd5e7afd\""));
    }

    #[test]
    fn extract_handles_missing_and_malformed_keys() {
        assert_eq!(extract_f64("{}", "nope"), None);
        assert_eq!(extract_f64("{\"x\": \"str\"}", "x"), None);
        assert_eq!(extract_f64("{\"x\": -1.5e2}", "x"), Some(-150.0));
    }

    #[test]
    fn extract_tolerates_foreign_sections_in_a_baseline() {
        // BENCH files accumulate sections from several binaries; a
        // baseline carrying sections this binary does not understand
        // must still yield its own key (and cleanly yield None — the
        // gate-skip path, not a crash — when the key is absent).
        let foreign = "{\n  \"schema\": \"bench-par-v2\",\n  \
                       \"population_scaling\": { \"points\": [ { \"wips\": 1.0 } ] },\n  \
                       \"normalized\": 0.25\n}";
        assert_eq!(extract_f64(foreign, "normalized"), Some(0.25));
        let keyless = "{ \"schema\": \"bench-par-v2\", \"tentpole\": { \"x\": 1 } }";
        assert_eq!(extract_f64(keyless, "normalized"), None);
    }

    #[test]
    fn fingerprints_deterministic_across_runs() {
        // One small scenario run twice must fingerprint identically.
        let s = cold_scenario();
        let a = fingerprint(&run_iteration(&s));
        let b = fingerprint(&run_iteration(&s));
        assert_eq!(a, b);
    }

    #[test]
    fn pool_fingerprints_match_sequential_at_width_two() {
        let seq: Vec<(String, u64)> = fingerprint_scenarios()
            .iter()
            .map(|(n, s)| (n.clone(), fingerprint(&run_iteration(s))))
            .collect();
        assert_eq!(pool_fingerprints(2), seq);
    }

    #[test]
    fn interleaved_measurement_is_positive() {
        let (scen, spin) = measure_interleaved(1, 1);
        assert!(scen > 0.0 && spin > 0.0);
    }
}
