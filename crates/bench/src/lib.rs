//! Shared helpers for the table/figure regeneration binaries and the
//! Criterion benches. Each binary in `src/bin/` regenerates one paper
//! artifact; see EXPERIMENTS.md for the index.

pub mod args;
pub mod tuned;
pub mod util;
