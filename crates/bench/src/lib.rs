//! Shared helpers for the table/figure regeneration binaries and the
//! benchmark targets. Each binary in `src/bin/` regenerates one paper
//! artifact; see EXPERIMENTS.md for the index.

pub mod args;
pub mod harness;
pub mod smoke;
pub mod tuned;
pub mod util;
