//! Shared helpers for the table/figure regeneration binaries and the
//! benchmark targets. Each binary in `src/bin/` regenerates one paper
//! artifact; see EXPERIMENTS.md for the index.
//!
//! Library code must not panic: `unwrap`/`expect` are denied outside
//! tests (the binaries report errors and exit instead).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod args;
pub mod harness;
pub mod par;
pub mod scale;
pub mod smoke;
pub mod tuned;
pub mod util;
