//! Shared "tune all three workloads" step used by the Figure 4 and
//! Table 3 regenerators.

use cluster::config::ClusterConfig;
use orchestrator::experiments::tuning_process::TuningProcessResult;
use orchestrator::experiments::{tuning_process, Effort};
use orchestrator::par::parallel_map;
use tpcw::mix::Workload;

/// Tune each workload on the single-line topology (in parallel) and return
/// the per-workload summaries plus best configurations, in
/// [`Workload::ALL`] order.
pub fn tune_all_workloads(
    effort: &Effort,
    seed: u64,
) -> ([TuningProcessResult; 3], [ClusterConfig; 3]) {
    let workloads: Vec<Workload> = Workload::ALL.to_vec();
    let mut outs = parallel_map(&workloads, 0, |&w| {
        let (summary, run) = tuning_process::run(w, effort, seed ^ (w as u64) << 16);
        (summary, run.best_config)
    });
    match (outs.pop(), outs.pop(), outs.pop()) {
        (Some((r2, c2)), Some((r1, c1)), Some((r0, c0))) => ([r0, r1, r2], [c0, c1, c2]),
        // parallel_map returns exactly one output per input, in input
        // order, and Workload::ALL has three entries.
        _ => unreachable!("parallel_map preserves length"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_tunes_three_workloads() {
        let (summaries, configs) = tune_all_workloads(&Effort::smoke(), 1);
        assert_eq!(summaries[0].workload, Workload::Browsing);
        assert_eq!(summaries[2].workload, Workload::Ordering);
        for c in &configs {
            assert_eq!(c.len(), 3);
        }
    }
}
