//! Small formatting helpers shared by the regeneration binaries.

/// Render a percentage with one decimal, e.g. `12.3%`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Render a ratio change as a signed percentage, e.g. `+16.2%`.
pub fn signed_pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats() {
        assert_eq!(pct(0.123), "12.3%");
        assert_eq!(signed_pct(0.162), "+16.2%");
        assert_eq!(signed_pct(-0.05), "-5.0%");
    }
}
