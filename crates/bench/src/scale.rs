//! EXP-SCALE support: population scaling of the cohort load model.
//!
//! One *scale point* runs a single seeded iteration of the standard
//! probe scenario (single work line, Shopping mix, tiny plan) at a
//! given population under a given [`LoadModel`], and records WIPS,
//! response times, the event count, and the host wall time. The
//! `exp_scale` binary sweeps these points, gates cohort-vs-per-browser
//! equivalence, and merges a `population_scaling` section into
//! BENCH_6.json.

use cluster::model::{ClusterScenario, LoadModel};
use cluster::runner::run_iteration;
use tpcw::metrics::IntervalPlan;
use tpcw::mix::Workload;

/// The seed every scale point uses (matches the smoke probes).
pub const SCALE_SEED: u64 = 42;

/// One measured (population, load model) cell.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    pub population: u32,
    /// `per-browser` or `cohort`.
    pub model: String,
    pub wips: f64,
    pub mean_response_ms: f64,
    pub p90_response_ms: f64,
    pub completed: u64,
    pub failed: u64,
    pub events: u64,
    /// Events per *simulated* second — the load the calendar queue
    /// actually carries; this is the axis that must grow sublinearly.
    pub events_per_sim_sec: f64,
    /// Host wall time of the iteration, milliseconds.
    pub wall_ms: f64,
    /// Session fingerprint of the outcome (determinism witness).
    pub fingerprint: u64,
}

/// The probe scenario every scale point runs: single topology,
/// Shopping mix, tiny plan, fixed seed.
pub fn scale_scenario(population: u32, load_model: LoadModel) -> ClusterScenario {
    let mut s = ClusterScenario::single(
        Workload::Shopping,
        population,
        IntervalPlan::tiny(),
        SCALE_SEED,
    );
    s.load_model = load_model;
    s
}

/// Run one scale point, timing the iteration on this host.
pub fn run_point(population: u32, load_model: LoadModel) -> ScalePoint {
    let scenario = scale_scenario(population, load_model);
    let sim_secs = scenario.plan.total().as_secs_f64();
    let t = std::time::Instant::now();
    let out = run_iteration(&scenario);
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    ScalePoint {
        population,
        model: load_model.name().to_string(),
        wips: out.metrics.wips,
        mean_response_ms: out.metrics.mean_response_secs * 1e3,
        p90_response_ms: out.metrics.p90_response.as_millis_f64(),
        completed: out.metrics.completed,
        failed: out.total_failed,
        events: out.events,
        events_per_sim_sec: if sim_secs > 0.0 {
            out.events as f64 / sim_secs
        } else {
            0.0
        },
        wall_ms,
        fingerprint: crate::smoke::fingerprint(&out),
    }
}

/// Relative WIPS error of `cohort` against `per_browser`.
pub fn wips_rel_err(per_browser: &ScalePoint, cohort: &ScalePoint) -> f64 {
    if per_browser.wips == 0.0 {
        return f64::INFINITY;
    }
    (cohort.wips - per_browser.wips).abs() / per_browser.wips
}

/// Render one scale point as a JSON object (two-space indent `pad`).
pub fn point_json(p: &ScalePoint, pad: &str) -> String {
    format!(
        "{pad}{{ \"population\": {}, \"model\": \"{}\", \"wips\": {:.3}, \
         \"mean_response_ms\": {:.3}, \"p90_response_ms\": {:.3}, \
         \"completed\": {}, \"failed\": {}, \"events\": {}, \
         \"events_per_sim_sec\": {:.1}, \"wall_ms\": {:.3}, \
         \"fingerprint\": \"{:016x}\" }}",
        p.population,
        p.model,
        p.wips,
        p.mean_response_ms,
        p.p90_response_ms,
        p.completed,
        p.failed,
        p.events,
        p.events_per_sim_sec,
        p.wall_ms,
        p.fingerprint,
    )
}

/// Merge (insert or replace) a top-level `"key": value` entry into a
/// JSON object document, preserving every other section verbatim.
///
/// This is the dependency-free counterpart of the bench crate's
/// `extract_f64`: BENCH_6.json is machine-written by our own binaries,
/// so a brace/string-aware scan is enough — no parser crate. `value`
/// must already be rendered JSON. Returns `None` when `base` is not
/// recognisably a JSON object.
pub fn merge_top_level(base: &str, key: &str, value: &str) -> Option<String> {
    let open = base.find('{')?;
    let close = base.rfind('}')?;
    if open >= close {
        return None;
    }
    let needle = format!("\"{key}\"");
    if let Some(kpos) = find_top_level_key(base, open, close, &needle) {
        // Replace the existing entry: from the key through its value.
        let vend = end_of_value(base, kpos)?;
        let mut out = String::with_capacity(base.len() + value.len());
        out.push_str(&base[..kpos]);
        out.push_str(&format!("\"{key}\": {value}"));
        out.push_str(&base[vend..]);
        Some(out)
    } else {
        // Insert before the final `}`, after the last entry.
        let body = base[..close].trim_end();
        let needs_comma = !body.trim_end().ends_with(['{', ',']);
        let mut out = String::with_capacity(base.len() + value.len());
        out.push_str(body);
        if needs_comma {
            out.push(',');
        }
        out.push_str(&format!("\n  \"{key}\": {value}\n"));
        out.push_str(&base[close..]);
        Some(out)
    }
}

/// Find the byte offset of a top-level (depth-1) object key. String
/// contents are skipped, so a value mentioning `"key"` can't confuse
/// the scan.
fn find_top_level_key(s: &str, open: usize, close: usize, needle: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escape = false;
    let mut i = open;
    while i < close {
        let b = bytes[i];
        if in_str {
            if escape {
                escape = false;
            } else if b == b'\\' {
                escape = true;
            } else if b == b'"' {
                in_str = false;
            }
        } else {
            match b {
                b'"' => {
                    if depth == 1 && s[i..].starts_with(needle) {
                        // A key, not a value: the next non-space char
                        // after the closing quote must be ':'.
                        let after = i + needle.len();
                        if s[after..close].trim_start().starts_with(':') {
                            return Some(i);
                        }
                    }
                    in_str = true;
                }
                b'{' | b'[' => depth += 1,
                b'}' | b']' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// Byte offset just past the value of the entry whose key starts at
/// `kpos` (also past a trailing comma, if any).
fn end_of_value(s: &str, kpos: usize) -> Option<usize> {
    let colon = kpos + s[kpos..].find(':')?;
    let rest = s[colon + 1..].trim_start();
    let vstart = s.len() - rest.len();
    let bytes = s.as_bytes();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escape = false;
    let mut i = vstart;
    while i < s.len() {
        let b = bytes[i];
        if in_str {
            if escape {
                escape = false;
            } else if b == b'\\' {
                escape = true;
            } else if b == b'"' {
                in_str = false;
            }
        } else {
            match b {
                b'"' => in_str = true,
                b'{' | b'[' => depth += 1,
                b'}' | b']' => {
                    if depth == 0 {
                        // Closing brace of the *parent* object: a scalar
                        // value ended right before it.
                        break;
                    }
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                b',' if depth == 0 => break,
                _ => {}
            }
        }
        i += 1;
    }
    // Swallow one trailing comma so replacement re-renders cleanly.
    let tail = s[i..].trim_start();
    if tail.starts_with(',') {
        i = s.len() - tail.len() + 1;
    }
    Some(i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_inserts_new_section() {
        let base = "{\n  \"schema\": \"bench-par-v1\",\n  \"a\": { \"b\": 1 }\n}\n";
        let merged = merge_top_level(base, "population_scaling", "{ \"x\": 2 }").unwrap();
        assert!(merged.contains("\"population_scaling\": { \"x\": 2 }"));
        assert!(merged.contains("\"schema\": \"bench-par-v1\""));
        assert!(merged.contains("\"a\": { \"b\": 1 }"));
        // Still one top-level object.
        assert_eq!(merged.matches("population_scaling").count(), 1);
    }

    #[test]
    fn merge_replaces_existing_section() {
        let base = "{\n  \"population_scaling\": { \"old\": true },\n  \"keep\": 7\n}\n";
        let merged = merge_top_level(base, "population_scaling", "{ \"new\": 1 }").unwrap();
        assert!(merged.contains("\"new\": 1"));
        assert!(!merged.contains("\"old\""));
        assert!(merged.contains("\"keep\": 7"));
    }

    #[test]
    fn merge_is_idempotent() {
        let base = "{ \"k\": 1 }";
        let once = merge_top_level(base, "s", "{ \"v\": 1 }").unwrap();
        let twice = merge_top_level(&once, "s", "{ \"v\": 2 }").unwrap();
        assert!(twice.contains("\"v\": 2"));
        assert!(!twice.contains("\"v\": 1"));
        assert_eq!(twice.matches("\"s\"").count(), 1);
    }

    #[test]
    fn merge_skips_keys_inside_strings_and_nested_objects() {
        let base = "{ \"desc\": \"mentions \\\"target\\\" here\", \"nest\": { \"target\": 1 } }";
        let merged = merge_top_level(base, "target", "2").unwrap();
        // The nested and quoted occurrences survive; a new top-level
        // entry is added.
        assert!(merged.contains("\"nest\": { \"target\": 1 }"));
        assert!(merged.contains("\"target\": 2"));
    }

    #[test]
    fn merge_rejects_non_objects() {
        assert!(merge_top_level("not json", "k", "1").is_none());
    }

    #[test]
    fn scale_point_runs_and_fingerprints() {
        let a = run_point(80, LoadModel::PerBrowser);
        let b = run_point(80, LoadModel::PerBrowser);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert!(a.wips > 0.0);
        assert!(a.events > 0);
        let c = run_point(80, LoadModel::Cohort { bins: 64 });
        let d = run_point(80, LoadModel::Cohort { bins: 64 });
        assert_eq!(
            c.fingerprint, d.fingerprint,
            "cohort runs must be seeded-deterministic"
        );
        // At 80 browsers the weight is 1; WIPS should land close.
        assert!(
            wips_rel_err(&a, &c) < 0.15,
            "rel err {}",
            wips_rel_err(&a, &c)
        );
    }
}
