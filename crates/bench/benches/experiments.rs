//! One reduced-size Criterion benchmark per paper artifact, so
//! `cargo bench` exercises every table/figure code path end to end.
//! (Full-fidelity regeneration is done by the `exp_*` binaries with
//! `--effort paper`; these benches use smoke effort.)

use bench::harness::Criterion;
use std::hint::black_box;

use cluster::config::{ClusterConfig, Topology};
use harmony::strategy::TuningMethod;
use orchestrator::experiments::{fig4, fig5, fig7, table3, table4, tuning_process, Effort};
use tpcw::mix::Workload;

fn effort() -> Effort {
    Effort::smoke()
}

fn bench_tuning_process(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper/tuning_process");
    g.sample_size(10);
    g.bench_function("browsing_smoke", |b| {
        b.iter(|| {
            black_box(
                tuning_process::run(Workload::Browsing, &effort(), 1)
                    .0
                    .best_wips,
            )
        })
    });
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper/fig4");
    g.sample_size(10);
    g.bench_function("matrix_smoke", |b| {
        let t = Topology::single();
        let configs = [
            ClusterConfig::defaults(&t),
            ClusterConfig::defaults(&t),
            ClusterConfig::defaults(&t),
        ];
        b.iter(|| black_box(fig4::run_with_configs(&configs, &effort(), 2).diagonal_dominates()))
    });
    g.finish();
}

fn bench_table3(c: &mut Criterion) {
    // Table 3 rendering is pure bookkeeping; bench the build step.
    let mut g = c.benchmark_group("paper/table3");
    g.bench_function("build_rows", |b| {
        let t = Topology::single();
        let configs = [
            ClusterConfig::defaults(&t),
            ClusterConfig::defaults(&t),
            ClusterConfig::defaults(&t),
        ];
        b.iter(|| black_box(table3::build(&configs).len()))
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper/fig5");
    g.sample_size(10);
    g.bench_function("schedule_smoke", |b| {
        b.iter(|| black_box(fig5::run(&effort(), 3).wips_series.len()))
    });
    g.finish();
}

fn bench_table4(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper/table4");
    g.sample_size(10);
    g.bench_function("duplication_smoke", |b| {
        b.iter(|| {
            black_box(
                table4::run(&[TuningMethod::Duplication], &effort(), 4)
                    .rows
                    .len(),
            )
        })
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper/fig7");
    g.sample_size(10);
    g.bench_function("app_to_proxy_smoke", |b| {
        b.iter(|| black_box(fig7::run(fig7::Fig7Variant::AppToProxy, &effort(), 5).improvement))
    });
    g.finish();
}

fn main() {
    let mut c = Criterion::from_args();
    bench_tuning_process(&mut c);
    bench_fig4(&mut c);
    bench_table3(&mut c);
    bench_fig5(&mut c);
    bench_table4(&mut c);
    bench_fig7(&mut c);
}
