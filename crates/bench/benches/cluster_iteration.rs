//! Benchmarks of one full cluster iteration (the unit of tuning cost):
//! per-workload, and per-topology size.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cluster::config::{ClusterConfig, Topology};
use cluster::model::ClusterScenario;
use cluster::runner::run_iteration;
use tpcw::metrics::IntervalPlan;
use tpcw::mix::Workload;

fn scenario(topology: Topology, workload: Workload, pop: u32) -> ClusterScenario {
    let mut s = ClusterScenario::single(workload, pop, IntervalPlan::tiny(), 42);
    s.config = ClusterConfig::defaults(&topology);
    s.topology = topology;
    s
}

fn bench_workloads(c: &mut Criterion) {
    let mut g = c.benchmark_group("iteration/workload");
    g.sample_size(10);
    for workload in Workload::ALL {
        g.bench_function(workload.name(), |b| {
            let s = scenario(Topology::single(), workload, 400);
            b.iter(|| black_box(run_iteration(&s).metrics.wips))
        });
    }
    g.finish();
}

fn bench_cluster_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("iteration/cluster_size");
    g.sample_size(10);
    for (label, topo, pop) in [
        ("1p1a1d", Topology::tiers(1, 1, 1).unwrap(), 400u32),
        ("2p2a2d", Topology::tiers(2, 2, 2).unwrap(), 800),
        ("4p4a4d", Topology::tiers(4, 4, 4).unwrap(), 1_600),
    ] {
        g.bench_function(label, |b| {
            let s = scenario(topo.clone(), Workload::Shopping, pop);
            b.iter(|| black_box(run_iteration(&s).metrics.wips))
        });
    }
    g.finish();
}

fn bench_worklines(c: &mut Criterion) {
    let mut g = c.benchmark_group("iteration/worklines");
    g.sample_size(10);
    g.bench_function("partitioned_2lines", |b| {
        let topo = Topology::tiers(2, 2, 2).unwrap();
        let mut s = scenario(topo, Workload::Shopping, 800);
        s.lines = Some(vec![vec![0, 2, 4], vec![1, 3, 5]]);
        b.iter(|| black_box(run_iteration(&s).line_wips.len()))
    });
    g.finish();
}

criterion_group!(benches, bench_workloads, bench_cluster_sizes, bench_worklines);
criterion_main!(benches);
