//! Benchmarks of one full cluster iteration (the unit of tuning cost):
//! per-workload, per-topology size, and the observability overhead of
//! running the same iteration with a live metrics registry attached.

use bench::harness::{measure, Criterion};
use std::hint::black_box;
use std::time::Duration;

use cluster::config::{ClusterConfig, Topology};
use cluster::model::ClusterScenario;
use cluster::runner::{run_iteration, run_iteration_observed};
use cluster::{Health, HealthChange, HealthTimeline};
use faults::FaultPlan;
use obs::Registry;
use orchestrator::session::SessionConfig;
use simkit::time::SimDuration;
use tpcw::metrics::IntervalPlan;
use tpcw::mix::Workload;

fn scenario(topology: Topology, workload: Workload, pop: u32) -> ClusterScenario {
    let mut s = ClusterScenario::single(workload, pop, IntervalPlan::tiny(), 42);
    s.config = ClusterConfig::defaults(&topology);
    s.topology = topology;
    s
}

fn bench_workloads(c: &mut Criterion) {
    let mut g = c.benchmark_group("iteration/workload");
    g.sample_size(10);
    for workload in Workload::ALL {
        g.bench_function(workload.name(), |b| {
            let s = scenario(Topology::single(), workload, 400);
            b.iter(|| black_box(run_iteration(&s).metrics.wips))
        });
    }
    g.finish();
}

fn bench_cluster_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("iteration/cluster_size");
    g.sample_size(10);
    for (label, topo, pop) in [
        ("1p1a1d", Topology::tiers(1, 1, 1).unwrap(), 400u32),
        ("2p2a2d", Topology::tiers(2, 2, 2).unwrap(), 800),
        ("4p4a4d", Topology::tiers(4, 4, 4).unwrap(), 1_600),
    ] {
        g.bench_function(label, |b| {
            let s = scenario(topo.clone(), Workload::Shopping, pop);
            b.iter(|| black_box(run_iteration(&s).metrics.wips))
        });
    }
    g.finish();
}

fn bench_worklines(c: &mut Criterion) {
    let mut g = c.benchmark_group("iteration/worklines");
    g.sample_size(10);
    g.bench_function("partitioned_2lines", |b| {
        let topo = Topology::tiers(2, 2, 2).unwrap();
        let mut s = scenario(topo, Workload::Shopping, 800);
        s.lines = Some(vec![vec![0, 2, 4], vec![1, 3, 5]]);
        b.iter(|| black_box(run_iteration(&s).line_wips.len()))
    });
    g.finish();
}

fn bench_metrics_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("iteration/metrics");
    g.sample_size(10);
    g.bench_function("plain", |b| {
        let s = scenario(Topology::single(), Workload::Shopping, 400);
        b.iter(|| black_box(run_iteration(&s).metrics.wips))
    });
    g.bench_function("observed", |b| {
        let s = scenario(Topology::single(), Workload::Shopping, 400);
        let reg = Registry::new();
        b.iter(|| black_box(run_iteration_observed(&s, &reg).metrics.wips))
    });
    g.finish();
}

fn bench_faults(c: &mut Criterion) {
    let mut g = c.benchmark_group("iteration/faults");
    g.sample_size(10);
    g.bench_function("healthy", |b| {
        let s = scenario(Topology::tiers(1, 2, 1).unwrap(), Workload::Shopping, 600);
        b.iter(|| black_box(run_iteration(&s).metrics.wips))
    });
    g.bench_function("crash_mid_window", |b| {
        let mut s = scenario(Topology::tiers(1, 2, 1).unwrap(), Workload::Shopping, 600);
        s.faults = Some(HealthTimeline {
            initial: vec![Health::Up; 4],
            changes: vec![HealthChange {
                after: SimDuration::from_secs(10),
                node: 1,
                health: Health::Down,
            }],
        });
        b.iter(|| black_box(run_iteration(&s).metrics.wips))
    });
    g.finish();
}

/// Head-to-head: the fault injector must cost < 5% on the no-fault path.
/// Attaching an *empty* fault plan leaves the DES untouched — the only
/// added work is projecting the plan onto each measurement window — so
/// this isolates the injector's bookkeeping cost.
fn report_injector_overhead() {
    let topology = Topology::single();
    let cfg =
        SessionConfig::new(topology.clone(), Workload::Shopping, 400).plan(IntervalPlan::tiny());
    let config = ClusterConfig::defaults(&topology);
    let min_time = Duration::from_millis(400);
    let plain = measure(
        || black_box(cfg.evaluate(config.clone(), 3).metrics.wips),
        min_time,
        20,
    );
    let faulted_cfg = cfg.clone().fault_plan(FaultPlan::new());
    let faulted = measure(
        || black_box(faulted_cfg.evaluate(config.clone(), 3).metrics.wips),
        min_time,
        20,
    );
    let delta = faulted.secs_per_iter() / plain.secs_per_iter() - 1.0;
    println!(
        "iteration/faults injector overhead (no-fault path): {:+.2}% (target < 5%; \
         plain {:.3} ms, with empty plan {:.3} ms)",
        delta * 100.0,
        plain.secs_per_iter() * 1e3,
        faulted.secs_per_iter() * 1e3
    );
}

/// Head-to-head: the observability layer must cost < 5% per iteration.
/// Printed as a percentage so regressions are visible in bench output.
fn report_overhead() {
    let s = scenario(Topology::single(), Workload::Shopping, 400);
    let min_time = Duration::from_millis(400);
    let plain = measure(|| black_box(run_iteration(&s).metrics.wips), min_time, 20);
    let reg = Registry::new();
    let observed = measure(
        || black_box(run_iteration_observed(&s, &reg).metrics.wips),
        min_time,
        20,
    );
    let delta = observed.secs_per_iter() / plain.secs_per_iter() - 1.0;
    println!(
        "iteration/metrics overhead: {:+.2}% (plain {:.3} ms, observed {:.3} ms)",
        delta * 100.0,
        plain.secs_per_iter() * 1e3,
        observed.secs_per_iter() * 1e3
    );
}

/// Head-to-head: crash-safe checkpointing must cost < 5% per tuning
/// iteration at the default cadence (a journal append per iteration, a
/// fsynced snapshot every 10th). With a pinned seed the simulation work
/// is identical with and without a checkpoint directory, so the added
/// cost *is* the persistence work; measuring that directly (open + one
/// journal frame per iteration + one snapshot per cadence) resolves a
/// ~1% delta that end-to-end differencing would bury in scheduler noise.
fn report_checkpoint_overhead() {
    use orchestrator::checkpoint::{session_fingerprint, CheckpointPolicy, Checkpointer};
    use orchestrator::session::tune;
    use persist::State;

    let topology = Topology::single();
    let cfg = SessionConfig::new(topology, Workload::Shopping, 400)
        .plan(IntervalPlan::tiny())
        .pin_seed(true);
    let dir = std::env::temp_dir().join(format!("bench-ckpt-{}", std::process::id()));
    let iters = 20u32;
    let min_time = Duration::from_millis(700);
    let plain = measure(
        || {
            let run = tune(&cfg, harmony::strategy::TuningMethod::Default, iters).expect("tune");
            black_box(run.best_wips)
        },
        min_time,
        10,
    );

    // One session's worth of persistence: fresh open, a delta frame per
    // iteration, and a full (synthetic, comparably-sized) snapshot on
    // the default every-10 cadence.
    let policy = CheckpointPolicy::new(&dir);
    let fp = session_fingerprint(&cfg, "bench", iters, iters);
    let snapshot = |upto: u64| {
        State::map().with("kind", State::Str("tune".into())).with(
            "records",
            State::List(
                (0..upto)
                    .map(|i| {
                        State::map()
                            .with("iteration", State::U64(i))
                            .with("wips", State::F64(120.0 + i as f64))
                            .with("line_wips", State::f64_list(&[120.0 + i as f64]))
                            .with("workload", State::Str("Shopping".into()))
                            .with("failed", State::U64(0))
                    })
                    .collect(),
            ),
        )
    };
    let persistence = measure(
        || {
            let (mut ck, _) = Checkpointer::open(&policy, fp).expect("open");
            for i in 0..iters {
                ck.append(
                    State::map()
                        .with("iteration", State::U64(i as u64))
                        .with("wips", State::F64(123.456))
                        .with("line_wips", State::f64_list(&[123.456]))
                        .with("failed", State::U64(0)),
                )
                .expect("append");
                ck.maybe_snapshot(i + 1, iters, || snapshot(i as u64 + 1))
                    .expect("snapshot");
            }
            black_box(())
        },
        min_time,
        10,
    );
    let _ = std::fs::remove_dir_all(&dir);
    let delta = persistence.secs_per_iter() / plain.secs_per_iter();
    println!(
        "iteration/checkpoint overhead (default cadence, {iters}-iteration session): {:+.2}% \
         (target < 5%; session {:.3} ms, persistence ops {:.3} ms)",
        delta * 100.0,
        plain.secs_per_iter() * 1e3,
        persistence.secs_per_iter() * 1e3
    );
}

/// Head-to-head: the evaluation engine must deliver >= 1.5x on a
/// multi-candidate replay while producing the *same* WIPS series bit
/// for bit. Three runs of the same 30-iteration simplex session:
///
/// * `sequential` — no engine, the baseline tuning loop;
/// * `speculative` — cold cache + one worker per core, so the engine
///   pre-evaluates the reflect/expand/contract candidate set it is
///   told about via `Tuner::speculate` (a wash on single-core hosts,
///   where there is nobody to overlap the extra work with);
/// * `warm replay` — the same session again on the now-warm cache,
///   which is what a resumed run gets after `persist` restores the
///   cache: every candidate is a hit and the DES never runs.
fn report_eval_speedup() {
    use harmony::strategy::TuningMethod;
    use orchestrator::eval::EvalSettings;
    use orchestrator::session::tune;
    use std::time::Instant;

    let topology = Topology::single();
    let cfg = SessionConfig::new(topology, Workload::Shopping, 400).plan(IntervalPlan::tiny());
    let iters = 30u32;

    let t0 = Instant::now();
    let plain = tune(&cfg, TuningMethod::Default, iters).expect("sequential tune");
    let sequential = t0.elapsed();

    let spec_cfg = cfg
        .clone()
        .eval_settings(EvalSettings::default().cache(true).threads(0));
    let t1 = Instant::now();
    let speculated = tune(&spec_cfg, TuningMethod::Default, iters).expect("speculative tune");
    let speculative = t1.elapsed();
    let spec_counters = spec_cfg.eval.counters();

    let warm_cfg = cfg
        .clone()
        .eval_settings(EvalSettings::default().cache(true));
    let _ = tune(&warm_cfg, TuningMethod::Default, iters).expect("cache warm-up");
    let before = warm_cfg.eval.counters();
    let t2 = Instant::now();
    let replayed = tune(&warm_cfg, TuningMethod::Default, iters).expect("warm replay");
    let warm = t2.elapsed();
    let warm_counters = warm_cfg.eval.counters().since(&before);

    for (label, run) in [("speculative", &speculated), ("warm replay", &replayed)] {
        assert_eq!(
            plain.wips_series(),
            run.wips_series(),
            "{label} engine changed the measured WIPS series"
        );
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "iteration/eval warm-replay speedup ({iters}-iteration simplex session): {:.1}x \
         (target >= 1.5x; sequential {:.0} ms, warm cache {:.2} ms, \
         hit rate {:.0}% [{} hits / {} misses])",
        sequential.as_secs_f64() / warm.as_secs_f64().max(1e-9),
        sequential.as_secs_f64() * 1e3,
        warm.as_secs_f64() * 1e3,
        warm_counters.hit_rate() * 100.0,
        warm_counters.hits,
        warm_counters.misses
    );
    println!(
        "iteration/eval speculation ({cores} core(s), cold cache): {:.2}x \
         (sequential {:.0} ms, speculative {:.0} ms, hit rate {:.0}% \
         [{} hits / {} misses], {} speculated)",
        sequential.as_secs_f64() / speculative.as_secs_f64().max(1e-9),
        sequential.as_secs_f64() * 1e3,
        speculative.as_secs_f64() * 1e3,
        spec_counters.hit_rate() * 100.0,
        spec_counters.hits,
        spec_counters.misses,
        spec_counters.speculated
    );
}

fn main() {
    let mut c = Criterion::from_args();
    bench_workloads(&mut c);
    bench_cluster_sizes(&mut c);
    bench_worklines(&mut c);
    bench_metrics_overhead(&mut c);
    bench_faults(&mut c);
    report_overhead();
    report_injector_overhead();
    report_checkpoint_overhead();
    report_eval_speedup();
}
