//! Microbenchmarks of the simulation substrate: event calendar, RNG,
//! LRU cache, multi-server resource, and the simplex kernel.

use bench::harness::Criterion;
use std::hint::black_box;

use cluster::cache::LruCache;
use cluster::object::object_size_bytes;
use harmony::param::ParamDef;
use harmony::simplex::SimplexTuner;
use harmony::space::ParamSpace;
use harmony::tuner::Tuner;
use simkit::calendar::EventCalendar;
use simkit::engine::{Model, Scheduler, Simulation};
use simkit::resource::MultiServer;
use simkit::rng::SimRng;
use simkit::time::{SimDuration, SimTime};

fn bench_calendar(c: &mut Criterion) {
    c.bench_function("calendar/heap_schedule_pop_10k", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| {
            let mut cal: EventCalendar<u64> = EventCalendar::with_capacity(10_000);
            for i in 0..10_000u64 {
                cal.schedule(SimTime::from_micros(rng.next_below(1_000_000)), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = cal.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        })
    });
    c.bench_function("calendar/calqueue_schedule_pop_10k", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| {
            let mut cal: simkit::calqueue::CalendarQueue<u64> =
                simkit::calqueue::CalendarQueue::new();
            for i in 0..10_000u64 {
                cal.schedule(SimTime::from_micros(rng.next_below(1_000_000)), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = cal.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        })
    });
}

struct Hot {
    rng: SimRng,
    station: MultiServer<u32>,
    served: u64,
}

enum Ev {
    Arrival,
    Departure,
}

impl Model for Hot {
    type Event = Ev;
    fn handle(&mut self, sched: &mut Scheduler<Ev>, ev: Ev) {
        match ev {
            Ev::Arrival => {
                let svc = self.rng.exp_duration(SimDuration::from_micros(800));
                if let simkit::resource::Admission::Started =
                    self.station.offer(sched.now(), 0, svc)
                {
                    sched.after(svc, Ev::Departure);
                }
                sched.after(
                    self.rng.exp_duration(SimDuration::from_millis(1)),
                    Ev::Arrival,
                );
            }
            Ev::Departure => {
                self.served += 1;
                if let Some(d) = self.station.complete(sched.now()) {
                    sched.after(d.demand, Ev::Departure);
                }
            }
        }
    }
}

fn bench_engine_loop(c: &mut Criterion) {
    c.bench_function("engine/mm1_100k_events", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(Hot {
                rng: SimRng::new(7),
                station: MultiServer::new(SimTime::ZERO, 1, None),
                served: 0,
            })
            .with_event_budget(100_000);
            sim.schedule_at(SimTime::ZERO, Ev::Arrival);
            sim.run_until(SimTime::MAX);
            black_box(sim.model().served)
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/exp_duration_1m", |b| {
        let mut rng = SimRng::new(3);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1_000_000 {
                acc = acc.wrapping_add(rng.exp_duration(SimDuration::from_secs(7)).as_micros());
            }
            black_box(acc)
        })
    });
    c.bench_function("rng/zipf_1m", |b| {
        let mut rng = SimRng::new(5);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1_000_000 {
                acc = acc.wrapping_add(rng.zipf(20_050, 0.75));
            }
            black_box(acc)
        })
    });
}

fn bench_lru(c: &mut Criterion) {
    c.bench_function("lru/zipf_churn_100k", |b| {
        b.iter(|| {
            let mut cache = LruCache::new(8 * 1024 * 1024);
            let mut rng = SimRng::new(11);
            for _ in 0..100_000 {
                let obj = rng.zipf(20_050, 0.75);
                if !cache.get(obj) {
                    cache.insert(obj, object_size_bytes(obj));
                }
            }
            black_box(cache.hit_ratio())
        })
    });
}

fn bench_simplex(c: &mut Criterion) {
    c.bench_function("simplex/23dim_200_steps", |b| {
        let defs: Vec<ParamDef> = (0..23)
            .map(|i| ParamDef::new(format!("p{i}"), 0, 10_000, 5_000))
            .collect();
        b.iter(|| {
            let mut t = SimplexTuner::new(ParamSpace::new(defs.clone()));
            for _ in 0..200 {
                let cfg = t.propose();
                let perf: f64 = cfg
                    .values()
                    .iter()
                    .map(|&v| -((v - 3_000) as f64).abs())
                    .sum();
                t.observe(perf);
            }
            black_box(t.best().map(|(_, p)| p))
        })
    });
}

fn main() {
    let mut c = Criterion::from_args();
    bench_calendar(&mut c);
    bench_engine_loop(&mut c);
    bench_rng(&mut c);
    bench_lru(&mut c);
    bench_simplex(&mut c);
}
