//! Property-based tests of the simulation substrate.

use proptest::prelude::*;
use simkit::calendar::EventCalendar;
use simkit::calqueue::CalendarQueue;
use simkit::queue::{BoundedQueue, Offer};
use simkit::rng::SimRng;
use simkit::stats::{TimeWeighted, Welford};
use simkit::time::{SimDuration, SimTime};

proptest! {
    /// The calendar always pops events in non-decreasing time order, and
    /// FIFO within equal times.
    #[test]
    fn calendar_pops_sorted_stable(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut cal = EventCalendar::new();
        for (i, &t) in times.iter().enumerate() {
            cal.schedule(SimTime::from_micros(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, idx)) = cal.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(idx > lidx, "FIFO violated at equal times");
                }
            }
            last = Some((t, idx));
        }
    }

    /// The calendar queue and the binary heap are observationally
    /// identical under arbitrary interleavings of schedules and pops.
    #[test]
    fn calqueue_equals_heap(
        ops in prop::collection::vec((any::<bool>(), 0u64..100_000), 1..400),
    ) {
        let mut heap = EventCalendar::new();
        let mut cq = CalendarQueue::new();
        let mut i = 0u64;
        for (push, t) in ops {
            if push {
                heap.schedule(SimTime::from_micros(t), i);
                cq.schedule(SimTime::from_micros(t), i);
                i += 1;
            } else {
                prop_assert_eq!(heap.pop(), cq.pop());
            }
            prop_assert_eq!(heap.len(), cq.len());
        }
        loop {
            let a = heap.pop();
            prop_assert_eq!(a, cq.pop());
            if a.is_none() { break; }
        }
    }

    /// Welford matches the naive two-pass mean and variance.
    #[test]
    fn welford_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 2..300)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.record(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        let scale = mean.abs().max(1.0);
        prop_assert!((w.mean() - mean).abs() / scale < 1e-9);
        let vscale = var.abs().max(1.0);
        prop_assert!((w.variance() - var).abs() / vscale < 1e-6);
        prop_assert!(w.min() <= w.mean() + 1e-9 && w.mean() <= w.max() + 1e-9);
    }

    /// Merging split halves equals a single accumulation.
    #[test]
    fn welford_merge_associative(
        xs in prop::collection::vec(-1e3f64..1e3, 2..100),
        split in 0usize..100,
    ) {
        let split = split % xs.len();
        let mut whole = Welford::new();
        xs.iter().for_each(|&x| whole.record(x));
        let mut a = Welford::new();
        let mut b = Welford::new();
        xs[..split].iter().for_each(|&x| a.record(x));
        xs[split..].iter().for_each(|&x| b.record(x));
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9 * whole.mean().abs().max(1.0));
    }

    /// Bounded queues never exceed capacity and preserve FIFO order.
    #[test]
    fn bounded_queue_respects_capacity(
        cap in 0usize..20,
        ops in prop::collection::vec(prop::bool::ANY, 1..300),
    ) {
        let mut q = BoundedQueue::bounded(cap);
        let mut model: std::collections::VecDeque<u32> = Default::default();
        let mut next = 0u32;
        for push in ops {
            if push {
                match q.offer(next) {
                    Offer::Accepted => {
                        prop_assert!(model.len() < cap);
                        model.push_back(next);
                    }
                    Offer::Rejected(v) => {
                        prop_assert_eq!(v, next);
                        prop_assert_eq!(model.len(), cap);
                    }
                }
                next += 1;
            } else {
                prop_assert_eq!(q.take(), model.pop_front());
            }
            prop_assert_eq!(q.len(), model.len());
            prop_assert!(q.len() <= cap);
        }
    }

    /// Time-weighted average equals a brute-force integral.
    #[test]
    fn time_weighted_matches_brute_force(
        steps in prop::collection::vec((1u64..1_000, 0.0f64..100.0), 1..50),
    ) {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        let mut t = 0u64;
        let mut area = 0.0;
        let mut value = 0.0;
        for &(dt, v) in &steps {
            area += value * dt as f64;
            t += dt;
            tw.set(SimTime::from_micros(t), v);
            value = v;
        }
        // Advance a final span.
        let end = t + 500;
        area += value * 500.0;
        let expected = area / end as f64;
        let got = tw.average(SimTime::from_micros(end));
        prop_assert!((got - expected).abs() < 1e-6 * expected.abs().max(1.0),
            "got {got}, expected {expected}");
    }

    /// RNG uniform helpers stay in range for arbitrary bounds.
    #[test]
    fn rng_ranges_hold(seed in any::<u64>(), lo in -1000i64..1000, span in 0i64..1000) {
        let hi = lo + span;
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            let v = rng.uniform_i64(lo, hi);
            prop_assert!((lo..=hi).contains(&v));
            let f = rng.next_f64();
            prop_assert!((0.0..1.0).contains(&f));
            let e = rng.exponential(3.0);
            prop_assert!(e >= 0.0);
        }
    }

    /// Substreams are reproducible: the same (seed, stream) pair always
    /// yields the same sequence.
    #[test]
    fn rng_substreams_reproducible(seed in any::<u64>(), stream in any::<u64>()) {
        let mut a = SimRng::new(seed).substream(stream);
        let mut b = SimRng::new(seed).substream(stream);
        for _ in 0..20 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Duration arithmetic: conversions round-trip within a microsecond.
    #[test]
    fn duration_secs_roundtrip(us in 0u64..10_000_000_000) {
        let d = SimDuration::from_micros(us);
        let back = SimDuration::from_secs_f64(d.as_secs_f64());
        let diff = back.as_micros().abs_diff(us);
        prop_assert!(diff <= 1, "{us} -> {}", back.as_micros());
    }
}
