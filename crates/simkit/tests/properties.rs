//! Randomised invariant tests of the simulation substrate.
//!
//! These used to be proptest properties; they now drive the same checks
//! from seeded `SimRng` loops so the workspace builds with no external
//! crates. Each case runs many random instances deterministically.

use simkit::calendar::EventCalendar;
use simkit::calqueue::CalendarQueue;
use simkit::queue::{BoundedQueue, Offer};
use simkit::rng::SimRng;
use simkit::stats::{TimeWeighted, Welford};
use simkit::time::{SimDuration, SimTime};

/// The calendar always pops events in non-decreasing time order, and
/// FIFO within equal times.
#[test]
fn calendar_pops_sorted_stable() {
    let mut rng = SimRng::new(0xCA1E);
    for case in 0..50 {
        let n = rng.uniform_i64(1, 200) as usize;
        let mut cal = EventCalendar::new();
        for i in 0..n {
            let t = rng.uniform_i64(0, 999) as u64;
            cal.schedule(SimTime::from_micros(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, idx)) = cal.pop() {
            if let Some((lt, lidx)) = last {
                assert!(t >= lt, "case {case}: time went backwards");
                if t == lt {
                    assert!(idx > lidx, "case {case}: FIFO violated at equal times");
                }
            }
            last = Some((t, idx));
        }
    }
}

/// The calendar queue and the binary heap are observationally identical
/// under arbitrary interleavings of schedules and pops.
#[test]
fn calqueue_equals_heap() {
    let mut rng = SimRng::new(0xCA17);
    for case in 0..40 {
        let ops = rng.uniform_i64(1, 400) as usize;
        let mut heap = EventCalendar::new();
        let mut cq = CalendarQueue::new();
        let mut i = 0u64;
        for _ in 0..ops {
            let push = rng.next_f64() < 0.5;
            if push {
                let t = rng.uniform_i64(0, 99_999) as u64;
                heap.schedule(SimTime::from_micros(t), i);
                cq.schedule(SimTime::from_micros(t), i);
                i += 1;
            } else {
                assert_eq!(heap.pop(), cq.pop(), "case {case}: pop diverged");
            }
            assert_eq!(heap.len(), cq.len(), "case {case}: len diverged");
        }
        loop {
            let a = heap.pop();
            assert_eq!(a, cq.pop(), "case {case}: drain diverged");
            if a.is_none() {
                break;
            }
        }
    }
}

/// Welford matches the naive two-pass mean and variance.
#[test]
fn welford_matches_naive() {
    let mut rng = SimRng::new(0x3E1F);
    for case in 0..50 {
        let n = rng.uniform_i64(2, 300) as usize;
        let xs: Vec<f64> = (0..n).map(|_| (rng.next_f64() - 0.5) * 2e6).collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.record(x);
        }
        let nf = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / nf;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (nf - 1.0);
        let scale = mean.abs().max(1.0);
        assert!(
            (w.mean() - mean).abs() / scale < 1e-9,
            "case {case}: mean {} vs {mean}",
            w.mean()
        );
        let vscale = var.abs().max(1.0);
        assert!(
            (w.variance() - var).abs() / vscale < 1e-6,
            "case {case}: var {} vs {var}",
            w.variance()
        );
        assert!(w.min() <= w.mean() + 1e-9 && w.mean() <= w.max() + 1e-9);
    }
}

/// Merging split halves equals a single accumulation.
#[test]
fn welford_merge_associative() {
    let mut rng = SimRng::new(0x3E20);
    for case in 0..50 {
        let n = rng.uniform_i64(2, 100) as usize;
        let xs: Vec<f64> = (0..n).map(|_| (rng.next_f64() - 0.5) * 2e3).collect();
        let split = rng.uniform_i64(0, n as i64 - 1) as usize;
        let mut whole = Welford::new();
        xs.iter().for_each(|&x| whole.record(x));
        let mut a = Welford::new();
        let mut b = Welford::new();
        xs[..split].iter().for_each(|&x| a.record(x));
        xs[split..].iter().for_each(|&x| b.record(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count(), "case {case}");
        assert!(
            (a.mean() - whole.mean()).abs() < 1e-9 * whole.mean().abs().max(1.0),
            "case {case}: merged mean diverged"
        );
    }
}

/// Bounded queues never exceed capacity and preserve FIFO order.
#[test]
fn bounded_queue_respects_capacity() {
    let mut rng = SimRng::new(0xB0DE);
    for case in 0..50 {
        let cap = rng.uniform_i64(0, 19) as usize;
        let ops = rng.uniform_i64(1, 300) as usize;
        let mut q = BoundedQueue::bounded(cap);
        let mut model: std::collections::VecDeque<u32> = Default::default();
        let mut next = 0u32;
        for _ in 0..ops {
            if rng.next_f64() < 0.5 {
                match q.offer(next) {
                    Offer::Accepted => {
                        assert!(model.len() < cap, "case {case}: accepted past capacity");
                        model.push_back(next);
                    }
                    Offer::Rejected(v) => {
                        assert_eq!(v, next, "case {case}");
                        assert_eq!(model.len(), cap, "case {case}: rejected while not full");
                    }
                }
                next += 1;
            } else {
                assert_eq!(q.take(), model.pop_front(), "case {case}: FIFO violated");
            }
            assert_eq!(q.len(), model.len(), "case {case}");
            assert!(q.len() <= cap, "case {case}");
        }
    }
}

/// Time-weighted average equals a brute-force integral.
#[test]
fn time_weighted_matches_brute_force() {
    let mut rng = SimRng::new(0x71AE);
    for case in 0..50 {
        let n = rng.uniform_i64(1, 50) as usize;
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        let mut t = 0u64;
        let mut area = 0.0;
        let mut value = 0.0;
        for _ in 0..n {
            let dt = rng.uniform_i64(1, 999) as u64;
            let v = rng.next_f64() * 100.0;
            area += value * dt as f64;
            t += dt;
            tw.set(SimTime::from_micros(t), v);
            value = v;
        }
        let end = t + 500;
        area += value * 500.0;
        let expected = area / end as f64;
        let got = tw.average(SimTime::from_micros(end));
        assert!(
            (got - expected).abs() < 1e-6 * expected.abs().max(1.0),
            "case {case}: got {got}, expected {expected}"
        );
    }
}

/// RNG uniform helpers stay in range for arbitrary bounds.
#[test]
fn rng_ranges_hold() {
    let mut meta = SimRng::new(0x4A96);
    for _ in 0..30 {
        let seed = meta.next_u64();
        let lo = meta.uniform_i64(-1000, 1000);
        let hi = lo + meta.uniform_i64(0, 1000);
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            let v = rng.uniform_i64(lo, hi);
            assert!((lo..=hi).contains(&v), "{v} outside [{lo}, {hi}]");
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
            let e = rng.exponential(3.0);
            assert!(e >= 0.0);
        }
    }
}

/// Substreams are reproducible: the same (seed, stream) pair always
/// yields the same sequence.
#[test]
fn rng_substreams_reproducible() {
    let mut meta = SimRng::new(0x5EED);
    for _ in 0..30 {
        let seed = meta.next_u64();
        let stream = meta.next_u64();
        let mut a = SimRng::new(seed).substream(stream);
        let mut b = SimRng::new(seed).substream(stream);
        for _ in 0..20 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

/// Duration arithmetic: conversions round-trip within a microsecond.
#[test]
fn duration_secs_roundtrip() {
    let mut rng = SimRng::new(0xD00D);
    for _ in 0..200 {
        let us = rng.next_u64() % 10_000_000_000;
        let d = SimDuration::from_micros(us);
        let back = SimDuration::from_secs_f64(d.as_secs_f64());
        let diff = back.as_micros().abs_diff(us);
        assert!(diff <= 1, "{us} -> {}", back.as_micros());
    }
}
