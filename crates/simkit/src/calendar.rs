//! The event calendar: a time-ordered priority queue of scheduled events.
//!
//! Ties in time are broken by insertion order (FIFO), which makes runs with
//! identical seeds bit-for-bit reproducible regardless of heap internals.
//!
//! Internally this is a 4-ary implicit min-heap over packed
//! `(time << 64) | seq` keys. The packing turns the two-field lexicographic
//! comparison into a single `u128` compare, and the struct-of-arrays layout
//! keeps the keys dense: the four children examined by one sift-down step
//! share a cache line, and payloads are only touched when an entry actually
//! moves. Compared to `std::collections::BinaryHeap` this halves the tree
//! depth and removes the per-level branch on the tie-break field, which is
//! worth ~2x on the schedule/pop cycle that bounds DES throughput (see
//! `benches/engine.rs`).

use crate::time::SimTime;

/// Pack `(time, seq)` into one totally-ordered key. `seq` is unique per
/// calendar, so keys never collide and FIFO tie-breaking is exact.
#[inline(always)]
fn pack(time: SimTime, seq: u64) -> u128 {
    ((time.as_micros() as u128) << 64) | seq as u128
}

#[inline(always)]
fn key_time(key: u128) -> SimTime {
    SimTime::from_micros((key >> 64) as u64)
}

/// Time-ordered event queue with FIFO tie-breaking.
#[derive(Debug)]
pub struct EventCalendar<E> {
    /// Heap-ordered packed keys; `events[i]` is the payload of `keys[i]`.
    keys: Vec<u128>,
    events: Vec<E>,
    next_seq: u64,
}

impl<E> Default for EventCalendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventCalendar<E> {
    pub fn new() -> Self {
        EventCalendar {
            keys: Vec::new(),
            events: Vec::new(),
            next_seq: 0,
        }
    }

    pub fn with_capacity(cap: usize) -> Self {
        EventCalendar {
            keys: Vec::with_capacity(cap),
            events: Vec::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedule `event` at absolute time `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.keys.push(pack(time, seq));
        self.events.push(event);
        self.sift_up(self.keys.len() - 1);
    }

    /// Time of the earliest pending event.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.keys.first().map(|&k| key_time(k))
    }

    /// Remove and return the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.keys.is_empty() {
            return None;
        }
        let key = self.keys.swap_remove(0);
        let event = self.events.swap_remove(0);
        if self.keys.len() > 1 {
            self.sift_down(0);
        }
        Some((key_time(key), event))
    }

    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Drop every pending event (used between tuning iterations when the
    /// world is rebuilt).
    pub fn clear(&mut self) {
        self.keys.clear();
        self.events.clear();
    }

    /// Move the entry at `i` up to its heap position. The key rides in a
    /// register (hole insertion — one store per level); the payload chases
    /// it with swaps so the two arrays stay aligned without `unsafe`.
    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        let key = self.keys[i];
        while i > 0 {
            let parent = (i - 1) >> 2;
            if key >= self.keys[parent] {
                break;
            }
            self.keys[i] = self.keys[parent];
            self.events.swap(i, parent);
            i = parent;
        }
        self.keys[i] = key;
    }

    /// Move the entry at `i` down to its heap position (same hole scheme).
    #[inline]
    fn sift_down(&mut self, mut i: usize) {
        let n = self.keys.len();
        let key = self.keys[i];
        loop {
            let first = 4 * i + 1;
            if first >= n {
                break;
            }
            let last = (first + 4).min(n);
            // Scan the (up to four) contiguous children for the minimum.
            let mut min = first;
            let mut min_key = self.keys[first];
            for c in first + 1..last {
                let k = self.keys[c];
                if k < min_key {
                    min = c;
                    min_key = k;
                }
            }
            if min_key >= key {
                break;
            }
            self.keys[i] = min_key;
            self.events.swap(i, min);
            i = min;
        }
        self.keys[i] = key;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn pops_in_time_order() {
        let mut c = EventCalendar::new();
        c.schedule(SimTime::from_secs(3), "c");
        c.schedule(SimTime::from_secs(1), "a");
        c.schedule(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| c.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut c = EventCalendar::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            c.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| c.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut c = EventCalendar::new();
        c.schedule(SimTime::from_secs(5), 5);
        c.schedule(SimTime::from_secs(1), 1);
        assert_eq!(c.pop(), Some((SimTime::from_secs(1), 1)));
        c.schedule(SimTime::from_secs(2), 2);
        assert_eq!(c.pop(), Some((SimTime::from_secs(2), 2)));
        assert_eq!(c.pop(), Some((SimTime::from_secs(5), 5)));
        assert!(c.pop().is_none());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut c = EventCalendar::new();
        c.schedule(SimTime::from_secs(9), ());
        assert_eq!(c.peek_time(), Some(SimTime::from_secs(9)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut c = EventCalendar::new();
        for i in 0..10 {
            c.schedule(SimTime::from_secs(i), i);
        }
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.peek_time(), None);
    }

    /// The 4-ary heap must order exactly like a reference sort on
    /// (time, insertion order) under mixed schedule/pop churn.
    #[test]
    fn matches_reference_order_on_random_churn() {
        let mut rng = SimRng::new(71);
        let mut cal = EventCalendar::new();
        let mut reference: Vec<(u64, u64, u64)> = Vec::new(); // (time, seq, id)
        let mut clock = 0u64;
        for i in 0..30_000u64 {
            // Coarse time quantization forces plenty of exact ties.
            let t = clock + rng.next_below(50) * 1_000;
            cal.schedule(SimTime::from_micros(t), i);
            reference.push((t, i, i)); // insertion order == id here
            if i % 3 == 0 {
                reference.sort();
                let (t, _, id) = reference.remove(0);
                assert_eq!(cal.pop(), Some((SimTime::from_micros(t), id)));
                clock = t;
            }
        }
        reference.sort();
        for (t, _, id) in reference {
            assert_eq!(cal.pop(), Some((SimTime::from_micros(t), id)));
        }
        assert!(cal.pop().is_none());
    }
}
