//! The event calendar: a time-ordered priority queue of scheduled events.
//!
//! Ties in time are broken by insertion order (FIFO), which makes runs with
//! identical seeds bit-for-bit reproducible regardless of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled occurrence of an event of type `E`.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Time-ordered event queue with FIFO tie-breaking.
#[derive(Debug)]
pub struct EventCalendar<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventCalendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventCalendar<E> {
    pub fn new() -> Self {
        EventCalendar {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    pub fn with_capacity(cap: usize) -> Self {
        EventCalendar {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedule `event` at absolute time `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Remove and return the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop every pending event (used between tuning iterations when the
    /// world is rebuilt).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut c = EventCalendar::new();
        c.schedule(SimTime::from_secs(3), "c");
        c.schedule(SimTime::from_secs(1), "a");
        c.schedule(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| c.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut c = EventCalendar::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            c.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| c.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut c = EventCalendar::new();
        c.schedule(SimTime::from_secs(5), 5);
        c.schedule(SimTime::from_secs(1), 1);
        assert_eq!(c.pop(), Some((SimTime::from_secs(1), 1)));
        c.schedule(SimTime::from_secs(2), 2);
        assert_eq!(c.pop(), Some((SimTime::from_secs(2), 2)));
        assert_eq!(c.pop(), Some((SimTime::from_secs(5), 5)));
        assert!(c.pop().is_none());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut c = EventCalendar::new();
        c.schedule(SimTime::from_secs(9), ());
        assert_eq!(c.peek_time(), Some(SimTime::from_secs(9)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut c = EventCalendar::new();
        for i in 0..10 {
            c.schedule(SimTime::from_secs(i), i);
        }
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.peek_time(), None);
    }
}
