//! A fast, deterministic hasher for simulation-internal maps.
//!
//! `std`'s default SipHash is DoS-resistant but costs ~10x more than the
//! simulator needs for its integer-keyed index maps (the LRU caches hash
//! one `u64` per lookup on the event hot path). [`FxHasher64`] is the
//! multiply-xor scheme used by rustc's `FxHashMap`: one wrapping multiply
//! per word, zero setup.
//!
//! Determinism note: hashers only affect *bucket placement*, never the
//! contents of a map, so swapping one in cannot change simulation outputs
//! — unless code iterates a map in storage order. Nothing in the hot path
//! does (and the seeded golden-trace tests would catch it if it crept in).
//! Unlike `RandomState`, this hasher is also stable across processes,
//! which removes a source of run-to-run allocation jitter in benchmarks.

use std::hash::{BuildHasherDefault, Hasher};

/// `BuildHasher` for [`FxHasher64`]; plug into `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher64>;

/// A `HashMap` using [`FxHasher64`] (drop-in alias).
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor hasher (rustc's FxHash, 64-bit variant).
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher64 {
    hash: u64,
}

impl FxHasher64 {
    #[inline(always)]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let mut w = [0u8; 8];
            w.copy_from_slice(c);
            self.add(u64::from_le_bytes(w));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut w = [0u8; 8];
            w[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(w) | ((rem.len() as u64) << 56));
        }
    }

    #[inline(always)]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline(always)]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline(always)]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline(always)]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline(always)]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }

    #[inline(always)]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher64::default();
        let mut b = FxHasher64::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinct_keys_usually_distinct() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for k in 0..10_000u64 {
            let mut h = FxHasher64::default();
            h.write_u64(k);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000, "no collisions on sequential keys");
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for k in 0..1_000u64 {
            m.insert(k, k * 3);
        }
        for k in 0..1_000u64 {
            assert_eq!(m.get(&k), Some(&(k * 3)));
        }
        assert_eq!(m.len(), 1_000);
    }

    #[test]
    fn byte_stream_tail_lengths_differ() {
        // "ab" must not collide with "ab\0" (tail length is mixed in).
        let mut a = FxHasher64::default();
        let mut b = FxHasher64::default();
        a.write(b"ab");
        b.write(b"ab\0");
        assert_ne!(a.finish(), b.finish());
    }
}
