//! Simulation time.
//!
//! Time is represented as an integer number of microseconds since the start
//! of the simulation. Integer time keeps event ordering exactly reproducible
//! across platforms (no floating-point associativity surprises), which the
//! whole experiment harness relies on for seeded determinism.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An instant in simulated time, measured in microseconds from simulation
/// start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

pub const MICROS_PER_MILLI: u64 = 1_000;
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// Round a non-negative finite `x < 2^64` to the nearest integer, halves
/// away from zero — bit-identical to `x.round() as u64` on that domain.
///
/// `f64::round` lowers to a libm call on baseline x86-64 (no SSE4.1
/// `roundsd`), and it sat at ~5% of the DES hot loop via
/// [`SimDuration::from_secs_f64`]. Truncation (`as u64`) is a single
/// instruction, and for `0 <= x < 2^64` the fractional part `x - trunc(x)`
/// is computed exactly (Sterbenz: `trunc(x) <= x <= 2*trunc(x)` whenever
/// `x >= 1`, and the subtraction is trivially exact below 1), so comparing
/// it against 0.5 reproduces round-half-away exactly.
#[inline(always)]
pub fn round_nonneg(x: f64) -> u64 {
    let t = x as u64; // trunc toward zero; exact on the documented domain
    t + ((x - t as f64) >= 0.5) as u64
}

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * MICROS_PER_MILLI)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * MICROS_PER_SEC)
    }

    /// Raw microseconds since simulation start.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Time as fractional seconds (for reporting only — never for ordering).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier` is
    /// in the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * MICROS_PER_MILLI)
    }

    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// microsecond. Negative or NaN inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        // NaN and non-positive inputs clamp to zero.
        if s.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return SimDuration::ZERO;
        }
        let us = s * MICROS_PER_SEC as f64;
        if us >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(round_nonneg(us))
        }
    }

    /// Construct from fractional milliseconds (common for service times).
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1_000.0)
    }

    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_MILLI as f64
    }

    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating sum.
    #[inline]
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Scale by a non-negative factor, rounding to the nearest microsecond.
    /// Used for slow-down multipliers (e.g. memory-pressure penalties).
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        // NaN and non-positive factors clamp to zero.
        if factor.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return SimDuration::ZERO;
        }
        let v = self.0 as f64 * factor;
        if v >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(round_nonneg(v))
        }
    }

    /// Integer division of durations (how many times `other` fits).
    #[inline]
    pub fn div_duration(self, other: SimDuration) -> u64 {
        self.0.checked_div(other.0).unwrap_or(0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, other: SimDuration) {
        self.0 = self.0.saturating_add(other.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, other: SimDuration) {
        self.0 = self.0.saturating_sub(other.0);
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < MICROS_PER_MILLI {
            write!(f, "{}us", self.0)
        } else if self.0 < MICROS_PER_SEC {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimTime::from_secs(1).as_micros(), MICROS_PER_SEC);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
        assert_eq!(
            SimDuration::from_millis_f64(1.5),
            SimDuration::from_micros(1_500)
        );
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_millis(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(late.since(early), SimDuration::from_secs(4));
        assert_eq!(early.since(late), SimDuration::ZERO);
    }

    #[test]
    fn round_nonneg_matches_round_exactly() {
        // Adversarial cases: just-below-half ulp neighbours, exact halves,
        // integers, huge integer-valued floats, and a pseudorandom sweep.
        let cases = [
            0.0,
            0.499_999_999_999_999_94, // largest f64 below 0.5
            0.5,
            0.999_999_999_999_999_9,
            1.5,
            2.5,
            1e15 + 0.5,
            (1u64 << 52) as f64,
            (1u64 << 53) as f64,
            1.844_674_4e19, // near 2^64, integer-valued
        ];
        for &x in &cases {
            assert_eq!(round_nonneg(x), x.round() as u64, "x = {x:e}");
        }
        let mut state = 0x1234_5678u64;
        for _ in 0..100_000 {
            // xorshift sweep over mixed magnitudes.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let x = (state >> 11) as f64 / (1u64 << 20) as f64;
            assert_eq!(round_nonneg(x), x.round() as u64, "x = {x:e}");
        }
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_micros(100);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_micros(150));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(-2.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn div_duration_handles_zero() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.div_duration(SimDuration::from_secs(3)), 3);
        assert_eq!(d.div_duration(SimDuration::ZERO), 0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_micros(17)), "17us");
        assert_eq!(format!("{}", SimDuration::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimDuration::MAX.saturating_add(SimDuration::from_secs(1)),
            SimDuration::MAX
        );
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::MAX),
            None.or(Some(SimTime::MAX))
        );
        assert_eq!(SimTime::from_micros(1).checked_add(SimDuration::MAX), None);
    }
}
