//! Deterministic pseudo-random number generation for simulations.
//!
//! The hot simulation loop uses a from-scratch xoshiro256** generator seeded
//! through SplitMix64. Rolling our own (rather than pulling `rand` into the
//! engine) keeps the event loop dependency-light and guarantees that a seed
//! produces the identical event sequence forever, independent of external
//! crate version bumps.
//!
//! Streams: [`SimRng::substream`] derives statistically independent child
//! generators from a parent seed, so each model component (browsers, proxy,
//! database, ...) can own its own stream and event interleaving does not
//! perturb per-component draws.

use crate::time::SimDuration;

/// SplitMix64 step: used for seeding and stream derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Precomputed lognormal shape parameters for a fixed coefficient of
/// variation.
///
/// [`SimRng::lognormal_mean_cv`] re-derives `ln(1 + cv^2)` and its square
/// root on every draw even though every hot call site passes a constant
/// `cv`. Hoisting the derivation preserves bit-equality: the stored values
/// are exactly the ones the per-draw path would compute, and
/// [`SimRng::lognormal_shaped`] performs the identical arithmetic on them
/// in the identical order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LognormalShape {
    sigma2: f64,
    sigma: f64,
}

impl LognormalShape {
    /// Derive the shape for a coefficient of variation. `cv` must be
    /// positive: the `cv == 0` degenerate case of `lognormal_mean_cv`
    /// returns the mean *without consuming a draw*, which a shaped sample
    /// cannot reproduce.
    pub fn from_cv(cv: f64) -> Self {
        debug_assert!(cv > 0.0, "use the mean directly when cv == 0");
        let sigma2 = (1.0 + cv * cv).ln();
        LognormalShape {
            sigma2,
            sigma: sigma2.sqrt(),
        }
    }
}

/// A deterministic xoshiro256** pseudo-random generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a 64-bit seed. Any seed (including 0) is
    /// valid; the internal state is expanded through SplitMix64 so it is
    /// never all-zero.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent child stream. Children with distinct `stream`
    /// ids (under the same parent) are decorrelated; the parent state is not
    /// advanced.
    pub fn substream(&self, stream: u64) -> SimRng {
        // Mix the parent's state with the stream id through SplitMix64.
        let mut sm = self.s[0]
            ^ self.s[1].rotate_left(17)
            ^ self.s[2].rotate_left(31)
            ^ self.s[3].rotate_left(47)
            ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// The raw xoshiro256** state, for checkpointing. Restoring via
    /// [`SimRng::from_state`] resumes the exact draw sequence.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a previously captured [`SimRng::state`].
    pub fn from_state(s: [u64; 4]) -> Self {
        SimRng { s }
    }

    /// Next raw 64 random bits (xoshiro256**).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in [0, 1) with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be nonzero.
    /// Uses Lemire's multiply-shift rejection method (unbiased).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below bound must be > 0");
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn uniform_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi as i128 - lo as i128 + 1) as u128;
        if span > u64::MAX as u128 {
            // Full-range: just take raw bits.
            return self.next_u64() as i64;
        }
        lo.wrapping_add(self.next_below(span as u64) as i64)
    }

    /// Uniform f64 in `[lo, hi)`.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Guard against ln(0): next_f64 is in [0,1), so 1-u is in (0,1].
        let u = 1.0 - self.next_f64();
        -mean * u.ln()
    }

    /// Exponentially distributed duration with the given mean.
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        SimDuration::from_secs_f64(self.exponential(mean.as_secs_f64().max(1e-12)))
    }

    /// Standard normal via Box–Muller (one value per call; simple and
    /// branch-free enough for our volumes).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.standard_normal()
    }

    /// Lognormal parameterised by the mean and coefficient of variation of
    /// the *resulting* distribution (convenient for service times).
    pub fn lognormal_mean_cv(&mut self, mean: f64, cv: f64) -> f64 {
        debug_assert!(mean > 0.0 && cv >= 0.0);
        if cv == 0.0 {
            return mean;
        }
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        (mu + sigma2.sqrt() * self.standard_normal()).exp()
    }

    /// Sample from a precomputed [`LognormalShape`] — bit-identical to
    /// [`SimRng::lognormal_mean_cv`] with the shape's `cv`, minus the
    /// per-draw `ln`/`sqrt` parameter derivation.
    #[inline]
    pub fn lognormal_shaped(&mut self, shape: LognormalShape, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let mu = mean.ln() - shape.sigma2 / 2.0;
        (mu + shape.sigma * self.standard_normal()).exp()
    }

    /// Sample an index from non-negative weights (at least one positive).
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        debug_assert!(total > 0.0, "weighted_index needs a positive total weight");
        let mut x = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        // Floating-point slack: fall back to the last positive weight
        // (index 0 if every weight is zero, which the debug_assert above
        // rejects in test builds).
        weights.iter().rposition(|&w| w > 0.0).unwrap_or(0)
    }

    /// Zipf-like sample over `[0, n)` with skew `theta` in `[0, 1)`.
    /// theta = 0 is uniform; larger theta concentrates probability on low
    /// ranks. Used for object popularity (cache working sets).
    pub fn zipf(&mut self, n: u64, theta: f64) -> u64 {
        debug_assert!(n > 0);
        if theta <= 0.0 {
            return self.next_below(n);
        }
        // Inverse-CDF approximation for the continuous analogue
        // ("independent reference model" style): rank ~ n * u^(1/(1-theta)).
        let u = self.next_f64();
        let r = (n as f64) * u.powf(1.0 / (1.0 - theta.min(0.999)));
        (r as u64).min(n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_roundtrip_resumes_exact_sequence() {
        let mut r = SimRng::new(99);
        for _ in 0..17 {
            r.next_u64();
        }
        let mut resumed = SimRng::from_state(r.state());
        for _ in 0..100 {
            assert_eq!(r.next_u64(), resumed.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn substreams_are_decorrelated_and_stable() {
        let parent = SimRng::new(7);
        let mut c1 = parent.substream(0);
        let mut c2 = parent.substream(1);
        let mut c1_again = parent.substream(0);
        assert_eq!(c1.next_u64(), c1_again.next_u64());
        let same = (0..100).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_is_in_range_and_roughly_uniform() {
        let mut r = SimRng::new(11);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "count {c} out of tolerance");
        }
    }

    #[test]
    fn uniform_i64_bounds() {
        let mut r = SimRng::new(5);
        for _ in 0..10_000 {
            let v = r.uniform_i64(-3, 9);
            assert!((-3..=9).contains(&v));
        }
        // Degenerate range.
        assert_eq!(r.uniform_i64(4, 4), 4);
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = SimRng::new(13);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.exponential(7.0)).sum();
        let mean = sum / n as f64;
        assert!((6.8..7.2).contains(&mean), "mean {mean}");
    }

    #[test]
    fn normal_moments_close() {
        let mut r = SimRng::new(17);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((9.9..10.1).contains(&mean), "mean {mean}");
        assert!((3.8..4.2).contains(&var), "var {var}");
    }

    #[test]
    fn lognormal_mean_cv_matches_target() {
        let mut r = SimRng::new(19);
        let n = 300_000;
        let xs: Vec<f64> = (0..n).map(|_| r.lognormal_mean_cv(5.0, 0.5)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((4.9..5.1).contains(&mean), "mean {mean}");
        assert_eq!(r.lognormal_mean_cv(5.0, 0.0), 5.0);
    }

    #[test]
    fn lognormal_shaped_is_bit_identical_to_mean_cv() {
        for cv in [0.3, 0.6, 0.7, 1.2] {
            let shape = LognormalShape::from_cv(cv);
            let mut a = SimRng::new(77);
            let mut b = SimRng::new(77);
            for i in 0..10_000 {
                let mean = 0.05 + (i % 50) as f64 * 3.17;
                let x = a.lognormal_mean_cv(mean, cv);
                let y = b.lognormal_shaped(shape, mean);
                assert_eq!(x.to_bits(), y.to_bits(), "cv={cv} i={i}");
            }
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = SimRng::new(23);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[r.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((2.6..3.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn zipf_skews_low_ranks() {
        let mut r = SimRng::new(29);
        let n = 1000u64;
        let mut low = 0usize;
        let trials = 50_000;
        for _ in 0..trials {
            if r.zipf(n, 0.8) < 100 {
                low += 1;
            }
        }
        // With theta=0.8 the low 10% of ranks should collect far more than
        // 10% of the mass.
        assert!(low as f64 / trials as f64 > 0.5, "low fraction {low}");
        // theta=0 falls back to uniform.
        let mut low_u = 0usize;
        for _ in 0..trials {
            if r.zipf(n, 0.0) < 100 {
                low_u += 1;
            }
        }
        let frac = low_u as f64 / trials as f64;
        assert!((0.08..0.12).contains(&frac), "uniform fraction {frac}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(31);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn exp_duration_positive_mean() {
        let mut r = SimRng::new(37);
        let mean = SimDuration::from_secs(7);
        let n = 50_000u64;
        let total: u64 = (0..n).map(|_| r.exp_duration(mean).as_micros()).sum();
        let avg_secs = total as f64 / n as f64 / 1e6;
        assert!((6.7..7.3).contains(&avg_secs), "avg {avg_secs}");
    }
}
