//! Bounded FIFO queues with drop accounting.

use std::collections::VecDeque;

/// Outcome of offering an item to a bounded queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer<T> {
    /// The item was queued.
    Accepted,
    /// The queue was full; the item is handed back.
    Rejected(T),
}

/// A FIFO queue with an optional capacity bound and drop statistics.
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: Option<usize>,
    accepted: u64,
    rejected: u64,
    peak_len: usize,
}

impl<T> BoundedQueue<T> {
    /// Unbounded queue.
    pub fn unbounded() -> Self {
        BoundedQueue {
            items: VecDeque::new(),
            capacity: None,
            accepted: 0,
            rejected: 0,
            peak_len: 0,
        }
    }

    /// Queue holding at most `capacity` items (0 means "reject everything").
    pub fn bounded(capacity: usize) -> Self {
        BoundedQueue {
            items: VecDeque::with_capacity(capacity.min(1024)),
            capacity: Some(capacity),
            accepted: 0,
            rejected: 0,
            peak_len: 0,
        }
    }

    /// Change the capacity bound in place (used when a tuner adjusts an
    /// accept-queue parameter). Existing queued items are never dropped,
    /// even if the new bound is below the current length.
    pub fn set_capacity(&mut self, capacity: Option<usize>) {
        self.capacity = capacity;
    }

    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Offer an item; rejects when full.
    pub fn offer(&mut self, item: T) -> Offer<T> {
        if let Some(cap) = self.capacity {
            if self.items.len() >= cap {
                self.rejected += 1;
                return Offer::Rejected(item);
            }
        }
        self.items.push_back(item);
        self.accepted += 1;
        if self.items.len() > self.peak_len {
            self.peak_len = self.items.len();
        }
        Offer::Accepted
    }

    /// Remove the oldest item.
    pub fn take(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Drain all items and reset counters.
    pub fn reset(&mut self) {
        self.items.clear();
        self.accepted = 0;
        self.rejected = 0;
        self.peak_len = 0;
    }

    /// Iterate items front (oldest) to back.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = BoundedQueue::unbounded();
        for i in 0..5 {
            assert_eq!(q.offer(i), Offer::Accepted);
        }
        let drained: Vec<_> = std::iter::from_fn(|| q.take()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn rejects_when_full() {
        let mut q = BoundedQueue::bounded(2);
        assert_eq!(q.offer('a'), Offer::Accepted);
        assert_eq!(q.offer('b'), Offer::Accepted);
        assert_eq!(q.offer('c'), Offer::Rejected('c'));
        assert_eq!(q.accepted(), 2);
        assert_eq!(q.rejected(), 1);
    }

    #[test]
    fn zero_capacity_rejects_all() {
        let mut q = BoundedQueue::bounded(0);
        assert_eq!(q.offer(1), Offer::Rejected(1));
        assert!(q.is_empty());
    }

    #[test]
    fn shrinking_capacity_keeps_existing_items() {
        let mut q = BoundedQueue::bounded(4);
        for i in 0..4 {
            q.offer(i);
        }
        q.set_capacity(Some(2));
        assert_eq!(q.len(), 4);
        assert_eq!(q.offer(9), Offer::Rejected(9));
        q.take();
        q.take();
        q.take();
        assert_eq!(q.offer(9), Offer::Accepted);
    }

    #[test]
    fn peak_len_tracks_high_water() {
        let mut q = BoundedQueue::unbounded();
        for i in 0..7 {
            q.offer(i);
        }
        for _ in 0..7 {
            q.take();
        }
        q.offer(1);
        assert_eq!(q.peak_len(), 7);
    }

    #[test]
    fn reset_clears_everything() {
        let mut q = BoundedQueue::bounded(3);
        q.offer(1);
        q.offer(2);
        q.offer(3);
        q.offer(4);
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.accepted(), 0);
        assert_eq!(q.rejected(), 0);
        assert_eq!(q.peak_len(), 0);
    }
}
