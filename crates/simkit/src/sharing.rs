//! Processor-sharing (PS) resource.
//!
//! Under PS every job in service progresses simultaneously at rate
//! `capacity / n_jobs` — the classic model of a time-sliced CPU (and of
//! fair-queueing links). Completion times therefore change whenever a job
//! arrives or departs, so unlike [`crate::resource::MultiServer`] the
//! station cannot hand the caller a fixed completion delay; instead the
//! caller asks for the *next* completion after every state change and
//! reschedules (the event-invalidation pattern — pair it with a
//! generation counter on the event).
//!
//! The cluster model keeps the FCFS multi-server approximation for CPUs
//! (documented in DESIGN.md); this discipline is provided for studies
//! where slowdown under sharing matters — e.g. interactive latency tails.

use crate::time::{SimDuration, SimTime};

/// One job in the PS station.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PsJob<T> {
    token: T,
    /// Remaining service demand, in microseconds of *dedicated* service.
    remaining_us: f64,
    arrived: SimTime,
}

/// A processor-sharing station with `capacity` service units.
///
/// All mutating calls take the current time and internally advance every
/// job's remaining work to that instant first.
#[derive(Debug, Clone)]
pub struct ProcessorSharing<T> {
    capacity: f64,
    jobs: Vec<PsJob<T>>,
    last_update: SimTime,
    completed: u64,
    /// Monotone counter incremented on every arrival/departure; callers
    /// stamp scheduled completion events with it and ignore stale ones.
    epoch: u64,
}

impl<T: Copy + PartialEq> ProcessorSharing<T> {
    /// `capacity` = number of service units (e.g. cores). Must be > 0.
    pub fn new(start: SimTime, capacity: f64) -> Self {
        assert!(capacity > 0.0);
        ProcessorSharing {
            capacity,
            jobs: Vec::new(),
            last_update: start,
            completed: 0,
            epoch: 0,
        }
    }

    /// Progress every job to `now`.
    fn advance(&mut self, now: SimTime) {
        let dt = now.since(self.last_update).as_micros() as f64;
        self.last_update = now;
        if dt <= 0.0 || self.jobs.is_empty() {
            return;
        }
        let rate = self.rate_per_job();
        for j in &mut self.jobs {
            j.remaining_us = (j.remaining_us - dt * rate).max(0.0);
        }
    }

    /// Service rate each job currently receives.
    fn rate_per_job(&self) -> f64 {
        if self.jobs.is_empty() {
            0.0
        } else {
            // With fewer jobs than capacity each job runs at full speed
            // (rate 1); beyond that the capacity is shared equally.
            (self.capacity / self.jobs.len() as f64).min(1.0)
        }
    }

    /// A job arrives with `demand` of dedicated service. Returns the new
    /// epoch (schedule the next completion with it).
    pub fn arrive(&mut self, now: SimTime, token: T, demand: SimDuration) -> u64 {
        self.advance(now);
        self.jobs.push(PsJob {
            token,
            remaining_us: demand.as_micros() as f64,
            arrived: now,
        });
        self.epoch += 1;
        self.epoch
    }

    /// When will the next job complete, if nothing else changes?
    /// Returns `(time, token)` of the earliest finisher.
    pub fn next_completion(&self, now: SimTime) -> Option<(SimTime, T)> {
        if self.jobs.is_empty() {
            return None;
        }
        let rate = self.rate_per_job();
        let (job, min_remaining) = self
            .jobs
            .iter()
            .map(|j| (j, j.remaining_us))
            .min_by(|a, b| a.1.total_cmp(&b.1))?;
        let dt = (min_remaining / rate).ceil() as u64;
        Some((now + SimDuration::from_micros(dt), job.token))
    }

    /// Remove the job that has (effectively) finished by `now`. Returns
    /// `(token, sojourn)` of the completed job and the new epoch, or
    /// `None` if no job has actually run out of work (stale event).
    #[allow(clippy::type_complexity)]
    pub fn complete_due(&mut self, now: SimTime) -> Option<((T, SimDuration), u64)> {
        self.advance(now);
        // A job is due when its remaining work has hit (rounding) zero.
        let idx = self
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.remaining_us <= 0.5)
            .min_by(|a, b| a.1.remaining_us.total_cmp(&b.1.remaining_us))
            .map(|(i, _)| i)?;
        let job = self.jobs.swap_remove(idx);
        self.completed += 1;
        self.epoch += 1;
        Some(((job.token, now.since(job.arrived)), self.epoch))
    }

    /// Current epoch (stale-event detection).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn in_service(&self) -> usize {
        self.jobs.len()
    }

    pub fn completed(&self) -> u64 {
        self.completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: fn(u64) -> SimDuration = SimDuration::from_millis;
    const AT: fn(u64) -> SimTime = SimTime::from_millis;

    #[test]
    fn single_job_runs_at_full_speed() {
        let mut ps: ProcessorSharing<u32> = ProcessorSharing::new(SimTime::ZERO, 2.0);
        ps.arrive(SimTime::ZERO, 1, MS(10));
        let (t, tok) = ps.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(tok, 1);
        assert_eq!(t, AT(10), "one job <= capacity runs at rate 1");
        let ((tok, sojourn), _) = ps.complete_due(t).unwrap();
        assert_eq!(tok, 1);
        assert_eq!(sojourn, MS(10));
    }

    #[test]
    fn three_jobs_on_two_cores_share() {
        // 3 equal jobs of 10 ms on capacity 2: each runs at rate 2/3, so
        // all finish at 15 ms.
        let mut ps: ProcessorSharing<u32> = ProcessorSharing::new(SimTime::ZERO, 2.0);
        for i in 0..3 {
            ps.arrive(SimTime::ZERO, i, MS(10));
        }
        let (t, _) = ps.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(t, AT(15));
        // Completing one at 15 ms leaves the others with zero remaining.
        let ((_, sojourn), _) = ps.complete_due(t).unwrap();
        assert_eq!(sojourn, MS(15));
        assert!(ps.complete_due(t).is_some());
        assert!(ps.complete_due(t).is_some());
        assert!(ps.complete_due(t).is_none());
        assert_eq!(ps.completed(), 3);
    }

    #[test]
    fn arrival_slows_the_resident_job() {
        // Job A (20 ms) alone on 1 core; at t=10 job B (5 ms) arrives.
        // A has 10 ms left, now shared: A finishes at 10 + 20 = 30? No:
        // both run at rate 1/2; B (5 ms) finishes first at t = 10 + 10 = 20.
        let mut ps: ProcessorSharing<char> = ProcessorSharing::new(SimTime::ZERO, 1.0);
        ps.arrive(SimTime::ZERO, 'a', MS(20));
        ps.arrive(AT(10), 'b', MS(5));
        let (t, tok) = ps.next_completion(AT(10)).unwrap();
        assert_eq!(tok, 'b');
        assert_eq!(t, AT(20));
        let ((tok, sojourn), _) = ps.complete_due(t).unwrap();
        assert_eq!(tok, 'b');
        assert_eq!(sojourn, MS(10), "b took twice its demand under sharing");
        // A then runs alone: 5 ms of its work remained at t=20.
        let (t2, tok2) = ps.next_completion(t).unwrap();
        assert_eq!(tok2, 'a');
        assert_eq!(t2, AT(25));
    }

    #[test]
    fn stale_completion_is_detected_via_epoch() {
        let mut ps: ProcessorSharing<u32> = ProcessorSharing::new(SimTime::ZERO, 1.0);
        let e1 = ps.arrive(SimTime::ZERO, 1, MS(10));
        // A second arrival invalidates the completion scheduled with e1.
        let e2 = ps.arrive(AT(5), 2, MS(10));
        assert_ne!(e1, e2);
        assert_eq!(ps.epoch(), e2);
        // At the originally scheduled t=10, nothing has finished.
        assert!(ps.complete_due(AT(10)).is_none());
        assert_eq!(ps.in_service(), 2);
    }

    #[test]
    fn empty_station_has_no_completion() {
        let ps: ProcessorSharing<u32> = ProcessorSharing::new(SimTime::ZERO, 4.0);
        assert!(ps.next_completion(SimTime::ZERO).is_none());
        assert_eq!(ps.in_service(), 0);
    }

    #[test]
    fn conservation_under_churn() {
        // Total dedicated work in == total time integrated at the served
        // rates (within rounding): push jobs at staggered times, drain.
        let mut ps: ProcessorSharing<u32> = ProcessorSharing::new(SimTime::ZERO, 2.0);
        for i in 0..10u32 {
            ps.arrive(AT(i as u64 * 3), i, MS(6));
        }
        let mut now = AT(30);
        let mut done = 0;
        let mut guard = 0;
        while ps.in_service() > 0 && guard < 1_000 {
            if let Some((t, _)) = ps.next_completion(now) {
                now = t;
                while ps.complete_due(now).is_some() {
                    done += 1;
                }
            }
            guard += 1;
        }
        assert_eq!(done, 10);
        // 10 jobs × 6 ms at capacity 2 ⇒ last completion no earlier than
        // 30 ms of busy time and no later than a small rounding margin.
        assert!(now >= AT(30), "finished impossibly early: {now}");
        assert!(now <= AT(62), "lost work along the way: {now}");
    }
}
