//! Confidence intervals for simulation output analysis.
//!
//! Two classic tools: Student-t confidence intervals over independent
//! replications (seeds), and the batch-means method for a single long
//! steady-state run whose samples are autocorrelated.

use crate::stats::Welford;

/// Two-sided Student-t critical value for the given degrees of freedom at
/// 95% confidence (table for small df, normal approximation beyond).
pub fn t_critical_95(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[(df - 1) as usize],
        31..=40 => 2.021,
        41..=60 => 2.000,
        61..=120 => 1.980,
        _ => 1.960,
    }
}

/// A mean with its 95% confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    pub mean: f64,
    pub half_width: f64,
    pub samples: u64,
}

impl ConfidenceInterval {
    pub fn lower(&self) -> f64 {
        self.mean - self.half_width
    }

    pub fn upper(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Does the interval contain `x`?
    pub fn contains(&self, x: f64) -> bool {
        (self.lower()..=self.upper()).contains(&x)
    }

    /// Do two intervals overlap? (A quick no-significant-difference test.)
    pub fn overlaps(&self, other: &ConfidenceInterval) -> bool {
        self.lower() <= other.upper() && other.lower() <= self.upper()
    }

    /// Relative half-width (precision of the estimate).
    ///
    /// A near-zero mean is degenerate for a *relative* measure, so it is
    /// resolved by the half-width alone: a degenerate-but-tight interval
    /// (every replication measured ~0, e.g. a crashed configuration's
    /// WIPS) reports `0.0` — perfectly precise, sequential sampling must
    /// stop — while a degenerate wide or undefined (NaN) interval
    /// reports `INFINITY`, never a negative value and never NaN.
    pub fn relative_precision(&self) -> f64 {
        const EPS: f64 = 1e-12;
        if self.half_width.is_nan() || self.mean.is_nan() {
            return f64::INFINITY;
        }
        if self.mean.abs() < EPS {
            return if self.half_width.abs() < EPS {
                0.0
            } else {
                f64::INFINITY
            };
        }
        (self.half_width / self.mean.abs()).abs()
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} ± {:.2}", self.mean, self.half_width)
    }
}

/// 95% CI over independent replications.
pub fn replication_ci(samples: &[f64]) -> ConfidenceInterval {
    let mut w = Welford::new();
    samples.iter().for_each(|&x| w.record(x));
    let n = w.count();
    let half_width = if n < 2 {
        f64::INFINITY
    } else {
        t_critical_95(n - 1) * w.std_dev() / (n as f64).sqrt()
    };
    ConfidenceInterval {
        mean: w.mean(),
        half_width,
        samples: n,
    }
}

/// Batch-means 95% CI for an autocorrelated steady-state series: split
/// into `batches` contiguous batches, treat batch means as independent.
/// Trailing samples that do not fill a batch are dropped.
pub fn batch_means_ci(series: &[f64], batches: usize) -> ConfidenceInterval {
    assert!(batches >= 2, "need at least two batches");
    let batch_len = series.len() / batches;
    if batch_len == 0 {
        return ConfidenceInterval {
            mean: series.iter().sum::<f64>() / series.len().max(1) as f64,
            half_width: f64::INFINITY,
            samples: series.len() as u64,
        };
    }
    let means: Vec<f64> = (0..batches)
        .map(|b| {
            let chunk = &series[b * batch_len..(b + 1) * batch_len];
            chunk.iter().sum::<f64>() / batch_len as f64
        })
        .collect();
    replication_ci(&means)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_table_known_values() {
        assert_eq!(t_critical_95(1), 12.706);
        assert_eq!(t_critical_95(10), 2.228);
        assert_eq!(t_critical_95(30), 2.042);
        assert_eq!(t_critical_95(1_000), 1.960);
        assert!(t_critical_95(0).is_infinite());
        // Monotone decreasing.
        let mut last = f64::INFINITY;
        for df in 1..200 {
            let t = t_critical_95(df);
            assert!(t <= last + 1e-12, "df {df}");
            last = t;
        }
    }

    #[test]
    fn replication_ci_hand_computed() {
        // Samples 1..5: mean 3, sd sqrt(2.5), n=5, t(4)=2.776.
        let ci = replication_ci(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((ci.mean - 3.0).abs() < 1e-12);
        let expected = 2.776 * (2.5f64).sqrt() / (5f64).sqrt();
        assert!((ci.half_width - expected).abs() < 1e-9);
        assert!(ci.contains(3.0));
        assert!(!ci.contains(10.0));
    }

    #[test]
    fn single_sample_is_unbounded() {
        let ci = replication_ci(&[7.0]);
        assert_eq!(ci.mean, 7.0);
        assert!(ci.half_width.is_infinite());
    }

    #[test]
    fn overlap_detection() {
        let a = ConfidenceInterval {
            mean: 10.0,
            half_width: 2.0,
            samples: 5,
        };
        let b = ConfidenceInterval {
            mean: 13.0,
            half_width: 2.0,
            samples: 5,
        };
        let c = ConfidenceInterval {
            mean: 20.0,
            half_width: 1.0,
            samples: 5,
        };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn batch_means_tightens_with_signal_stability() {
        // A flat series gives a near-zero half-width.
        let flat = vec![5.0; 100];
        let ci = batch_means_ci(&flat, 10);
        assert!((ci.mean - 5.0).abs() < 1e-12);
        assert!(ci.half_width < 1e-9);
        // An alternating series has wide batch variance at odd batch sizes.
        let noisy: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 0.0 } else { 10.0 })
            .collect();
        let ci2 = batch_means_ci(&noisy, 10);
        assert!((ci2.mean - 5.0).abs() < 1e-9);
    }

    #[test]
    fn batch_means_short_series_is_unbounded() {
        let ci = batch_means_ci(&[1.0], 2);
        assert!(ci.half_width.is_infinite());
    }

    #[test]
    fn display_and_precision() {
        let ci = ConfidenceInterval {
            mean: 100.0,
            half_width: 5.0,
            samples: 10,
        };
        assert_eq!(format!("{ci}"), "100.00 ± 5.00");
        assert!((ci.relative_precision() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn zero_mean_precision_resolves_by_half_width() {
        // Regression: an all-zeros sample (a crashed configuration
        // measured over replications) used to report INFINITY, so
        // sequential sampling burnt its whole replication budget on a
        // sample that could not get any more precise.
        let dead = replication_ci(&[0.0, 0.0, 0.0]);
        assert_eq!(dead.mean, 0.0);
        assert_eq!(dead.half_width, 0.0);
        assert_eq!(dead.relative_precision(), 0.0);
        // A zero mean with genuine spread is still unbounded: the
        // relative measure is undefined, not satisfied.
        let mixed = replication_ci(&[-5.0, 5.0]);
        assert!(mixed.mean.abs() < 1e-12);
        assert!(mixed.relative_precision().is_infinite());
        // NaN anywhere never reports precise.
        let nan = ConfidenceInterval {
            mean: f64::NAN,
            half_width: 1.0,
            samples: 3,
        };
        assert!(nan.relative_precision().is_infinite());
        let nan_hw = ConfidenceInterval {
            mean: 4.0,
            half_width: f64::NAN,
            samples: 3,
        };
        assert!(nan_hw.relative_precision().is_infinite());
    }
}
