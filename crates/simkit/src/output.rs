//! Simulation output analysis: initialization-bias detection.
//!
//! Classic tools for deciding how much of a time series is warm-up
//! transient: lagged autocorrelation (how dependent successive iteration
//! measurements are) and the MSER truncation rule (White 1997), which
//! picks the cut point minimizing the marginal standard error of the
//! remaining observations. The experiment harness uses fixed warm-up
//! windows calibrated per scenario; these functions are the tooling for
//! validating those choices.

/// Lag-`k` sample autocorrelation of `series` (biased estimator, the
/// standard one for output analysis). Returns 0 for degenerate input.
pub fn autocorrelation(series: &[f64], lag: usize) -> f64 {
    let n = series.len();
    if n < 2 || lag >= n {
        return 0.0;
    }
    let mean = series.iter().sum::<f64>() / n as f64;
    let denom: f64 = series.iter().map(|x| (x - mean) * (x - mean)).sum();
    if denom <= 0.0 {
        return 0.0;
    }
    let num: f64 = series[..n - lag]
        .iter()
        .zip(&series[lag..])
        .map(|(a, b)| (a - mean) * (b - mean))
        .sum();
    num / denom
}

/// MSER truncation: the prefix length `d` (0 ≤ d ≤ n/2) minimizing
/// `variance(series[d..]) / (n - d)^2`. Observations before the returned
/// index should be discarded as initialization bias.
pub fn mser_truncation(series: &[f64]) -> usize {
    let n = series.len();
    if n < 4 {
        return 0;
    }
    // Suffix sums for O(n) evaluation of all candidate cut points.
    let mut suffix_sum = vec![0.0; n + 1];
    let mut suffix_sq = vec![0.0; n + 1];
    for i in (0..n).rev() {
        suffix_sum[i] = suffix_sum[i + 1] + series[i];
        suffix_sq[i] = suffix_sq[i + 1] + series[i] * series[i];
    }
    let mut best_d = 0;
    let mut best_score = f64::INFINITY;
    for d in 0..=n / 2 {
        let m = (n - d) as f64;
        let mean = suffix_sum[d] / m;
        let var = (suffix_sq[d] / m - mean * mean).max(0.0);
        let score = var / (m * m);
        if score < best_score {
            best_score = score;
            best_d = d;
        }
    }
    best_d
}

/// Effective sample size of an autocorrelated series under an AR(1)
/// approximation: `n (1 - ρ₁) / (1 + ρ₁)`, clamped to `[1, n]`.
pub fn effective_sample_size(series: &[f64]) -> f64 {
    let n = series.len();
    if n < 2 {
        return n as f64;
    }
    let rho = autocorrelation(series, 1).clamp(-0.99, 0.99);
    (n as f64 * (1.0 - rho) / (1.0 + rho)).clamp(1.0, n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn autocorrelation_of_iid_noise_is_small() {
        let mut rng = SimRng::new(3);
        let series: Vec<f64> = (0..5_000).map(|_| rng.standard_normal()).collect();
        let r1 = autocorrelation(&series, 1);
        assert!(r1.abs() < 0.05, "rho1 = {r1}");
    }

    #[test]
    fn autocorrelation_of_ar1_is_rho() {
        let mut rng = SimRng::new(5);
        let rho = 0.8;
        let mut x = 0.0;
        let series: Vec<f64> = (0..20_000)
            .map(|_| {
                x = rho * x + rng.standard_normal();
                x
            })
            .collect();
        let r1 = autocorrelation(&series, 1);
        assert!((r1 - rho).abs() < 0.05, "rho1 = {r1}");
        // Lag-2 correlation of AR(1) is rho^2.
        let r2 = autocorrelation(&series, 2);
        assert!((r2 - rho * rho).abs() < 0.07, "rho2 = {r2}");
    }

    #[test]
    fn autocorrelation_degenerate_inputs() {
        assert_eq!(autocorrelation(&[], 1), 0.0);
        assert_eq!(autocorrelation(&[1.0], 0), 0.0);
        assert_eq!(autocorrelation(&[5.0; 10], 1), 0.0); // zero variance
        assert_eq!(autocorrelation(&[1.0, 2.0], 5), 0.0); // lag too large
    }

    #[test]
    fn mser_finds_the_transient() {
        // 50 biased warm-up points ramping into a stationary level.
        let mut rng = SimRng::new(7);
        let mut series = Vec::new();
        for i in 0..50 {
            series.push(i as f64 * 2.0 + rng.normal(0.0, 1.0)); // ramp 0..100
        }
        for _ in 0..450 {
            series.push(100.0 + rng.normal(0.0, 1.0)); // steady state
        }
        let d = mser_truncation(&series);
        assert!(
            (35..=80).contains(&d),
            "cut point {d} should land near the end of the 50-point ramp"
        );
    }

    #[test]
    fn mser_keeps_stationary_series_whole() {
        let mut rng = SimRng::new(11);
        let series: Vec<f64> = (0..500).map(|_| 10.0 + rng.normal(0.0, 1.0)).collect();
        let d = mser_truncation(&series);
        // No transient: the cut should stay near the start.
        assert!(d < 100, "cut {d} on a stationary series");
    }

    #[test]
    fn mser_short_series() {
        assert_eq!(mser_truncation(&[]), 0);
        assert_eq!(mser_truncation(&[1.0, 2.0, 3.0]), 0);
    }

    #[test]
    fn effective_sample_size_shrinks_with_correlation() {
        let mut rng = SimRng::new(13);
        let iid: Vec<f64> = (0..2_000).map(|_| rng.standard_normal()).collect();
        let ess_iid = effective_sample_size(&iid);
        assert!(ess_iid > 1_500.0, "iid ESS {ess_iid}");

        let mut x = 0.0;
        let ar: Vec<f64> = (0..2_000)
            .map(|_| {
                x = 0.9 * x + rng.standard_normal();
                x
            })
            .collect();
        let ess_ar = effective_sample_size(&ar);
        // AR(1) with rho 0.9: ESS ~ n/19.
        assert!(ess_ar < 400.0, "AR ESS {ess_ar}");
        assert!(ess_ar >= 1.0);
    }
}
