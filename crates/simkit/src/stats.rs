//! Streaming statistics used by the simulator and the experiment harness.
//!
//! Everything here is single-pass and allocation-free in steady state,
//! following the HPC guidance to keep hot-loop bookkeeping cheap.

use crate::time::{SimDuration, SimTime};

/// Welford online mean/variance accumulator.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn reset(&mut self) {
        *self = Welford::new();
    }
}

/// Time-weighted average of a piecewise-constant signal (queue lengths,
/// busy-server counts). Integrates `value * dt` between updates.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    area: f64,
    start: SimTime,
    peak: f64,
}

impl TimeWeighted {
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            last_time: start,
            last_value: initial,
            area: 0.0,
            start,
            peak: initial,
        }
    }

    /// Record that the signal changed to `value` at time `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        let dt = now.since(self.last_time).as_secs_f64();
        self.area += self.last_value * dt;
        self.last_time = now;
        self.last_value = value;
        if value > self.peak {
            self.peak = value;
        }
    }

    /// Add `delta` to the current value at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.last_value + delta;
        self.set(now, v);
    }

    pub fn current(&self) -> f64 {
        self.last_value
    }

    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-average over `[start, now]`.
    pub fn average(&self, now: SimTime) -> f64 {
        let span = now.since(self.start).as_secs_f64();
        if span <= 0.0 {
            return self.last_value;
        }
        let pending = self.last_value * now.since(self.last_time).as_secs_f64();
        (self.area + pending) / span
    }

    /// Restart the averaging window at `now`, keeping the current value.
    pub fn reset_window(&mut self, now: SimTime) {
        let v = self.last_value;
        *self = TimeWeighted::new(now, v);
    }
}

/// Busy-time tracker for a resource with a fixed capacity: utilization is
/// (integral of busy servers) / (capacity * window).
#[derive(Debug, Clone)]
pub struct UtilizationTracker {
    busy: TimeWeighted,
    capacity: f64,
}

impl UtilizationTracker {
    pub fn new(start: SimTime, capacity: f64) -> Self {
        UtilizationTracker {
            busy: TimeWeighted::new(start, 0.0),
            capacity: capacity.max(1e-9),
        }
    }

    pub fn set_busy(&mut self, now: SimTime, busy: f64) {
        self.busy.set(now, busy);
    }

    pub fn add_busy(&mut self, now: SimTime, delta: f64) {
        self.busy.add(now, delta);
    }

    pub fn busy_now(&self) -> f64 {
        self.busy.current()
    }

    /// Utilization in [0, ~1] over the current window.
    pub fn utilization(&self, now: SimTime) -> f64 {
        (self.busy.average(now) / self.capacity).max(0.0)
    }

    pub fn reset_window(&mut self, now: SimTime) {
        self.busy.reset_window(now);
    }

    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Change the capacity (e.g. node reconfigured); restarts the window.
    pub fn set_capacity(&mut self, now: SimTime, capacity: f64) {
        self.capacity = capacity.max(1e-9);
        self.busy.reset_window(now);
    }
}

/// Fixed-bin histogram over durations, with approximate percentile queries.
#[derive(Debug, Clone)]
pub struct DurationHistogram {
    bin_width: SimDuration,
    bins: Vec<u64>,
    overflow: u64,
    count: u64,
    sum_micros: u128,
}

impl DurationHistogram {
    /// `bin_width` granularity, `num_bins` regular bins plus one overflow.
    pub fn new(bin_width: SimDuration, num_bins: usize) -> Self {
        assert!(!bin_width.is_zero() && num_bins > 0);
        DurationHistogram {
            bin_width,
            bins: vec![0; num_bins],
            overflow: 0,
            count: 0,
            sum_micros: 0,
        }
    }

    pub fn record(&mut self, d: SimDuration) {
        let idx = (d.as_micros() / self.bin_width.as_micros()) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.count += 1;
        self.sum_micros += d.as_micros() as u128;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_micros((self.sum_micros / self.count as u128) as u64)
        }
    }

    /// Approximate percentile (`q` in `[0, 1]`): upper edge of the bin holding
    /// the q-quantile observation. Overflowed observations report the
    /// histogram's upper bound.
    pub fn percentile(&self, q: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return SimDuration::from_micros(self.bin_width.as_micros() * (i as u64 + 1));
            }
        }
        SimDuration::from_micros(self.bin_width.as_micros() * self.bins.len() as u64)
    }

    pub fn reset(&mut self) {
        self.bins.iter_mut().for_each(|b| *b = 0);
        self.overflow = 0;
        self.count = 0;
        self.sum_micros = 0;
    }

    pub fn overflow_count(&self) -> u64 {
        self.overflow
    }
}

/// A windowed throughput counter: events per second over a window.
#[derive(Debug, Clone)]
pub struct ThroughputCounter {
    window_start: SimTime,
    events: u64,
}

impl ThroughputCounter {
    pub fn new(start: SimTime) -> Self {
        ThroughputCounter {
            window_start: start,
            events: 0,
        }
    }

    pub fn record(&mut self) {
        self.events += 1;
    }

    pub fn record_n(&mut self, n: u64) {
        self.events += n;
    }

    pub fn events(&self) -> u64 {
        self.events
    }

    /// Events per second of simulated time since the window start.
    pub fn rate(&self, now: SimTime) -> f64 {
        let span = now.since(self.window_start).as_secs_f64();
        if span <= 0.0 {
            0.0
        } else {
            self.events as f64 / span
        }
    }

    pub fn reset(&mut self, now: SimTime) {
        self.window_start = now;
        self.events = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_known_values() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.record(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4.0; sample variance = 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn welford_empty_is_zero() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), 0.0);
        assert_eq!(w.max(), 0.0);
    }

    #[test]
    fn welford_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let mut whole = Welford::new();
        xs.iter().for_each(|&x| whole.record(x));
        let mut a = Welford::new();
        let mut b = Welford::new();
        xs[..37].iter().for_each(|&x| a.record(x));
        xs[37..].iter().for_each(|&x| b.record(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.set(SimTime::from_secs(10), 4.0); // 0 for 10s
        tw.set(SimTime::from_secs(20), 2.0); // 4 for 10s
                                             // 2 for 10s -> query at t=30
        let avg = tw.average(SimTime::from_secs(30));
        assert!((avg - (0.0 * 10.0 + 4.0 * 10.0 + 2.0 * 10.0) / 30.0).abs() < 1e-9);
        assert_eq!(tw.peak(), 4.0);
        assert_eq!(tw.current(), 2.0);
    }

    #[test]
    fn time_weighted_window_reset() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 1.0);
        tw.set(SimTime::from_secs(5), 3.0);
        tw.reset_window(SimTime::from_secs(10));
        assert_eq!(tw.current(), 3.0);
        let avg = tw.average(SimTime::from_secs(20));
        assert!((avg - 3.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_tracker_basic() {
        let mut u = UtilizationTracker::new(SimTime::ZERO, 2.0);
        u.add_busy(SimTime::ZERO, 2.0); // both servers busy from t=0
        u.add_busy(SimTime::from_secs(5), -1.0); // one frees at t=5
        let util = u.utilization(SimTime::from_secs(10));
        // busy-integral = 2*5 + 1*5 = 15; capacity*window = 20.
        assert!((util - 0.75).abs() < 1e-9);
        assert_eq!(u.busy_now(), 1.0);
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = DurationHistogram::new(SimDuration::from_millis(1), 100);
        for ms in 1..=100u64 {
            h.record(SimDuration::from_millis(ms) - SimDuration::from_micros(1));
        }
        assert_eq!(h.count(), 100);
        let p50 = h.percentile(0.5);
        assert_eq!(p50, SimDuration::from_millis(50));
        let p99 = h.percentile(0.99);
        assert_eq!(p99, SimDuration::from_millis(99));
    }

    #[test]
    fn histogram_overflow_and_reset() {
        let mut h = DurationHistogram::new(SimDuration::from_millis(1), 10);
        h.record(SimDuration::from_secs(5));
        assert_eq!(h.overflow_count(), 1);
        assert_eq!(h.count(), 1);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.overflow_count(), 0);
        assert_eq!(h.percentile(0.5), SimDuration::ZERO);
    }

    #[test]
    fn throughput_counter_rate() {
        let mut t = ThroughputCounter::new(SimTime::ZERO);
        t.record_n(500);
        assert!((t.rate(SimTime::from_secs(10)) - 50.0).abs() < 1e-9);
        t.reset(SimTime::from_secs(10));
        assert_eq!(t.events(), 0);
        assert_eq!(t.rate(SimTime::from_secs(10)), 0.0);
    }
}
