//! Multi-server FCFS resources.
//!
//! A [`MultiServer`] models `c` identical servers (CPU cores, disk arms,
//! worker threads) with a FIFO wait queue. The resource is a passive data
//! structure: the owning [`crate::engine::Model`] asks it to admit jobs and
//! is told when a job *starts*, so the model can schedule the matching
//! completion event. This keeps the resource reusable across every tier of
//! the cluster simulator.

use crate::queue::{BoundedQueue, Offer};
use crate::stats::{UtilizationTracker, Welford};
use crate::time::{SimDuration, SimTime};

/// Outcome of offering a job to a [`MultiServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// A server was free; the job starts now. Schedule its completion after
    /// its (possibly slowed-down) service time.
    Started,
    /// All servers busy; the job waits in the FIFO queue.
    Enqueued,
    /// The wait queue was full; the job is dropped.
    Rejected,
}

/// A waiting job: opaque token plus its service demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Waiting<T> {
    job: T,
    demand: SimDuration,
    enqueued_at: SimTime,
}

/// A job released from the queue when a server frees up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dispatched<T> {
    /// The job token handed back to the model.
    pub job: T,
    /// Its service demand, echoed back for completion scheduling.
    pub demand: SimDuration,
    /// How long it waited in the queue.
    pub waited: SimDuration,
}

/// `c`-server FCFS station with a bounded FIFO queue and utilization
/// accounting.
#[derive(Debug, Clone)]
pub struct MultiServer<T> {
    servers: u32,
    busy: u32,
    queue: BoundedQueue<Waiting<T>>,
    util: UtilizationTracker,
    wait: Welford,
    started: u64,
    completed: u64,
}

impl<T> MultiServer<T> {
    /// `servers` parallel servers; `queue_cap = None` for an unbounded
    /// queue. `servers` must be at least 1.
    pub fn new(start: SimTime, servers: u32, queue_cap: Option<usize>) -> Self {
        assert!(servers >= 1, "a station needs at least one server");
        MultiServer {
            servers,
            busy: 0,
            queue: match queue_cap {
                Some(c) => BoundedQueue::bounded(c),
                None => BoundedQueue::unbounded(),
            },
            util: UtilizationTracker::new(start, servers as f64),
            wait: Welford::new(),
            started: 0,
            completed: 0,
        }
    }

    /// Offer a job with the given service demand.
    pub fn offer(&mut self, now: SimTime, job: T, demand: SimDuration) -> Admission {
        if self.busy < self.servers {
            self.busy += 1;
            self.util.set_busy(now, self.busy as f64);
            self.started += 1;
            self.wait.record(0.0);
            Admission::Started
        } else {
            match self.queue.offer(Waiting {
                job,
                demand,
                enqueued_at: now,
            }) {
                Offer::Accepted => Admission::Enqueued,
                Offer::Rejected(_) => Admission::Rejected,
            }
        }
    }

    /// A job finished on one server. Frees the server and, if anyone is
    /// waiting, dispatches the next job (the caller must schedule its
    /// completion).
    pub fn complete(&mut self, now: SimTime) -> Option<Dispatched<T>> {
        debug_assert!(self.busy > 0, "complete() with no busy server");
        self.completed += 1;
        if let Some(w) = self.queue.take() {
            // Server goes straight to the next job; busy count unchanged.
            let waited = now.since(w.enqueued_at);
            self.wait.record(waited.as_secs_f64());
            self.started += 1;
            Some(Dispatched {
                job: w.job,
                demand: w.demand,
                waited,
            })
        } else {
            self.busy = self.busy.saturating_sub(1);
            self.util.set_busy(now, self.busy as f64);
            None
        }
    }

    /// Resize the station (tuner changed a thread-pool parameter). Running
    /// jobs are unaffected; if servers shrink below the busy count the
    /// excess drains as jobs complete. Growing dispatches queued jobs — the
    /// returned vector holds jobs the caller must now schedule completions
    /// for.
    pub fn set_servers(&mut self, now: SimTime, servers: u32) -> Vec<Dispatched<T>> {
        assert!(servers >= 1);
        self.servers = servers;
        self.util.set_capacity(now, servers as f64);
        self.util.set_busy(now, self.busy.min(self.servers) as f64);
        let mut dispatched = Vec::new();
        while self.busy < self.servers {
            match self.queue.take() {
                Some(w) => {
                    self.busy += 1;
                    let waited = now.since(w.enqueued_at);
                    self.wait.record(waited.as_secs_f64());
                    self.started += 1;
                    dispatched.push(Dispatched {
                        job: w.job,
                        demand: w.demand,
                        waited,
                    });
                }
                None => break,
            }
        }
        self.util.set_busy(now, self.busy as f64);
        dispatched
    }

    /// Change the queue bound (tuner changed an accept-count parameter).
    pub fn set_queue_cap(&mut self, cap: Option<usize>) {
        self.queue.set_capacity(cap);
    }

    pub fn servers(&self) -> u32 {
        self.servers
    }

    pub fn busy(&self) -> u32 {
        self.busy
    }

    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    pub fn rejected(&self) -> u64 {
        self.queue.rejected()
    }

    pub fn started(&self) -> u64 {
        self.started
    }

    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Utilization of the station over the current window.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.util.utilization(now)
    }

    /// Mean queueing delay (seconds) of jobs started so far.
    /// Publish this resource's busy-time and queue state into `registry`
    /// under `prefix`: utilization/busy/queue gauges plus throughput
    /// counters. Counters accumulate across calls on a shared registry.
    pub fn publish_metrics(&self, registry: &obs::Registry, prefix: &str, now: SimTime) {
        registry
            .gauge(&format!("{prefix}.utilization"))
            .set(self.utilization(now));
        registry
            .gauge(&format!("{prefix}.busy"))
            .set(self.busy() as f64);
        registry
            .histogram(&format!("{prefix}.queue_len"))
            .record(self.queue_len() as f64);
        registry
            .counter(&format!("{prefix}.completed"))
            .add(self.completed());
        registry
            .counter(&format!("{prefix}.rejected"))
            .add(self.rejected());
    }

    pub fn mean_wait_secs(&self) -> f64 {
        self.wait.mean()
    }

    /// Restart the utilization window (iteration boundary).
    pub fn reset_window(&mut self, now: SimTime) {
        self.util.reset_window(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: fn(u64) -> SimTime = SimTime::from_secs;
    const D: fn(u64) -> SimDuration = SimDuration::from_secs;

    #[test]
    fn starts_until_all_servers_busy() {
        let mut m: MultiServer<u32> = MultiServer::new(SimTime::ZERO, 2, None);
        assert_eq!(m.offer(S(0), 1, D(5)), Admission::Started);
        assert_eq!(m.offer(S(0), 2, D(5)), Admission::Started);
        assert_eq!(m.offer(S(0), 3, D(5)), Admission::Enqueued);
        assert_eq!(m.busy(), 2);
        assert_eq!(m.queue_len(), 1);
    }

    #[test]
    fn complete_dispatches_waiter_fifo() {
        let mut m: MultiServer<u32> = MultiServer::new(SimTime::ZERO, 1, None);
        m.offer(S(0), 1, D(1));
        m.offer(S(0), 2, D(2));
        m.offer(S(0), 3, D(3));
        let d = m.complete(S(1)).expect("waiter dispatched");
        assert_eq!(d.job, 2);
        assert_eq!(d.demand, D(2));
        assert_eq!(d.waited, D(1));
        let d = m.complete(S(3)).expect("waiter dispatched");
        assert_eq!(d.job, 3);
        assert!(m.complete(S(6)).is_none());
        assert_eq!(m.busy(), 0);
        assert_eq!(m.completed(), 3);
    }

    #[test]
    fn bounded_queue_rejects() {
        let mut m: MultiServer<u32> = MultiServer::new(SimTime::ZERO, 1, Some(1));
        assert_eq!(m.offer(S(0), 1, D(1)), Admission::Started);
        assert_eq!(m.offer(S(0), 2, D(1)), Admission::Enqueued);
        assert_eq!(m.offer(S(0), 3, D(1)), Admission::Rejected);
        assert_eq!(m.rejected(), 1);
    }

    #[test]
    fn utilization_integrates_busy_servers() {
        let mut m: MultiServer<u32> = MultiServer::new(SimTime::ZERO, 2, None);
        m.offer(S(0), 1, D(10)); // one busy from 0..10
        m.complete(S(10));
        let u = m.utilization(S(10));
        assert!((u - 0.5).abs() < 1e-9, "u = {u}");
    }

    #[test]
    fn grow_dispatches_queued_jobs() {
        let mut m: MultiServer<u32> = MultiServer::new(SimTime::ZERO, 1, None);
        m.offer(S(0), 1, D(5));
        m.offer(S(0), 2, D(5));
        m.offer(S(0), 3, D(5));
        let dispatched = m.set_servers(S(2), 3);
        assert_eq!(dispatched.len(), 2);
        assert_eq!(dispatched[0].job, 2);
        assert_eq!(dispatched[1].job, 3);
        assert_eq!(m.busy(), 3);
        assert_eq!(m.queue_len(), 0);
    }

    #[test]
    fn shrink_drains_gracefully() {
        let mut m: MultiServer<u32> = MultiServer::new(SimTime::ZERO, 3, None);
        for j in 0..3 {
            m.offer(S(0), j, D(10));
        }
        let dispatched = m.set_servers(S(1), 1);
        assert!(dispatched.is_empty());
        assert_eq!(m.busy(), 3); // over-busy until completions drain
        m.complete(S(2));
        m.complete(S(3));
        assert_eq!(m.busy(), 1);
        // Now a new offer must queue: only 1 server and it is busy.
        assert_eq!(m.offer(S(4), 9, D(1)), Admission::Enqueued);
    }

    #[test]
    fn mean_wait_counts_immediate_starts_as_zero() {
        let mut m: MultiServer<u32> = MultiServer::new(SimTime::ZERO, 1, None);
        m.offer(S(0), 1, D(4));
        m.offer(S(0), 2, D(1));
        m.complete(S(4)); // job 2 waited 4s
        assert!((m.mean_wait_secs() - 2.0).abs() < 1e-9);
    }
}
