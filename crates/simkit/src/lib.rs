//! # simkit — deterministic discrete-event simulation engine
//!
//! The substrate underneath the HPDC'04 reproduction: a compact,
//! allocation-conscious discrete-event kernel with
//!
//! * integer-microsecond [`time::SimTime`] (bit-exact reproducibility),
//! * a FIFO-tie-breaking [`calendar::EventCalendar`],
//! * an event-scheduling [`engine::Simulation`] driver generic over a
//!   user-defined [`engine::Model`],
//! * from-scratch seeded PRNG streams ([`rng::SimRng`], xoshiro256** +
//!   SplitMix64) with the distributions the workload models need,
//! * passive queueing building blocks ([`queue::BoundedQueue`],
//!   [`resource::MultiServer`]), and
//! * single-pass statistics ([`stats`]).
//!
//! Nothing here knows about web clusters or tuning; it is a general DES
//! toolkit, tested independently.
//!
//! ## Quick example
//!
//! ```
//! use simkit::prelude::*;
//!
//! /// An M/M/1 queue driven to a horizon.
//! struct Mm1 {
//!     rng: SimRng,
//!     station: MultiServer<u64>,
//!     served: u64,
//! }
//!
//! enum Ev { Arrival, Departure }
//!
//! impl Model for Mm1 {
//!     type Event = Ev;
//!     fn handle(&mut self, sched: &mut Scheduler<Ev>, ev: Ev) {
//!         match ev {
//!             Ev::Arrival => {
//!                 let service = self.rng.exp_duration(SimDuration::from_millis(80));
//!                 if let Admission::Started = self.station.offer(sched.now(), 0, service) {
//!                     sched.after(service, Ev::Departure);
//!                 }
//!                 let next = self.rng.exp_duration(SimDuration::from_millis(100));
//!                 sched.after(next, Ev::Arrival);
//!             }
//!             Ev::Departure => {
//!                 self.served += 1;
//!                 if let Some(d) = self.station.complete(sched.now()) {
//!                     sched.after(d.demand, Ev::Departure);
//!                 }
//!             }
//!         }
//!     }
//! }
//!
//! let model = Mm1 {
//!     rng: SimRng::new(1),
//!     station: MultiServer::new(SimTime::ZERO, 1, None),
//!     served: 0,
//! };
//! let mut sim = Simulation::new(model);
//! sim.schedule_at(SimTime::ZERO, Ev::Arrival);
//! sim.run_until(SimTime::from_secs(60));
//! assert!(sim.model().served > 300);
//! ```

// Library code must surface failures as typed errors, never panic;
// test modules (cfg(test)) are exempt. CI enforces this with a clippy
// step dedicated to these crates.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod calendar;
pub mod calqueue;
pub mod ci;
pub mod engine;
pub mod hash;
pub mod output;
pub mod queue;
pub mod resource;
pub mod rng;
pub mod sharing;
pub mod stats;
pub mod time;

/// One-stop imports for model authors.
pub mod prelude {
    pub use crate::calendar::EventCalendar;
    pub use crate::ci::{batch_means_ci, replication_ci, ConfidenceInterval};
    pub use crate::engine::{Model, Scheduler, Simulation, StopReason};
    pub use crate::queue::{BoundedQueue, Offer};
    pub use crate::resource::{Admission, Dispatched, MultiServer};
    pub use crate::rng::SimRng;
    pub use crate::stats::{
        DurationHistogram, ThroughputCounter, TimeWeighted, UtilizationTracker, Welford,
    };
    pub use crate::time::{SimDuration, SimTime};
}
