//! The simulation driver.
//!
//! A [`Model`] owns all simulation state and handles one event at a time.
//! The engine owns the clock and the calendar; the model schedules follow-up
//! events through the [`Scheduler`] handle passed into each callback. This
//! event-scheduling architecture (rather than coroutine processes) keeps the
//! hot loop a plain indexed dispatch with zero allocation per event.

use crate::calqueue::CalendarQueue;
use crate::time::{SimDuration, SimTime};

/// A discrete-event model: all world state plus an event handler.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Handle `event` occurring at `sched.now()`. The model may schedule
    /// any number of follow-up events.
    fn handle(&mut self, sched: &mut Scheduler<Self::Event>, event: Self::Event);
}

/// Scheduling handle passed to the model: current time plus the calendar.
///
/// The calendar is a [`CalendarQueue`] — amortised O(1) schedule/pop on the
/// steady-state workload — with ordering identical to the reference heap
/// (`crate::calendar::EventCalendar`), so seeded runs are bit-for-bit
/// reproducible across either backing store.
#[derive(Debug)]
pub struct Scheduler<E> {
    now: SimTime,
    calendar: CalendarQueue<E>,
    events_executed: u64,
    max_pending: usize,
}

impl<E> Scheduler<E> {
    fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            calendar: CalendarQueue::new(),
            events_executed: 0,
            max_pending: 0,
        }
    }

    #[inline]
    fn note_depth(&mut self) {
        if self.calendar.len() > self.max_pending {
            self.max_pending = self.calendar.len();
        }
    }

    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` after `delay`.
    #[inline]
    pub fn after(&mut self, delay: SimDuration, event: E) {
        self.calendar.schedule(self.now + delay, event);
        self.note_depth();
    }

    /// Schedule `event` at the current instant (runs after already-pending
    /// same-time events — FIFO).
    #[inline]
    pub fn immediately(&mut self, event: E) {
        self.calendar.schedule(self.now, event);
        self.note_depth();
    }

    /// Schedule `event` at an absolute time. Panics (debug) if in the past.
    #[inline]
    pub fn at(&mut self, time: SimTime, event: E) {
        debug_assert!(time >= self.now, "scheduling into the past");
        self.calendar.schedule(time.max(self.now), event);
        self.note_depth();
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.calendar.len()
    }

    /// Total events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.events_executed
    }

    /// High-water mark of the calendar depth since the start.
    pub fn max_pending(&self) -> usize {
        self.max_pending
    }
}

/// Why a [`Simulation::run_until`] call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The horizon was reached; pending events beyond it remain queued.
    HorizonReached,
    /// The calendar drained before the horizon.
    CalendarEmpty,
    /// The event budget was exhausted (runaway-model guard).
    EventBudgetExhausted,
}

/// A running simulation: a model plus the engine state.
#[derive(Debug)]
pub struct Simulation<M: Model> {
    model: M,
    sched: Scheduler<M::Event>,
    event_budget: u64,
}

impl<M: Model> Simulation<M> {
    /// Create a simulation at t = 0. `init` may schedule the first events.
    pub fn new(model: M) -> Self {
        Simulation {
            model,
            sched: Scheduler::new(),
            event_budget: u64::MAX,
        }
    }

    /// Guard against runaway models: abort `run_until` after this many
    /// events. Default is unlimited.
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// Access the model (e.g. to collect results).
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the model (e.g. to reconfigure between phases).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now
    }

    /// Total events executed.
    pub fn events_executed(&self) -> u64 {
        self.sched.events_executed
    }

    /// High-water mark of the calendar depth since the start.
    pub fn max_pending(&self) -> usize {
        self.sched.max_pending
    }

    /// Publish engine counters into `registry` under `prefix` (e.g.
    /// `prefix = "sim"` yields `sim.events`, `sim.calendar_depth_max`).
    /// Call once per run; the events counter accumulates across calls so a
    /// shared registry totals a whole tuning session.
    pub fn publish_metrics(&self, registry: &obs::Registry, prefix: &str) {
        registry
            .counter(&format!("{prefix}.events"))
            .add(self.sched.events_executed);
        registry
            .gauge(&format!("{prefix}.calendar_depth_max"))
            .set_max(self.sched.max_pending as f64);
        registry
            .histogram(&format!("{prefix}.events_per_run"))
            .record(self.sched.events_executed as f64);
    }

    /// Schedule an event from outside the model (setup, phase boundaries).
    pub fn schedule_at(&mut self, time: SimTime, event: M::Event) {
        self.sched.at(time, event);
    }

    pub fn schedule_after(&mut self, delay: SimDuration, event: M::Event) {
        self.sched.after(delay, event);
    }

    /// Execute exactly one event, if any. Returns the event time.
    pub fn step(&mut self) -> Option<SimTime> {
        let (time, event) = self.sched.calendar.pop()?;
        debug_assert!(time >= self.sched.now, "calendar regressed");
        self.sched.now = time;
        self.sched.events_executed += 1;
        self.model.handle(&mut self.sched, event);
        Some(time)
    }

    /// Run until the clock would pass `horizon` (events exactly at the
    /// horizon ARE executed), the calendar drains, or the event budget is
    /// exhausted. On `HorizonReached` the clock is advanced to the horizon.
    pub fn run_until(&mut self, horizon: SimTime) -> StopReason {
        let mut remaining = self.event_budget.saturating_sub(self.sched.events_executed);
        loop {
            match self.sched.calendar.peek_time() {
                None => return StopReason::CalendarEmpty,
                Some(t) if t > horizon => {
                    self.sched.now = horizon.max(self.sched.now);
                    return StopReason::HorizonReached;
                }
                Some(_) => {
                    if remaining == 0 {
                        return StopReason::EventBudgetExhausted;
                    }
                    remaining -= 1;
                    self.step();
                }
            }
        }
    }

    /// Run for `span` more simulated time.
    pub fn run_for(&mut self, span: SimDuration) -> StopReason {
        let horizon = self.now() + span;
        self.run_until(horizon)
    }

    /// Consume the simulation and return the model.
    pub fn into_model(self) -> M {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that re-schedules itself `remaining` times at a fixed period
    /// and records event times.
    struct Ticker {
        period: SimDuration,
        remaining: u32,
        fired_at: Vec<SimTime>,
    }

    impl Model for Ticker {
        type Event = ();
        fn handle(&mut self, sched: &mut Scheduler<()>, _event: ()) {
            self.fired_at.push(sched.now());
            if self.remaining > 0 {
                self.remaining -= 1;
                sched.after(self.period, ());
            }
        }
    }

    fn ticker(n: u32) -> Simulation<Ticker> {
        let mut sim = Simulation::new(Ticker {
            period: SimDuration::from_secs(1),
            remaining: n,
            fired_at: Vec::new(),
        });
        sim.schedule_at(SimTime::ZERO, ());
        sim
    }

    #[test]
    fn runs_to_calendar_empty() {
        let mut sim = ticker(4);
        let reason = sim.run_until(SimTime::MAX);
        assert_eq!(reason, StopReason::CalendarEmpty);
        assert_eq!(sim.model().fired_at.len(), 5);
        assert_eq!(sim.events_executed(), 5);
        assert_eq!(
            sim.model().fired_at.last().copied(),
            Some(SimTime::from_secs(4))
        );
    }

    #[test]
    fn horizon_is_inclusive_and_clock_lands_on_horizon() {
        let mut sim = ticker(100);
        let reason = sim.run_until(SimTime::from_millis(2_500));
        assert_eq!(reason, StopReason::HorizonReached);
        // Events at t=0,1,2 executed; t=3 pending.
        assert_eq!(sim.model().fired_at.len(), 3);
        assert_eq!(sim.now(), SimTime::from_millis(2_500));
        // Event exactly at horizon executes.
        let reason = sim.run_until(SimTime::from_secs(3));
        assert_eq!(reason, StopReason::HorizonReached);
        assert_eq!(sim.model().fired_at.len(), 4);
    }

    #[test]
    fn run_for_advances_relative() {
        let mut sim = ticker(100);
        sim.run_for(SimDuration::from_secs(2));
        assert_eq!(sim.now(), SimTime::from_secs(2));
        sim.run_for(SimDuration::from_secs(3));
        assert_eq!(sim.now(), SimTime::from_secs(5));
        assert_eq!(sim.model().fired_at.len(), 6); // t=0..=5
    }

    #[test]
    fn event_budget_stops_runaway() {
        let mut sim = ticker(u32::MAX).with_event_budget(10);
        let reason = sim.run_until(SimTime::MAX);
        assert_eq!(reason, StopReason::EventBudgetExhausted);
        assert_eq!(sim.events_executed(), 10);
    }

    #[test]
    fn step_returns_time() {
        let mut sim = ticker(1);
        assert_eq!(sim.step(), Some(SimTime::ZERO));
        assert_eq!(sim.step(), Some(SimTime::from_secs(1)));
        assert_eq!(sim.step(), None);
    }

    #[test]
    fn immediately_runs_fifo_after_pending_same_time() {
        struct Chain {
            log: Vec<u8>,
        }
        impl Model for Chain {
            type Event = u8;
            fn handle(&mut self, sched: &mut Scheduler<u8>, ev: u8) {
                self.log.push(ev);
                if ev == 0 {
                    sched.immediately(2);
                }
            }
        }
        let mut sim = Simulation::new(Chain { log: vec![] });
        sim.schedule_at(SimTime::ZERO, 0);
        sim.schedule_at(SimTime::ZERO, 1);
        sim.run_until(SimTime::MAX);
        // 1 was already queued at t=0 before 0's handler enqueued 2.
        assert_eq!(sim.model().log, vec![0, 1, 2]);
    }
}
