//! A calendar queue: the classic O(1)-amortised event set for
//! discrete-event simulation (Brown, CACM 1988), tuned for branch-light
//! steady-state operation.
//!
//! Events hash into day buckets by time; a year is `days × day_width`.
//! Both `days` and `day_width` are powers of two, so the hot-path bucket
//! index is a shift and a mask — no division, no modulo. Each bucket is
//! kept sorted *descending* by the packed `(time << 64) | seq` key, which
//! makes the bucket minimum a `Vec` tail: dequeue is a bounds check and a
//! `pop()`. A cached front pointer remembers where the global minimum
//! lives, so the engine's peek-then-pop loop pays the day scan once.
//!
//! The bucket width adapts on resize from the inter-quartile span of the
//! pending set rather than its full range: a handful of far-future timers
//! (browser think times, fault injections) can be thousands of days ahead
//! of the service-time cluster, and sizing the year to the full span would
//! smear the dense near-term events into a single bucket. Far-future
//! events simply wait in their day bucket until the cursor's year catches
//! up; a full fruitless year scan short-circuits by jumping straight to
//! the global minimum.
//!
//! Ordering contract: identical to [`crate::calendar::EventCalendar`] —
//! strict `(time, insertion order)` FIFO, so the two are interchangeable
//! without perturbing a single event of a seeded run. The engine uses this
//! queue; the heap remains as the reference implementation the randomized
//! cross-check tests compare against (see `benches/engine.rs` for the
//! performance comparison).

use crate::time::SimTime;

/// Packed totally-ordered key: `seq` is unique per queue, so keys never
/// collide and FIFO tie-breaking is exact.
#[inline(always)]
fn pack(time: SimTime, seq: u64) -> u128 {
    ((time.as_micros() as u128) << 64) | seq as u128
}

#[inline(always)]
fn key_time(key: u128) -> u64 {
    (key >> 64) as u64
}

const INITIAL_DAYS: usize = 16;
const MAX_DAYS: usize = 1 << 20;
/// 1.024 ms — the power-of-two neighbour of the old 1 ms default.
const INITIAL_SHIFT: u32 = 10;

/// Calendar queue with FIFO tie-breaking.
#[derive(Debug)]
pub struct CalendarQueue<E> {
    /// `buckets[d]` holds entries of every year whose time hashes to day
    /// `d`, sorted descending by key (minimum at the tail).
    buckets: Vec<Vec<(u128, E)>>,
    /// log2 of the day width in microseconds.
    width_shift: u32,
    /// `buckets.len() - 1`; bucket count is always a power of two.
    day_mask: u64,
    /// Virtual day the dequeue cursor stands on (`time >> width_shift`,
    /// not wrapped). The cursor's bucket is `cursor_slot & day_mask`.
    cursor_slot: u64,
    /// Located global minimum: `(virtual day, key)` of the entry the next
    /// `pop` will take. `None` means the next peek/pop must search.
    front: Option<(u64, u128)>,
    len: usize,
    next_seq: u64,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..INITIAL_DAYS).map(|_| Vec::new()).collect(),
            width_shift: INITIAL_SHIFT,
            day_mask: INITIAL_DAYS as u64 - 1,
            cursor_slot: 0,
            front: None,
            len: 0,
            next_seq: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedule `event` at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = pack(time, seq);
        let slot = time.as_micros() >> self.width_shift;
        let bucket = &mut self.buckets[(slot & self.day_mask) as usize];
        // Insert keeping the bucket sorted descending; new events are
        // usually the nearest-future entries of their bucket, i.e. they
        // belong at or near the tail, so scan from the tail.
        let mut pos = bucket.len();
        while pos > 0 && bucket[pos - 1].0 < key {
            pos -= 1;
        }
        bucket.insert(pos, (key, event));
        self.len += 1;
        // An event earlier than the cursor (or the located front) moves
        // the search state back; same-or-later events leave it untouched.
        if slot < self.cursor_slot {
            self.cursor_slot = slot;
        }
        if let Some((_, fkey)) = self.front {
            if key < fkey {
                self.front = Some((slot, key));
            }
        }
        if self.len > 2 * self.buckets.len() && self.buckets.len() < MAX_DAYS {
            self.resize(self.buckets.len() * 2);
        }
    }

    /// Locate the global minimum, advancing the cursor. Amortised O(1):
    /// the cursor never moves backwards except for out-of-order schedules,
    /// and a fruitless full-year scan jumps straight to the minimum.
    fn locate_front(&mut self) -> Option<(u64, u128)> {
        if let Some(f) = self.front {
            return Some(f);
        }
        if self.len == 0 {
            return None;
        }
        let mut scanned = 0usize;
        loop {
            let bucket = &self.buckets[(self.cursor_slot & self.day_mask) as usize];
            if let Some(&(key, _)) = bucket.last() {
                // All events of this day window share this bucket, so an
                // in-window tail is the global minimum.
                let window_end = ((self.cursor_slot + 1) as u128) << self.width_shift;
                if (key >> 64) < window_end {
                    let f = (self.cursor_slot, key);
                    self.front = Some(f);
                    return Some(f);
                }
            }
            self.cursor_slot += 1;
            scanned += 1;
            if scanned >= self.buckets.len() {
                // A whole year without a hit: the pending set is sparse
                // and far away. Jump the cursor to the true minimum
                // (guaranteed present: len > 0 was checked above).
                let min = self
                    .buckets
                    .iter()
                    .filter_map(|b| b.last())
                    .map(|&(k, _)| k)
                    .min()?;
                self.cursor_slot = key_time(min) >> self.width_shift;
                scanned = 0;
            }
        }
    }

    /// Time of the earliest pending event (amortised O(1); the located
    /// position is cached for the following `pop`).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.locate_front()
            .map(|(_, key)| SimTime::from_micros(key_time(key)))
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (slot, key) = self.locate_front()?;
        self.front = None;
        let bucket = &mut self.buckets[(slot & self.day_mask) as usize];
        debug_assert_eq!(bucket.last().map(|&(k, _)| k), Some(key));
        let (_, event) = bucket.pop()?;
        self.len -= 1;
        if self.len < self.buckets.len() / 4 && self.buckets.len() > INITIAL_DAYS {
            self.resize(self.buckets.len() / 2);
        }
        Some((SimTime::from_micros(key_time(key)), event))
    }

    /// Drop every pending event (the world is rebuilt between iterations).
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.len = 0;
        self.front = None;
        self.cursor_slot = 0;
    }

    /// Rebuild with `new_days` buckets, re-deriving the day width from the
    /// inter-quartile spread of the pending set so outlier far-future
    /// timers don't dictate the year length.
    fn resize(&mut self, new_days: usize) {
        let mut entries: Vec<(u128, E)> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            entries.append(b);
        }
        entries.sort_unstable_by_key(|&(k, _)| k);
        if entries.len() >= 4 {
            // Width follows the average gap across the *head* of the queue
            // (Brown's "average separation of the first events"): that is
            // the region every pop walks through, so it is what the bucket
            // granularity must match. Far-future outliers (think timers,
            // fault injections) deliberately don't dilute it — they alias
            // into later years and wait there. The head quarter (capped)
            // smooths over a same-instant burst at the very front.
            let k = (entries.len() / 4).clamp(4, 256).min(entries.len());
            let span = key_time(entries[k - 1].0) - key_time(entries[0].0);
            let target = (span * 2 / (k as u64 - 1)).max(1);
            // Round down to a power of two via the leading bit.
            self.width_shift = 63 - target.leading_zeros();
        }
        self.buckets = (0..new_days).map(|_| Vec::new()).collect();
        self.day_mask = new_days as u64 - 1;
        // Entries arrive in ascending key order; pushing reversed keeps
        // every bucket sorted descending without re-sorting.
        for (key, event) in entries.into_iter().rev() {
            let slot = key_time(key) >> self.width_shift;
            self.buckets[(slot & self.day_mask) as usize].push((key, event));
        }
        self.cursor_slot = self
            .buckets
            .iter()
            .filter_map(|b| b.last())
            .map(|&(k, _)| key_time(k) >> self.width_shift)
            .min()
            .unwrap_or(0);
        self.front = None;
    }

    /// Current bucket count (diagnostics and resize tests).
    pub fn days(&self) -> usize {
        self.buckets.len()
    }

    /// Current day width in microseconds (always a power of two).
    pub fn day_width_micros(&self) -> u64 {
        1 << self.width_shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn pops_in_time_order_fifo_ties() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::from_micros(30), "c");
        q.schedule(SimTime::from_micros(10), "a");
        q.schedule(SimTime::from_micros(10), "a2");
        q.schedule(SimTime::from_micros(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "a2", "b", "c"]);
    }

    #[test]
    fn matches_binary_heap_on_random_workload() {
        use crate::calendar::EventCalendar;
        let mut rng = SimRng::new(99);
        let mut cal = EventCalendar::new();
        let mut cq = CalendarQueue::new();
        // Mixed schedule/pop churn, like a running simulation.
        let mut clock = 0u64;
        for i in 0..20_000u64 {
            let t = clock + rng.next_below(50_000);
            cal.schedule(SimTime::from_micros(t), i);
            cq.schedule(SimTime::from_micros(t), i);
            if i % 3 == 0 {
                let a = cal.pop();
                let b = cq.pop();
                assert_eq!(a, b, "diverged at step {i}");
                if let Some((t, _)) = a {
                    clock = t.as_micros();
                }
            }
        }
        // Drain both.
        loop {
            let a = cal.pop();
            let b = cq.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// The cluster workload shape: a dense cluster of near-term service
    /// events plus a long exponential tail of think-time timers. The
    /// adaptive width must keep this exact-ordered too.
    #[test]
    fn matches_binary_heap_on_bimodal_workload() {
        use crate::calendar::EventCalendar;
        let mut rng = SimRng::new(7);
        let mut cal = EventCalendar::new();
        let mut cq = CalendarQueue::new();
        let mut clock = 0u64;
        for i in 0..30_000u64 {
            let t = if rng.chance(0.3) {
                clock + 7_000_000 + rng.next_below(20_000_000) // think: seconds out
            } else {
                clock + rng.next_below(3_000) // service: microseconds out
            };
            cal.schedule(SimTime::from_micros(t), i);
            cq.schedule(SimTime::from_micros(t), i);
            if i % 2 == 0 {
                let a = cal.pop();
                assert_eq!(a, cq.pop(), "diverged at step {i}");
                if let Some((t, _)) = a {
                    clock = t.as_micros();
                }
            }
        }
        loop {
            let a = cal.pop();
            assert_eq!(a, cq.pop());
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn sparse_far_future_events_found() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::from_secs(3_600), 1); // one event, far away
        assert_eq!(q.pop(), Some((SimTime::from_secs(3_600), 1)));
        assert!(q.pop().is_none());
    }

    /// Satellite regression: events landing whole years past the cursor
    /// must surface in exact order even when interleaved with near events
    /// (the year-scan short-circuit and the day-wrap must agree).
    #[test]
    fn far_future_events_past_current_year_in_order() {
        let mut q = CalendarQueue::new();
        // One year at the initial geometry is 16 * 1.024 ms; schedule
        // events 0, 1, 10, and 1000 years ahead plus a same-day tie.
        let year = 16 * 1_024u64;
        q.schedule(SimTime::from_micros(3 * year / 2), "next-year");
        q.schedule(SimTime::from_micros(10 * year), "decade");
        q.schedule(SimTime::from_micros(100), "now");
        q.schedule(SimTime::from_micros(1_000 * year), "millennium");
        q.schedule(SimTime::from_micros(100), "now-tie");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(
            order,
            vec!["now", "now-tie", "next-year", "decade", "millennium"]
        );
    }

    /// Satellite regression: growth doubles and shrink halves exactly at
    /// the power-of-two occupancy boundaries, and no entry is lost or
    /// reordered across either edge.
    #[test]
    fn resize_at_power_of_two_boundaries() {
        let mut q = CalendarQueue::new();
        assert_eq!(q.days(), 16);
        // Fill to exactly 2 * days: the next schedule must double.
        for i in 0..32u64 {
            q.schedule(SimTime::from_micros(i * 97), i);
        }
        assert_eq!(q.days(), 16, "at the boundary, not past it");
        q.schedule(SimTime::from_micros(32 * 97), 32);
        assert_eq!(q.days(), 32, "33rd entry crosses 2*16");
        assert!(q.day_width_micros().is_power_of_two());
        // Keep growing through another doubling.
        for i in 33..70u64 {
            q.schedule(SimTime::from_micros(i * 97), i);
        }
        assert_eq!(q.days(), 64);
        // Drain: shrink must step back down through the same powers.
        let mut seen = Vec::new();
        while let Some((_, e)) = q.pop() {
            seen.push(e);
        }
        assert_eq!(
            seen,
            (0..70).collect::<Vec<_>>(),
            "exact order across resizes"
        );
        assert_eq!(q.days(), 16, "shrunk back to the floor");
    }

    /// Satellite regression: same-timestamp events keep insertion order
    /// across bucket growth, a cursor year-wrap, and interleaved pops.
    #[test]
    fn same_timestamp_fifo_across_resize_and_wrap() {
        let mut q = CalendarQueue::new();
        let t = SimTime::from_micros(5_000_000);
        for i in 0..100u64 {
            q.schedule(t, i);
            // Interleave far decoys to force growth + a year scan.
            q.schedule(SimTime::from_micros(10_000_000 + i * 1_000_000), 1_000 + i);
        }
        for want in 0..100u64 {
            assert_eq!(q.pop(), Some((t, want)));
        }
    }

    #[test]
    fn growth_and_shrink_preserve_contents() {
        let mut q = CalendarQueue::new();
        for i in 0..1_000u64 {
            q.schedule(SimTime::from_micros(i * 7), i);
        }
        assert_eq!(q.len(), 1_000);
        let mut last = 0;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t.as_micros() >= last);
            last = t.as_micros();
            count += 1;
        }
        assert_eq!(count, 1_000);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = CalendarQueue::new();
        let mut rng = SimRng::new(4);
        for i in 0..500u64 {
            q.schedule(SimTime::from_micros(rng.next_below(10_000)), i);
        }
        while let Some(pt) = q.peek_time() {
            let (t, _) = q.pop().unwrap();
            assert_eq!(t, pt);
        }
    }

    #[test]
    fn peek_then_schedule_earlier_then_pop_is_exact() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::from_micros(500), "late");
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(500)));
        // The cached front must yield to a newly scheduled earlier event.
        q.schedule(SimTime::from_micros(20), "early");
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(20)));
        assert_eq!(q.pop(), Some((SimTime::from_micros(20), "early")));
        assert_eq!(q.pop(), Some((SimTime::from_micros(500), "late")));
    }

    #[test]
    fn clear_empties_and_reuses() {
        let mut q = CalendarQueue::new();
        for i in 0..100u64 {
            q.schedule(SimTime::from_micros(i), i);
        }
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_micros(9), 9);
        assert_eq!(q.pop(), Some((SimTime::from_micros(9), 9)));
    }
}
