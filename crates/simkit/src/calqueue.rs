//! A calendar queue: the classic O(1)-amortised event set for
//! discrete-event simulation (Brown, CACM 1988).
//!
//! Events hash into day buckets by time; a year is `days × day_width`.
//! Dequeue scans from the current day, taking events belonging to the
//! current year in time order; the structure resizes (days and width)
//! when occupancy drifts, keeping both enqueue and dequeue O(1) amortised
//! for the stationary arrival patterns simulations produce.
//!
//! Interchangeable with [`crate::calendar::EventCalendar`] (same FIFO
//! tie-breaking contract); the default engine keeps the binary heap, which
//! benchmarks faster at this model's queue sizes, but the calendar queue
//! wins for very large event populations — see `benches/engine.rs`.

use crate::time::SimTime;

/// One scheduled entry.
#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

/// Calendar queue with FIFO tie-breaking.
#[derive(Debug)]
pub struct CalendarQueue<E> {
    /// `days[d]` holds entries of every year whose time hashes to day `d`,
    /// kept sorted by (time, seq).
    days: Vec<Vec<Entry<E>>>,
    /// Width of one day in microseconds.
    day_width: u64,
    /// Day the cursor is standing on.
    cursor_day: usize,
    /// Start time of the cursor's current year-day window.
    cursor_time: u64,
    len: usize,
    next_seq: u64,
}

const INITIAL_DAYS: usize = 16;
const INITIAL_WIDTH: u64 = 1_000; // 1 ms

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    pub fn new() -> Self {
        CalendarQueue {
            days: (0..INITIAL_DAYS).map(|_| Vec::new()).collect(),
            day_width: INITIAL_WIDTH,
            cursor_day: 0,
            cursor_time: 0,
            len: 0,
            next_seq: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn day_of(&self, time: SimTime) -> usize {
        ((time.as_micros() / self.day_width) % self.days.len() as u64) as usize
    }

    /// Schedule `event` at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry { time, seq, event };
        let day = self.day_of(time);
        let bucket = &mut self.days[day];
        // Insert keeping the bucket sorted by (time, seq); arrivals are
        // usually near the tail.
        let pos = bucket
            .iter()
            .rposition(|e| (e.time, e.seq) <= (entry.time, entry.seq))
            .map(|p| p + 1)
            .unwrap_or(0);
        bucket.insert(pos, entry);
        self.len += 1;
        if self.len > 2 * self.days.len() {
            self.resize(self.days.len() * 2);
        }
        // Keep the cursor at or before the earliest event.
        if time.as_micros() < self.cursor_time {
            self.jump_to(time.as_micros());
        }
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        loop {
            let window_end = self.cursor_time + self.day_width;
            let day = self.cursor_day;
            let found = {
                let bucket = &self.days[day];
                bucket
                    .first()
                    .is_some_and(|e| e.time.as_micros() < window_end)
            };
            if found {
                let entry = self.days[day].remove(0);
                self.len -= 1;
                if self.len < self.days.len() / 4 && self.days.len() > INITIAL_DAYS {
                    self.resize(self.days.len() / 2);
                }
                return Some((entry.time, entry.event));
            }
            // Advance to the next day; after a full year without finding
            // anything in-window, jump directly to the global minimum.
            self.cursor_day = (self.cursor_day + 1) % self.days.len();
            self.cursor_time += self.day_width;
            if self.cursor_day == 0 {
                // Completed a year scan — direct search avoids spinning
                // over sparse far-future events.
                if let Some(min_time) = self.min_time() {
                    self.jump_to(min_time);
                }
            }
        }
    }

    /// Time of the earliest pending event (O(days)).
    pub fn peek_time(&self) -> Option<SimTime> {
        self.days
            .iter()
            .filter_map(|b| b.first())
            .min_by_key(|e| (e.time, e.seq))
            .map(|e| e.time)
    }

    fn min_time(&self) -> Option<u64> {
        self.peek_time().map(|t| t.as_micros())
    }

    fn jump_to(&mut self, time_us: u64) {
        self.cursor_time = (time_us / self.day_width) * self.day_width;
        self.cursor_day = ((time_us / self.day_width) % self.days.len() as u64) as usize;
    }

    fn resize(&mut self, new_days: usize) {
        let mut entries: Vec<Entry<E>> = self
            .days
            .iter_mut()
            .flat_map(std::mem::take)
            .collect();
        // Retarget the width to spread current entries over about one
        // year: width ~ span / len (bounded).
        if entries.len() >= 2 {
            let min = entries.iter().map(|e| e.time.as_micros()).min().unwrap_or(0);
            let max = entries.iter().map(|e| e.time.as_micros()).max().unwrap_or(0);
            let span = max.saturating_sub(min).max(1);
            self.day_width = (span / entries.len() as u64).clamp(1, u64::MAX / 4);
        }
        self.days = (0..new_days).map(|_| Vec::new()).collect();
        entries.sort_by_key(|e| (e.time, e.seq));
        let min_time = entries.first().map(|e| e.time.as_micros()).unwrap_or(0);
        for e in entries {
            let day = self.day_of(e.time);
            self.days[day].push(e);
        }
        self.jump_to(min_time);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn pops_in_time_order_fifo_ties() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::from_micros(30), "c");
        q.schedule(SimTime::from_micros(10), "a");
        q.schedule(SimTime::from_micros(10), "a2");
        q.schedule(SimTime::from_micros(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "a2", "b", "c"]);
    }

    #[test]
    fn matches_binary_heap_on_random_workload() {
        use crate::calendar::EventCalendar;
        let mut rng = SimRng::new(99);
        let mut cal = EventCalendar::new();
        let mut cq = CalendarQueue::new();
        // Mixed schedule/pop churn, like a running simulation.
        let mut clock = 0u64;
        for i in 0..20_000u64 {
            let t = clock + rng.next_below(50_000);
            cal.schedule(SimTime::from_micros(t), i);
            cq.schedule(SimTime::from_micros(t), i);
            if i % 3 == 0 {
                let a = cal.pop();
                let b = cq.pop();
                assert_eq!(a, b, "diverged at step {i}");
                if let Some((t, _)) = a {
                    clock = t.as_micros();
                }
            }
        }
        // Drain both.
        loop {
            let a = cal.pop();
            let b = cq.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn sparse_far_future_events_found() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::from_secs(3_600), 1); // one event, far away
        assert_eq!(q.pop(), Some((SimTime::from_secs(3_600), 1)));
        assert!(q.pop().is_none());
    }

    #[test]
    fn growth_and_shrink_preserve_contents() {
        let mut q = CalendarQueue::new();
        for i in 0..1_000u64 {
            q.schedule(SimTime::from_micros(i * 7), i);
        }
        assert_eq!(q.len(), 1_000);
        let mut last = 0;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t.as_micros() >= last);
            last = t.as_micros();
            count += 1;
        }
        assert_eq!(count, 1_000);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = CalendarQueue::new();
        let mut rng = SimRng::new(4);
        for i in 0..500u64 {
            q.schedule(SimTime::from_micros(rng.next_below(10_000)), i);
        }
        while let Some(pt) = q.peek_time() {
            let (t, _) = q.pop().unwrap();
            assert_eq!(t, pt);
        }
    }
}
