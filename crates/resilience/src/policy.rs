//! The policy trait, evaluation context, and layer composition.

use crate::clock::PolicyClock;
use persist::{Checkpointable, PersistError, State};
use simkit::time::{SimDuration, SimTime};

/// One measured evaluation: the domain value (configuration + outcome),
/// whether the measurement is usable, and its scalar score (WIPS).
#[derive(Debug, Clone, PartialEq)]
pub struct Sample<T> {
    pub value: T,
    /// Usable measurement? Invalid samples trigger retries and count
    /// against the circuit breaker.
    pub valid: bool,
    /// Scalar figure of merit; drives [`crate::Fallback`]'s best-known
    /// tracking.
    pub score: f64,
}

/// Why a layer refused to evaluate at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The circuit breaker is open for this key.
    BreakerOpen,
    /// The bulkhead has no free permit.
    BulkheadFull,
}

/// Why the fallback substituted the best-known sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// The measurement budget was exhausted (all attempts invalid).
    Invalid,
    /// A layer rejected the evaluation without measuring.
    Rejected,
}

impl DegradeReason {
    /// Stable label used in trace records.
    pub fn name(&self) -> &'static str {
        match self {
            DegradeReason::Invalid => "invalid",
            DegradeReason::Rejected => "rejected",
        }
    }
}

/// A degraded result: the substituted best-known sample, plus the failed
/// measurement (if one was taken) for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct Degraded<T> {
    pub sample: Sample<T>,
    pub measured: Option<Sample<T>>,
    pub reason: DegradeReason,
}

/// What flows back up through the layers after one [`Stack::call`].
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome<T> {
    /// A valid measurement.
    Ok(Sample<T>),
    /// Every allowed attempt produced an invalid measurement; the last
    /// one is kept for reporting.
    Invalid(Sample<T>),
    /// Refused without measuring.
    Rejected(RejectReason),
    /// The fallback substituted the best-known sample.
    Degraded(Degraded<T>),
}

impl<T> Outcome<T> {
    /// The measured sample, if any attempt ran (the failed measurement
    /// for degraded outcomes).
    pub fn measured(&self) -> Option<&Sample<T>> {
        match self {
            Outcome::Ok(s) | Outcome::Invalid(s) => Some(s),
            Outcome::Degraded(d) => d.measured.as_ref(),
            Outcome::Rejected(_) => None,
        }
    }

    pub fn is_ok(&self) -> bool {
        matches!(self, Outcome::Ok(_))
    }
}

/// One thing a layer did, in the order it happened. The caller drains
/// the log after each [`Stack::call`] and maps it onto trace records and
/// counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A bounded retry is about to run (`attempt` is 1-indexed and names
    /// the attempt being started; `score` is the failed sample's).
    Retry {
        attempt: u32,
        delay: SimDuration,
        score: f64,
    },
    /// The evaluation closure re-measured a noise-spiked sample.
    Remeasure { attempt: u32, score: f64 },
    /// An attempt exceeded the simulated-time budget and was invalidated.
    Timeout {
        attempt: u32,
        elapsed: SimDuration,
        budget: SimDuration,
        score: f64,
    },
    /// The breaker tripped open after `attempts` failed attempts.
    BreakerOpen { attempts: u32 },
    /// An open breaker refused the evaluation.
    BreakerSkip,
    /// A half-open breaker let one probe evaluation through.
    BreakerProbe,
    /// The bulkhead had no free permit.
    BulkheadFull,
    /// The fallback substituted the best-known sample.
    Degraded { score: f64, reason: DegradeReason },
}

/// Mutable evaluation context threaded through the layers: the key being
/// evaluated, the current attempt number, the simulated clock, and the
/// event log.
pub struct Ctx<'a> {
    pub key: &'a str,
    pub iteration: u32,
    /// 1-indexed attempt number, maintained by [`crate::Retry`].
    pub attempt: u32,
    clock: &'a mut PolicyClock,
    events: &'a mut Vec<Event>,
}

impl Ctx<'_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Advance the simulated clock (evaluation cost, backoff delay).
    pub fn advance(&mut self, d: SimDuration) {
        self.clock.advance(d);
    }

    /// Append to the event log.
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }
}

/// One resilience layer. `call` receives the context and the composed
/// inner layers as `next`; it may invoke `next` zero or more times.
///
/// Layers must be deterministic and must round-trip their mutable state
/// through `save_state`/`restore_state` bit-exactly — that is what lets
/// a killed session resume mid-policy without re-burning RNG draws.
pub trait Policy<T> {
    /// Stable layer name, checked on restore.
    fn name(&self) -> &'static str;

    fn call<'a>(
        &mut self,
        ctx: &mut Ctx<'a>,
        next: &mut dyn FnMut(&mut Ctx<'a>) -> Outcome<T>,
    ) -> Outcome<T>;

    /// Mutable layer state (`State::Null` for stateless layers).
    fn save_state(&self) -> State {
        State::Null
    }

    fn restore_state(&mut self, _state: &State) -> Result<(), PersistError> {
        Ok(())
    }
}

/// An explicit composition of layers, outermost first, plus the shared
/// simulated clock and the per-call event log.
pub struct Stack<T> {
    layers: Vec<Box<dyn Policy<T>>>,
    clock: PolicyClock,
    events: Vec<Event>,
}

impl<T> Default for Stack<T> {
    fn default() -> Self {
        Stack::new()
    }
}

impl<T> Stack<T> {
    /// An empty stack: `call` runs the evaluation closure directly.
    pub fn new() -> Self {
        Stack {
            layers: Vec::new(),
            clock: PolicyClock::new(SimTime::ZERO),
            events: Vec::new(),
        }
    }

    /// Builder: append a layer *inside* the existing ones (first added =
    /// outermost).
    pub fn layer(mut self, policy: impl Policy<T> + 'static) -> Self {
        self.layers.push(Box::new(policy));
        self
    }

    /// Builder: start the simulated clock at `t`.
    pub fn starting_at(mut self, t: SimTime) -> Self {
        self.clock = PolicyClock::new(t);
        self
    }

    pub fn clock(&self) -> &PolicyClock {
        &self.clock
    }

    /// Run one evaluation through every layer. The event log is cleared
    /// first; drain it with [`Stack::take_events`] afterwards.
    pub fn call(
        &mut self,
        key: &str,
        iteration: u32,
        eval: &mut dyn for<'a> FnMut(&mut Ctx<'a>) -> Sample<T>,
    ) -> Outcome<T> {
        self.events.clear();
        let mut ctx = Ctx {
            key,
            iteration,
            attempt: 1,
            clock: &mut self.clock,
            events: &mut self.events,
        };
        dispatch(&mut self.layers, &mut ctx, eval)
    }

    /// The events of the most recent call, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Drain the events of the most recent call.
    pub fn take_events(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }
}

fn dispatch<'a, T>(
    layers: &mut [Box<dyn Policy<T>>],
    ctx: &mut Ctx<'a>,
    eval: &mut dyn FnMut(&mut Ctx<'a>) -> Sample<T>,
) -> Outcome<T> {
    match layers.split_first_mut() {
        None => {
            let sample = eval(ctx);
            if sample.valid {
                Outcome::Ok(sample)
            } else {
                Outcome::Invalid(sample)
            }
        }
        Some((head, rest)) => head.call(ctx, &mut |c| dispatch(&mut *rest, c, &mut *eval)),
    }
}

impl<T> Checkpointable for Stack<T> {
    /// The full mutable state of the composition: the clock plus each
    /// layer's state, tagged with its name so a mismatched stack shape
    /// is a typed error instead of silent divergence.
    fn save_state(&self) -> State {
        State::map().with("clock", self.clock.save_state()).with(
            "layers",
            State::List(
                self.layers
                    .iter()
                    .map(|l| {
                        State::map()
                            .with("name", State::Str(l.name().to_string()))
                            .with("state", l.save_state())
                    })
                    .collect(),
            ),
        )
    }

    fn restore_state(&mut self, state: &State) -> Result<(), PersistError> {
        self.clock.restore_state(state.require("clock")?)?;
        let saved = state.field_list("layers")?;
        if saved.len() != self.layers.len() {
            return Err(PersistError::Schema(format!(
                "policy stack expects {} layers, found {}",
                self.layers.len(),
                saved.len()
            )));
        }
        for (layer, st) in self.layers.iter_mut().zip(saved) {
            let name = st.field_str("name")?;
            if name != layer.name() {
                return Err(PersistError::Schema(format!(
                    "policy layer mismatch: expected '{}', found '{name}'",
                    layer.name()
                )));
            }
            layer.restore_state(st.require("state")?)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(valid: bool, score: f64) -> Sample<u32> {
        Sample {
            value: 0,
            valid,
            score,
        }
    }

    #[test]
    fn empty_stack_passes_through() {
        let mut stack: Stack<u32> = Stack::new();
        let out = stack.call("k", 0, &mut |_| sample(true, 2.0));
        assert!(matches!(out, Outcome::Ok(s) if s.score == 2.0));
        let out = stack.call("k", 0, &mut |_| sample(false, 0.0));
        assert!(matches!(out, Outcome::Invalid(_)));
        assert!(stack.events().is_empty());
    }

    #[test]
    fn closure_sees_clock_and_event_log() {
        let mut stack: Stack<u32> = Stack::new().starting_at(SimTime::from_secs(5));
        let out = stack.call("k", 3, &mut |ctx| {
            assert_eq!(ctx.now(), SimTime::from_secs(5));
            assert_eq!(ctx.iteration, 3);
            ctx.advance(SimDuration::from_secs(30));
            ctx.push(Event::Remeasure {
                attempt: 1,
                score: 1.0,
            });
            sample(true, 1.0)
        });
        assert!(out.is_ok());
        assert_eq!(stack.clock().now(), SimTime::from_secs(35));
        assert_eq!(
            stack.take_events(),
            vec![Event::Remeasure {
                attempt: 1,
                score: 1.0
            }]
        );
        assert!(stack.events().is_empty(), "drained");
    }

    #[test]
    fn stack_state_roundtrip_restores_clock() {
        let mut stack: Stack<u32> = Stack::new();
        stack.call("k", 0, &mut |ctx| {
            ctx.advance(SimDuration::from_secs(7));
            sample(true, 1.0)
        });
        let saved = stack.save_state();
        let mut fresh: Stack<u32> = Stack::new();
        fresh.restore_state(&saved).unwrap();
        assert_eq!(fresh.clock().now(), SimTime::from_secs(7));
        assert_eq!(fresh.save_state(), saved, "save→restore→save bit-exact");
    }

    #[test]
    fn restore_rejects_mismatched_shape() {
        let stack: Stack<u32> = Stack::new().layer(crate::Timeout::new(None));
        let saved = stack.save_state();
        let mut empty: Stack<u32> = Stack::new();
        assert!(empty.restore_state(&saved).is_err(), "layer count");
        let mut renamed: Stack<u32> = Stack::new().layer(crate::Bulkhead::unbounded());
        assert!(renamed.restore_state(&saved).is_err(), "layer name");
    }
}
