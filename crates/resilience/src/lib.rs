//! # resilience — composable, deterministic fault-handling policies
//!
//! The recovery machinery a tuning session wraps around each fallible
//! evaluation, factored into middleware-style layers over a closure:
//!
//! * [`policy::Policy`] — one layer: it receives the evaluation context
//!   and a `next` continuation, and may short-circuit, retry, or rewrite
//!   the [`policy::Outcome`] flowing back up;
//! * [`policy::Stack`] — an explicit composition of layers (outermost
//!   first) plus the session's [`clock::PolicyClock`] and the ordered
//!   [`policy::Event`] log of everything the layers did;
//! * [`retry::Retry`] — bounded attempts with [`retry::Backoff`] and
//!   seeded [`retry::Jitter`] (all delays are simulated time);
//! * [`timeout::Timeout`] — a per-attempt budget measured against the
//!   injectable simulated clock — no wall clock anywhere;
//! * [`breaker::CircuitBreaker`] — closed → open → half-open → closed
//!   per configuration key, with an optional probe-after-skips recovery;
//! * [`bulkhead::Bulkhead`] — caps concurrent in-flight evaluations and
//!   clamps speculative worker-thread counts;
//! * [`fallback::Fallback`] — graceful degradation: when every inner
//!   layer gives up, substitute the best sample seen so far instead of
//!   failing the iteration.
//!
//! Everything is deterministic (jitter draws from a caller-seeded
//! [`simkit::rng::SimRng`]) and checkpointable: each layer round-trips
//! its mutable state through [`persist::State`] bit-exactly, so a killed
//! session resumes mid-policy without re-burning RNG draws.
//!
//! This crate is the *acting* half of the robustness story: its layers
//! decide what to do about failures. The *sensing* half — deciding a
//! node has failed at all, from heartbeat observations rather than the
//! fault injector's oracle — lives in the `detect` crate (φ-accrual
//! suspicion + hysteretic membership; DESIGN.md §5i), whose confirmed
//! `Down` transitions gate the session's reconfiguration path.

// Policies run inside long sessions: failures must surface as typed
// errors or degraded outcomes, never panics. Test modules are exempt;
// CI enforces this with a dedicated clippy step.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod breaker;
pub mod bulkhead;
pub mod clock;
pub mod fallback;
pub mod outlier;
pub mod policy;
pub mod retry;
pub mod timeout;

pub use breaker::{Breaker, BreakerState, CircuitBreaker};
pub use bulkhead::Bulkhead;
pub use clock::PolicyClock;
pub use fallback::{Fallback, StateCodec};
pub use outlier::OutlierGate;
pub use policy::{
    Ctx, DegradeReason, Degraded, Event, Outcome, Policy, RejectReason, Sample, Stack,
};
pub use retry::{Backoff, Jitter, Retry, RetryPolicy};
pub use timeout::Timeout;
