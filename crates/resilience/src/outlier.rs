//! Noise-spike re-measurement gate.

/// Rejects samples whose confidence interval exploded (a noise spike or a
/// mid-measurement fault): the sample is re-measured instead of being fed
/// to the tuner, up to `max_remeasures` times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutlierGate {
    /// Maximum acceptable `ci_half / wips` ratio.
    pub max_rel_half_width: f64,
    /// Re-measurement budget per sample.
    pub max_remeasures: u32,
}

impl Default for OutlierGate {
    fn default() -> Self {
        OutlierGate {
            max_rel_half_width: 0.25,
            max_remeasures: 2,
        }
    }
}

impl OutlierGate {
    /// Does the sample's confidence interval pass the gate?
    pub fn accepts(&self, wips: f64, ci_half: f64) -> bool {
        if wips <= 0.0 {
            return ci_half <= 0.0;
        }
        ci_half / wips <= self.max_rel_half_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outlier_gate_rejects_wide_intervals() {
        let g = OutlierGate::default();
        assert!(g.accepts(100.0, 10.0));
        assert!(!g.accepts(100.0, 40.0));
        assert!(g.accepts(0.0, 0.0), "dead-but-certain sample passes");
        assert!(!g.accepts(0.0, 5.0));
    }
}
