//! Concurrency isolation: cap in-flight evaluations.

use crate::policy::{Ctx, Event, Outcome, Policy, RejectReason};
use persist::{PersistError, State};

/// Caps the number of evaluations in flight at once. In the sequential
/// session loop the permit gate is a formality (one evaluation at a
/// time), but the same cap bounds *speculative* evaluation width:
/// [`Bulkhead::clamp_threads`] clamps the worker-thread count handed to
/// `par::parallel_map`-style fan-outs, so one knob governs both the
/// policy stack and the evaluation engine's parallelism.
///
/// `cap: None` is unbounded — the identity layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bulkhead {
    cap: Option<u32>,
    in_flight: u32,
}

impl Bulkhead {
    /// No cap: every evaluation gets a permit.
    pub fn unbounded() -> Self {
        Bulkhead {
            cap: None,
            in_flight: 0,
        }
    }

    /// At most `cap` (≥ 1) evaluations in flight.
    pub fn with_cap(cap: u32) -> Self {
        Bulkhead {
            cap: Some(cap.max(1)),
            in_flight: 0,
        }
    }

    /// From an optional cap (`None` = unbounded).
    pub fn new(cap: Option<u32>) -> Self {
        match cap {
            None => Bulkhead::unbounded(),
            Some(c) => Bulkhead::with_cap(c),
        }
    }

    pub fn cap(&self) -> Option<u32> {
        self.cap
    }

    /// Take a permit if one is free.
    pub fn try_acquire(&mut self) -> bool {
        match self.cap {
            Some(cap) if self.in_flight >= cap => false,
            _ => {
                self.in_flight += 1;
                true
            }
        }
    }

    /// Return a permit.
    pub fn release(&mut self) {
        self.in_flight = self.in_flight.saturating_sub(1);
    }

    /// Clamp a requested worker-thread count to the bulkhead cap
    /// (`requested == 0` means "one per core" and is clamped too, to the
    /// cap itself).
    pub fn clamp_threads(&self, requested: usize) -> usize {
        match self.cap {
            None => requested,
            Some(cap) if requested == 0 => cap as usize,
            Some(cap) => requested.min(cap as usize),
        }
    }
}

impl<T> Policy<T> for Bulkhead {
    fn name(&self) -> &'static str {
        "bulkhead"
    }

    fn call<'a>(
        &mut self,
        ctx: &mut Ctx<'a>,
        next: &mut dyn FnMut(&mut Ctx<'a>) -> Outcome<T>,
    ) -> Outcome<T> {
        if !self.try_acquire() {
            ctx.push(Event::BulkheadFull);
            return Outcome::Rejected(RejectReason::BulkheadFull);
        }
        let out = next(ctx);
        self.release();
        out
    }

    fn save_state(&self) -> State {
        State::U64(self.in_flight as u64)
    }

    fn restore_state(&mut self, state: &State) -> Result<(), PersistError> {
        self.in_flight = state
            .as_u64()
            .ok_or_else(|| PersistError::Schema("bulkhead in_flight is not a u64".into()))?
            as u32;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Sample, Stack};

    #[test]
    fn permits_bound_in_flight() {
        let mut b = Bulkhead::with_cap(2);
        assert!(b.try_acquire());
        assert!(b.try_acquire());
        assert!(!b.try_acquire(), "cap reached");
        b.release();
        assert!(b.try_acquire());
        let mut u = Bulkhead::unbounded();
        for _ in 0..1000 {
            assert!(u.try_acquire());
        }
    }

    #[test]
    fn clamp_threads_caps_speculation_width() {
        assert_eq!(Bulkhead::unbounded().clamp_threads(8), 8);
        assert_eq!(Bulkhead::unbounded().clamp_threads(0), 0, "still auto");
        let b = Bulkhead::with_cap(3);
        assert_eq!(b.clamp_threads(8), 3);
        assert_eq!(b.clamp_threads(2), 2);
        assert_eq!(b.clamp_threads(0), 3, "auto clamps to the cap");
    }

    #[test]
    fn layer_rejects_when_exhausted() {
        // Exhaust the permits from outside the stack, as a concurrent
        // speculation pass holding them would.
        let mut saturated = Bulkhead::with_cap(1);
        assert!(saturated.try_acquire());
        let mut stack: Stack<u32> = Stack::new().layer(saturated);
        let out = stack.call("k", 0, &mut |_| Sample {
            value: 0,
            valid: true,
            score: 1.0,
        });
        assert!(matches!(out, Outcome::Rejected(RejectReason::BulkheadFull)));
        assert_eq!(stack.events(), &[Event::BulkheadFull]);
    }

    #[test]
    fn layer_releases_its_permit() {
        let mut stack: Stack<u32> = Stack::new().layer(Bulkhead::with_cap(1));
        for i in 0..3 {
            let out = stack.call("k", i, &mut |_| Sample {
                value: 0,
                valid: true,
                score: 1.0,
            });
            assert!(out.is_ok(), "call {i} got a permit");
        }
    }
}
