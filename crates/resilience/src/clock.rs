//! The injectable simulated clock the policies measure against.

use persist::{Checkpointable, PersistError, State};
use simkit::time::{SimDuration, SimTime};

/// Monotone simulated time owned by a [`crate::Stack`]. The evaluation
/// closure advances it by the simulated cost of each measurement and the
/// retry layer by each backoff delay, so a [`crate::Timeout`] budget is
/// checked against *simulated* elapsed time — no wall clock anywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyClock {
    now: SimTime,
}

impl PolicyClock {
    pub fn new(start: SimTime) -> Self {
        PolicyClock { now: start }
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advance by `d`, saturating at [`SimTime::MAX`].
    pub fn advance(&mut self, d: SimDuration) {
        self.now = self.now.checked_add(d).unwrap_or(SimTime::MAX);
    }
}

impl Default for PolicyClock {
    fn default() -> Self {
        PolicyClock::new(SimTime::ZERO)
    }
}

impl Checkpointable for PolicyClock {
    fn save_state(&self) -> State {
        State::U64(self.now.as_micros())
    }

    fn restore_state(&mut self, state: &State) -> Result<(), PersistError> {
        let us = state
            .as_u64()
            .ok_or_else(|| PersistError::Schema("policy clock is not a u64".into()))?;
        self.now = SimTime::from_micros(us);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_and_saturates() {
        let mut c = PolicyClock::default();
        c.advance(SimDuration::from_secs(3));
        assert_eq!(c.now(), SimTime::from_secs(3));
        c.advance(SimDuration::MAX);
        assert_eq!(c.now(), SimTime::MAX, "saturates");
    }

    #[test]
    fn state_roundtrip() {
        let mut c = PolicyClock::new(SimTime::from_micros(123_456));
        let saved = c.save_state();
        c.advance(SimDuration::from_secs(1));
        c.restore_state(&saved).unwrap();
        assert_eq!(c.now(), SimTime::from_micros(123_456));
        assert!(c.restore_state(&State::Null).is_err());
    }
}
