//! Bounded retry with deterministic jittered backoff.
//!
//! Modeled on the usual production retry stack but fully deterministic:
//! jitter draws from a caller-seeded [`SimRng`] and delays are simulated
//! time, so a failed evaluation replays identically under the same seed.

use crate::policy::{Ctx, Event, Outcome, Policy};
use persist::{PersistError, State};
use simkit::rng::SimRng;
use simkit::time::SimDuration;

/// How the base delay grows with the attempt number (1-indexed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Backoff {
    /// Same delay every attempt.
    Constant(SimDuration),
    /// `base * attempt`.
    Linear(SimDuration),
    /// `base * 2^(attempt-1)`, capped.
    Exponential { base: SimDuration, cap: SimDuration },
}

impl Backoff {
    /// The un-jittered delay before attempt `attempt` (1-indexed;
    /// attempt 0 is treated as 1).
    pub fn delay(&self, attempt: u32) -> SimDuration {
        let attempt = attempt.max(1);
        match *self {
            Backoff::Constant(d) => d,
            Backoff::Linear(base) => {
                SimDuration::from_micros(base.as_micros().saturating_mul(attempt as u64))
            }
            Backoff::Exponential { base, cap } => {
                let shift = (attempt - 1).min(63);
                let scaled = base.as_micros().saturating_mul(1u64 << shift);
                SimDuration::from_micros(scaled.min(cap.as_micros()))
            }
        }
    }
}

/// How jitter perturbs the backoff delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Jitter {
    /// No jitter: the deterministic schedule as-is.
    #[default]
    None,
    /// Uniform in `[0, delay]`.
    Full,
    /// Uniform in `[delay/2, delay]` (AWS "equal jitter").
    Equal,
}

impl Jitter {
    pub fn apply(&self, delay: SimDuration, rng: &mut SimRng) -> SimDuration {
        let us = delay.as_micros();
        if us == 0 {
            return delay;
        }
        match self {
            Jitter::None => delay,
            Jitter::Full => SimDuration::from_micros(rng.next_below(us + 1)),
            Jitter::Equal => {
                let half = us / 2;
                SimDuration::from_micros(half + rng.next_below(us - half + 1))
            }
        }
    }
}

/// A bounded retry policy: at most `max_attempts` tries per evaluation,
/// with jittered backoff between them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    pub max_attempts: u32,
    pub backoff: Backoff,
    pub jitter: Jitter,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: Backoff::Exponential {
                base: SimDuration::from_secs(5),
                cap: SimDuration::from_secs(60),
            },
            jitter: Jitter::Equal,
        }
    }
}

impl RetryPolicy {
    /// Whether attempt `attempt` (1-indexed) is allowed.
    pub fn allows(&self, attempt: u32) -> bool {
        attempt <= self.max_attempts
    }

    /// The jittered delay to wait before retrying after attempt `attempt`.
    pub fn delay(&self, attempt: u32, rng: &mut SimRng) -> SimDuration {
        self.jitter.apply(self.backoff.delay(attempt), rng)
    }
}

/// The retry layer: re-invokes the inner layers while the outcome is
/// invalid and the [`RetryPolicy`] still allows another attempt. Each
/// retry advances the simulated clock by its backoff delay and logs an
/// [`Event::Retry`] carrying the failed sample's score.
#[derive(Debug, Clone)]
pub struct Retry {
    pub policy: RetryPolicy,
    rng: SimRng,
}

impl Retry {
    /// A retry layer drawing jitter from `seed`. The same seed replays
    /// the same delay sequence.
    pub fn new(policy: RetryPolicy, seed: u64) -> Self {
        Retry {
            policy,
            rng: SimRng::new(seed),
        }
    }
}

impl<T> Policy<T> for Retry {
    fn name(&self) -> &'static str {
        "retry"
    }

    fn call<'a>(
        &mut self,
        ctx: &mut Ctx<'a>,
        next: &mut dyn FnMut(&mut Ctx<'a>) -> Outcome<T>,
    ) -> Outcome<T> {
        ctx.attempt = 1;
        let mut attempt = 1u32;
        let mut out = next(ctx);
        loop {
            let score = match &out {
                Outcome::Invalid(s) if self.policy.allows(attempt + 1) => s.score,
                _ => return out,
            };
            let delay = self.policy.delay(attempt, &mut self.rng);
            attempt += 1;
            ctx.attempt = attempt;
            ctx.advance(delay);
            ctx.push(Event::Retry {
                attempt,
                delay,
                score,
            });
            out = next(ctx);
        }
    }

    /// Only the jitter RNG is mutable state; the policy itself is
    /// construction-time configuration.
    fn save_state(&self) -> State {
        State::List(self.rng.state().iter().map(|&w| State::U64(w)).collect())
    }

    fn restore_state(&mut self, state: &State) -> Result<(), PersistError> {
        let words = state
            .as_list()
            .ok_or_else(|| PersistError::Schema("retry rng state is not a list".into()))?;
        if words.len() != 4 {
            return Err(PersistError::Schema(format!(
                "retry rng state expects 4 words, found {}",
                words.len()
            )));
        }
        let mut s = [0u64; 4];
        for (w, st) in s.iter_mut().zip(words) {
            *w = st
                .as_u64()
                .ok_or_else(|| PersistError::Schema("retry rng word is not a u64".into()))?;
        }
        self.rng = SimRng::from_state(s);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Sample, Stack};

    #[test]
    fn backoff_schedules() {
        let c = Backoff::Constant(SimDuration::from_secs(2));
        assert_eq!(c.delay(1), SimDuration::from_secs(2));
        assert_eq!(c.delay(5), SimDuration::from_secs(2));
        let l = Backoff::Linear(SimDuration::from_secs(2));
        assert_eq!(l.delay(3), SimDuration::from_secs(6));
        let e = Backoff::Exponential {
            base: SimDuration::from_secs(5),
            cap: SimDuration::from_secs(60),
        };
        assert_eq!(e.delay(1), SimDuration::from_secs(5));
        assert_eq!(e.delay(2), SimDuration::from_secs(10));
        assert_eq!(e.delay(3), SimDuration::from_secs(20));
        assert_eq!(e.delay(10), SimDuration::from_secs(60), "capped");
        assert_eq!(e.delay(0), e.delay(1), "attempt 0 treated as 1");
    }

    #[test]
    fn exponential_backoff_saturates_instead_of_overflowing() {
        let e = Backoff::Exponential {
            base: SimDuration::from_secs(5),
            cap: SimDuration::MAX,
        };
        assert_eq!(e.delay(200), SimDuration::MAX);
    }

    #[test]
    fn backoff_is_monotone_and_bounded() {
        // Property: for every schedule, delay(n) ≤ delay(n+1) and the
        // exponential schedule never exceeds its cap.
        let cap = SimDuration::from_secs(60);
        let schedules = [
            Backoff::Constant(SimDuration::from_secs(2)),
            Backoff::Linear(SimDuration::from_millis(500)),
            Backoff::Exponential {
                base: SimDuration::from_secs(5),
                cap,
            },
        ];
        for b in schedules {
            for attempt in 1..128 {
                assert!(b.delay(attempt) <= b.delay(attempt + 1), "{b:?}@{attempt}");
            }
        }
        let e = Backoff::Exponential {
            base: SimDuration::from_secs(5),
            cap,
        };
        for attempt in 1..256 {
            assert!(e.delay(attempt) <= cap);
        }
    }

    #[test]
    fn jitter_bounds_and_determinism() {
        let d = SimDuration::from_secs(10);
        let mut rng = SimRng::new(42);
        for _ in 0..100 {
            let full = Jitter::Full.apply(d, &mut rng);
            assert!(full <= d);
            let equal = Jitter::Equal.apply(d, &mut rng);
            assert!(equal >= SimDuration::from_secs(5) && equal <= d);
        }
        assert_eq!(Jitter::None.apply(d, &mut rng), d);
        // Same seed, same draw sequence.
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        assert_eq!(Jitter::Full.apply(d, &mut a), Jitter::Full.apply(d, &mut b));
    }

    #[test]
    fn retry_policy_bounds_attempts() {
        let p = RetryPolicy::default();
        assert!(p.allows(1));
        assert!(p.allows(3));
        assert!(!p.allows(4));
        let mut rng = SimRng::new(1);
        assert!(p.delay(1, &mut rng) <= SimDuration::from_secs(5));
    }

    fn failing_stack(seed: u64) -> (Stack<u32>, Vec<Event>) {
        let mut stack: Stack<u32> = Stack::new().layer(Retry::new(RetryPolicy::default(), seed));
        let out = stack.call("k", 0, &mut |ctx| Sample {
            value: ctx.attempt,
            valid: false,
            score: 0.0,
        });
        assert!(matches!(out, Outcome::Invalid(s) if s.value == 3));
        let events = stack.take_events();
        (stack, events)
    }

    #[test]
    fn same_seed_same_jitter_sequence() {
        // Property: the full retry event sequence (attempts and jittered
        // delays) is a pure function of the seed.
        let (_, a) = failing_stack(99);
        let (_, b) = failing_stack(99);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2, "3 attempts → 2 retries");
        assert!(matches!(a[0], Event::Retry { attempt: 2, .. }));
        assert!(matches!(a[1], Event::Retry { attempt: 3, .. }));
        let (_, c) = failing_stack(100);
        assert_ne!(a, c, "different seed, different delays");
    }

    #[test]
    fn retry_stops_on_first_success_and_advances_clock() {
        let mut stack: Stack<u32> = Stack::new().layer(Retry::new(RetryPolicy::default(), 7));
        let out = stack.call("k", 0, &mut |ctx| Sample {
            value: ctx.attempt,
            valid: ctx.attempt >= 2,
            score: ctx.attempt as f64,
        });
        assert!(matches!(out, Outcome::Ok(s) if s.value == 2));
        assert_eq!(stack.events().len(), 1);
        let Event::Retry { delay, .. } = stack.events()[0] else {
            panic!("expected retry event");
        };
        assert_eq!(
            stack.clock().now().as_micros(),
            delay.as_micros(),
            "clock advanced by the backoff delay"
        );
    }

    #[test]
    fn rng_state_roundtrips_without_reburning_draws() {
        // Burn two draws, save, burn two more; the restored layer must
        // produce the *same* next delays without replaying the first two.
        let mut live = Retry::new(RetryPolicy::default(), 5);
        let rng_probe = |r: &mut Retry| r.policy.delay(1, &mut r.rng);
        rng_probe(&mut live);
        rng_probe(&mut live);
        let saved = Policy::<u32>::save_state(&live);
        let next_live = rng_probe(&mut live);
        let mut restored = Retry::new(RetryPolicy::default(), 0);
        Policy::<u32>::restore_state(&mut restored, &saved).unwrap();
        assert_eq!(rng_probe(&mut restored), next_live);
        assert!(Policy::<u32>::restore_state(&mut restored, &State::Null).is_err());
    }
}
