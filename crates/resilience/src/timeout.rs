//! Per-attempt simulated-time budget.

use crate::policy::{Ctx, Event, Outcome, Policy};
use simkit::time::SimDuration;

/// Invalidates any attempt whose *simulated* elapsed time (as advanced
/// by the evaluation closure and the retry layer's backoff holds) exceeds
/// the budget. Composed inside [`crate::Retry`], an over-budget attempt
/// is retried like any other invalid sample; a stalled cluster therefore
/// costs bounded simulated time instead of an unbounded measurement.
///
/// `budget: None` is the identity layer — it never measures or rewrites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timeout {
    pub budget: Option<SimDuration>,
}

impl Timeout {
    pub fn new(budget: Option<SimDuration>) -> Self {
        Timeout { budget }
    }
}

impl<T> Policy<T> for Timeout {
    fn name(&self) -> &'static str {
        "timeout"
    }

    fn call<'a>(
        &mut self,
        ctx: &mut Ctx<'a>,
        next: &mut dyn FnMut(&mut Ctx<'a>) -> Outcome<T>,
    ) -> Outcome<T> {
        let Some(budget) = self.budget else {
            return next(ctx);
        };
        let started = ctx.now();
        let out = next(ctx);
        let elapsed = ctx.now().since(started);
        if elapsed <= budget {
            return out;
        }
        match out {
            Outcome::Ok(mut sample) | Outcome::Invalid(mut sample) => {
                ctx.push(Event::Timeout {
                    attempt: ctx.attempt,
                    elapsed,
                    budget,
                    score: sample.score,
                });
                sample.valid = false;
                Outcome::Invalid(sample)
            }
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Sample, Stack};
    use crate::retry::{Retry, RetryPolicy};

    fn sample(valid: bool, score: f64) -> Sample<u32> {
        Sample {
            value: 0,
            valid,
            score,
        }
    }

    #[test]
    fn no_budget_is_identity() {
        let mut stack: Stack<u32> = Stack::new().layer(Timeout::new(None));
        let out = stack.call("k", 0, &mut |ctx| {
            ctx.advance(SimDuration::from_secs(1_000_000));
            sample(true, 1.0)
        });
        assert!(out.is_ok());
        assert!(stack.events().is_empty());
    }

    #[test]
    fn over_budget_attempt_is_invalidated() {
        let mut stack: Stack<u32> =
            Stack::new().layer(Timeout::new(Some(SimDuration::from_secs(30))));
        let out = stack.call("k", 0, &mut |ctx| {
            ctx.advance(SimDuration::from_secs(45));
            sample(true, 9.0)
        });
        let Outcome::Invalid(s) = out else {
            panic!("expected invalidation, got {out:?}");
        };
        assert_eq!(s.score, 9.0, "measurement kept for reporting");
        assert_eq!(
            stack.events(),
            &[Event::Timeout {
                attempt: 1,
                elapsed: SimDuration::from_secs(45),
                budget: SimDuration::from_secs(30),
                score: 9.0,
            }]
        );
    }

    #[test]
    fn timeout_inside_retry_triggers_another_attempt() {
        // First attempt stalls past the budget; the retry (no stall)
        // passes. This is the Stall-fault shape end to end.
        let mut stack: Stack<u32> = Stack::new()
            .layer(Retry::new(RetryPolicy::default(), 11))
            .layer(Timeout::new(Some(SimDuration::from_secs(60))));
        let out = stack.call("k", 0, &mut |ctx| {
            let stalled = ctx.attempt == 1;
            ctx.advance(SimDuration::from_secs(if stalled { 90 } else { 25 }));
            sample(true, 4.0)
        });
        assert!(out.is_ok(), "{out:?}");
        assert!(matches!(
            stack.events()[0],
            Event::Timeout { attempt: 1, .. }
        ));
        assert!(matches!(stack.events()[1], Event::Retry { attempt: 2, .. }));
    }

    #[test]
    fn budget_is_per_attempt_not_per_call() {
        // Each retry gets a fresh budget: 3 attempts of 40s each exceed
        // a 60s total but every attempt individually passes.
        let mut stack: Stack<u32> = Stack::new()
            .layer(Retry::new(RetryPolicy::default(), 1))
            .layer(Timeout::new(Some(SimDuration::from_secs(60))));
        let out = stack.call("k", 0, &mut |ctx| {
            ctx.advance(SimDuration::from_secs(40));
            sample(ctx.attempt == 3, 1.0)
        });
        assert!(out.is_ok(), "{out:?}");
        assert!(stack
            .events()
            .iter()
            .all(|e| !matches!(e, Event::Timeout { .. })));
    }
}
