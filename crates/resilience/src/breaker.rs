//! Per-key circuit breaking: closed → open → half-open → closed.

use crate::policy::{Ctx, Event, Outcome, Policy, RejectReason};
use persist::{Checkpointable, PersistError, State};
use std::collections::BTreeMap;

/// Where one key's circuit stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Evaluations flow normally.
    Closed,
    /// Evaluations are refused without measuring.
    Open,
    /// One probe evaluation is in flight; its result closes or re-opens
    /// the circuit.
    HalfOpen,
}

/// State of one open circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OpenEntry {
    /// Evaluations refused since the circuit opened (or since the last
    /// failed probe).
    skips: u32,
    /// A half-open probe is in flight.
    probing: bool,
}

/// What the breaker decided for one incoming evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Circuit closed: evaluate normally.
    Pass,
    /// Circuit open: refuse without measuring.
    Skip,
    /// Circuit half-open: let this one probe through.
    Probe,
}

/// Per-configuration circuit breaker: after `threshold` failed evaluation
/// attempts a configuration is blacklisted and reported as worthless
/// without re-measuring. With `half_open_after: Some(n)`, an open circuit
/// lets a probe evaluation through after `n` refused requests — a probe
/// success closes the circuit, a probe failure re-opens it. With `None`
/// (the default) an open circuit stays open forever, matching the
/// original blacklist semantics.
///
/// Keys are opaque configuration summaries; `BTreeMap`s keep iteration
/// order deterministic.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    threshold: u32,
    half_open_after: Option<u32>,
    failures: BTreeMap<String, u32>,
    open: BTreeMap<String, OpenEntry>,
}

impl CircuitBreaker {
    pub fn new(threshold: u32) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            half_open_after: None,
            failures: BTreeMap::new(),
            open: BTreeMap::new(),
        }
    }

    /// Builder: probe an open circuit after `n` refused evaluations
    /// (`None`: never — open circuits stay open).
    pub fn half_open_after(mut self, n: Option<u32>) -> Self {
        self.half_open_after = n;
        self
    }

    /// Is the configuration blacklisted (open, not currently probing)?
    pub fn is_open(&self, key: &str) -> bool {
        self.open.get(key).map(|e| !e.probing).unwrap_or(false)
    }

    /// Where `key`'s circuit stands.
    pub fn state_of(&self, key: &str) -> BreakerState {
        match self.open.get(key) {
            None => BreakerState::Closed,
            Some(e) if e.probing => BreakerState::HalfOpen,
            Some(_) => BreakerState::Open,
        }
    }

    /// Route one incoming evaluation: pass, skip, or probe. Skips are
    /// counted toward the half-open threshold.
    pub fn on_request(&mut self, key: &str) -> Gate {
        let Some(entry) = self.open.get_mut(key) else {
            return Gate::Pass;
        };
        if entry.probing {
            return Gate::Probe;
        }
        if let Some(after) = self.half_open_after {
            if entry.skips >= after {
                entry.probing = true;
                return Gate::Probe;
            }
        }
        entry.skips += 1;
        Gate::Skip
    }

    /// Record a failed evaluation. Returns `true` if this failure tripped
    /// the breaker (newly opened). A failed half-open probe re-opens the
    /// circuit without counting as a new trip.
    pub fn record_failure(&mut self, key: &str) -> bool {
        if let Some(entry) = self.open.get_mut(key) {
            // Open or probing: a failure (re-)opens, never re-trips.
            *entry = OpenEntry {
                skips: 0,
                probing: false,
            };
            return false;
        }
        let count = self.failures.entry(key.to_string()).or_insert(0);
        *count += 1;
        if *count >= self.threshold {
            self.failures.remove(key);
            self.open.insert(
                key.to_string(),
                OpenEntry {
                    skips: 0,
                    probing: false,
                },
            );
            true
        } else {
            false
        }
    }

    /// Record a successful evaluation: resets the failure count and
    /// closes the circuit for the key (probe success closes half-open).
    pub fn record_success(&mut self, key: &str) {
        self.failures.remove(key);
        self.open.remove(key);
    }

    /// Number of currently blacklisted configurations.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }
}

impl Checkpointable for CircuitBreaker {
    fn save_state(&self) -> State {
        State::map()
            .with("threshold", State::U64(self.threshold as u64))
            .with(
                "half_open_after",
                match self.half_open_after {
                    None => State::Null,
                    Some(n) => State::U64(n as u64),
                },
            )
            .with(
                "failures",
                State::Map(
                    self.failures
                        .iter()
                        .map(|(k, v)| (k.clone(), State::U64(*v as u64)))
                        .collect(),
                ),
            )
            .with(
                "open",
                State::List(
                    self.open
                        .iter()
                        .map(|(k, e)| {
                            State::map()
                                .with("key", State::Str(k.clone()))
                                .with("skips", State::U64(e.skips as u64))
                                .with("probing", State::Bool(e.probing))
                        })
                        .collect(),
                ),
            )
    }

    fn restore_state(&mut self, state: &State) -> Result<(), PersistError> {
        self.threshold = (state.field_u64("threshold")? as u32).max(1);
        self.half_open_after = match state.require("half_open_after")? {
            State::Null => None,
            s => Some(s.as_u64().ok_or_else(|| {
                PersistError::Schema("breaker half_open_after is not a u64".into())
            })? as u32),
        };
        let State::Map(pairs) = state.require("failures")? else {
            return Err(PersistError::Schema("breaker failures is not a map".into()));
        };
        self.failures = pairs
            .iter()
            .map(|(k, v)| {
                v.as_u64()
                    .map(|count| (k.clone(), count as u32))
                    .ok_or_else(|| PersistError::Schema("breaker failure count not a u64".into()))
            })
            .collect::<Result<_, _>>()?;
        self.open = state
            .field_list("open")?
            .iter()
            .map(|e| {
                Ok((
                    e.field_str("key")?.to_string(),
                    OpenEntry {
                        skips: e.field_u64("skips")? as u32,
                        probing: e.field_bool("probing")?,
                    },
                ))
            })
            .collect::<Result<_, PersistError>>()?;
        Ok(())
    }
}

/// The circuit-breaker layer: consults [`CircuitBreaker::on_request`]
/// before evaluating, rejects when the circuit is open, and feeds the
/// final outcome back as a success or failure. A trip logs
/// [`Event::BreakerOpen`] carrying the number of attempts the failed
/// evaluation actually used.
#[derive(Debug, Clone)]
pub struct Breaker {
    breaker: CircuitBreaker,
}

impl Breaker {
    pub fn new(breaker: CircuitBreaker) -> Self {
        Breaker { breaker }
    }

    pub fn inner(&self) -> &CircuitBreaker {
        &self.breaker
    }
}

impl<T> Policy<T> for Breaker {
    fn name(&self) -> &'static str {
        "breaker"
    }

    fn call<'a>(
        &mut self,
        ctx: &mut Ctx<'a>,
        next: &mut dyn FnMut(&mut Ctx<'a>) -> Outcome<T>,
    ) -> Outcome<T> {
        match self.breaker.on_request(ctx.key) {
            Gate::Skip => {
                ctx.push(Event::BreakerSkip);
                return Outcome::Rejected(RejectReason::BreakerOpen);
            }
            Gate::Probe => ctx.push(Event::BreakerProbe),
            Gate::Pass => {}
        }
        let out = next(ctx);
        match &out {
            Outcome::Ok(_) => self.breaker.record_success(ctx.key),
            Outcome::Invalid(_) => {
                if self.breaker.record_failure(ctx.key) {
                    ctx.push(Event::BreakerOpen {
                        attempts: ctx.attempt,
                    });
                }
            }
            // Rejections and degradations originate in other layers and
            // are not evidence about this key.
            Outcome::Rejected(_) | Outcome::Degraded(_) => {}
        }
        out
    }

    fn save_state(&self) -> State {
        self.breaker.save_state()
    }

    fn restore_state(&mut self, state: &State) -> Result<(), PersistError> {
        self.breaker.restore_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_trips_at_threshold_and_resets_on_success() {
        let mut b = CircuitBreaker::new(2);
        assert!(!b.record_failure("cfg-a"), "first failure tolerated");
        assert!(!b.is_open("cfg-a"));
        assert!(b.record_failure("cfg-a"), "second failure trips");
        assert!(b.is_open("cfg-a"));
        assert!(
            !b.record_failure("cfg-a"),
            "already open, not newly tripped"
        );
        assert_eq!(b.open_count(), 1);
        assert!(!b.is_open("cfg-b"), "keys independent");
        b.record_success("cfg-a");
        assert!(!b.is_open("cfg-a"));
        assert_eq!(b.open_count(), 0);
    }

    #[test]
    fn transition_table_closed_open_half_open_closed() {
        // Property: the full closed→open→half-open→closed cycle, plus
        // the failed-probe edge back to open.
        let mut b = CircuitBreaker::new(2).half_open_after(Some(2));
        assert_eq!(b.state_of("k"), BreakerState::Closed);
        assert_eq!(b.on_request("k"), Gate::Pass);
        b.record_failure("k");
        b.record_failure("k");
        assert_eq!(b.state_of("k"), BreakerState::Open);
        // Two skips, then a probe.
        assert_eq!(b.on_request("k"), Gate::Skip);
        assert_eq!(b.on_request("k"), Gate::Skip);
        assert_eq!(b.on_request("k"), Gate::Probe);
        assert_eq!(b.state_of("k"), BreakerState::HalfOpen);
        assert!(!b.is_open("k"), "probing circuit admits the probe");
        // Probe fails: back to open, skip counter reset.
        b.record_failure("k");
        assert_eq!(b.state_of("k"), BreakerState::Open);
        assert_eq!(b.on_request("k"), Gate::Skip);
        assert_eq!(b.on_request("k"), Gate::Skip);
        assert_eq!(b.on_request("k"), Gate::Probe);
        // Probe succeeds: closed, failure count fresh.
        b.record_success("k");
        assert_eq!(b.state_of("k"), BreakerState::Closed);
        assert!(!b.record_failure("k"), "fresh failure count after close");
    }

    #[test]
    fn without_half_open_an_open_circuit_stays_open() {
        let mut b = CircuitBreaker::new(1);
        b.record_failure("k");
        for _ in 0..100 {
            assert_eq!(b.on_request("k"), Gate::Skip);
        }
        assert_eq!(b.state_of("k"), BreakerState::Open);
    }

    #[test]
    fn breaker_checkpoint_roundtrip_preserves_counts_and_open_set() {
        let mut b = CircuitBreaker::new(2).half_open_after(Some(3));
        b.record_failure("cfg-a");
        b.record_failure("cfg-a");
        b.record_failure("cfg-b");
        assert_eq!(b.on_request("cfg-a"), Gate::Skip);
        let saved = b.save_state();
        let mut restored = CircuitBreaker::new(1);
        restored.restore_state(&saved).unwrap();
        assert_eq!(restored.save_state(), saved, "save→restore→save bit-exact");
        assert!(restored.is_open("cfg-a"));
        assert!(!restored.is_open("cfg-b"));
        // The in-flight failure count survives: one more failure trips.
        assert!(restored.record_failure("cfg-b"));
        assert_eq!(restored.open_count(), 2);
        assert!(restored.restore_state(&State::Null).is_err());
    }

    #[test]
    fn layer_rejects_when_open_and_reports_actual_attempts() {
        use crate::policy::{Sample, Stack};
        let mut stack: Stack<u32> = Stack::new()
            .layer(Breaker::new(CircuitBreaker::new(1)))
            .layer(crate::Retry::new(crate::RetryPolicy::default(), 3));
        let out = stack.call("k", 0, &mut |_| Sample {
            value: 0,
            valid: false,
            score: 0.0,
        });
        assert!(matches!(out, Outcome::Invalid(_)));
        // The trip event reports the attempts actually used (3), not a
        // hardcoded policy maximum.
        assert!(stack
            .events()
            .iter()
            .any(|e| matches!(e, Event::BreakerOpen { attempts: 3 })));
        let out = stack.call("k", 1, &mut |_| Sample {
            value: 0,
            valid: true,
            score: 1.0,
        });
        assert!(
            matches!(out, Outcome::Rejected(RejectReason::BreakerOpen)),
            "open circuit refuses without evaluating"
        );
        assert_eq!(stack.events(), &[Event::BreakerSkip]);
    }
}
