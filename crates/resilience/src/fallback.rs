//! Graceful degradation to the best-known sample.

use crate::policy::{Ctx, DegradeReason, Degraded, Event, Outcome, Policy, Sample};
use persist::{PersistError, State};

/// How a domain value round-trips through [`persist::State`], so the
/// fallback's best-known sample survives kill-and-resume bit-exactly.
pub trait StateCodec: Sized {
    fn to_state(&self) -> State;
    fn from_state(state: &State) -> Result<Self, PersistError>;
}

impl StateCodec for u32 {
    fn to_state(&self) -> State {
        State::U64(*self as u64)
    }

    fn from_state(state: &State) -> Result<Self, PersistError> {
        state
            .as_u64()
            .map(|v| v as u32)
            .ok_or_else(|| PersistError::Schema("expected a u64".into()))
    }
}

/// The outermost layer: tracks the best valid sample seen so far and,
/// when every inner layer gives up (budget exhausted or rejected),
/// substitutes it as a [`Outcome::Degraded`] result instead of failing
/// the iteration. With `enabled: false` it is the identity layer and
/// carries no state — sessions that want hard failures keep them.
#[derive(Debug, Clone)]
pub struct Fallback<T> {
    enabled: bool,
    best: Option<Sample<T>>,
}

impl<T> Fallback<T> {
    pub fn new(enabled: bool) -> Self {
        Fallback {
            enabled,
            best: None,
        }
    }

    /// The best valid sample seen so far, if degradation is enabled.
    pub fn best(&self) -> Option<&Sample<T>> {
        self.best.as_ref()
    }
}

impl<T: Clone + StateCodec> Policy<T> for Fallback<T> {
    fn name(&self) -> &'static str {
        "fallback"
    }

    fn call<'a>(
        &mut self,
        ctx: &mut Ctx<'a>,
        next: &mut dyn FnMut(&mut Ctx<'a>) -> Outcome<T>,
    ) -> Outcome<T> {
        let out = next(ctx);
        if !self.enabled {
            return out;
        }
        match out {
            Outcome::Ok(sample) => {
                if self
                    .best
                    .as_ref()
                    .map(|b| sample.score > b.score)
                    .unwrap_or(true)
                {
                    self.best = Some(sample.clone());
                }
                Outcome::Ok(sample)
            }
            Outcome::Invalid(sample) => match &self.best {
                Some(best) => {
                    ctx.push(Event::Degraded {
                        score: best.score,
                        reason: DegradeReason::Invalid,
                    });
                    Outcome::Degraded(Degraded {
                        sample: best.clone(),
                        measured: Some(sample),
                        reason: DegradeReason::Invalid,
                    })
                }
                None => Outcome::Invalid(sample),
            },
            Outcome::Rejected(reason) => match &self.best {
                Some(best) => {
                    ctx.push(Event::Degraded {
                        score: best.score,
                        reason: DegradeReason::Rejected,
                    });
                    Outcome::Degraded(Degraded {
                        sample: best.clone(),
                        measured: None,
                        reason: DegradeReason::Rejected,
                    })
                }
                None => Outcome::Rejected(reason),
            },
            degraded @ Outcome::Degraded(_) => degraded,
        }
    }

    fn save_state(&self) -> State {
        match &self.best {
            None => State::Null,
            Some(s) => State::map()
                .with("value", s.value.to_state())
                .with("valid", State::Bool(s.valid))
                .with("score", State::F64(s.score)),
        }
    }

    fn restore_state(&mut self, state: &State) -> Result<(), PersistError> {
        self.best = match state {
            State::Null => None,
            s => Some(Sample {
                value: T::from_state(s.require("value")?)?,
                valid: s.field_bool("valid")?,
                score: s.field_f64("score")?,
            }),
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{RejectReason, Stack};
    use persist::Checkpointable;

    fn sample(value: u32, valid: bool, score: f64) -> Sample<u32> {
        Sample {
            value,
            valid,
            score,
        }
    }

    #[test]
    fn degrades_to_best_known_on_failure() {
        let mut stack: Stack<u32> = Stack::new().layer(Fallback::new(true));
        assert!(stack.call("k", 0, &mut |_| sample(7, true, 3.0)).is_ok());
        assert!(stack.call("k", 1, &mut |_| sample(9, true, 5.0)).is_ok());
        assert!(stack.call("k", 2, &mut |_| sample(1, true, 4.0)).is_ok());
        let out = stack.call("k", 3, &mut |_| sample(0, false, 0.0));
        let Outcome::Degraded(d) = out else {
            panic!("expected degradation, got {out:?}");
        };
        // Property: the substituted sample is exactly the best valid one
        // seen so far — never a worse or unseen configuration.
        assert_eq!(d.sample.value, 9);
        assert_eq!(d.sample.score, 5.0);
        assert_eq!(d.reason, DegradeReason::Invalid);
        assert_eq!(d.measured.as_ref().map(|m| m.score), Some(0.0));
        assert_eq!(
            stack.events(),
            &[Event::Degraded {
                score: 5.0,
                reason: DegradeReason::Invalid
            }]
        );
    }

    #[test]
    fn without_history_failures_pass_through() {
        let mut stack: Stack<u32> = Stack::new().layer(Fallback::new(true));
        assert!(matches!(
            stack.call("k", 0, &mut |_| sample(0, false, 0.0)),
            Outcome::Invalid(_)
        ));
    }

    #[test]
    fn disabled_fallback_is_identity_with_no_state() {
        let mut stack: Stack<u32> = Stack::new().layer(Fallback::new(false));
        assert!(stack.call("k", 0, &mut |_| sample(7, true, 3.0)).is_ok());
        let out = stack.call("k", 1, &mut |_| sample(0, false, 0.0));
        assert!(matches!(out, Outcome::Invalid(_)), "no degradation");
        let layer = Fallback::<u32>::new(false);
        assert_eq!(Policy::<u32>::save_state(&layer), State::Null);
    }

    #[test]
    fn best_sample_survives_state_roundtrip() {
        let mut stack: Stack<u32> = Stack::new().layer(Fallback::new(true));
        assert!(stack.call("k", 0, &mut |_| sample(9, true, 5.0)).is_ok());
        let saved = stack.save_state();
        let mut fresh: Stack<u32> = Stack::new().layer(Fallback::new(true));
        fresh.restore_state(&saved).unwrap();
        assert_eq!(fresh.save_state(), saved, "bit-exact");
        let out = fresh.call("k", 1, &mut |_| sample(0, false, 0.0));
        assert!(matches!(out, Outcome::Degraded(d) if d.sample.value == 9));
    }

    #[test]
    fn rejection_degrades_without_a_measurement() {
        let mut stack: Stack<u32> = Stack::new()
            .layer(Fallback::new(true))
            .layer(crate::Breaker::new(crate::CircuitBreaker::new(1)));
        assert!(stack.call("k", 0, &mut |_| sample(3, true, 2.0)).is_ok());
        assert!(matches!(
            stack.call("k", 1, &mut |_| sample(0, false, 0.0)),
            Outcome::Degraded(_)
        ));
        // Breaker now open: the rejection also degrades.
        let out = stack.call("k", 2, &mut |_| sample(0, true, 9.0));
        let Outcome::Degraded(d) = out else {
            panic!("expected degradation, got {out:?}");
        };
        assert_eq!(d.reason, DegradeReason::Rejected);
        assert!(d.measured.is_none(), "nothing was measured");
        assert_eq!(d.sample.value, 3);
        // Without history, the rejection passes through unchanged.
        let mut exhausted = crate::Bulkhead::with_cap(1);
        assert!(exhausted.try_acquire());
        let mut bare: Stack<u32> = Stack::new().layer(Fallback::new(true)).layer(exhausted);
        assert!(matches!(
            bare.call("k", 0, &mut |_| sample(0, true, 1.0)),
            Outcome::Rejected(RejectReason::BulkheadFull)
        ));
    }
}
