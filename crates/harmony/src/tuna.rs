//! TUNA-style noise-robust tuning.
//!
//! Live WIPS measurements are noisy: the `faults` crate's seeded noise
//! spikes can inflate a mediocre configuration's score by 4x for one
//! window. A tuner that trusts raw maxima (simplex does) will crown
//! whichever configuration got lucky. Following TUNA (Fekry et al.),
//! this tuner defends itself three ways:
//!
//! * every configuration keeps its **full observation history**, and its
//!   performance estimate is a CI-**weighted median** of that history —
//!   a single 4x spike cannot move a median the way it moves a max;
//! * candidates that look promising after one observation are
//!   **re-confirmed** with extra replications before they may displace
//!   the incumbent — lucky spikes fail their confirmation runs;
//! * observations arrive as typed [`Measurement`]s and are weighted by
//!   `replications / (1 + relative_ci)`, so wide-CI (low-trust) windows
//!   count for less than tight ones.
//!
//! `best()` therefore reports the *estimated* performance of the most
//! trustworthy configuration, not the largest number ever seen — the
//! property the `exp_tuners` noise experiment measures.

use crate::space::{Configuration, ParamSpace};
use crate::tuner::{
    opt_config_from_state, opt_config_state, rng_from_state, rng_state, Measurement, Tuner,
};
use persist::{Checkpointable, PersistError, State};
use simkit::rng::SimRng;

/// One explored configuration with its observation history.
#[derive(Debug, Clone)]
struct Entry {
    config: Configuration,
    obs: Vec<f64>,
    weights: Vec<f64>,
}

impl Entry {
    fn new(config: Configuration) -> Self {
        Entry {
            config,
            obs: Vec::new(),
            weights: Vec::new(),
        }
    }

    fn push(&mut self, m: &Measurement) {
        let weight = m.replications.max(1) as f64 / (1.0 + m.relative_ci());
        self.obs.push(m.mean);
        self.weights.push(weight);
    }

    /// CI-weighted median of the observation history: the smallest
    /// observation at which the cumulative weight reaches half the
    /// total. Robust to one-sided spikes in either direction.
    fn estimate(&self) -> f64 {
        debug_assert_eq!(self.obs.len(), self.weights.len());
        if self.obs.is_empty() {
            return f64::NEG_INFINITY;
        }
        let mut order: Vec<usize> = (0..self.obs.len()).collect();
        order.sort_by(|&a, &b| {
            self.obs[a]
                .partial_cmp(&self.obs[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let total: f64 = self.weights.iter().sum();
        let half = total / 2.0;
        let mut cumulative = 0.0;
        for &i in &order {
            cumulative += self.weights[i];
            if cumulative >= half {
                return self.obs[i];
            }
        }
        self.obs[order[order.len() - 1]]
    }
}

/// What the next proposal is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Propose a fresh neighbour of the incumbent.
    Explore,
    /// Re-measure entry `entry` `remaining` more times before judging it.
    Confirm { entry: usize, remaining: u32 },
}

/// TUNA's noise-robust tuning: replicated confirmation plus CI-weighted
/// median estimates (ask–tell).
#[derive(Debug, Clone)]
pub struct TunaTuner {
    space: ParamSpace,
    rng: SimRng,
    seed: u64,
    /// Neighbourhood reach as a fraction of each dimension's span.
    reach: f64,
    /// Extra replications a candidate needs before it can displace the
    /// incumbent.
    confirmations: u32,
    start: Option<Configuration>,
    entries: Vec<Entry>,
    incumbent: Option<usize>,
    mode: Mode,
    /// Index of the entry awaiting its observation, if any.
    pending: Option<usize>,
    evaluations: u64,
}

impl TunaTuner {
    pub fn new(space: ParamSpace, seed: u64) -> Self {
        TunaTuner {
            space,
            rng: SimRng::new(seed),
            seed,
            reach: 0.25,
            confirmations: 2,
            start: None,
            entries: Vec::new(),
            incumbent: None,
            mode: Mode::Explore,
            pending: None,
            evaluations: 0,
        }
    }

    /// Builder: neighbourhood reach as a fraction of each span.
    pub fn reach(mut self, reach: f64) -> Self {
        assert!(reach > 0.0 && reach <= 1.0, "reach must be in (0, 1]");
        self.reach = reach;
        self
    }

    /// Builder: replications required to confirm a promising candidate.
    pub fn confirmations(mut self, n: u32) -> Self {
        assert!(n >= 1, "confirmation needs at least one replication");
        self.confirmations = n;
        self
    }

    /// Builder: seed the search from a known-good configuration.
    pub fn start_from(mut self, config: Configuration) -> Self {
        self.start = Some(self.space.clamp(config.values()));
        self
    }

    fn incumbent_estimate(&self) -> f64 {
        self.incumbent
            .map(|i| self.entries[i].estimate())
            .unwrap_or(f64::NEG_INFINITY)
    }

    /// Find or create the entry for a configuration.
    fn entry_index(&mut self, config: &Configuration) -> usize {
        if let Some(i) = self.entries.iter().position(|e| &e.config == config) {
            return i;
        }
        self.entries.push(Entry::new(config.clone()));
        self.entries.len() - 1
    }

    /// Annealing-style neighbour of the incumbent.
    fn neighbour(&mut self, base: &Configuration) -> Configuration {
        let dims = self.space.dims();
        let moved = 1 + self.rng.next_below(dims.min(3) as u64) as usize;
        let mut values = base.values().to_vec();
        for _ in 0..moved {
            let d = self.rng.next_below(dims as u64) as usize;
            let def = self.space.def(d);
            let sd = (def.span() as f64 * self.reach / 2.0).max(1.0);
            let delta = self.rng.normal(0.0, sd).round() as i64;
            values[d] = def.clamp(values[d] + delta);
        }
        Configuration::from_values(values)
    }

    /// The configuration the next propose() will hand out.
    fn next_config(&mut self) -> (usize, Configuration) {
        match self.mode {
            Mode::Confirm { entry, .. } => (entry, self.entries[entry].config.clone()),
            Mode::Explore => match self.incumbent {
                None => {
                    let start = self
                        .start
                        .clone()
                        .unwrap_or_else(|| self.space.default_config());
                    let i = self.entry_index(&start);
                    (i, start)
                }
                Some(inc) => {
                    let base = self.entries[inc].config.clone();
                    let candidate = self.neighbour(&base);
                    let i = self.entry_index(&candidate);
                    (i, candidate)
                }
            },
        }
    }

    fn settle(&mut self, entry: usize) {
        match self.mode {
            Mode::Confirm {
                entry: confirming,
                remaining,
            } => {
                debug_assert_eq!(entry, confirming);
                if remaining > 1 {
                    self.mode = Mode::Confirm {
                        entry,
                        remaining: remaining - 1,
                    };
                    return;
                }
                // Confirmation complete: adopt iff the replicated
                // estimate beats the incumbent's.
                if self.entries[entry].estimate() > self.incumbent_estimate() {
                    self.incumbent = Some(entry);
                }
                self.mode = Mode::Explore;
            }
            Mode::Explore => {
                match self.incumbent {
                    None => {
                        // First observation ever: the start point becomes
                        // the incumbent and is confirmed like any other.
                        self.incumbent = Some(entry);
                        if self.confirmations > 1 {
                            self.mode = Mode::Confirm {
                                entry,
                                remaining: self.confirmations - 1,
                            };
                        }
                    }
                    Some(_) => {
                        // A candidate that looks better after one window
                        // must survive confirmation before adoption.
                        if self.entries[entry].estimate() > self.incumbent_estimate() {
                            self.mode = Mode::Confirm {
                                entry,
                                remaining: self.confirmations,
                            };
                        }
                    }
                }
            }
        }
    }
}

impl Tuner for TunaTuner {
    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn propose(&mut self) -> Configuration {
        assert!(self.pending.is_none(), "propose() twice without observe()");
        let (entry, config) = self.next_config();
        self.pending = Some(entry);
        config
    }

    fn observe(&mut self, performance: f64) {
        self.observe_measurement(Measurement::point(performance));
    }

    /// The primary observation path: the CI and replication count feed
    /// the entry's trust weights.
    fn observe_measurement(&mut self, m: Measurement) {
        let Some(entry) = self.pending.take() else {
            panic!("observe() without propose()");
        };
        self.entries[entry].push(&m);
        self.evaluations += 1;
        self.settle(entry);
    }

    /// Best by *estimate*, not by raw maximum: the entry with the
    /// highest weighted-median estimate among those measured at least as
    /// often as the best-replicated entry requires (so a single lucky
    /// spike cannot win while confirmed entries exist).
    fn best(&self) -> Option<(&Configuration, f64)> {
        let deepest = self.entries.iter().map(|e| e.obs.len()).max()?;
        let need = deepest.min(self.confirmations as usize);
        self.entries
            .iter()
            .filter(|e| e.obs.len() >= need && !e.obs.is_empty())
            .map(|e| (e, e.estimate()))
            .reduce(|a, b| if b.1 > a.1 { b } else { a })
            .map(|(e, est)| (&e.config, est))
    }

    fn evaluations(&self) -> u64 {
        self.evaluations
    }

    fn name(&self) -> &'static str {
        "tuna"
    }

    fn reset(&mut self) {
        let start = self.start.clone();
        *self = TunaTuner::new(self.space.clone(), self.seed)
            .reach(self.reach)
            .confirmations(self.confirmations);
        self.start = start;
    }

    fn diagnostics(&self) -> Vec<(&'static str, f64)> {
        let confirming = matches!(self.mode, Mode::Confirm { .. });
        vec![
            ("entries", self.entries.len() as f64),
            ("confirming", if confirming { 1.0 } else { 0.0 }),
            ("incumbent_est", {
                let e = self.incumbent_estimate();
                if e.is_finite() {
                    e
                } else {
                    0.0
                }
            }),
        ]
    }

    /// During confirmation the next proposal is fully determined.
    fn speculate(&self) -> Vec<Vec<Configuration>> {
        if self.pending.is_some() {
            return Vec::new();
        }
        match self.mode {
            Mode::Confirm { entry, remaining } => {
                let config = self.entries[entry].config.clone();
                (0..remaining).map(|_| vec![config.clone()]).collect()
            }
            Mode::Explore => Vec::new(),
        }
    }

    fn save_state(&self) -> State {
        Checkpointable::save_state(self)
    }

    fn restore_state(&mut self, state: &State) -> Result<(), PersistError> {
        Checkpointable::restore_state(self, state)
    }
}

impl Checkpointable for TunaTuner {
    fn save_state(&self) -> State {
        let (mode, mode_entry, mode_remaining) = match self.mode {
            Mode::Explore => ("explore", 0u64, 0u64),
            Mode::Confirm { entry, remaining } => ("confirm", entry as u64, remaining as u64),
        };
        State::map()
            .with("algorithm", State::Str(self.name().to_string()))
            .with("seed", State::U64(self.seed))
            .with("reach", State::F64(self.reach))
            .with("confirmations", State::U64(self.confirmations as u64))
            .with("start", opt_config_state(&self.start))
            .with(
                "entries",
                State::List(
                    self.entries
                        .iter()
                        .map(|e| {
                            State::map()
                                .with("values", State::i64_list(e.config.values()))
                                .with("obs", State::f64_list(&e.obs))
                                .with("weights", State::f64_list(&e.weights))
                        })
                        .collect(),
                ),
            )
            .with(
                "incumbent",
                match self.incumbent {
                    Some(i) => State::U64(i as u64),
                    None => State::Null,
                },
            )
            .with("mode", State::Str(mode.to_string()))
            .with("mode_entry", State::U64(mode_entry))
            .with("mode_remaining", State::U64(mode_remaining))
            .with(
                "pending",
                match self.pending {
                    Some(i) => State::U64(i as u64),
                    None => State::Null,
                },
            )
            .with("evaluations", State::U64(self.evaluations))
            .with("rng", rng_state(&self.rng))
    }

    fn restore_state(&mut self, state: &State) -> Result<(), PersistError> {
        let entries = state
            .field_list("entries")?
            .iter()
            .map(|e| {
                let config = Configuration::from_values(e.require("values")?.to_i64_vec()?);
                if config.values().len() != self.space.dims() {
                    return Err(PersistError::Schema(format!(
                        "tuna entry has {} dims, space has {}",
                        config.values().len(),
                        self.space.dims()
                    )));
                }
                Ok(Entry {
                    config,
                    obs: e.require("obs")?.to_f64_vec()?,
                    weights: e.require("weights")?.to_f64_vec()?,
                })
            })
            .collect::<Result<Vec<_>, PersistError>>()?;
        let mode = match state.field_str("mode")? {
            "explore" => Mode::Explore,
            "confirm" => Mode::Confirm {
                entry: state.field_u64("mode_entry")? as usize,
                remaining: state.field_u64("mode_remaining")? as u32,
            },
            other => {
                return Err(PersistError::Schema(format!("unknown tuna mode '{other}'")));
            }
        };
        self.seed = state.field_u64("seed")?;
        self.reach = state.field_f64("reach")?;
        self.confirmations = state.field_u64("confirmations")? as u32;
        self.start = opt_config_from_state(state.require("start")?)?;
        self.incumbent = match state.require("incumbent")? {
            State::Null => None,
            s => Some(
                s.as_u64()
                    .ok_or_else(|| PersistError::Schema("field 'incumbent' is not a u64".into()))?
                    as usize,
            ),
        };
        self.mode = mode;
        self.pending = match state.require("pending")? {
            State::Null => None,
            s => Some(
                s.as_u64()
                    .ok_or_else(|| PersistError::Schema("field 'pending' is not a u64".into()))?
                    as usize,
            ),
        };
        if let Mode::Confirm { entry, .. } = self.mode {
            if entry >= entries.len() {
                return Err(PersistError::Schema(
                    "tuna confirm entry out of range".into(),
                ));
            }
        }
        self.evaluations = state.field_u64("evaluations")?;
        self.rng = rng_from_state(state.require("rng")?)?;
        self.entries = entries;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamDef;

    fn space() -> ParamSpace {
        ParamSpace::new(vec![
            ParamDef::new("x", 0, 200, 20),
            ParamDef::new("y", 0, 200, 180),
        ])
    }

    fn objective(v: &[i64]) -> f64 {
        let dx = v[0] as f64 - 120.0;
        let dy = v[1] as f64 - 80.0;
        1000.0 - (dx * dx + dy * dy).sqrt()
    }

    #[test]
    fn improves_on_quadratic_and_stays_in_bounds() {
        let s = space();
        let mut t = TunaTuner::new(s.clone(), 42);
        let mut first = None;
        for _ in 0..120 {
            let c = t.propose();
            assert!(s.validate(&c).is_ok(), "{c}");
            let p = objective(c.values());
            first.get_or_insert(p);
            t.observe(p);
        }
        let (_, perf) = t.best().unwrap();
        assert!(perf > first.unwrap(), "never improved on the default");
    }

    #[test]
    fn first_proposals_measure_and_confirm_the_start() {
        let s = space();
        let mut t = TunaTuner::new(s.clone(), 1).confirmations(3);
        for i in 0..3 {
            let c = t.propose();
            assert_eq!(c, s.default_config(), "confirmation {i} re-measures");
            t.observe(5.0);
        }
        assert_eq!(t.entries.len(), 1);
        assert_eq!(t.entries[0].obs.len(), 3);
    }

    #[test]
    fn one_lucky_spike_does_not_become_best() {
        let s = space();
        let mut t = TunaTuner::new(s.clone(), 7).confirmations(2);
        // The true objective is flat at 100, but one window spikes 4x.
        let mut spiked = false;
        for _ in 0..60 {
            let c = t.propose();
            let honest = 100.0;
            let p = if !spiked && c != s.default_config() {
                spiked = true;
                honest * 4.0
            } else {
                honest
            };
            t.observe(p);
        }
        assert!(spiked, "the spike must have been injected");
        let (_, est) = t.best().unwrap();
        assert!(
            est <= 110.0,
            "a single 4x spike leaked into the estimate: {est}"
        );
    }

    #[test]
    fn wide_ci_observations_weigh_less_than_tight_ones() {
        let mut e = Entry::new(space().default_config());
        // Two trusted observations at 100, one untrusted spike at 400.
        e.push(&Measurement::point(100.0).with_ci(1.0));
        e.push(&Measurement::point(100.0).with_ci(1.0));
        e.push(&Measurement::point(400.0).with_ci(350.0));
        assert_eq!(e.estimate(), 100.0, "weighted median resists the spike");
    }

    #[test]
    fn confirmation_gates_adoption() {
        let s = space();
        let mut t = TunaTuner::new(s.clone(), 3).confirmations(2);
        // Establish the incumbent (start point, confirmed).
        for _ in 0..2 {
            let c = t.propose();
            assert_eq!(c, s.default_config());
            t.observe(100.0);
        }
        // A candidate spikes on first sight, then fails confirmation.
        let candidate = t.propose();
        assert_ne!(candidate, s.default_config());
        t.observe(400.0);
        assert!(matches!(t.mode, Mode::Confirm { .. }), "spike → confirm");
        for _ in 0..2 {
            let c = t.propose();
            assert_eq!(c, candidate, "confirmation re-measures the candidate");
            t.observe(50.0);
        }
        // Median of [400, 50, 50] is 50 < 100: incumbent must hold.
        let inc = t.incumbent.unwrap();
        assert_eq!(t.entries[inc].config, s.default_config());
    }

    #[test]
    fn speculation_promises_confirmation_runs() {
        let s = space();
        let mut t = TunaTuner::new(s.clone(), 9).confirmations(3);
        let c = t.propose();
        t.observe(100.0);
        // Start adopted; two confirmations of it remain.
        let ahead = t.speculate();
        assert_eq!(ahead.len(), 2);
        for (k, step) in ahead.iter().enumerate() {
            assert_eq!(step, &vec![c.clone()], "offset {k}");
            let p = t.propose();
            assert_eq!(p, c);
            t.observe(100.0);
        }
        assert!(t.speculate().is_empty(), "explore steps are not promised");
    }

    #[test]
    fn checkpoint_roundtrip_resumes_identical_proposals() {
        let mut a = TunaTuner::new(space(), 11).confirmations(2);
        for _ in 0..15 {
            let c = a.propose();
            a.observe(objective(c.values()));
        }
        let saved = Checkpointable::save_state(&a);
        let mut b = TunaTuner::new(space(), 999);
        Checkpointable::restore_state(&mut b, &saved).expect("restore");
        assert_eq!(Checkpointable::save_state(&b), saved, "round trip");
        for i in 0..40 {
            let ca = a.propose();
            let cb = b.propose();
            assert_eq!(ca, cb, "proposal {i} diverged");
            let p = objective(ca.values());
            a.observe(p);
            b.observe(p);
        }
        assert_eq!(
            a.best().map(|(c, p)| (c.clone(), p)),
            b.best().map(|(c, p)| (c.clone(), p))
        );
    }

    #[test]
    fn restore_rejects_wrong_dims() {
        let mut a = TunaTuner::new(space(), 1);
        let c = a.propose();
        a.observe(objective(c.values()));
        let saved = Checkpointable::save_state(&a);
        let other = ParamSpace::new(vec![ParamDef::new("z", 0, 10, 5)]);
        let mut b = TunaTuner::new(other, 1);
        assert!(Checkpointable::restore_state(&mut b, &saved).is_err());
    }

    #[test]
    fn reset_forgets_search_state() {
        let mut t = TunaTuner::new(space(), 13);
        for _ in 0..10 {
            let c = t.propose();
            t.observe(objective(c.values()));
        }
        t.reset();
        assert_eq!(t.evaluations(), 0);
        assert!(t.best().is_none());
        assert_eq!(t.propose(), space().default_config());
    }

    #[test]
    #[should_panic(expected = "propose() twice")]
    fn double_propose_panics() {
        let mut t = TunaTuner::new(space(), 1);
        t.propose();
        t.propose();
    }

    #[test]
    #[should_panic(expected = "observe() without propose()")]
    fn observe_without_propose_panics() {
        let mut t = TunaTuner::new(space(), 1);
        t.observe(1.0);
    }
}
