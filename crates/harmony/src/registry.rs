//! Constructor-by-name tuner registry.
//!
//! One string names one tuning algorithm everywhere: the `--tuner` CLI
//! flag, `SessionConfig::tuner`, checkpoint fingerprints, and the
//! conformance suite all resolve through [`make_tuner`]. Adding a tuner
//! means adding one arm here; everything downstream (CLI validation,
//! the cross-tuner experiment, the conformance tests) picks it up from
//! [`tuner_names`].

use crate::annealing::SimulatedAnnealing;
use crate::baseline::{CoordinateDescent, RandomSearch};
use crate::bestconfig::BestConfigTuner;
use crate::classytune::ClassyTuneTuner;
use crate::simplex::SimplexTuner;
use crate::space::{Configuration, ParamSpace};
use crate::tuna::TunaTuner;
use crate::tuner::Tuner;

/// Every registered tuner name, in presentation order.
pub const TUNER_NAMES: [&str; 8] = [
    "simplex",
    "simplex-conservative",
    "bestconfig",
    "classytune",
    "tuna",
    "annealing",
    "random",
    "coordinate",
];

/// Registered tuner names (what `--tuner` accepts).
pub fn tuner_names() -> &'static [&'static str] {
    &TUNER_NAMES
}

/// The requested tuner name is not registered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownTuner(pub String);

impl std::fmt::Display for UnknownTuner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown tuner '{}' (available: {})",
            self.0,
            TUNER_NAMES.join(", ")
        )
    }
}

impl std::error::Error for UnknownTuner {}

/// Construct a registered tuner over `space`.
///
/// `seed` feeds the stochastic tuners' deterministic RNG streams; the
/// deterministic ones (simplex, coordinate) ignore it, so two calls with
/// the same name, space, and seed always yield byte-identical behaviour.
pub fn make_tuner(
    name: &str,
    space: ParamSpace,
    seed: u64,
) -> Result<Box<dyn Tuner + Send>, UnknownTuner> {
    make_tuner_seeded(name, space, None, seed)
}

/// Like [`make_tuner`], but seed the search from a known-good starting
/// configuration where the algorithm supports it (all except the
/// baselines, whose protocols fix their own starting point).
pub fn make_tuner_seeded(
    name: &str,
    space: ParamSpace,
    start: Option<&Configuration>,
    seed: u64,
) -> Result<Box<dyn Tuner + Send>, UnknownTuner> {
    let tuner: Box<dyn Tuner + Send> = match name {
        "simplex" => match start {
            Some(c) => Box::new(SimplexTuner::with_seed(space, c.clone())),
            None => Box::new(SimplexTuner::new(space)),
        },
        "simplex-conservative" => match start {
            Some(c) => Box::new(SimplexTuner::with_seed(space, c.clone()).conservative(true)),
            None => Box::new(SimplexTuner::new(space).conservative(true)),
        },
        "bestconfig" => {
            let t = BestConfigTuner::new(space, seed);
            Box::new(match start {
                Some(c) => t.start_from(c.clone()),
                None => t,
            })
        }
        "classytune" => {
            let t = ClassyTuneTuner::new(space, seed);
            Box::new(match start {
                Some(c) => t.start_from(c.clone()),
                None => t,
            })
        }
        "tuna" => {
            let t = TunaTuner::new(space, seed);
            Box::new(match start {
                Some(c) => t.start_from(c.clone()),
                None => t,
            })
        }
        "annealing" => Box::new(SimulatedAnnealing::new(space, seed)),
        "random" => Box::new(RandomSearch::new(space, seed)),
        "coordinate" => Box::new(CoordinateDescent::new(space)),
        other => return Err(UnknownTuner(other.to_string())),
    };
    Ok(tuner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamDef;

    fn space() -> ParamSpace {
        ParamSpace::new(vec![
            ParamDef::new("x", 0, 100, 10),
            ParamDef::new("y", 0, 100, 90),
        ])
    }

    #[test]
    fn every_registered_name_constructs_and_reports_itself() {
        for name in tuner_names() {
            let t = make_tuner(name, space(), 42).expect(name);
            assert_eq!(&t.name(), name, "name() must match the registry key");
        }
    }

    #[test]
    fn unknown_names_error_with_the_available_list() {
        let Err(err) = make_tuner("magic", space(), 1) else {
            panic!("'magic' must not resolve to a tuner");
        };
        let msg = err.to_string();
        assert!(msg.contains("unknown tuner 'magic'"), "{msg}");
        for name in tuner_names() {
            assert!(msg.contains(name), "error must list '{name}': {msg}");
        }
    }

    #[test]
    fn same_name_and_seed_is_deterministic() {
        for name in tuner_names() {
            let mut a = make_tuner(name, space(), 7).unwrap();
            let mut b = make_tuner(name, space(), 7).unwrap();
            for i in 0..20 {
                let ca = a.propose();
                let cb = b.propose();
                assert_eq!(ca, cb, "{name} diverged at proposal {i}");
                let p = -(ca.get(0) - 60).abs() as f64;
                a.observe(p);
                b.observe(p);
            }
        }
    }

    #[test]
    fn start_seeding_is_honoured_where_supported() {
        let s = space();
        let start = Configuration::from_values(vec![33, 44]);
        for name in [
            "simplex",
            "simplex-conservative",
            "bestconfig",
            "classytune",
            "tuna",
        ] {
            let mut t = make_tuner_seeded(name, s.clone(), Some(&start), 5).unwrap();
            assert_eq!(t.propose(), start, "{name} must start from the seed");
        }
    }
}
