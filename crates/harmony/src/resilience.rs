//! Resilience primitives for tuning sessions.
//!
//! Modeled on the usual production retry stack (bounded retries,
//! exponential backoff, jitter, circuit breaking) but fully deterministic:
//! jitter draws from a caller-supplied [`SimRng`] and delays are simulated
//! time, so a failed evaluation replays identically under the same seed.

use persist::{Checkpointable, PersistError, State};
use simkit::rng::SimRng;
use simkit::time::SimDuration;
use std::collections::BTreeMap;

/// How the base delay grows with the attempt number (1-indexed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Backoff {
    /// Same delay every attempt.
    Constant(SimDuration),
    /// `base * attempt`.
    Linear(SimDuration),
    /// `base * 2^(attempt-1)`, capped.
    Exponential { base: SimDuration, cap: SimDuration },
}

impl Backoff {
    /// The un-jittered delay before attempt `attempt` (1-indexed;
    /// attempt 0 is treated as 1).
    pub fn delay(&self, attempt: u32) -> SimDuration {
        let attempt = attempt.max(1);
        match *self {
            Backoff::Constant(d) => d,
            Backoff::Linear(base) => {
                SimDuration::from_micros(base.as_micros().saturating_mul(attempt as u64))
            }
            Backoff::Exponential { base, cap } => {
                let shift = (attempt - 1).min(63);
                let scaled = base.as_micros().saturating_mul(1u64 << shift);
                SimDuration::from_micros(scaled.min(cap.as_micros()))
            }
        }
    }
}

/// How jitter perturbs the backoff delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Jitter {
    /// No jitter: the deterministic schedule as-is.
    #[default]
    None,
    /// Uniform in `[0, delay]`.
    Full,
    /// Uniform in `[delay/2, delay]` (AWS "equal jitter").
    Equal,
}

impl Jitter {
    pub fn apply(&self, delay: SimDuration, rng: &mut SimRng) -> SimDuration {
        let us = delay.as_micros();
        if us == 0 {
            return delay;
        }
        match self {
            Jitter::None => delay,
            Jitter::Full => SimDuration::from_micros(rng.next_below(us + 1)),
            Jitter::Equal => {
                let half = us / 2;
                SimDuration::from_micros(half + rng.next_below(us - half + 1))
            }
        }
    }
}

/// A bounded retry policy: at most `max_attempts` tries per evaluation,
/// with jittered backoff between them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    pub max_attempts: u32,
    pub backoff: Backoff,
    pub jitter: Jitter,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: Backoff::Exponential {
                base: SimDuration::from_secs(5),
                cap: SimDuration::from_secs(60),
            },
            jitter: Jitter::Equal,
        }
    }
}

impl RetryPolicy {
    /// Whether attempt `attempt` (1-indexed) is allowed.
    pub fn allows(&self, attempt: u32) -> bool {
        attempt <= self.max_attempts
    }

    /// The jittered delay to wait before retrying after attempt `attempt`.
    pub fn delay(&self, attempt: u32, rng: &mut SimRng) -> SimDuration {
        self.jitter.apply(self.backoff.delay(attempt), rng)
    }
}

/// Per-configuration circuit breaker: after `threshold` failed evaluation
/// attempts, a configuration is blacklisted and reported as worthless
/// without re-measuring. Keys are opaque configuration summaries; the
/// `BTreeMap` keeps iteration order deterministic.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    threshold: u32,
    failures: BTreeMap<String, u32>,
    open: BTreeMap<String, bool>,
}

impl CircuitBreaker {
    pub fn new(threshold: u32) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            failures: BTreeMap::new(),
            open: BTreeMap::new(),
        }
    }

    /// Is the configuration blacklisted?
    pub fn is_open(&self, key: &str) -> bool {
        self.open.get(key).copied().unwrap_or(false)
    }

    /// Record a failed evaluation. Returns `true` if this failure tripped
    /// the breaker (newly opened).
    pub fn record_failure(&mut self, key: &str) -> bool {
        let count = self.failures.entry(key.to_string()).or_insert(0);
        *count += 1;
        if *count >= self.threshold && !self.is_open(key) {
            self.open.insert(key.to_string(), true);
            true
        } else {
            false
        }
    }

    /// Record a successful evaluation: resets the failure count and closes
    /// the breaker for the key.
    pub fn record_success(&mut self, key: &str) {
        self.failures.remove(key);
        self.open.remove(key);
    }

    /// Number of currently blacklisted configurations.
    pub fn open_count(&self) -> usize {
        self.open.values().filter(|v| **v).count()
    }
}

impl Checkpointable for CircuitBreaker {
    fn save_state(&self) -> State {
        State::map()
            .with("threshold", State::U64(self.threshold as u64))
            .with(
                "failures",
                State::Map(
                    self.failures
                        .iter()
                        .map(|(k, v)| (k.clone(), State::U64(*v as u64)))
                        .collect(),
                ),
            )
            .with(
                "open",
                State::List(
                    self.open
                        .iter()
                        .filter(|(_, v)| **v)
                        .map(|(k, _)| State::Str(k.clone()))
                        .collect(),
                ),
            )
    }

    fn restore_state(&mut self, state: &State) -> Result<(), PersistError> {
        self.threshold = (state.field_u64("threshold")? as u32).max(1);
        let State::Map(pairs) = state.require("failures")? else {
            return Err(PersistError::Schema("breaker failures is not a map".into()));
        };
        self.failures = pairs
            .iter()
            .map(|(k, v)| {
                v.as_u64()
                    .map(|count| (k.clone(), count as u32))
                    .ok_or_else(|| PersistError::Schema("breaker failure count not a u64".into()))
            })
            .collect::<Result<_, _>>()?;
        self.open = state
            .field_list("open")?
            .iter()
            .map(|k| {
                k.as_str()
                    .map(|key| (key.to_string(), true))
                    .ok_or_else(|| PersistError::Schema("breaker open key not a string".into()))
            })
            .collect::<Result<_, _>>()?;
        Ok(())
    }
}

/// Rejects samples whose confidence interval exploded (a noise spike or a
/// mid-measurement fault): the sample is re-measured instead of being fed
/// to the tuner, up to `max_remeasures` times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutlierGate {
    /// Maximum acceptable `ci_half / wips` ratio.
    pub max_rel_half_width: f64,
    /// Re-measurement budget per sample.
    pub max_remeasures: u32,
}

impl Default for OutlierGate {
    fn default() -> Self {
        OutlierGate {
            max_rel_half_width: 0.25,
            max_remeasures: 2,
        }
    }
}

impl OutlierGate {
    /// Does the sample's confidence interval pass the gate?
    pub fn accepts(&self, wips: f64, ci_half: f64) -> bool {
        if wips <= 0.0 {
            return ci_half <= 0.0;
        }
        ci_half / wips <= self.max_rel_half_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedules() {
        let c = Backoff::Constant(SimDuration::from_secs(2));
        assert_eq!(c.delay(1), SimDuration::from_secs(2));
        assert_eq!(c.delay(5), SimDuration::from_secs(2));
        let l = Backoff::Linear(SimDuration::from_secs(2));
        assert_eq!(l.delay(3), SimDuration::from_secs(6));
        let e = Backoff::Exponential {
            base: SimDuration::from_secs(5),
            cap: SimDuration::from_secs(60),
        };
        assert_eq!(e.delay(1), SimDuration::from_secs(5));
        assert_eq!(e.delay(2), SimDuration::from_secs(10));
        assert_eq!(e.delay(3), SimDuration::from_secs(20));
        assert_eq!(e.delay(10), SimDuration::from_secs(60), "capped");
        assert_eq!(e.delay(0), e.delay(1), "attempt 0 treated as 1");
    }

    #[test]
    fn exponential_backoff_saturates_instead_of_overflowing() {
        let e = Backoff::Exponential {
            base: SimDuration::from_secs(5),
            cap: SimDuration::MAX,
        };
        assert_eq!(e.delay(200), SimDuration::MAX);
    }

    #[test]
    fn jitter_bounds_and_determinism() {
        let d = SimDuration::from_secs(10);
        let mut rng = SimRng::new(42);
        for _ in 0..100 {
            let full = Jitter::Full.apply(d, &mut rng);
            assert!(full <= d);
            let equal = Jitter::Equal.apply(d, &mut rng);
            assert!(equal >= SimDuration::from_secs(5) && equal <= d);
        }
        assert_eq!(Jitter::None.apply(d, &mut rng), d);
        // Same seed, same draw sequence.
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        assert_eq!(Jitter::Full.apply(d, &mut a), Jitter::Full.apply(d, &mut b));
    }

    #[test]
    fn retry_policy_bounds_attempts() {
        let p = RetryPolicy::default();
        assert!(p.allows(1));
        assert!(p.allows(3));
        assert!(!p.allows(4));
        let mut rng = SimRng::new(1);
        assert!(p.delay(1, &mut rng) <= SimDuration::from_secs(5));
    }

    #[test]
    fn breaker_trips_at_threshold_and_resets_on_success() {
        let mut b = CircuitBreaker::new(2);
        assert!(!b.record_failure("cfg-a"), "first failure tolerated");
        assert!(!b.is_open("cfg-a"));
        assert!(b.record_failure("cfg-a"), "second failure trips");
        assert!(b.is_open("cfg-a"));
        assert!(
            !b.record_failure("cfg-a"),
            "already open, not newly tripped"
        );
        assert_eq!(b.open_count(), 1);
        assert!(!b.is_open("cfg-b"), "keys independent");
        b.record_success("cfg-a");
        assert!(!b.is_open("cfg-a"));
        assert_eq!(b.open_count(), 0);
    }

    #[test]
    fn breaker_checkpoint_roundtrip_preserves_counts_and_open_set() {
        let mut b = CircuitBreaker::new(2);
        b.record_failure("cfg-a");
        b.record_failure("cfg-a");
        b.record_failure("cfg-b");
        let saved = b.save_state();
        let mut restored = CircuitBreaker::new(1);
        restored.restore_state(&saved).unwrap();
        assert!(restored.is_open("cfg-a"));
        assert!(!restored.is_open("cfg-b"));
        // The in-flight failure count survives: one more failure trips.
        assert!(restored.record_failure("cfg-b"));
        assert_eq!(restored.open_count(), 2);
        assert!(restored.restore_state(&State::Null).is_err());
    }

    #[test]
    fn outlier_gate_rejects_wide_intervals() {
        let g = OutlierGate::default();
        assert!(g.accepts(100.0, 10.0));
        assert!(!g.accepts(100.0, 40.0));
        assert!(g.accepts(0.0, 0.0), "dead-but-certain sample passes");
        assert!(!g.accepts(0.0, 5.0));
    }
}
