//! BestConfig-style tuning: divide-and-diverge sampling with recursive
//! bound-and-search.
//!
//! Following Zhu et al. (SoCC'17), the search alternates two moves over
//! *rounds* of samples rather than single points:
//!
//! * **Divide-and-diverge sampling (DDS)** — each dimension's current
//!   range is divided into as many intervals as the round has samples,
//!   and the samples are spread Latin-hypercube style so every interval
//!   of every dimension is probed exactly once per round.
//! * **Recursive bound-and-search (RBS)** — when a round improves on the
//!   best point seen so far, the bounds contract to the neighbourhood of
//!   the round's winner and the next round samples inside them; when a
//!   round fails to improve, the bounds *diverge* (double around the
//!   global best, up to the full space) so the search escapes a local
//!   plateau instead of collapsing into it.
//!
//! Rounds are natural batches: the tuner plans a whole round up front,
//! so [`Tuner::propose_batch`] hands out every remaining sample of the
//! round and [`Tuner::speculate`] can promise the exact upcoming
//! proposals to a speculative evaluator.

use crate::space::{Configuration, ParamSpace};
use crate::tuner::{
    opt_config_from_state, opt_config_state, rng_from_state, rng_state, BestTracker, Measurement,
    Trial, Tuner,
};
use persist::{Checkpointable, PersistError, State};
use simkit::rng::SimRng;

use std::collections::VecDeque;

/// BestConfig's divide-and-diverge sampling + recursive bound-and-search
/// (ask–tell, batch-native).
#[derive(Debug, Clone)]
pub struct BestConfigTuner {
    space: ParamSpace,
    rng: SimRng,
    seed: u64,
    /// Samples per DDS round (also the per-dimension subdivision count).
    samples: usize,
    /// Optional externally seeded start point (round 0's first sample);
    /// defaults to the space's default configuration.
    start: Option<Configuration>,
    /// Current RBS bounds, inclusive.
    lo: Vec<i64>,
    hi: Vec<i64>,
    /// Planned samples of the current round, not yet proposed.
    queue: VecDeque<Configuration>,
    /// Proposed batch trials awaiting their result.
    outstanding: Vec<(u64, Configuration)>,
    /// Results observed this round.
    results: Vec<(Configuration, f64)>,
    /// Strict-protocol pending proposal.
    pending: Option<Configuration>,
    trial_counter: u64,
    round: u32,
    diverges: u32,
    /// Global best before the current round started (improvement test).
    best_before_round: f64,
    tracker: BestTracker,
}

impl BestConfigTuner {
    pub fn new(space: ParamSpace, seed: u64) -> Self {
        let dims = space.dims();
        let lo = space.defs().iter().map(|d| d.min).collect();
        let hi = space.defs().iter().map(|d| d.max).collect();
        BestConfigTuner {
            space,
            rng: SimRng::new(seed),
            seed,
            samples: (dims / 2).clamp(4, 8),
            start: None,
            lo,
            hi,
            queue: VecDeque::new(),
            outstanding: Vec::new(),
            results: Vec::new(),
            pending: None,
            trial_counter: 0,
            round: 0,
            diverges: 0,
            best_before_round: f64::NEG_INFINITY,
            tracker: BestTracker::default(),
        }
    }

    /// Builder: samples per DDS round (>= 2).
    pub fn samples_per_round(mut self, samples: usize) -> Self {
        assert!(samples >= 2, "a DDS round needs at least 2 samples");
        self.samples = samples;
        self
    }

    /// Builder: seed the search from a known-good configuration (it
    /// becomes round 0's first sample instead of the space default).
    pub fn start_from(mut self, config: Configuration) -> Self {
        self.start = Some(self.space.clamp(config.values()));
        self
    }

    /// Rounds completed or in flight (diagnostics).
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Divergence (bound-widening) steps taken so far (diagnostics).
    pub fn diverges(&self) -> u32 {
        self.diverges
    }

    /// Mean bound width as a fraction of the full span (diagnostics).
    fn bound_fraction(&self) -> f64 {
        let mut sum = 0.0;
        for (d, def) in self.space.defs().iter().enumerate() {
            let width = (self.hi[d] - self.lo[d]) as f64;
            let span = def.span() as f64;
            sum += if span > 0.0 { width / span } else { 1.0 };
        }
        sum / self.space.dims() as f64
    }

    /// Latin-hypercube sample of the current bounds: one permutation per
    /// dimension spreads the round's samples over every interval.
    fn plan_round(&mut self) {
        let dims = self.space.dims();
        let n = self.samples;
        let mut perms: Vec<Vec<usize>> = Vec::with_capacity(dims);
        for _ in 0..dims {
            let mut perm: Vec<usize> = (0..n).collect();
            // Fisher–Yates from the tuner's own deterministic stream.
            for i in (1..n).rev() {
                let j = self.rng.next_below(i as u64 + 1) as usize;
                perm.swap(i, j);
            }
            perms.push(perm);
        }
        // Transpose to one interval row per sample: row[d] is the
        // interval sample `s` probes on dimension `d`.
        let rows: Vec<Vec<usize>> = (0..n)
            .map(|s| perms.iter().map(|p| p[s]).collect())
            .collect();
        for row in rows {
            let values: Vec<i64> = row
                .iter()
                .enumerate()
                .map(|(d, &interval)| {
                    let def = self.space.def(d);
                    let width = (self.hi[d] - self.lo[d]) as f64;
                    let cell = width / n as f64;
                    let u = self.rng.next_f64();
                    let v = self.lo[d] as f64 + cell * (interval as f64 + u);
                    def.clamp(v.round() as i64)
                })
                .collect();
            self.queue.push_back(Configuration::from_values(values));
        }
        if self.round == 0 {
            // Measure the starting point first so improvement is judged
            // against it (and the session's default row stays honest).
            let start = self
                .start
                .clone()
                .unwrap_or_else(|| self.space.default_config());
            if let Some(front) = self.queue.front_mut() {
                *front = start;
            }
        }
        self.round += 1;
    }

    /// Close the finished round: contract the bounds around its winner
    /// (RBS) or diverge when the round failed to improve.
    fn fold_round(&mut self) {
        let Some(winner) = self
            .results
            .iter()
            .cloned()
            .reduce(|a, b| if b.1 > a.1 { b } else { a })
        else {
            return;
        };
        let improved = winner.1 > self.best_before_round;
        self.best_before_round = self.best_before_round.max(winner.1);
        let center = if improved {
            winner.0
        } else {
            self.diverges += 1;
            self.tracker
                .best()
                .map(|(c, _)| c.clone())
                .unwrap_or_else(|| self.space.default_config())
        };
        for (d, def) in self.space.defs().iter().enumerate() {
            let width = self.hi[d] - self.lo[d];
            let half = if improved {
                // Contract to the winner's sampling cell plus one
                // neighbouring cell on each side.
                ((width / self.samples as i64).max(1)).max(1)
            } else {
                // Diverge: double the current width around the best.
                (width).max(1)
            };
            self.lo[d] = def.clamp(center.get(d) - half);
            self.hi[d] = def.clamp(center.get(d) + half);
            if self.lo[d] == self.hi[d] {
                // A fully collapsed dimension re-opens to the whole span
                // so later divergence can still escape.
                self.lo[d] = def.min;
                self.hi[d] = def.max;
            }
        }
        self.results.clear();
    }

    /// Make sure a round is planned, folding the previous one first.
    fn ensure_round(&mut self) {
        if self.queue.is_empty() && self.outstanding.is_empty() {
            if !self.results.is_empty() {
                self.fold_round();
            }
            if self.queue.is_empty() {
                self.plan_round();
            }
        }
    }

    fn record(&mut self, config: Configuration, perf: f64) {
        self.tracker.record(&config, perf);
        self.results.push((config, perf));
        // Fold and plan eagerly once the round's last result lands, so
        // speculate() can promise the next round immediately.
        self.ensure_round();
    }
}

impl Tuner for BestConfigTuner {
    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn propose(&mut self) -> Configuration {
        assert!(self.pending.is_none(), "propose() twice without observe()");
        assert!(
            self.outstanding.is_empty(),
            "propose() while a batch is outstanding"
        );
        self.ensure_round();
        let Some(config) = self.queue.pop_front() else {
            unreachable!("ensure_round always plans a non-empty round")
        };
        self.pending = Some(config.clone());
        config
    }

    fn observe(&mut self, performance: f64) {
        let Some(config) = self.pending.take() else {
            panic!("observe() without propose()");
        };
        self.record(config, performance);
    }

    fn propose_batch(&mut self) -> Vec<Trial> {
        assert!(
            self.pending.is_none(),
            "propose_batch() with a pending proposal"
        );
        assert!(
            self.outstanding.is_empty(),
            "propose_batch() while a batch is outstanding"
        );
        self.ensure_round();
        let mut trials = Vec::with_capacity(self.queue.len());
        while let Some(config) = self.queue.pop_front() {
            let id = self.trial_counter;
            self.trial_counter += 1;
            self.outstanding.push((id, config.clone()));
            trials.push(Trial::new(id, config));
        }
        trials
    }

    fn observe_trial(&mut self, trial_id: u64, m: Measurement) {
        let Some(pos) = self.outstanding.iter().position(|(id, _)| *id == trial_id) else {
            panic!("observe_trial() for unknown trial {trial_id}");
        };
        let (_, config) = self.outstanding.remove(pos);
        self.record(config, m.mean);
    }

    fn batch_size(&self) -> usize {
        if !self.queue.is_empty() {
            self.queue.len()
        } else {
            self.samples
        }
    }

    fn best(&self) -> Option<(&Configuration, f64)> {
        self.tracker.best()
    }

    fn evaluations(&self) -> u64 {
        self.tracker.evaluations()
    }

    fn name(&self) -> &'static str {
        "bestconfig"
    }

    fn reset(&mut self) {
        let start = self.start.clone();
        *self = BestConfigTuner::new(self.space.clone(), self.seed).samples_per_round(self.samples);
        self.start = start;
    }

    fn diagnostics(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("round", self.round as f64),
            ("diverges", self.diverges as f64),
            ("bound_frac", self.bound_fraction()),
            ("queued", self.queue.len() as f64),
        ]
    }

    /// The rest of the planned round is certain: promise it verbatim.
    fn speculate(&self) -> Vec<Vec<Configuration>> {
        if self.pending.is_some() || !self.outstanding.is_empty() {
            return Vec::new();
        }
        self.queue.iter().map(|c| vec![c.clone()]).collect()
    }

    fn save_state(&self) -> State {
        Checkpointable::save_state(self)
    }

    fn restore_state(&mut self, state: &State) -> Result<(), PersistError> {
        Checkpointable::restore_state(self, state)
    }
}

fn result_state((config, perf): &(Configuration, f64)) -> State {
    State::map()
        .with("values", State::i64_list(config.values()))
        .with("perf", State::F64(*perf))
}

fn result_from_state(state: &State) -> Result<(Configuration, f64), PersistError> {
    Ok((
        Configuration::from_values(state.require("values")?.to_i64_vec()?),
        state.field_f64("perf")?,
    ))
}

impl Checkpointable for BestConfigTuner {
    /// Everything but the parameter space: bounds, the planned round,
    /// outstanding trials, results, and the RNG stream — a restored
    /// tuner continues the exact proposal sequence.
    fn save_state(&self) -> State {
        State::map()
            .with("algorithm", State::Str(self.name().to_string()))
            .with("seed", State::U64(self.seed))
            .with("samples", State::U64(self.samples as u64))
            .with("start", opt_config_state(&self.start))
            .with("lo", State::i64_list(&self.lo))
            .with("hi", State::i64_list(&self.hi))
            .with(
                "queue",
                State::List(
                    self.queue
                        .iter()
                        .map(|c| State::i64_list(c.values()))
                        .collect(),
                ),
            )
            .with(
                "outstanding",
                State::List(
                    self.outstanding
                        .iter()
                        .map(|(id, c)| {
                            State::map()
                                .with("id", State::U64(*id))
                                .with("values", State::i64_list(c.values()))
                        })
                        .collect(),
                ),
            )
            .with(
                "results",
                State::List(self.results.iter().map(result_state).collect()),
            )
            .with("pending", opt_config_state(&self.pending))
            .with("trial_counter", State::U64(self.trial_counter))
            .with("round", State::U64(self.round as u64))
            .with("diverges", State::U64(self.diverges as u64))
            .with("best_before_round", State::F64(self.best_before_round))
            .with("rng", rng_state(&self.rng))
            .with("tracker", self.tracker.save_state())
    }

    fn restore_state(&mut self, state: &State) -> Result<(), PersistError> {
        let lo = state.require("lo")?.to_i64_vec()?;
        if lo.len() != self.space.dims() {
            return Err(PersistError::Schema(format!(
                "bestconfig bounds have {} dims, space has {}",
                lo.len(),
                self.space.dims()
            )));
        }
        self.seed = state.field_u64("seed")?;
        self.samples = state.field_u64("samples")? as usize;
        self.start = opt_config_from_state(state.require("start")?)?;
        self.lo = lo;
        self.hi = state.require("hi")?.to_i64_vec()?;
        self.queue = state
            .field_list("queue")?
            .iter()
            .map(|c| Ok(Configuration::from_values(c.to_i64_vec()?)))
            .collect::<Result<_, PersistError>>()?;
        self.outstanding = state
            .field_list("outstanding")?
            .iter()
            .map(|t| {
                Ok((
                    t.field_u64("id")?,
                    Configuration::from_values(t.require("values")?.to_i64_vec()?),
                ))
            })
            .collect::<Result<_, PersistError>>()?;
        self.results = state
            .field_list("results")?
            .iter()
            .map(result_from_state)
            .collect::<Result<_, _>>()?;
        self.pending = opt_config_from_state(state.require("pending")?)?;
        self.trial_counter = state.field_u64("trial_counter")?;
        self.round = state.field_u64("round")? as u32;
        self.diverges = state.field_u64("diverges")? as u32;
        self.best_before_round = state.field_f64("best_before_round")?;
        self.rng = rng_from_state(state.require("rng")?)?;
        self.tracker.restore_state(state.require("tracker")?)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamDef;

    fn space() -> ParamSpace {
        ParamSpace::new(vec![
            ParamDef::new("x", 0, 200, 20),
            ParamDef::new("y", 0, 200, 180),
        ])
    }

    fn objective(v: &[i64]) -> f64 {
        let dx = v[0] as f64 - 130.0;
        let dy = v[1] as f64 - 60.0;
        -(dx * dx + dy * dy)
    }

    #[test]
    fn improves_on_quadratic_and_stays_in_bounds() {
        let s = space();
        let mut t = BestConfigTuner::new(s.clone(), 42);
        let mut first = None;
        for _ in 0..80 {
            let c = t.propose();
            assert!(s.validate(&c).is_ok(), "{c}");
            let p = objective(c.values());
            first.get_or_insert(p);
            t.observe(p);
        }
        let (best, perf) = t.best().unwrap();
        assert!(perf > first.unwrap(), "never improved");
        let dist = (((best.get(0) - 130).pow(2) + (best.get(1) - 60).pow(2)) as f64).sqrt();
        assert!(dist < 40.0, "best {best} too far (perf {perf})");
    }

    #[test]
    fn first_proposal_is_the_start_point() {
        let s = space();
        assert_eq!(
            BestConfigTuner::new(s.clone(), 1).propose(),
            s.default_config()
        );
        let start = Configuration::from_values(vec![5, 7]);
        assert_eq!(
            BestConfigTuner::new(s, 1)
                .start_from(start.clone())
                .propose(),
            start
        );
    }

    #[test]
    fn batches_cover_whole_rounds_with_unique_ids() {
        let mut t = BestConfigTuner::new(space(), 7).samples_per_round(5);
        let batch = t.propose_batch();
        assert_eq!(batch.len(), 5);
        let mut ids: Vec<u64> = batch.iter().map(|tr| tr.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 5, "trial ids must be unique");
        // Report out of order; the round still closes.
        for tr in batch.iter().rev() {
            t.observe_trial(tr.id, Measurement::point(objective(tr.config.values())));
        }
        assert_eq!(t.evaluations(), 5);
        let next = t.propose_batch();
        assert_eq!(next.len(), 5);
        assert!(next.iter().all(|tr| tr.id >= 5), "ids keep counting");
    }

    #[test]
    fn failed_rounds_diverge_the_bounds() {
        let mut t = BestConfigTuner::new(space(), 3).samples_per_round(4);
        // First round: real scores. Later rounds: always worse, forcing
        // divergence.
        for i in 0..24 {
            let c = t.propose();
            let p = if i < 4 { objective(c.values()) } else { -1e12 };
            t.observe(p);
        }
        assert!(t.diverges() > 0, "bounds never widened");
        assert!(t.round() >= 5);
    }

    #[test]
    fn speculation_promises_the_remaining_round() {
        let mut t = BestConfigTuner::new(space(), 9).samples_per_round(4);
        let c = t.propose();
        t.observe(objective(c.values()));
        let ahead = t.speculate();
        assert_eq!(ahead.len(), 3, "three samples left in the round");
        for (k, promised) in ahead.iter().enumerate() {
            assert_eq!(promised.len(), 1, "planned samples are certain");
            let c = t.propose();
            assert_eq!(c, promised[0], "offset {k}");
            t.observe(objective(c.values()));
        }
    }

    #[test]
    fn speculation_is_empty_while_pending() {
        let mut t = BestConfigTuner::new(space(), 5);
        let _ = t.propose();
        assert!(t.speculate().is_empty());
    }

    #[test]
    fn checkpoint_roundtrip_resumes_identical_proposals() {
        let mut a = BestConfigTuner::new(space(), 11).samples_per_round(4);
        for _ in 0..9 {
            let c = a.propose();
            a.observe(objective(c.values()));
        }
        // Snapshot mid-protocol, with a proposal pending.
        let _ = a.propose();
        let saved = Checkpointable::save_state(&a);
        a.observe(0.0);

        let mut b = BestConfigTuner::new(space(), 999);
        Checkpointable::restore_state(&mut b, &saved).expect("restore");
        assert_eq!(Checkpointable::save_state(&b), saved, "round trip");
        b.observe(0.0);
        for i in 0..30 {
            let ca = a.propose();
            let cb = b.propose();
            assert_eq!(ca, cb, "proposal {i} diverged");
            let p = objective(ca.values());
            a.observe(p);
            b.observe(p);
        }
    }

    #[test]
    fn restore_rejects_wrong_dims() {
        let a = BestConfigTuner::new(space(), 1);
        let saved = Checkpointable::save_state(&a);
        let other = ParamSpace::new(vec![ParamDef::new("z", 0, 10, 5)]);
        let mut b = BestConfigTuner::new(other, 1);
        assert!(Checkpointable::restore_state(&mut b, &saved).is_err());
    }

    #[test]
    fn reset_forgets_search_state() {
        let mut t = BestConfigTuner::new(space(), 13);
        for _ in 0..10 {
            let c = t.propose();
            t.observe(objective(c.values()));
        }
        t.reset();
        assert_eq!(t.evaluations(), 0);
        assert!(t.best().is_none());
        assert_eq!(t.propose(), space().default_config());
    }

    #[test]
    #[should_panic(expected = "propose() twice")]
    fn double_propose_panics() {
        let mut t = BestConfigTuner::new(space(), 1);
        t.propose();
        t.propose();
    }

    #[test]
    #[should_panic(expected = "observe() without propose()")]
    fn observe_without_propose_panics() {
        let mut t = BestConfigTuner::new(space(), 1);
        t.observe(1.0);
    }
}
