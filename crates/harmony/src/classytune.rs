//! ClassyTune-style comparison-based tuning.
//!
//! ClassyTune (Zhu & Liu, 2019) observes that absolute performance
//! numbers from a live system are unreliable, but *comparisons* between
//! a candidate and the incumbent measured back-to-back are much more
//! stable. The tuner therefore never regresses on raw scores: each round
//! perturbs the incumbent into a batch of candidates, labels every
//! candidate `won`/`lost` against the incumbent's score, and feeds those
//! labels to a per-dimension classifier (a signed bias) that learns
//! which direction of change tends to win. Winning directions are
//! sampled more often in later rounds; a round with no winner halves the
//! perturbation steps and decays the biases so the search anneals onto
//! the incumbent.

use crate::space::{Configuration, ParamSpace};
use crate::tuner::{
    opt_config_from_state, opt_config_state, rng_from_state, rng_state, BestTracker, Measurement,
    Trial, Tuner,
};
use persist::{Checkpointable, PersistError, State};
use simkit::rng::SimRng;

use std::collections::VecDeque;

/// How strongly one win/loss label moves a dimension's direction bias.
const BIAS_LEARNING_RATE: f64 = 0.2;
/// Biases are clamped so no direction is ever sampled with certainty.
const BIAS_CLAMP: f64 = 1.0;

/// ClassyTune's comparison-based classification tuning (ask–tell,
/// batch-native).
#[derive(Debug, Clone)]
pub struct ClassyTuneTuner {
    space: ParamSpace,
    rng: SimRng,
    seed: u64,
    /// Candidates perturbed from the incumbent per round.
    batch: usize,
    start: Option<Configuration>,
    /// Current incumbent and its measured score.
    incumbent: Option<Configuration>,
    incumbent_perf: Option<f64>,
    /// Per-dimension direction bias in [-1, 1]: positive means raising
    /// the parameter has tended to win comparisons.
    bias: Vec<f64>,
    /// Per-dimension perturbation magnitude (halved on stale rounds).
    step: Vec<i64>,
    /// Planned candidates of the current round, not yet proposed.
    queue: VecDeque<Configuration>,
    outstanding: Vec<(u64, Configuration)>,
    results: Vec<(Configuration, f64)>,
    pending: Option<Configuration>,
    trial_counter: u64,
    round: u32,
    /// Rounds that produced no winner (diagnostics).
    stale_rounds: u32,
    tracker: BestTracker,
}

impl ClassyTuneTuner {
    pub fn new(space: ParamSpace, seed: u64) -> Self {
        let dims = space.dims();
        let step = space.defs().iter().map(|d| (d.span() / 4).max(1)).collect();
        ClassyTuneTuner {
            space,
            rng: SimRng::new(seed),
            seed,
            batch: dims.clamp(3, 6),
            start: None,
            incumbent: None,
            incumbent_perf: None,
            bias: vec![0.0; dims],
            step,
            queue: VecDeque::new(),
            outstanding: Vec::new(),
            results: Vec::new(),
            pending: None,
            trial_counter: 0,
            round: 0,
            stale_rounds: 0,
            tracker: BestTracker::default(),
        }
    }

    /// Builder: candidates compared against the incumbent per round.
    pub fn candidates_per_round(mut self, batch: usize) -> Self {
        assert!(batch >= 1, "a comparison round needs at least 1 candidate");
        self.batch = batch;
        self
    }

    /// Builder: seed the search from a known-good configuration.
    pub fn start_from(mut self, config: Configuration) -> Self {
        self.start = Some(self.space.clamp(config.values()));
        self
    }

    /// Completed comparison rounds (diagnostics).
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Mean absolute direction bias (diagnostics): how decided the
    /// per-dimension classifiers are.
    fn mean_bias(&self) -> f64 {
        self.bias.iter().map(|b| b.abs()).sum::<f64>() / self.bias.len() as f64
    }

    /// Perturb the incumbent on a few dimensions, sampling each moved
    /// dimension's direction from its learned bias.
    fn perturb(&mut self, base: &Configuration) -> Configuration {
        let dims = self.space.dims();
        let moved = 1 + self.rng.next_below(dims.min(3) as u64) as usize;
        let mut values = base.values().to_vec();
        for _ in 0..moved {
            let d = self.rng.next_below(dims as u64) as usize;
            let p_up = (0.5 + 0.4 * self.bias[d]).clamp(0.1, 0.9);
            let dir: i64 = if self.rng.chance(p_up) { 1 } else { -1 };
            let magnitude = 1 + self.rng.next_below(self.step[d].max(1) as u64) as i64;
            let def = self.space.def(d);
            values[d] = def.clamp(values[d] + dir * magnitude);
        }
        Configuration::from_values(values)
    }

    /// Plan the next round of candidates.
    fn plan_round(&mut self) {
        match self.incumbent.clone() {
            None => {
                // Round zero measures the starting point alone so every
                // later candidate has an incumbent to be compared with.
                let start = self
                    .start
                    .clone()
                    .unwrap_or_else(|| self.space.default_config());
                self.queue.push_back(start);
            }
            Some(base) => {
                for _ in 0..self.batch {
                    let candidate = self.perturb(&base);
                    self.queue.push_back(candidate);
                }
            }
        }
    }

    /// Close a finished round: learn direction labels from every
    /// comparison, then adopt the winner or anneal the steps.
    fn fold_round(&mut self) {
        let results = std::mem::take(&mut self.results);
        let Some(incumbent) = self.incumbent.clone() else {
            // Round zero: the lone result becomes the incumbent.
            if let Some((config, perf)) = results.into_iter().next() {
                self.incumbent = Some(config);
                self.incumbent_perf = Some(perf);
            }
            self.round += 1;
            return;
        };
        let incumbent_perf = self.incumbent_perf.unwrap_or(f64::NEG_INFINITY);

        // Classification step: each candidate contributes one label per
        // dimension it moved — did moving that way win the comparison?
        for (config, perf) in &results {
            let won = *perf > incumbent_perf;
            for d in 0..self.space.dims() {
                let delta = config.get(d) - incumbent.get(d);
                if delta == 0 {
                    continue;
                }
                let dir = if delta > 0 { 1.0 } else { -1.0 };
                let label = if won { dir } else { -dir };
                self.bias[d] =
                    (self.bias[d] + BIAS_LEARNING_RATE * label).clamp(-BIAS_CLAMP, BIAS_CLAMP);
            }
        }

        // Selection step: adopt the best winner, or anneal when the
        // whole round lost its comparison.
        let winner = results
            .into_iter()
            .filter(|(_, perf)| *perf > incumbent_perf)
            .reduce(|a, b| if b.1 > a.1 { b } else { a });
        match winner {
            Some((config, perf)) => {
                self.incumbent = Some(config);
                self.incumbent_perf = Some(perf);
            }
            None => {
                self.stale_rounds += 1;
                for s in &mut self.step {
                    *s = (*s / 2).max(1);
                }
                for b in &mut self.bias {
                    *b *= 0.5;
                }
            }
        }
        self.round += 1;
    }

    fn ensure_round(&mut self) {
        if self.queue.is_empty() && self.outstanding.is_empty() {
            if !self.results.is_empty() {
                self.fold_round();
            }
            if self.queue.is_empty() {
                self.plan_round();
            }
        }
    }

    fn record(&mut self, config: Configuration, perf: f64) {
        self.tracker.record(&config, perf);
        self.results.push((config, perf));
        // Fold and plan eagerly once the round's last result lands, so
        // speculate() can promise the next round immediately.
        self.ensure_round();
    }
}

impl Tuner for ClassyTuneTuner {
    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn propose(&mut self) -> Configuration {
        assert!(self.pending.is_none(), "propose() twice without observe()");
        assert!(
            self.outstanding.is_empty(),
            "propose() while a batch is outstanding"
        );
        self.ensure_round();
        let Some(config) = self.queue.pop_front() else {
            unreachable!("ensure_round always plans a non-empty round")
        };
        self.pending = Some(config.clone());
        config
    }

    fn observe(&mut self, performance: f64) {
        let Some(config) = self.pending.take() else {
            panic!("observe() without propose()");
        };
        self.record(config, performance);
    }

    fn propose_batch(&mut self) -> Vec<Trial> {
        assert!(
            self.pending.is_none(),
            "propose_batch() with a pending proposal"
        );
        assert!(
            self.outstanding.is_empty(),
            "propose_batch() while a batch is outstanding"
        );
        self.ensure_round();
        let mut trials = Vec::with_capacity(self.queue.len());
        while let Some(config) = self.queue.pop_front() {
            let id = self.trial_counter;
            self.trial_counter += 1;
            self.outstanding.push((id, config.clone()));
            trials.push(Trial::new(id, config));
        }
        trials
    }

    fn observe_trial(&mut self, trial_id: u64, m: Measurement) {
        let Some(pos) = self.outstanding.iter().position(|(id, _)| *id == trial_id) else {
            panic!("observe_trial() for unknown trial {trial_id}");
        };
        let (_, config) = self.outstanding.remove(pos);
        self.record(config, m.mean);
    }

    fn batch_size(&self) -> usize {
        if !self.queue.is_empty() {
            self.queue.len()
        } else if self.incumbent.is_none() {
            1
        } else {
            self.batch
        }
    }

    fn best(&self) -> Option<(&Configuration, f64)> {
        self.tracker.best()
    }

    fn evaluations(&self) -> u64 {
        self.tracker.evaluations()
    }

    fn name(&self) -> &'static str {
        "classytune"
    }

    fn reset(&mut self) {
        let start = self.start.clone();
        *self =
            ClassyTuneTuner::new(self.space.clone(), self.seed).candidates_per_round(self.batch);
        self.start = start;
    }

    fn diagnostics(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("round", self.round as f64),
            ("stale_rounds", self.stale_rounds as f64),
            ("mean_bias", self.mean_bias()),
            ("mean_step", {
                self.step.iter().map(|s| *s as f64).sum::<f64>() / self.step.len() as f64
            }),
        ]
    }

    /// Like BestConfig, a planned round is certain.
    fn speculate(&self) -> Vec<Vec<Configuration>> {
        if self.pending.is_some() || !self.outstanding.is_empty() {
            return Vec::new();
        }
        self.queue.iter().map(|c| vec![c.clone()]).collect()
    }

    fn save_state(&self) -> State {
        Checkpointable::save_state(self)
    }

    fn restore_state(&mut self, state: &State) -> Result<(), PersistError> {
        Checkpointable::restore_state(self, state)
    }
}

impl Checkpointable for ClassyTuneTuner {
    fn save_state(&self) -> State {
        State::map()
            .with("algorithm", State::Str(self.name().to_string()))
            .with("seed", State::U64(self.seed))
            .with("batch", State::U64(self.batch as u64))
            .with("start", opt_config_state(&self.start))
            .with("incumbent", opt_config_state(&self.incumbent))
            .with(
                "incumbent_perf",
                match self.incumbent_perf {
                    Some(p) => State::F64(p),
                    None => State::Null,
                },
            )
            .with("bias", State::f64_list(&self.bias))
            .with("step", State::i64_list(&self.step))
            .with(
                "queue",
                State::List(
                    self.queue
                        .iter()
                        .map(|c| State::i64_list(c.values()))
                        .collect(),
                ),
            )
            .with(
                "outstanding",
                State::List(
                    self.outstanding
                        .iter()
                        .map(|(id, c)| {
                            State::map()
                                .with("id", State::U64(*id))
                                .with("values", State::i64_list(c.values()))
                        })
                        .collect(),
                ),
            )
            .with(
                "results",
                State::List(
                    self.results
                        .iter()
                        .map(|(c, p)| {
                            State::map()
                                .with("values", State::i64_list(c.values()))
                                .with("perf", State::F64(*p))
                        })
                        .collect(),
                ),
            )
            .with("pending", opt_config_state(&self.pending))
            .with("trial_counter", State::U64(self.trial_counter))
            .with("round", State::U64(self.round as u64))
            .with("stale_rounds", State::U64(self.stale_rounds as u64))
            .with("rng", rng_state(&self.rng))
            .with("tracker", self.tracker.save_state())
    }

    fn restore_state(&mut self, state: &State) -> Result<(), PersistError> {
        let bias = state.require("bias")?.to_f64_vec()?;
        if bias.len() != self.space.dims() {
            return Err(PersistError::Schema(format!(
                "classytune bias has {} dims, space has {}",
                bias.len(),
                self.space.dims()
            )));
        }
        self.seed = state.field_u64("seed")?;
        self.batch = state.field_u64("batch")? as usize;
        self.start = opt_config_from_state(state.require("start")?)?;
        self.incumbent = opt_config_from_state(state.require("incumbent")?)?;
        self.incumbent_perf = match state.require("incumbent_perf")? {
            State::Null => None,
            s => Some(s.as_f64().ok_or_else(|| {
                PersistError::Schema("field 'incumbent_perf' is not an f64".into())
            })?),
        };
        self.bias = bias;
        self.step = state.require("step")?.to_i64_vec()?;
        self.queue = state
            .field_list("queue")?
            .iter()
            .map(|c| Ok(Configuration::from_values(c.to_i64_vec()?)))
            .collect::<Result<_, PersistError>>()?;
        self.outstanding = state
            .field_list("outstanding")?
            .iter()
            .map(|t| {
                Ok((
                    t.field_u64("id")?,
                    Configuration::from_values(t.require("values")?.to_i64_vec()?),
                ))
            })
            .collect::<Result<_, PersistError>>()?;
        self.results = state
            .field_list("results")?
            .iter()
            .map(|r| {
                Ok((
                    Configuration::from_values(r.require("values")?.to_i64_vec()?),
                    r.field_f64("perf")?,
                ))
            })
            .collect::<Result<Vec<_>, PersistError>>()?;
        self.pending = opt_config_from_state(state.require("pending")?)?;
        self.trial_counter = state.field_u64("trial_counter")?;
        self.round = state.field_u64("round")? as u32;
        self.stale_rounds = state.field_u64("stale_rounds")? as u32;
        self.rng = rng_from_state(state.require("rng")?)?;
        self.tracker.restore_state(state.require("tracker")?)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamDef;

    fn space() -> ParamSpace {
        ParamSpace::new(vec![
            ParamDef::new("x", 0, 200, 20),
            ParamDef::new("y", 0, 200, 180),
        ])
    }

    fn objective(v: &[i64]) -> f64 {
        let dx = v[0] as f64 - 150.0;
        let dy = v[1] as f64 - 50.0;
        -(dx * dx + dy * dy)
    }

    #[test]
    fn improves_on_quadratic_and_stays_in_bounds() {
        let s = space();
        let mut t = ClassyTuneTuner::new(s.clone(), 42);
        let mut first = None;
        for _ in 0..80 {
            let c = t.propose();
            assert!(s.validate(&c).is_ok(), "{c}");
            let p = objective(c.values());
            first.get_or_insert(p);
            t.observe(p);
        }
        let (_, perf) = t.best().unwrap();
        assert!(perf > first.unwrap(), "never improved on the default");
    }

    #[test]
    fn first_round_measures_the_start_point_alone() {
        let s = space();
        let mut t = ClassyTuneTuner::new(s.clone(), 1);
        let batch = t.propose_batch();
        assert_eq!(batch.len(), 1, "round zero is the incumbent alone");
        assert_eq!(batch[0].config, s.default_config());
        t.observe_trial(batch[0].id, Measurement::point(1.0));
        let round = t.propose_batch();
        assert_eq!(round.len(), t.batch, "full comparison round follows");
    }

    #[test]
    fn incumbent_never_adopts_a_losing_candidate() {
        let mut t = ClassyTuneTuner::new(space(), 7).candidates_per_round(3);
        let c = t.propose();
        t.observe(objective(c.values()));
        let incumbent = t.incumbent.clone().unwrap();
        // Feed a full losing round: incumbent must be unchanged after.
        for _ in 0..3 {
            let _ = t.propose();
            t.observe(f64::MIN);
        }
        let _ = t.propose(); // forces fold_round
        assert_eq!(t.incumbent.as_ref(), Some(&incumbent));
        assert_eq!(t.stale_rounds, 1, "losing round anneals the steps");
    }

    #[test]
    fn winning_directions_gain_bias() {
        let mut t = ClassyTuneTuner::new(space(), 3).candidates_per_round(4);
        for _ in 0..40 {
            let c = t.propose();
            t.observe(objective(c.values()));
        }
        // x must rise towards 150 and y fall towards 50; with the
        // quadratic objective the learned biases should reflect that at
        // least directionally once rounds have folded.
        assert!(t.round() >= 2);
        assert!(t.mean_bias() > 0.0, "labels never moved any bias");
    }

    #[test]
    fn speculation_promises_the_remaining_round() {
        let mut t = ClassyTuneTuner::new(space(), 9).candidates_per_round(3);
        let c = t.propose();
        t.observe(objective(c.values()));
        let ahead = t.speculate();
        assert_eq!(ahead.len(), 3, "whole comparison round is planned");
        for (k, promised) in ahead.iter().enumerate() {
            let c = t.propose();
            assert_eq!(c, promised[0], "offset {k}");
            t.observe(objective(c.values()));
        }
    }

    #[test]
    fn checkpoint_roundtrip_resumes_identical_proposals() {
        let mut a = ClassyTuneTuner::new(space(), 11).candidates_per_round(3);
        for _ in 0..8 {
            let c = a.propose();
            a.observe(objective(c.values()));
        }
        let saved = Checkpointable::save_state(&a);
        let mut b = ClassyTuneTuner::new(space(), 999);
        Checkpointable::restore_state(&mut b, &saved).expect("restore");
        assert_eq!(Checkpointable::save_state(&b), saved, "round trip");
        for i in 0..30 {
            let ca = a.propose();
            let cb = b.propose();
            assert_eq!(ca, cb, "proposal {i} diverged");
            let p = objective(ca.values());
            a.observe(p);
            b.observe(p);
        }
    }

    #[test]
    fn restore_rejects_wrong_dims() {
        let a = ClassyTuneTuner::new(space(), 1);
        let saved = Checkpointable::save_state(&a);
        let other = ParamSpace::new(vec![ParamDef::new("z", 0, 10, 5)]);
        let mut b = ClassyTuneTuner::new(other, 1);
        assert!(Checkpointable::restore_state(&mut b, &saved).is_err());
    }

    #[test]
    fn reset_forgets_search_state() {
        let mut t = ClassyTuneTuner::new(space(), 13);
        for _ in 0..12 {
            let c = t.propose();
            t.observe(objective(c.values()));
        }
        t.reset();
        assert_eq!(t.evaluations(), 0);
        assert!(t.best().is_none());
        assert_eq!(t.propose(), space().default_config());
    }

    #[test]
    #[should_panic(expected = "propose() twice")]
    fn double_propose_panics() {
        let mut t = ClassyTuneTuner::new(space(), 1);
        t.propose();
        t.propose();
    }

    #[test]
    #[should_panic(expected = "observe() without propose()")]
    fn observe_without_propose_panics() {
        let mut t = ClassyTuneTuner::new(space(), 1);
        t.observe(1.0);
    }
}
