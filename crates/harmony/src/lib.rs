//! # harmony — the Active Harmony automated tuning system
//!
//! The paper's primary contribution, reimplemented: a tuning
//! infrastructure that iteratively changes an application's tunable
//! parameters based on observed performance.
//!
//! * [`param`]/[`space`] — bounded integer parameter spaces;
//! * [`simplex`] — the Nelder–Mead kernel, adapted to discrete bounded
//!   spaces (nearest-integer projection, restarts, optional conservative
//!   stepping);
//! * [`baseline`] — random-search and coordinate-descent comparators;
//! * [`bestconfig`]/[`classytune`]/[`tuna`] — the tuner zoo: BestConfig's
//!   divide-and-diverge sampling, ClassyTune's comparison-based
//!   classification, and TUNA's noise-robust replicated confirmation;
//! * [`registry`] — constructor-by-name lookup backing the `--tuner` flag;
//! * [`tuner`]/[`server`]/[`history`] — the ask–tell protocol, the tuning
//!   server, and trace recording;
//! * [`strategy`]/[`workline`] — the §III.B cluster-scaling methods
//!   (parameter duplication and work-line partitioning);
//! * [`monitor`]/[`reconfig`] — the §IV automatic cluster reconfiguration
//!   algorithm (thresholds, urgency, cost model);
//! * resilience primitives (retry/backoff/jitter, the per-configuration
//!   circuit breaker, the outlier re-measurement gate) now live in the
//!   `resilience` crate and are re-exported here for compatibility.
//!
//! Tuning state is crash-safe: [`SimplexTuner`], [`HarmonyServer`],
//! [`TuningHistory`], and [`CircuitBreaker`] implement the `persist`
//! crate's `Checkpointable` trait, exporting their full search state
//! (simplex geometry, phase, pending proposals, best-seen records,
//! failure counters) so an interrupted session resumes byte-identically.
//!
//! This crate is application-agnostic: nothing here knows about web
//! clusters. The orchestrator crate wires it to the simulated testbed.
//!
//! ## Tuning in five lines
//!
//! ```
//! use harmony::{ParamDef, ParamSpace, SimplexTuner, Tuner};
//!
//! let space = ParamSpace::new(vec![
//!     ParamDef::new("threads", 1, 256, 20),
//!     ParamDef::new("cache_mb", 1, 64, 8),
//! ]);
//! let mut tuner = SimplexTuner::new(space);
//! for _ in 0..40 {
//!     let config = tuner.propose();
//!     // Apply `config` to the system, measure performance...
//!     let perf = -((config.get(0) - 96).abs() + (config.get(1) - 24).abs()) as f64;
//!     tuner.observe(perf);
//! }
//! let (best, _) = tuner.best().unwrap();
//! assert!((best.get(0) - 96).abs() < 60);
//! ```

// Tuning code must surface failures through return values, never
// unwrap/expect in library paths; protocol-misuse asserts (e.g. a
// propose() without its observe()) remain as explicit panics. Test
// modules are exempt. CI enforces this with a dedicated clippy step.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod annealing;
pub mod baseline;
pub mod bestconfig;
pub mod classytune;
pub mod history;
pub mod monitor;
pub mod param;
pub mod reconfig;
pub mod registry;
pub mod revalidate;
pub mod server;
pub mod simplex;
pub mod space;
pub mod strategy;
pub mod tuna;
pub mod tuner;
pub mod workline;

pub use annealing::SimulatedAnnealing;
pub use baseline::{CoordinateDescent, RandomSearch};
pub use bestconfig::BestConfigTuner;
pub use classytune::ClassyTuneTuner;
pub use history::{HistoryEntry, TuningHistory};
pub use monitor::{Resource, UtilizationMonitor, UtilizationSnapshot};
pub use param::ParamDef;
pub use reconfig::{CostModel, NodeCostInputs, NodeReport, ReconfigDecision, Thresholds};
pub use registry::{make_tuner, make_tuner_seeded, tuner_names, UnknownTuner};
// Compatibility re-exports: these types moved to the `resilience` crate.
pub use resilience::{Backoff, CircuitBreaker, Jitter, OutlierGate, RetryPolicy};
pub use revalidate::Revalidating;
pub use server::HarmonyServer;
pub use simplex::SimplexTuner;
pub use space::{Configuration, ParamSpace};
pub use strategy::TuningMethod;
pub use tuna::TunaTuner;
pub use tuner::{Measurement, Trial, Tuner};
pub use workline::{build_work_lines, WorkLine};
