//! Tuning-trace recording: what was tried, when, with what result.
//!
//! The paper's figures are drawn from exactly this trace (WIPS per tuning
//! iteration); Table 4's "iterations to converge" and stability columns
//! are computed from it too.

use crate::space::Configuration;
use persist::{Checkpointable, PersistError, State};
use simkit::stats::Welford;

/// One tuning iteration's record.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// Iteration index (0-based).
    pub iteration: u32,
    /// Configuration evaluated.
    pub config: Configuration,
    /// Observed performance (WIPS).
    pub performance: f64,
}

/// The full trace of a tuning run.
#[derive(Debug, Clone, Default)]
pub struct TuningHistory {
    entries: Vec<HistoryEntry>,
}

impl TuningHistory {
    pub fn new() -> Self {
        TuningHistory::default()
    }

    pub fn record(&mut self, config: Configuration, performance: f64) {
        let iteration = self.entries.len() as u32;
        self.entries.push(HistoryEntry {
            iteration,
            config,
            performance,
        });
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn entries(&self) -> &[HistoryEntry] {
        &self.entries
    }

    /// Performance series (figure y-axis).
    pub fn performances(&self) -> Vec<f64> {
        self.entries.iter().map(|e| e.performance).collect()
    }

    /// Best performance seen up to and including each iteration.
    pub fn running_best(&self) -> Vec<f64> {
        let mut best = f64::NEG_INFINITY;
        self.entries
            .iter()
            .map(|e| {
                best = best.max(e.performance);
                best
            })
            .collect()
    }

    /// The iteration at which the final best configuration was first
    /// evaluated — Table 4's "Iterations" (time to reach the tuned
    /// configuration).
    pub fn convergence_iteration(&self) -> Option<u32> {
        let best = self
            .entries
            .iter()
            .max_by(|a, b| a.performance.total_cmp(&b.performance))?;
        Some(best.iteration)
    }

    /// Mean and standard deviation over an iteration range (e.g. the
    /// paper's "second 100 iterations").
    pub fn window_stats(&self, start: usize, end: usize) -> (f64, f64) {
        let mut w = Welford::new();
        for e in self.entries.iter().take(end).skip(start) {
            w.record(e.performance);
        }
        (w.mean(), w.std_dev())
    }

    /// Fraction of iterations in a range whose performance beats
    /// `reference` — the paper's "performance of 78%/85% of the iterations
    /// is better than the default configuration".
    pub fn fraction_above(&self, start: usize, end: usize, reference: f64) -> f64 {
        let slice: Vec<_> = self.entries.iter().take(end).skip(start).collect();
        if slice.is_empty() {
            return 0.0;
        }
        slice.iter().filter(|e| e.performance > reference).count() as f64 / slice.len() as f64
    }

    /// Best entry in the whole trace.
    pub fn best_entry(&self) -> Option<&HistoryEntry> {
        self.entries
            .iter()
            .max_by(|a, b| a.performance.total_cmp(&b.performance))
    }
}

impl Checkpointable for TuningHistory {
    fn save_state(&self) -> State {
        State::List(
            self.entries
                .iter()
                .map(|e| {
                    State::map()
                        .with("values", State::i64_list(e.config.values()))
                        .with("performance", State::F64(e.performance))
                })
                .collect(),
        )
    }

    fn restore_state(&mut self, state: &State) -> Result<(), PersistError> {
        let items = state
            .as_list()
            .ok_or_else(|| PersistError::Schema("history state is not a list".into()))?;
        self.entries.clear();
        for item in items {
            // `record` re-derives the iteration index, so ordering is
            // preserved exactly as saved.
            self.record(
                Configuration::from_values(item.require("values")?.to_i64_vec()?),
                item.field_f64("performance")?,
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history(perfs: &[f64]) -> TuningHistory {
        let mut h = TuningHistory::new();
        for &p in perfs {
            h.record(Configuration::from_values(vec![0]), p);
        }
        h
    }

    #[test]
    fn records_in_order() {
        let h = history(&[1.0, 3.0, 2.0]);
        assert_eq!(h.len(), 3);
        assert_eq!(h.entries()[1].iteration, 1);
        assert_eq!(h.performances(), vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn running_best_is_monotone() {
        let h = history(&[1.0, 3.0, 2.0, 5.0, 4.0]);
        assert_eq!(h.running_best(), vec![1.0, 3.0, 3.0, 5.0, 5.0]);
    }

    #[test]
    fn convergence_iteration_finds_peak() {
        let h = history(&[1.0, 3.0, 2.0, 5.0, 4.0]);
        assert_eq!(h.convergence_iteration(), Some(3));
        assert!(history(&[]).convergence_iteration().is_none());
    }

    #[test]
    fn window_stats_match_manual() {
        let h = history(&[0.0, 0.0, 2.0, 4.0, 6.0, 100.0]);
        let (mean, sd) = h.window_stats(2, 5);
        assert!((mean - 4.0).abs() < 1e-12);
        assert!((sd - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_above_reference() {
        let h = history(&[1.0, 2.0, 3.0, 4.0]);
        assert!((h.fraction_above(0, 4, 2.5) - 0.5).abs() < 1e-12);
        assert_eq!(h.fraction_above(4, 8, 0.0), 0.0); // empty window
    }

    #[test]
    fn best_entry() {
        let h = history(&[1.0, 9.0, 3.0]);
        assert_eq!(h.best_entry().unwrap().iteration, 1);
    }
}
