//! The Harmony tuning server: a tuner plus its trace.
//!
//! One server owns one parameter subset. The "default method" of the
//! paper uses a single server for every parameter of every node; the
//! scalability methods (§III.B) run several servers side by side, each
//! tuning its own subset against its own performance signal.

use crate::history::TuningHistory;
use crate::space::{Configuration, ParamSpace};
use crate::tuner::{Measurement, Tuner};
use persist::{Checkpointable, PersistError, State};

/// A named tuning server.
pub struct HarmonyServer {
    name: String,
    tuner: Box<dyn Tuner + Send>,
    history: TuningHistory,
    pending: Option<Configuration>,
}

impl HarmonyServer {
    pub fn new(name: impl Into<String>, tuner: Box<dyn Tuner + Send>) -> Self {
        HarmonyServer {
            name: name.into(),
            tuner,
            history: TuningHistory::new(),
            pending: None,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn space(&self) -> &ParamSpace {
        self.tuner.space()
    }

    pub fn algorithm(&self) -> &'static str {
        self.tuner.name()
    }

    /// Propose the configuration for the next tuning iteration.
    pub fn next_config(&mut self) -> Configuration {
        let c = self.tuner.propose();
        self.pending = Some(c.clone());
        c
    }

    /// Report the measured performance of the last proposed configuration
    /// as a bare point value (no CI, one replication).
    pub fn report(&mut self, performance: f64) {
        self.report_measurement(Measurement::point(performance));
    }

    /// Report a typed measurement: noise-aware tuners (TUNA) weight the
    /// observation by its confidence interval and replication count.
    pub fn report_measurement(&mut self, m: Measurement) {
        let Some(config) = self.pending.take() else {
            panic!("report() without next_config()");
        };
        self.history.record(config, m.mean);
        self.tuner.observe_measurement(m);
    }

    /// The underlying tuner's natural batch width (see
    /// [`Tuner::batch_size`]).
    pub fn batch_size(&self) -> usize {
        self.tuner.batch_size()
    }

    /// Best configuration observed so far.
    pub fn best(&self) -> Option<(&Configuration, f64)> {
        self.tuner.best()
    }

    pub fn history(&self) -> &TuningHistory {
        &self.history
    }

    pub fn iterations(&self) -> usize {
        self.history.len()
    }

    /// Reset the underlying tuner's search state (see [`Tuner::reset`]).
    /// History and the best-seen record are kept; any pending proposal is
    /// dropped so the next `next_config` starts the fresh search.
    pub fn reset(&mut self) {
        self.pending = None;
        self.tuner.reset();
    }

    /// The tuner's internal diagnostics for the current iteration.
    pub fn diagnostics(&self) -> Vec<(&'static str, f64)> {
        self.tuner.diagnostics()
    }

    /// Configurations this server may propose over its next few
    /// [`HarmonyServer::next_config`] calls (see [`Tuner::speculate`]).
    /// Empty while a proposal awaits its report.
    pub fn speculate(&self) -> Vec<Vec<Configuration>> {
        if self.pending.is_some() {
            return Vec::new();
        }
        self.tuner.speculate()
    }
}

impl Checkpointable for HarmonyServer {
    /// Server identity plus the tuner's search state, the pending
    /// proposal, and the full tuning history.
    fn save_state(&self) -> State {
        State::map()
            .with("name", State::Str(self.name.clone()))
            .with("tuner", self.tuner.save_state())
            .with("history", self.history.save_state())
            .with(
                "pending",
                match &self.pending {
                    Some(c) => State::i64_list(c.values()),
                    None => State::Null,
                },
            )
    }

    fn restore_state(&mut self, state: &State) -> Result<(), PersistError> {
        let name = state.field_str("name")?;
        if name != self.name {
            return Err(PersistError::Schema(format!(
                "checkpoint is for server '{name}', this server is '{}'",
                self.name
            )));
        }
        self.tuner.restore_state(state.require("tuner")?)?;
        self.history.restore_state(state.require("history")?)?;
        self.pending = match state.require("pending")? {
            State::Null => None,
            values => Some(Configuration::from_values(values.to_i64_vec()?)),
        };
        Ok(())
    }
}

impl std::fmt::Debug for HarmonyServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HarmonyServer")
            .field("name", &self.name)
            .field("algorithm", &self.tuner.name())
            .field("iterations", &self.history.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamDef;
    use crate::simplex::SimplexTuner;

    fn server() -> HarmonyServer {
        let space = ParamSpace::new(vec![
            ParamDef::new("x", 0, 100, 50),
            ParamDef::new("y", 0, 100, 50),
        ]);
        HarmonyServer::new("test", Box::new(SimplexTuner::new(space)))
    }

    #[test]
    fn drives_tuner_and_records_history() {
        let mut s = server();
        for _ in 0..20 {
            let c = s.next_config();
            let perf = -(c.get(0) as f64 - 80.0).abs();
            s.report(perf);
        }
        assert_eq!(s.iterations(), 20);
        assert_eq!(s.history().len(), 20);
        assert!(s.best().is_some());
        assert_eq!(s.name(), "test");
        assert_eq!(s.algorithm(), "simplex");
    }

    #[test]
    fn history_matches_reported_performances() {
        let mut s = server();
        let mut perfs = Vec::new();
        for i in 0..5 {
            s.next_config();
            let p = i as f64 * 2.0;
            perfs.push(p);
            s.report(p);
        }
        assert_eq!(s.history().performances(), perfs);
    }

    #[test]
    #[should_panic(expected = "report() without next_config()")]
    fn report_without_propose_panics() {
        let mut s = server();
        s.report(1.0);
    }

    #[test]
    fn speculate_predicts_next_config_and_respects_pending() {
        let mut s = server();
        for _ in 0..10 {
            let ahead = s.speculate();
            let c = s.next_config();
            if let Some(next) = ahead.first() {
                assert!(next.contains(&c), "speculated {next:?}, proposed {c}");
            }
            assert!(
                s.speculate().is_empty(),
                "speculation must stay silent while a report is due"
            );
            s.report(c.get(0) as f64);
        }
    }
}
