//! The Harmony tuning server: a tuner plus its trace.
//!
//! One server owns one parameter subset. The "default method" of the
//! paper uses a single server for every parameter of every node; the
//! scalability methods (§III.B) run several servers side by side, each
//! tuning its own subset against its own performance signal.

use std::collections::VecDeque;

use crate::history::TuningHistory;
use crate::space::{Configuration, ParamSpace};
use crate::tuner::{Measurement, Trial, Tuner};
use persist::{Checkpointable, PersistError, State};

/// A named tuning server.
pub struct HarmonyServer {
    name: String,
    tuner: Box<dyn Tuner + Send>,
    history: TuningHistory,
    pending: Option<Configuration>,
    /// Drive the tuner through the ask/tell v2 batch protocol
    /// ([`Tuner::propose_batch`] / [`Tuner::observe_trial`]) instead of
    /// the strictly-alternating propose/observe pair. Batch-native
    /// algorithms hand out their whole planning round at once; the
    /// server queues it and serves one trial per `next_config` call, so
    /// the queued remainder is *certain* future work — exactly what
    /// speculative evaluation wants to see.
    batch_mode: bool,
    /// Trials handed out by `propose_batch` but not yet proposed.
    queued: VecDeque<Trial>,
    /// The trial whose measurement is outstanding (batch mode only).
    pending_trial: Option<Trial>,
}

impl HarmonyServer {
    pub fn new(name: impl Into<String>, tuner: Box<dyn Tuner + Send>) -> Self {
        HarmonyServer {
            name: name.into(),
            tuner,
            history: TuningHistory::new(),
            pending: None,
            batch_mode: false,
            queued: VecDeque::new(),
            pending_trial: None,
        }
    }

    /// Builder: drive the tuner through the v2 batch protocol. The
    /// proposal sequence is identical to the alternating protocol (a
    /// round's trials pop in the same order its `propose` calls would),
    /// so traces and results do not change — but the queued remainder
    /// of the round becomes visible to [`HarmonyServer::speculate`].
    pub fn batch_protocol(mut self, on: bool) -> Self {
        self.batch_mode = on;
        self
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn space(&self) -> &ParamSpace {
        self.tuner.space()
    }

    pub fn algorithm(&self) -> &'static str {
        self.tuner.name()
    }

    /// Propose the configuration for the next tuning iteration. In
    /// batch mode the server refills its queue from
    /// [`Tuner::propose_batch`] when it runs dry and serves the next
    /// queued trial; otherwise it asks [`Tuner::propose`] directly.
    pub fn next_config(&mut self) -> Configuration {
        if self.batch_mode {
            if self.queued.is_empty() && self.pending_trial.is_none() {
                self.queued.extend(self.tuner.propose_batch());
            }
            let Some(trial) = self.queued.pop_front() else {
                panic!("next_config() while a batch trial awaits its report");
            };
            let c = trial.config.clone();
            self.pending_trial = Some(trial);
            return c;
        }
        let c = self.tuner.propose();
        self.pending = Some(c.clone());
        c
    }

    /// Report the measured performance of the last proposed configuration
    /// as a bare point value (no CI, one replication).
    pub fn report(&mut self, performance: f64) {
        self.report_measurement(Measurement::point(performance));
    }

    /// Report a typed measurement: noise-aware tuners (TUNA) weight the
    /// observation by its confidence interval and replication count. In
    /// batch mode the result is routed back by trial id
    /// ([`Tuner::observe_trial`]).
    pub fn report_measurement(&mut self, m: Measurement) {
        if let Some(trial) = self.pending_trial.take() {
            self.history.record(trial.config, m.mean);
            self.tuner.observe_trial(trial.id, m);
            return;
        }
        let Some(config) = self.pending.take() else {
            panic!("report() without next_config()");
        };
        self.history.record(config, m.mean);
        self.tuner.observe_measurement(m);
    }

    /// The underlying tuner's natural batch width (see
    /// [`Tuner::batch_size`]). In batch mode a partially-served round
    /// reports its queued remainder, mirroring what the tuner itself
    /// would report mid-round under the alternating protocol.
    pub fn batch_size(&self) -> usize {
        if !self.queued.is_empty() {
            return self.queued.len();
        }
        self.tuner.batch_size()
    }

    /// Best configuration observed so far.
    pub fn best(&self) -> Option<(&Configuration, f64)> {
        self.tuner.best()
    }

    pub fn history(&self) -> &TuningHistory {
        &self.history
    }

    pub fn iterations(&self) -> usize {
        self.history.len()
    }

    /// Reset the underlying tuner's search state (see [`Tuner::reset`]).
    /// History and the best-seen record are kept; any pending proposal is
    /// dropped so the next `next_config` starts the fresh search.
    pub fn reset(&mut self) {
        self.pending = None;
        self.pending_trial = None;
        self.queued.clear();
        self.tuner.reset();
    }

    /// The tuner's internal diagnostics for the current iteration.
    pub fn diagnostics(&self) -> Vec<(&'static str, f64)> {
        self.tuner.diagnostics()
    }

    /// Configurations this server may propose over its next few
    /// [`HarmonyServer::next_config`] calls (see [`Tuner::speculate`]).
    /// Empty while a proposal awaits its report. In batch mode the
    /// queued remainder of the current round is promised verbatim —
    /// *certain* future proposals, one per offset — before falling back
    /// to the tuner's own (advisory) speculation between rounds. This
    /// is how batch-native zoo tuners (BestConfig, ClassyTune) feed the
    /// shared worker pool, not just the simplex.
    pub fn speculate(&self) -> Vec<Vec<Configuration>> {
        if self.pending.is_some() || self.pending_trial.is_some() {
            return Vec::new();
        }
        if !self.queued.is_empty() {
            return self.queued.iter().map(|t| vec![t.config.clone()]).collect();
        }
        self.tuner.speculate()
    }
}

fn trial_state(t: &Trial) -> State {
    State::map()
        .with("id", State::U64(t.id))
        .with("values", State::i64_list(t.config.values()))
}

fn trial_from_state(state: &State) -> Result<Trial, PersistError> {
    Ok(Trial::new(
        state.field_u64("id")?,
        Configuration::from_values(state.require("values")?.to_i64_vec()?),
    ))
}

impl Checkpointable for HarmonyServer {
    /// Server identity plus the tuner's search state, the pending
    /// proposal (or batch trial), the queued batch remainder, and the
    /// full tuning history.
    fn save_state(&self) -> State {
        State::map()
            .with("name", State::Str(self.name.clone()))
            .with("tuner", self.tuner.save_state())
            .with("history", self.history.save_state())
            .with(
                "pending",
                match &self.pending {
                    Some(c) => State::i64_list(c.values()),
                    None => State::Null,
                },
            )
            .with(
                "pending_trial",
                match &self.pending_trial {
                    Some(t) => trial_state(t),
                    None => State::Null,
                },
            )
            .with(
                "queued",
                State::List(self.queued.iter().map(trial_state).collect()),
            )
    }

    fn restore_state(&mut self, state: &State) -> Result<(), PersistError> {
        let name = state.field_str("name")?;
        if name != self.name {
            return Err(PersistError::Schema(format!(
                "checkpoint is for server '{name}', this server is '{}'",
                self.name
            )));
        }
        self.tuner.restore_state(state.require("tuner")?)?;
        self.history.restore_state(state.require("history")?)?;
        self.pending = match state.require("pending")? {
            State::Null => None,
            values => Some(Configuration::from_values(values.to_i64_vec()?)),
        };
        // Batch fields are absent from pre-batch-protocol snapshots:
        // treat missing as empty so old checkpoints keep resuming.
        self.pending_trial = match state.get("pending_trial") {
            None | Some(State::Null) => None,
            Some(t) => Some(trial_from_state(t)?),
        };
        self.queued.clear();
        if let Some(queued) = state.get("queued") {
            let State::List(items) = queued else {
                return Err(PersistError::Schema("queued must be a list".into()));
            };
            for item in items {
                self.queued.push_back(trial_from_state(item)?);
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for HarmonyServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HarmonyServer")
            .field("name", &self.name)
            .field("algorithm", &self.tuner.name())
            .field("iterations", &self.history.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamDef;
    use crate::simplex::SimplexTuner;

    fn server() -> HarmonyServer {
        let space = ParamSpace::new(vec![
            ParamDef::new("x", 0, 100, 50),
            ParamDef::new("y", 0, 100, 50),
        ]);
        HarmonyServer::new("test", Box::new(SimplexTuner::new(space)))
    }

    #[test]
    fn drives_tuner_and_records_history() {
        let mut s = server();
        for _ in 0..20 {
            let c = s.next_config();
            let perf = -(c.get(0) as f64 - 80.0).abs();
            s.report(perf);
        }
        assert_eq!(s.iterations(), 20);
        assert_eq!(s.history().len(), 20);
        assert!(s.best().is_some());
        assert_eq!(s.name(), "test");
        assert_eq!(s.algorithm(), "simplex");
    }

    #[test]
    fn history_matches_reported_performances() {
        let mut s = server();
        let mut perfs = Vec::new();
        for i in 0..5 {
            s.next_config();
            let p = i as f64 * 2.0;
            perfs.push(p);
            s.report(p);
        }
        assert_eq!(s.history().performances(), perfs);
    }

    #[test]
    #[should_panic(expected = "report() without next_config()")]
    fn report_without_propose_panics() {
        let mut s = server();
        s.report(1.0);
    }

    fn batch_server(tuner: Box<dyn Tuner + Send>) -> HarmonyServer {
        HarmonyServer::new("test", tuner).batch_protocol(true)
    }

    #[test]
    fn batch_protocol_matches_alternating_protocol_exactly() {
        // The v2 batch path must reproduce the alternating path's
        // proposal sequence bit-for-bit — for a point tuner (simplex,
        // one-element default batches) and a batch-native one
        // (BestConfig rounds).
        let space = ParamSpace::new(vec![
            ParamDef::new("x", 0, 100, 50),
            ParamDef::new("y", 0, 100, 50),
        ]);
        let builds: Vec<fn(ParamSpace) -> Box<dyn Tuner + Send>> =
            vec![|s| Box::new(SimplexTuner::new(s)), |s| {
                Box::new(crate::bestconfig::BestConfigTuner::new(s, 7))
            }];
        for build in builds {
            let mut alternating = HarmonyServer::new("test", build(space.clone()));
            let mut batched = batch_server(build(space.clone()));
            for _ in 0..25 {
                let a = alternating.next_config();
                let b = batched.next_config();
                assert_eq!(a, b, "protocols diverged");
                let perf = -(a.get(0) as f64 - 80.0).abs();
                alternating.report(perf);
                batched.report(perf);
            }
            assert_eq!(
                alternating.history().performances(),
                batched.history().performances()
            );
        }
    }

    #[test]
    fn batch_protocol_exposes_queued_round_to_speculation() {
        let space = ParamSpace::new(vec![ParamDef::new("x", 0, 100, 50)]);
        let mut s = batch_server(Box::new(crate::bestconfig::BestConfigTuner::new(space, 7)));
        // Prime one round so the queue is refilled mid-round.
        let c = s.next_config();
        s.report(c.get(0) as f64);
        let c = s.next_config();
        s.report(c.get(0) as f64);
        // Between reports the queued remainder is certain: speculation
        // must promise it verbatim, one configuration per offset.
        let ahead = s.speculate();
        assert!(
            !ahead.is_empty(),
            "a queued batch must be visible to speculation"
        );
        for next in &ahead {
            assert_eq!(next.len(), 1, "queued trials are certain");
        }
        let promised: Vec<Configuration> = ahead.iter().map(|v| v[0].clone()).collect();
        for expected in promised {
            assert_eq!(s.next_config(), expected);
            assert!(
                s.speculate().is_empty(),
                "speculation must stay silent while a report is due"
            );
            s.report(1.0);
        }
    }

    #[test]
    fn batch_state_roundtrips_mid_round() {
        let space = ParamSpace::new(vec![ParamDef::new("x", 0, 100, 50)]);
        let mut s = batch_server(Box::new(crate::bestconfig::BestConfigTuner::new(
            space.clone(),
            7,
        )));
        for _ in 0..3 {
            let c = s.next_config();
            s.report(c.get(0) as f64);
        }
        let saved = Checkpointable::save_state(&s);
        let mut restored =
            batch_server(Box::new(crate::bestconfig::BestConfigTuner::new(space, 7)));
        Checkpointable::restore_state(&mut restored, &saved).expect("restore");
        for _ in 0..10 {
            let a = s.next_config();
            let b = restored.next_config();
            assert_eq!(a, b, "restored server diverged");
            s.report(a.get(0) as f64);
            restored.report(a.get(0) as f64);
        }
    }

    #[test]
    fn restore_accepts_pre_batch_snapshots() {
        // Old snapshots carry no pending_trial/queued fields; restoring
        // one into a batch-protocol server must succeed with an empty
        // queue rather than fail the schema check.
        let mut old = server();
        let c = old.next_config();
        old.report(c.get(0) as f64);
        let saved = Checkpointable::save_state(&old);
        let legacy = match saved {
            State::Map(fields) => State::Map(
                fields
                    .into_iter()
                    .filter(|(k, _)| k != "pending_trial" && k != "queued")
                    .collect(),
            ),
            other => other,
        };
        let space = ParamSpace::new(vec![
            ParamDef::new("x", 0, 100, 50),
            ParamDef::new("y", 0, 100, 50),
        ]);
        let mut restored = batch_server(Box::new(SimplexTuner::new(space)));
        Checkpointable::restore_state(&mut restored, &legacy).expect("legacy restore");
        assert_eq!(restored.iterations(), 1);
    }

    #[test]
    fn speculate_predicts_next_config_and_respects_pending() {
        let mut s = server();
        for _ in 0..10 {
            let ahead = s.speculate();
            let c = s.next_config();
            if let Some(next) = ahead.first() {
                assert!(next.contains(&c), "speculated {next:?}, proposed {c}");
            }
            assert!(
                s.speculate().is_empty(),
                "speculation must stay silent while a report is due"
            );
            s.report(c.get(0) as f64);
        }
    }
}
