//! Work-line construction for the parameter-partitioning method (§III.B).
//!
//! A *work line* is a vertical slice of the cluster: at least one server
//! from each tier, such that a request is handled by exactly one line.
//! Each line gets its own dedicated Harmony tuning server; a configuration
//! change in one line only affects that line's measured performance, which
//! is what makes the partitioned tuning process stable.

use std::collections::BTreeMap;
use std::fmt;

/// A work line: the node ids (into the caller's node list) it owns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkLine {
    pub nodes: Vec<usize>,
}

/// Failures when building work lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkLineError {
    /// There are no nodes at all.
    NoNodes,
    /// A tier has zero nodes, so no line can cross every tier.
    EmptyTier,
}

impl fmt::Display for WorkLineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkLineError::NoNodes => write!(f, "no nodes to partition"),
            WorkLineError::EmptyTier => write!(f, "a tier has no nodes"),
        }
    }
}

impl std::error::Error for WorkLineError {}

/// Partition `(node, tier)` pairs into the maximum number of work lines:
/// one line per node of the smallest tier, with every tier's nodes dealt
/// round-robin across lines. Every line gets at least one node of each
/// tier; tiers larger than the line count contribute extra nodes to the
/// earlier lines.
pub fn build_work_lines<T: Copy + Ord>(
    nodes: &[(usize, T)],
) -> Result<Vec<WorkLine>, WorkLineError> {
    if nodes.is_empty() {
        return Err(WorkLineError::NoNodes);
    }
    let mut by_tier: BTreeMap<T, Vec<usize>> = BTreeMap::new();
    for (id, tier) in nodes {
        by_tier.entry(*tier).or_default().push(*id);
    }
    let line_count = by_tier.values().map(|v| v.len()).min().unwrap_or(0);
    if line_count == 0 {
        return Err(WorkLineError::EmptyTier);
    }
    let mut lines = vec![WorkLine { nodes: Vec::new() }; line_count];
    for tier_nodes in by_tier.values() {
        for (i, node) in tier_nodes.iter().enumerate() {
            lines[i % line_count].nodes.push(*node);
        }
    }
    for line in &mut lines {
        line.nodes.sort_unstable();
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_cluster_splits_evenly() {
        // 2 proxies (tier 0), 2 apps (tier 1), 2 dbs (tier 2).
        let nodes = [(0, 0), (1, 0), (2, 1), (3, 1), (4, 2), (5, 2)];
        let lines = build_work_lines(&nodes).unwrap();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].nodes, vec![0, 2, 4]);
        assert_eq!(lines[1].nodes, vec![1, 3, 5]);
    }

    #[test]
    fn line_count_is_min_tier_size() {
        // 4 proxies, 2 apps, 1 db => one line holding everything.
        let nodes = [(0, 0), (1, 0), (2, 0), (3, 0), (4, 1), (5, 1), (6, 2)];
        let lines = build_work_lines(&nodes).unwrap();
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].nodes.len(), 7);
    }

    #[test]
    fn uneven_tiers_deal_extras_round_robin() {
        // 3 proxies, 2 apps, 2 dbs => 2 lines; proxy extra goes to line 0.
        let nodes = [(0, 0), (1, 0), (2, 0), (3, 1), (4, 1), (5, 2), (6, 2)];
        let lines = build_work_lines(&nodes).unwrap();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].nodes, vec![0, 2, 3, 5]);
        assert_eq!(lines[1].nodes, vec![1, 4, 6]);
        // Every node appears in exactly one line.
        let mut all: Vec<usize> = lines.iter().flat_map(|l| l.nodes.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn every_line_has_every_tier() {
        let nodes = [
            (0, 0),
            (1, 0),
            (2, 0),
            (3, 1),
            (4, 1),
            (5, 1),
            (6, 2),
            (7, 2),
            (8, 2),
        ];
        let lines = build_work_lines(&nodes).unwrap();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            for tier in 0..3 {
                let count = line
                    .nodes
                    .iter()
                    .filter(|n| nodes.iter().any(|(id, t)| id == *n && *t == tier))
                    .count();
                assert_eq!(count, 1, "line {line:?} tier {tier}");
            }
        }
    }

    #[test]
    fn errors() {
        assert_eq!(build_work_lines::<u8>(&[]), Err(WorkLineError::NoNodes));
    }
}
