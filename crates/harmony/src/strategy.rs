//! Cluster tuning methods (§III.B).
//!
//! The method names follow Table 4:
//!
//! * **None** — the untuned default configuration (baseline row).
//! * **Default method** — one Harmony server tunes every parameter of
//!   every node (n grows with the cluster; slow but fully general).
//! * **Parameter duplication** — one server per *tier* tunes a single
//!   node's parameters and the values are replicated across the tier.
//!   Assumes homogeneous nodes and evenly-balanced load.
//! * **Parameter partitioning** — one server per *work line* (see
//!   [`crate::workline`]), each fed by its own line's throughput.
//! * **Hybrid** — the paper's future-work idea: duplication first for
//!   fast coarse convergence, then per-line servers for fine tuning.
//!
//! The actual wiring of spaces to cluster nodes lives in the orchestrator
//! crate; this module defines the method vocabulary shared by reports.

use std::fmt;

/// A cluster tuning method from Table 4 (plus the future-work hybrid).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TuningMethod {
    /// No tuning: defaults throughout.
    None,
    /// Single Harmony server for all parameters of all nodes.
    Default,
    /// Tune one node per tier; replicate values across the tier.
    Duplication,
    /// Independent server per work line.
    Partitioning,
    /// Duplication for the first phase, then partitioning.
    Hybrid,
}

impl TuningMethod {
    pub const ALL: [TuningMethod; 5] = [
        TuningMethod::None,
        TuningMethod::Default,
        TuningMethod::Duplication,
        TuningMethod::Partitioning,
        TuningMethod::Hybrid,
    ];

    /// Table 4 row label.
    pub fn label(self) -> &'static str {
        match self {
            TuningMethod::None => "None (No Tuning)",
            TuningMethod::Default => "Default method",
            TuningMethod::Duplication => "Parameter duplication",
            TuningMethod::Partitioning => "Parameter partitioning",
            TuningMethod::Hybrid => "Hybrid (duplication + partitioning)",
        }
    }

    /// Whether this method tunes anything at all.
    pub fn tunes(self) -> bool {
        self != TuningMethod::None
    }
}

impl fmt::Display for TuningMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_table4() {
        assert_eq!(TuningMethod::None.label(), "None (No Tuning)");
        assert_eq!(TuningMethod::Default.label(), "Default method");
        assert_eq!(TuningMethod::Duplication.label(), "Parameter duplication");
        assert_eq!(TuningMethod::Partitioning.label(), "Parameter partitioning");
    }

    #[test]
    fn only_none_does_not_tune() {
        for m in TuningMethod::ALL {
            assert_eq!(m.tunes(), m != TuningMethod::None);
        }
    }
}
