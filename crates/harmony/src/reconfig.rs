//! Automatic cluster reconfiguration (§IV, Figure 6).
//!
//! Periodically (every ~50 tuning iterations — a lower frequency than
//! parameter tuning, since moving a node is expensive) the algorithm:
//!
//! 1. builds `L1`: nodes with any resource above its high threshold;
//! 2. builds `L2`: nodes with *all* resources below their low thresholds
//!    (suitable for reassignment);
//! 3. sorts `L1` by *degree of urgency* (resource-weighted overload);
//! 4. takes `i = Head(L1)` and picks `k ∈ L2` with `Tier(k) ≠ Tier(i)`,
//!    `M(Tier(k)) > 1`, minimising `F + N_k·M_km − N_k·A_k`;
//! 5. reconfigures `k` into `Tier(i)` — immediately if the cost expression
//!    is non-positive (moving the jobs is cheaper than draining), else
//!    after the node's jobs finish.

use crate::monitor::{Resource, UtilizationSnapshot};

/// Per-resource high/low thresholds (`HT_ij`, `LT_ij` — uniform across
/// nodes here, as in the paper's experiments).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    pub high: f64,
    pub low: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        // Overloaded above 85%, reassignable when everything is under 30%.
        Thresholds {
            high: 0.85,
            low: 0.30,
        }
    }
}

/// Cost-model inputs for Step 4(c), per node `k`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeCostInputs {
    /// `N_k`: jobs currently on the node.
    pub jobs: f64,
    /// `M_km`: cost (seconds) to move one job to a same-tier neighbour.
    pub move_cost: f64,
    /// `A_k`: average processing time (seconds) of a job on the node.
    pub avg_process_time: f64,
}

/// Global reconfiguration cost `F` (seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    pub reconfiguration_cost: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            reconfiguration_cost: 30.0,
        }
    }
}

/// Everything the algorithm needs to know about one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeReport<T> {
    /// Caller's node identifier.
    pub node: usize,
    /// The tier the node currently serves.
    pub tier: T,
    /// Smoothed resource utilization.
    pub util: UtilizationSnapshot,
    /// Cost-model inputs.
    pub cost: NodeCostInputs,
}

/// The algorithm's output: move `node` into `to_tier`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconfigDecision<T> {
    /// Node to reconfigure (`k`).
    pub node: usize,
    /// Destination tier (`Tier(i)` of the most urgent overloaded node).
    pub to_tier: T,
    /// The overloaded node being relieved (`i`).
    pub relieves: usize,
    /// Step 4(c)/5: move now (true) or drain first (false).
    pub immediate: bool,
    /// Value of `F + N_k·M_km − N_k·A_k` for diagnostics.
    pub cost_value: f64,
}

/// Degree of urgency of an overloaded node: resource-weighted excess over
/// the high threshold (footnote 3: CPU overload outranks network).
fn urgency(util: &UtilizationSnapshot, thresholds: &Thresholds) -> f64 {
    Resource::ALL
        .iter()
        .map(|r| {
            let over = (util.get(*r) - thresholds.high).max(0.0);
            over * r.urgency_weight()
        })
        .sum()
}

/// Run one reconfiguration check. `tier_size(t)` must return `M(t)`, the
/// current number of nodes serving tier `t`.
pub fn decide<T: Copy + Eq>(
    reports: &[NodeReport<T>],
    thresholds: &Thresholds,
    cost_model: &CostModel,
    tier_size: impl Fn(T) -> usize,
) -> Option<ReconfigDecision<T>> {
    // Step 1: overloaded nodes.
    let mut l1: Vec<&NodeReport<T>> = reports
        .iter()
        .filter(|r| {
            Resource::ALL
                .iter()
                .any(|res| r.util.get(*res) > thresholds.high)
        })
        .collect();
    if l1.is_empty() {
        return None;
    }
    // Step 2: under-utilized nodes.
    let l2: Vec<&NodeReport<T>> = reports
        .iter()
        .filter(|r| {
            Resource::ALL
                .iter()
                .all(|res| r.util.get(*res) <= thresholds.low)
        })
        .collect();
    if l2.is_empty() {
        return None;
    }
    // Step 3: most urgent first.
    l1.sort_by(|a, b| {
        urgency(&b.util, thresholds)
            .total_cmp(&urgency(&a.util, thresholds))
            .then(a.node.cmp(&b.node))
    });

    // Step 4: walk L1 until a feasible donor exists.
    for overloaded in &l1 {
        let candidates = l2.iter().filter(|k| {
            k.tier != overloaded.tier          // 4(a)
                && tier_size(k.tier) > 1 // 4(b)
        });
        // 4(c): minimise F + N_k * M_km - N_k * A_k.
        let best = candidates.min_by(|a, b| {
            let ca = cost_value(cost_model, &a.cost);
            let cb = cost_value(cost_model, &b.cost);
            ca.total_cmp(&cb).then(a.node.cmp(&b.node))
        });
        if let Some(k) = best {
            let cv = cost_value(cost_model, &k.cost);
            // Step 5 + the non-positive/non-negative rule: immediate
            // reconfiguration when moving is cheaper than waiting.
            return Some(ReconfigDecision {
                node: k.node,
                to_tier: overloaded.tier,
                relieves: overloaded.node,
                immediate: cv <= 0.0,
                cost_value: cv,
            });
        }
    }
    None
}

/// `F + N_k·M_km − N_k·A_k` (equation 1).
pub fn cost_value(model: &CostModel, inputs: &NodeCostInputs) -> f64 {
    model.reconfiguration_cost + inputs.jobs * inputs.move_cost
        - inputs.jobs * inputs.avg_process_time
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(node: usize, tier: u8, cpu: f64, rest: f64) -> NodeReport<u8> {
        NodeReport {
            node,
            tier,
            util: UtilizationSnapshot {
                cpu,
                disk: rest,
                net: rest,
                mem: rest,
            },
            cost: NodeCostInputs {
                jobs: 5.0,
                move_cost: 0.5,
                avg_process_time: 1.0,
            },
        }
    }

    fn sizes(reports: &[NodeReport<u8>]) -> impl Fn(u8) -> usize + '_ {
        move |t| reports.iter().filter(|r| r.tier == t).count()
    }

    #[test]
    fn no_overload_no_decision() {
        let reports = vec![report(0, 0, 0.5, 0.1), report(1, 1, 0.5, 0.1)];
        assert!(decide(
            &reports,
            &Thresholds::default(),
            &CostModel::default(),
            sizes(&reports)
        )
        .is_none());
    }

    #[test]
    fn no_idle_donor_no_decision() {
        let reports = vec![report(0, 0, 0.95, 0.5), report(1, 1, 0.6, 0.5)];
        assert!(decide(
            &reports,
            &Thresholds::default(),
            &CostModel::default(),
            sizes(&reports)
        )
        .is_none());
    }

    #[test]
    fn moves_idle_node_to_overloaded_tier() {
        // Tier 1 node overloaded; tier 0 has two nodes, one idle.
        let reports = vec![
            report(0, 0, 0.1, 0.05),
            report(1, 0, 0.4, 0.2),
            report(2, 1, 0.97, 0.5),
        ];
        let d = decide(
            &reports,
            &Thresholds::default(),
            &CostModel::default(),
            sizes(&reports),
        )
        .expect("decision");
        assert_eq!(d.node, 0);
        assert_eq!(d.to_tier, 1);
        assert_eq!(d.relieves, 2);
    }

    #[test]
    fn respects_min_tier_size_guard() {
        // The only idle node is alone in its tier: M(tier)=1 forbids it.
        let reports = vec![
            report(0, 0, 0.1, 0.05), // idle, sole tier-0 node
            report(1, 1, 0.95, 0.5),
            report(2, 1, 0.9, 0.5),
        ];
        assert!(decide(
            &reports,
            &Thresholds::default(),
            &CostModel::default(),
            sizes(&reports)
        )
        .is_none());
    }

    #[test]
    fn donor_must_be_in_a_different_tier() {
        // Idle node in the same tier as the overloaded one: no move.
        let reports = vec![report(0, 1, 0.1, 0.05), report(1, 1, 0.95, 0.5)];
        assert!(decide(
            &reports,
            &Thresholds::default(),
            &CostModel::default(),
            sizes(&reports)
        )
        .is_none());
    }

    #[test]
    fn urgency_prefers_cpu_over_net() {
        // Two overloaded nodes in different tiers: CPU-bound node 2 should
        // be relieved first (footnote 3) over net-bound node 3.
        let mut net_hot = report(3, 2, 0.2, 0.1);
        net_hot.util.net = 0.99;
        let reports = vec![
            report(0, 0, 0.1, 0.05), // donor (tier 0 has two nodes)
            report(1, 0, 0.4, 0.2),
            report(2, 1, 0.99, 0.3), // cpu-hot
            net_hot,
        ];
        let d = decide(
            &reports,
            &Thresholds::default(),
            &CostModel::default(),
            sizes(&reports),
        )
        .unwrap();
        assert_eq!(d.to_tier, 1);
        assert_eq!(d.relieves, 2);
    }

    #[test]
    fn cheapest_donor_wins() {
        let mut cheap = report(0, 0, 0.1, 0.05);
        cheap.cost = NodeCostInputs {
            jobs: 1.0,
            move_cost: 0.1,
            avg_process_time: 2.0,
        };
        let mut dear = report(1, 0, 0.1, 0.05);
        dear.cost = NodeCostInputs {
            jobs: 50.0,
            move_cost: 2.0,
            avg_process_time: 0.1,
        };
        let reports = vec![cheap, dear, report(2, 0, 0.4, 0.2), report(3, 1, 0.97, 0.4)];
        let d = decide(
            &reports,
            &Thresholds::default(),
            &CostModel::default(),
            sizes(&reports),
        )
        .unwrap();
        assert_eq!(d.node, 0);
    }

    #[test]
    fn immediate_iff_cost_non_positive() {
        let model = CostModel {
            reconfiguration_cost: 1.0,
        };
        // F + N*M - N*A = 1 + 10*0.1 - 10*1.0 = -8 => immediate.
        let cheap_move = NodeCostInputs {
            jobs: 10.0,
            move_cost: 0.1,
            avg_process_time: 1.0,
        };
        assert!(cost_value(&model, &cheap_move) <= 0.0);
        // F + N*M - N*A = 1 + 10*1.0 - 10*0.1 = 10 => drain first.
        let dear_move = NodeCostInputs {
            jobs: 10.0,
            move_cost: 1.0,
            avg_process_time: 0.1,
        };
        assert!(cost_value(&model, &dear_move) > 0.0);

        let mut donor = report(0, 0, 0.1, 0.05);
        donor.cost = cheap_move;
        let reports = vec![donor, report(1, 0, 0.4, 0.2), report(2, 1, 0.99, 0.5)];
        let d = decide(&reports, &Thresholds::default(), &model, sizes(&reports)).unwrap();
        assert!(d.immediate);
        assert!((d.cost_value - (-8.0)).abs() < 1e-12);
    }

    #[test]
    fn mem_only_overload_triggers() {
        let mut r = report(0, 0, 0.2, 0.1);
        r.util.mem = 0.95;
        let reports = vec![r, report(1, 1, 0.1, 0.05), report(2, 1, 0.2, 0.1)];
        let d = decide(
            &reports,
            &Thresholds::default(),
            &CostModel::default(),
            sizes(&reports),
        )
        .unwrap();
        assert_eq!(d.to_tier, 0);
        assert_eq!(d.node, 1);
    }
}
