//! The tuning search space and points within it.

use crate::param::ParamDef;
use std::fmt;
use std::sync::Arc;

/// A bounded integer search space: one [`ParamDef`] per dimension.
///
/// Cheap to clone (the definitions are shared behind an `Arc`).
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpace {
    defs: Arc<Vec<ParamDef>>,
}

impl ParamSpace {
    pub fn new(defs: Vec<ParamDef>) -> Self {
        assert!(
            !defs.is_empty(),
            "a search space needs at least one dimension"
        );
        ParamSpace {
            defs: Arc::new(defs),
        }
    }

    pub fn dims(&self) -> usize {
        self.defs.len()
    }

    pub fn defs(&self) -> &[ParamDef] {
        &self.defs
    }

    pub fn def(&self, i: usize) -> &ParamDef {
        &self.defs[i]
    }

    /// The default configuration (every parameter at its default).
    pub fn default_config(&self) -> Configuration {
        Configuration {
            values: self.defs.iter().map(|d| d.default).collect(),
        }
    }

    /// Clamp-and-round a continuous point into a valid configuration.
    pub fn project(&self, point: &[f64]) -> Configuration {
        debug_assert_eq!(point.len(), self.dims());
        Configuration {
            values: self
                .defs
                .iter()
                .zip(point)
                .map(|(d, &v)| d.project(v))
                .collect(),
        }
    }

    /// Validate an integer configuration against the bounds.
    pub fn validate(&self, config: &Configuration) -> Result<(), SpaceError> {
        if config.values.len() != self.dims() {
            return Err(SpaceError::Arity(self.dims(), config.values.len()));
        }
        for (i, (d, v)) in self.defs.iter().zip(&config.values).enumerate() {
            if !d.contains(*v) {
                return Err(SpaceError::OutOfBounds(i, *v));
            }
        }
        Ok(())
    }

    /// Clamp an arbitrary integer vector into a valid configuration.
    pub fn clamp(&self, values: &[i64]) -> Configuration {
        debug_assert_eq!(values.len(), self.dims());
        Configuration {
            values: self
                .defs
                .iter()
                .zip(values)
                .map(|(d, &v)| d.clamp(v))
                .collect(),
        }
    }

    /// Normalised coordinates in `[0, 1]` per dimension (distance metrics,
    /// extremeness checks).
    pub fn normalize(&self, config: &Configuration) -> Vec<f64> {
        self.defs
            .iter()
            .zip(&config.values)
            .map(|(d, &v)| {
                if d.span() == 0 {
                    0.5
                } else {
                    (v - d.min) as f64 / d.span() as f64
                }
            })
            .collect()
    }

    /// Fraction of parameters sitting on a range boundary — the paper's
    /// "extreme values" diagnostic.
    pub fn extremeness(&self, config: &Configuration) -> f64 {
        let on_edge = self
            .defs
            .iter()
            .zip(&config.values)
            .filter(|(d, &v)| d.span() > 0 && (v == d.min || v == d.max))
            .count();
        on_edge as f64 / self.dims() as f64
    }
}

/// A point in a [`ParamSpace`]: one integer value per dimension.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Configuration {
    values: Vec<i64>,
}

impl Configuration {
    /// Build from raw values (validated lazily by the space).
    pub fn from_values(values: Vec<i64>) -> Self {
        Configuration { values }
    }

    pub fn values(&self) -> &[i64] {
        &self.values
    }

    pub fn get(&self, i: usize) -> i64 {
        self.values[i]
    }

    pub fn set(&mut self, i: usize, v: i64) {
        self.values[i] = v;
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Continuous view for simplex arithmetic.
    pub fn as_f64(&self) -> Vec<f64> {
        self.values.iter().map(|&v| v as f64).collect()
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// Space validation failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpaceError {
    Arity(usize, usize),
    OutOfBounds(usize, i64),
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::Arity(want, got) => write!(f, "expected {want} values, got {got}"),
            SpaceError::OutOfBounds(dim, v) => {
                write!(f, "dimension {dim}: value {v} out of bounds")
            }
        }
    }
}

impl std::error::Error for SpaceError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ParamSpace {
        ParamSpace::new(vec![
            ParamDef::new("a", 0, 100, 50),
            ParamDef::new("b", -10, 10, 0),
            ParamDef::new("c", 1, 1, 1),
        ])
    }

    #[test]
    fn default_config() {
        let s = space();
        let c = s.default_config();
        assert_eq!(c.values(), &[50, 0, 1]);
        assert!(s.validate(&c).is_ok());
    }

    #[test]
    fn project_rounds_and_clamps() {
        let s = space();
        let c = s.project(&[49.6, -20.0, 5.0]);
        assert_eq!(c.values(), &[50, -10, 1]);
    }

    #[test]
    fn validate_catches_errors() {
        let s = space();
        assert_eq!(
            s.validate(&Configuration::from_values(vec![0, 0])),
            Err(SpaceError::Arity(3, 2))
        );
        assert_eq!(
            s.validate(&Configuration::from_values(vec![101, 0, 1])),
            Err(SpaceError::OutOfBounds(0, 101))
        );
    }

    #[test]
    fn normalize_maps_bounds_to_unit() {
        let s = space();
        let n = s.normalize(&Configuration::from_values(vec![0, 10, 1]));
        assert_eq!(n[0], 0.0);
        assert_eq!(n[1], 1.0);
        assert_eq!(n[2], 0.5); // zero-span dimension pins to midpoint
    }

    #[test]
    fn extremeness_counts_boundary_params() {
        let s = space();
        // Zero-span dim `c` never counts as extreme.
        assert_eq!(
            s.extremeness(&Configuration::from_values(vec![0, 10, 1])),
            2.0 / 3.0
        );
        assert_eq!(s.extremeness(&s.default_config()), 0.0);
    }

    #[test]
    fn clamp_fixes_out_of_range() {
        let s = space();
        let c = s.clamp(&[-5, 99, 42]);
        assert_eq!(c.values(), &[0, 10, 1]);
        assert!(s.validate(&c).is_ok());
    }

    #[test]
    fn roundtrip_f64() {
        let s = space();
        let c = s.default_config();
        let back = s.project(&c.as_f64());
        assert_eq!(c, back);
    }

    #[test]
    fn display_is_compact() {
        let c = Configuration::from_values(vec![1, 2, 3]);
        assert_eq!(format!("{c}"), "[1, 2, 3]");
    }
}
