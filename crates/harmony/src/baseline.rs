//! Baseline tuning algorithms for ablation against the simplex kernel.
//!
//! The paper uses only Nelder–Mead; these comparators quantify what the
//! simplex buys: [`RandomSearch`] is the no-structure floor, and
//! [`CoordinateDescent`] is the "tune one knob at a time" strategy a
//! careful administrator might follow.

use crate::space::{Configuration, ParamSpace};
use crate::tuner::{
    opt_config_from_state, opt_config_state, rng_from_state, rng_state, BestTracker, Tuner,
};
use persist::{Checkpointable, PersistError, State};
use simkit::rng::SimRng;

/// Uniform random sampling of the space, remembering the best.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    space: ParamSpace,
    rng: SimRng,
    seed: u64,
    pending: Option<Configuration>,
    tracker: BestTracker,
    first: bool,
}

impl RandomSearch {
    pub fn new(space: ParamSpace, seed: u64) -> Self {
        RandomSearch {
            space,
            rng: SimRng::new(seed),
            seed,
            pending: None,
            tracker: BestTracker::default(),
            first: true,
        }
    }
}

impl Tuner for RandomSearch {
    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn propose(&mut self) -> Configuration {
        assert!(self.pending.is_none(), "propose() twice without observe()");
        // Evaluate the default first so improvement is measured against it.
        let config = if self.first {
            self.first = false;
            self.space.default_config()
        } else {
            let values: Vec<i64> = self
                .space
                .defs()
                .iter()
                .map(|d| self.rng.uniform_i64(d.min, d.max))
                .collect();
            Configuration::from_values(values)
        };
        self.pending = Some(config.clone());
        config
    }

    fn observe(&mut self, performance: f64) {
        let Some(config) = self.pending.take() else {
            panic!("observe() without propose()");
        };
        self.tracker.record(&config, performance);
    }

    fn best(&self) -> Option<(&Configuration, f64)> {
        self.tracker.best()
    }

    fn evaluations(&self) -> u64 {
        self.tracker.evaluations()
    }

    fn name(&self) -> &'static str {
        "random"
    }

    fn reset(&mut self) {
        *self = RandomSearch::new(self.space.clone(), self.seed);
    }

    fn save_state(&self) -> State {
        Checkpointable::save_state(self)
    }

    fn restore_state(&mut self, state: &State) -> Result<(), PersistError> {
        Checkpointable::restore_state(self, state)
    }
}

impl Checkpointable for RandomSearch {
    fn save_state(&self) -> State {
        State::map()
            .with("algorithm", State::Str(self.name().to_string()))
            .with("seed", State::U64(self.seed))
            .with("first", State::Bool(self.first))
            .with("pending", opt_config_state(&self.pending))
            .with("rng", rng_state(&self.rng))
            .with("tracker", self.tracker.save_state())
    }

    fn restore_state(&mut self, state: &State) -> Result<(), PersistError> {
        let pending = opt_config_from_state(state.require("pending")?)?;
        if let Some(p) = &pending {
            if p.values().len() != self.space.dims() {
                return Err(PersistError::Schema(format!(
                    "random pending has {} dims, space has {}",
                    p.values().len(),
                    self.space.dims()
                )));
            }
        }
        self.seed = state.field_u64("seed")?;
        self.first = state.field_bool("first")?;
        self.pending = pending;
        self.rng = rng_from_state(state.require("rng")?)?;
        self.tracker.restore_state(state.require("tracker")?)?;
        Ok(())
    }
}

/// Cyclic coordinate descent with a shrinking step.
///
/// Visits one dimension at a time, trying `current ± step`; keeps a move
/// that improves on the best-known performance. After a full sweep with no
/// improvement the step halves (down to 1).
#[derive(Debug, Clone)]
pub struct CoordinateDescent {
    space: ParamSpace,
    current: Configuration,
    current_perf: Option<f64>,
    dim: usize,
    /// +1 trying up, -1 trying down.
    direction: i64,
    /// Per-dimension step size.
    steps: Vec<i64>,
    improved_this_sweep: bool,
    pending: Option<Configuration>,
    /// What the pending proposal is testing (None = evaluating `current`).
    pending_probe: Option<(usize, i64)>,
    tracker: BestTracker,
}

impl CoordinateDescent {
    pub fn new(space: ParamSpace) -> Self {
        let current = space.default_config();
        let steps = space.defs().iter().map(|d| (d.span() / 4).max(1)).collect();
        CoordinateDescent {
            space,
            current,
            current_perf: None,
            dim: 0,
            direction: 1,
            steps,
            improved_this_sweep: false,
            pending: None,
            pending_probe: None,
            tracker: BestTracker::default(),
        }
    }

    fn advance_cursor(&mut self) {
        if self.direction == 1 {
            self.direction = -1;
        } else {
            self.direction = 1;
            self.dim += 1;
            if self.dim == self.space.dims() {
                self.dim = 0;
                if !self.improved_this_sweep {
                    for s in &mut self.steps {
                        *s = (*s / 2).max(1);
                    }
                }
                self.improved_this_sweep = false;
            }
        }
    }

    fn probe_config(&self) -> Configuration {
        let mut c = self.current.clone();
        let d = self.space.def(self.dim);
        c.set(
            self.dim,
            d.clamp(c.get(self.dim) + self.direction * self.steps[self.dim]),
        );
        c
    }
}

impl Tuner for CoordinateDescent {
    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn propose(&mut self) -> Configuration {
        assert!(self.pending.is_none(), "propose() twice without observe()");
        let config = if self.current_perf.is_none() {
            self.pending_probe = None;
            self.current.clone()
        } else {
            // Skip probes that cannot move (clamped to the same value).
            let mut probe = self.probe_config();
            let mut guard = 0;
            while probe == self.current && guard < 2 * self.space.dims() {
                self.advance_cursor();
                probe = self.probe_config();
                guard += 1;
            }
            self.pending_probe = Some((self.dim, self.direction));
            probe
        };
        self.pending = Some(config.clone());
        config
    }

    fn observe(&mut self, performance: f64) {
        let Some(config) = self.pending.take() else {
            panic!("observe() without propose()");
        };
        self.tracker.record(&config, performance);
        match self.pending_probe.take() {
            None => {
                self.current_perf = Some(performance);
            }
            Some(_) => {
                let Some(cur) = self.current_perf else {
                    unreachable!("current evaluated before probes")
                };
                if performance > cur {
                    self.current = config;
                    self.current_perf = Some(performance);
                    self.improved_this_sweep = true;
                }
                self.advance_cursor();
            }
        }
    }

    fn best(&self) -> Option<(&Configuration, f64)> {
        self.tracker.best()
    }

    fn evaluations(&self) -> u64 {
        self.tracker.evaluations()
    }

    fn name(&self) -> &'static str {
        "coordinate"
    }

    fn reset(&mut self) {
        *self = CoordinateDescent::new(self.space.clone());
    }

    fn save_state(&self) -> State {
        Checkpointable::save_state(self)
    }

    fn restore_state(&mut self, state: &State) -> Result<(), PersistError> {
        Checkpointable::restore_state(self, state)
    }
}

impl Checkpointable for CoordinateDescent {
    fn save_state(&self) -> State {
        State::map()
            .with("algorithm", State::Str(self.name().to_string()))
            .with("current", State::i64_list(self.current.values()))
            .with(
                "current_perf",
                match self.current_perf {
                    Some(p) => State::F64(p),
                    None => State::Null,
                },
            )
            .with("dim", State::U64(self.dim as u64))
            .with("direction", State::I64(self.direction))
            .with("steps", State::i64_list(&self.steps))
            .with("improved", State::Bool(self.improved_this_sweep))
            .with("pending", opt_config_state(&self.pending))
            .with(
                "probe",
                match self.pending_probe {
                    Some((dim, dir)) => State::map()
                        .with("dim", State::U64(dim as u64))
                        .with("direction", State::I64(dir)),
                    None => State::Null,
                },
            )
            .with("tracker", self.tracker.save_state())
    }

    fn restore_state(&mut self, state: &State) -> Result<(), PersistError> {
        let current = Configuration::from_values(state.require("current")?.to_i64_vec()?);
        if current.values().len() != self.space.dims() {
            return Err(PersistError::Schema(format!(
                "coordinate current has {} dims, space has {}",
                current.values().len(),
                self.space.dims()
            )));
        }
        self.current = current;
        self.current_perf = match state.require("current_perf")? {
            State::Null => None,
            s => Some(s.as_f64().ok_or_else(|| {
                PersistError::Schema("field 'current_perf' is not an f64".into())
            })?),
        };
        self.dim = state.field_u64("dim")? as usize;
        self.direction = state.field_i64("direction")?;
        self.steps = state.require("steps")?.to_i64_vec()?;
        self.improved_this_sweep = state.field_bool("improved")?;
        self.pending = opt_config_from_state(state.require("pending")?)?;
        self.pending_probe = match state.require("probe")? {
            State::Null => None,
            s => Some((s.field_u64("dim")? as usize, s.field_i64("direction")?)),
        };
        self.tracker.restore_state(state.require("tracker")?)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamDef;

    fn space() -> ParamSpace {
        ParamSpace::new(vec![
            ParamDef::new("x", 0, 100, 10),
            ParamDef::new("y", 0, 100, 90),
        ])
    }

    fn objective(v: &[i64]) -> f64 {
        let dx = v[0] as f64 - 70.0;
        let dy = v[1] as f64 - 30.0;
        -(dx * dx + dy * dy)
    }

    #[test]
    fn random_search_stays_in_bounds_and_improves() {
        let s = space();
        let mut t = RandomSearch::new(s.clone(), 42);
        let mut first_perf = None;
        for _ in 0..100 {
            let c = t.propose();
            assert!(s.validate(&c).is_ok());
            let p = objective(c.values());
            if first_perf.is_none() {
                first_perf = Some(p);
            }
            t.observe(p);
        }
        assert!(t.best().unwrap().1 > first_perf.unwrap());
    }

    #[test]
    fn random_search_evaluates_default_first() {
        let s = space();
        let mut t = RandomSearch::new(s.clone(), 1);
        assert_eq!(t.propose(), s.default_config());
    }

    #[test]
    fn coordinate_descent_converges_on_separable_objective() {
        let s = space();
        let mut t = CoordinateDescent::new(s);
        for _ in 0..150 {
            let c = t.propose();
            t.observe(objective(c.values()));
        }
        let (best, _) = t.best().unwrap();
        assert!((best.get(0) - 70).abs() <= 5, "x = {}", best.get(0));
        assert!((best.get(1) - 30).abs() <= 5, "y = {}", best.get(1));
    }

    #[test]
    fn coordinate_descent_handles_boundary_defaults() {
        // Default pinned at the boundary: probes must not stall.
        let s = ParamSpace::new(vec![ParamDef::new("x", 0, 10, 0)]);
        let mut t = CoordinateDescent::new(s);
        for _ in 0..30 {
            let c = t.propose();
            t.observe(c.get(0) as f64);
        }
        assert_eq!(t.best().unwrap().0.get(0), 10);
    }

    #[test]
    fn tuners_report_names_and_counts() {
        let mut r = RandomSearch::new(space(), 5);
        let mut c = CoordinateDescent::new(space());
        assert_eq!(r.name(), "random");
        assert_eq!(c.name(), "coordinate");
        for _ in 0..10 {
            let cfg = r.propose();
            r.observe(objective(cfg.values()));
            let cfg = c.propose();
            c.observe(objective(cfg.values()));
        }
        assert_eq!(r.evaluations(), 10);
        assert_eq!(c.evaluations(), 10);
    }
}
