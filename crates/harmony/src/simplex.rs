//! Nelder–Mead simplex search adapted to bounded integer spaces.
//!
//! The Active Harmony kernel (paper §II.B): a simplex of `n+1` points in
//! the `n`-dimensional parameter space moves toward better performance by
//! reflecting its worst vertex through the centroid of the others, with
//! expansion, contraction, and multiple contraction (shrink) steps — the
//! three outcomes illustrated in the paper's Figure 3.
//!
//! Adaptations for this setting:
//!
//! * **Integer projection** — every candidate is rounded to the nearest
//!   integer point and clamped to the bounds ("using the resulting values
//!   from the nearest integer point", §II.B).
//! * **Noisy, maximise** — performance is a measured throughput, so the
//!   tuner maximises `perf` (internally minimising `-perf`) and never
//!   assumes re-evaluations agree.
//! * **Degeneracy restart** — when integer rounding collapses the simplex,
//!   it is re-seeded around the best-known point with smaller steps.
//! * **Conservative mode** (optional; the paper's future-work idea of
//!   avoiding extreme values) — candidate steps are shortened so no
//!   coordinate jumps more than a fraction of its range per move.

use crate::space::{Configuration, ParamSpace};
use crate::tuner::{BestTracker, Tuner};
use persist::{Checkpointable, PersistError, State};

/// Standard Nelder–Mead coefficients.
const ALPHA: f64 = 1.0; // reflection
const GAMMA: f64 = 2.0; // expansion
const RHO: f64 = 0.5; // contraction
const SIGMA: f64 = 0.5; // shrink

/// Fraction of each dimension's span used for the initial simplex step.
const INIT_STEP_FRAC: f64 = 0.25;

/// Conservative mode: max per-move coordinate travel as a span fraction.
const CONSERVATIVE_TRAVEL_FRAC: f64 = 0.20;

#[derive(Debug, Clone)]
struct Vertex {
    config: Configuration,
    cost: f64, // -performance
}

#[derive(Debug, Clone, PartialEq)]
enum Phase {
    /// Building the initial simplex: vertex `next` is being evaluated.
    Init { next: usize },
    /// Waiting to propose the next reflection.
    Reflect,
    /// Reflection point proposed/being evaluated.
    EvalReflect,
    /// Expansion point being evaluated (reflection was a new best).
    EvalExpand,
    /// Outside contraction being evaluated (reflection mediocre).
    EvalContractOut,
    /// Inside contraction being evaluated (reflection was worst).
    EvalContractIn,
    /// Multiple contraction: shrinking vertex `next` toward the best.
    Shrink { next: usize },
}

/// Nelder–Mead over a bounded integer space (ask–tell).
#[derive(Debug, Clone)]
pub struct SimplexTuner {
    space: ParamSpace,
    conservative: bool,
    vertices: Vec<Vertex>,
    phase: Phase,
    /// Config proposed and awaiting its observation.
    pending: Option<Configuration>,
    /// Evaluated reflection vertex (kept while deciding expansion etc.).
    reflected: Option<Vertex>,
    /// Index of the worst vertex for the current reflect cycle.
    worst_idx: usize,
    /// Centroid of all vertices except the worst (current cycle).
    centroid: Vec<f64>,
    /// Per-dimension init step (restarts shrink it).
    init_step: Vec<f64>,
    /// Seed point for (re-)initialisation.
    seed: Configuration,
    tracker: BestTracker,
    restarts: u32,
}

impl SimplexTuner {
    pub fn new(space: ParamSpace) -> Self {
        let seed = space.default_config();
        Self::with_seed(space, seed)
    }

    /// Start the initial simplex around a given configuration.
    pub fn with_seed(space: ParamSpace, seed: Configuration) -> Self {
        let init_step: Vec<f64> = space
            .defs()
            .iter()
            .map(|d| (d.span() as f64 * INIT_STEP_FRAC).max(1.0))
            .collect();
        SimplexTuner {
            space,
            conservative: false,
            vertices: Vec::new(),
            phase: Phase::Init { next: 0 },
            pending: None,
            reflected: None,
            worst_idx: 0,
            centroid: Vec::new(),
            init_step,
            seed,
            tracker: BestTracker::default(),
            restarts: 0,
        }
    }

    /// Enable conservative stepping (avoid jumping to extreme values).
    pub fn conservative(mut self, on: bool) -> Self {
        self.conservative = on;
        self
    }

    /// Number of degeneracy restarts so far (diagnostics).
    pub fn restarts(&self) -> u32 {
        self.restarts
    }

    /// Number of vertices currently in the simplex.
    pub fn simplex_size(&self) -> usize {
        self.vertices.len()
    }

    fn dims(&self) -> usize {
        self.space.dims()
    }

    /// The `i`-th initial vertex: the seed, then seed ± step per dimension.
    fn init_vertex(&self, i: usize) -> Configuration {
        if i == 0 {
            return self.seed.clone();
        }
        let dim = i - 1;
        let mut point = self.seed.as_f64();
        let def = self.space.def(dim);
        let step = self.init_step[dim];
        // Step toward the side with more room.
        let up_room = def.max as f64 - point[dim];
        let down_room = point[dim] - def.min as f64;
        point[dim] += if up_room >= down_room { step } else { -step };
        self.space.project(&point)
    }

    /// Centroid of all vertices except `exclude`.
    fn centroid_excluding(&self, exclude: usize) -> Vec<f64> {
        let n = self.dims();
        let mut c = vec![0.0; n];
        let m = (self.vertices.len() - 1).max(1) as f64;
        for (i, v) in self.vertices.iter().enumerate() {
            if i == exclude {
                continue;
            }
            for (acc, &x) in c.iter_mut().zip(v.config.values()) {
                *acc += x as f64 / m;
            }
        }
        c
    }

    /// Candidate = centroid + coef * (centroid - worst), conservative-
    /// clamped and integer-projected.
    fn candidate(&self, coef: f64) -> Configuration {
        self.candidate_from(&self.centroid, self.worst_idx, coef)
    }

    /// [`SimplexTuner::candidate`] against an explicit centroid/worst
    /// pair, so speculation can compute the coming reflect cycle's
    /// candidates without mutating the cycle state `propose` will set.
    fn candidate_from(&self, centroid: &[f64], worst_idx: usize, coef: f64) -> Configuration {
        let worst = self.vertices[worst_idx].config.as_f64();
        let mut point: Vec<f64> = centroid
            .iter()
            .zip(&worst)
            .map(|(&c, &w)| c + coef * (c - w))
            .collect();
        if self.conservative {
            for (i, p) in point.iter_mut().enumerate() {
                let span = self.space.def(i).span() as f64;
                let max_travel = (span * CONSERVATIVE_TRAVEL_FRAC).max(1.0);
                let delta = (*p - centroid[i]).clamp(-max_travel, max_travel);
                *p = centroid[i] + delta;
            }
        }
        self.space.project(&point)
    }

    /// The shrink point for vertex `next` (pure; `propose` uses it too).
    fn shrink_point(&self, next: usize) -> Configuration {
        let best = self.best_vertex_idx();
        let bp = self.vertices[best].config.as_f64();
        let vp = self.vertices[next].config.as_f64();
        let point: Vec<f64> = bp
            .iter()
            .zip(&vp)
            .map(|(&b, &v)| b + SIGMA * (v - b))
            .collect();
        self.space.project(&point)
    }

    fn worst_and_indices(&self) -> (usize, usize, f64) {
        // Returns (worst index, best index, second-worst cost).
        let mut worst = 0;
        let mut best = 0;
        for (i, v) in self.vertices.iter().enumerate() {
            if v.cost > self.vertices[worst].cost {
                worst = i;
            }
            if v.cost < self.vertices[best].cost {
                best = i;
            }
        }
        let second_worst_cost = self
            .vertices
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != worst)
            .map(|(_, v)| v.cost)
            .fold(f64::NEG_INFINITY, f64::max);
        (worst, best, second_worst_cost)
    }

    fn best_vertex_idx(&self) -> usize {
        self.worst_and_indices().1
    }

    /// True if integer projection collapsed the simplex.
    fn degenerate(&self) -> bool {
        let first = &self.vertices[0].config;
        self.vertices.iter().all(|v| v.config == *first)
    }

    /// Re-seed the simplex around the best-known configuration with halved
    /// steps (never below one integer step).
    fn restart(&mut self) {
        self.restarts += 1;
        if let Some((best, _)) = self.tracker.best() {
            self.seed = best.clone();
        }
        for s in &mut self.init_step {
            *s = (*s / 2.0).max(1.0);
        }
        self.vertices.clear();
        self.reflected = None;
        self.phase = Phase::Init { next: 0 };
    }

    /// Begin a reflect cycle: fix the worst vertex and centroid.
    fn begin_reflect(&mut self) {
        let (worst, _, _) = self.worst_and_indices();
        self.worst_idx = worst;
        self.centroid = self.centroid_excluding(worst);
    }
}

impl Tuner for SimplexTuner {
    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn propose(&mut self) -> Configuration {
        assert!(
            self.pending.is_none(),
            "propose() called twice without observe()"
        );
        let config = match self.phase.clone() {
            Phase::Init { next } => self.init_vertex(next),
            Phase::Reflect => {
                self.begin_reflect();
                self.phase = Phase::EvalReflect;
                self.candidate(ALPHA)
            }
            Phase::EvalReflect => unreachable!("EvalReflect set inside propose"),
            Phase::EvalExpand => self.candidate(GAMMA),
            Phase::EvalContractOut => self.candidate(RHO),
            Phase::EvalContractIn => self.candidate(-RHO),
            Phase::Shrink { next } => self.shrink_point(next),
        };
        self.pending = Some(config.clone());
        config
    }

    fn observe(&mut self, performance: f64) {
        let Some(config) = self.pending.take() else {
            panic!("observe() without a pending propose()");
        };
        self.tracker.record(&config, performance);
        let cost = -performance;
        let vertex = Vertex { config, cost };

        match self.phase.clone() {
            Phase::Init { next } => {
                self.vertices.push(vertex);
                let full = self.vertices.len() == self.dims() + 1;
                self.phase = if full {
                    Phase::Reflect
                } else {
                    Phase::Init { next: next + 1 }
                };
            }
            Phase::EvalReflect => {
                let (_, best, second_worst) = self.worst_and_indices();
                let best_cost = self.vertices[best].cost;
                let worst_cost = self.vertices[self.worst_idx].cost;
                if vertex.cost < best_cost {
                    // New best: try to go further.
                    self.reflected = Some(vertex);
                    self.phase = Phase::EvalExpand;
                } else if vertex.cost < second_worst {
                    self.vertices[self.worst_idx] = vertex;
                    self.phase = Phase::Reflect;
                } else if vertex.cost < worst_cost {
                    self.reflected = Some(vertex);
                    self.phase = Phase::EvalContractOut;
                } else {
                    self.reflected = Some(vertex);
                    self.phase = Phase::EvalContractIn;
                }
            }
            Phase::EvalExpand => {
                let Some(reflected) = self.reflected.take() else {
                    unreachable!("reflection stored before EvalExpand")
                };
                self.vertices[self.worst_idx] = if vertex.cost < reflected.cost {
                    vertex
                } else {
                    reflected
                };
                self.phase = Phase::Reflect;
            }
            Phase::EvalContractOut => {
                let Some(reflected) = self.reflected.take() else {
                    unreachable!("reflection stored before EvalContractOut")
                };
                if vertex.cost <= reflected.cost {
                    self.vertices[self.worst_idx] = vertex;
                    self.phase = Phase::Reflect;
                } else {
                    // Keep the (better-than-worst) reflection, then shrink.
                    self.vertices[self.worst_idx] = reflected;
                    self.phase = Phase::Shrink { next: 0 };
                    self.skip_best_in_shrink();
                }
            }
            Phase::EvalContractIn => {
                self.reflected = None;
                if vertex.cost < self.vertices[self.worst_idx].cost {
                    self.vertices[self.worst_idx] = vertex;
                    self.phase = Phase::Reflect;
                } else {
                    self.phase = Phase::Shrink { next: 0 };
                    self.skip_best_in_shrink();
                }
            }
            Phase::Shrink { next } => {
                self.vertices[next] = vertex;
                let mut n = next + 1;
                let best = self.best_vertex_idx();
                if n == best {
                    n += 1;
                }
                if n >= self.vertices.len() {
                    if self.degenerate() {
                        self.restart();
                    } else {
                        self.phase = Phase::Reflect;
                    }
                } else {
                    self.phase = Phase::Shrink { next: n };
                }
            }
            Phase::Reflect => unreachable!("observe in non-evaluating phase"),
        }
        // Degeneracy can also arise from repeated integer contraction.
        if matches!(self.phase, Phase::Reflect)
            && self.vertices.len() == self.dims() + 1
            && self.degenerate()
        {
            self.restart();
        }
    }

    fn best(&self) -> Option<(&Configuration, f64)> {
        self.tracker.best()
    }

    fn evaluations(&self) -> u64 {
        self.tracker.evaluations()
    }

    fn name(&self) -> &'static str {
        if self.conservative {
            "simplex-conservative"
        } else {
            "simplex"
        }
    }

    /// Fresh search from the original seed: full-size initial steps, an
    /// empty simplex, and no best-seen memory. Unlike the internal
    /// degeneracy [`restart`](Self::restart), this forgets everything —
    /// it is meant for workload changes, where the old optimum is stale.
    fn reset(&mut self) {
        let seed = self.space.default_config();
        let fresh =
            SimplexTuner::with_seed(self.space.clone(), seed).conservative(self.conservative);
        *self = fresh;
    }

    fn save_state(&self) -> State {
        Checkpointable::save_state(self)
    }

    fn restore_state(&mut self, state: &State) -> Result<(), PersistError> {
        Checkpointable::restore_state(self, state)
    }

    /// Simplex vertex state: size, restarts, and the cost spread between
    /// the best and worst vertex (zero spread = converged or degenerate).
    fn diagnostics(&self) -> Vec<(&'static str, f64)> {
        let mut d = vec![
            ("simplex_size", self.vertices.len() as f64),
            ("restarts", self.restarts as f64),
        ];
        if !self.vertices.is_empty() {
            let (worst, best, _) = self.worst_and_indices();
            d.push((
                "vertex_cost_spread",
                self.vertices[worst].cost - self.vertices[best].cost,
            ));
            d.push(("best_vertex_perf", -self.vertices[best].cost));
        }
        d
    }

    /// What the simplex can see ahead, by phase:
    ///
    /// * `Init` — the whole remaining init chain is certain (one vertex
    ///   per future proposal, independent of any observation), so a
    ///   speculative harness can evaluate all `n+1` initial vertices at
    ///   once;
    /// * `Reflect` — the next proposal is the reflection (computed from
    ///   the same worst/centroid `propose` will fix), and the proposal
    ///   after that — if the reflection triggers a follow-up evaluation —
    ///   is one of expansion / outside / inside contraction;
    /// * `EvalExpand` / `EvalContract*` — the pending follow-up point;
    /// * `Shrink` — the next shrink point (later ones depend on the
    ///   observed cost, which moves the best vertex).
    fn speculate(&self) -> Vec<Vec<Configuration>> {
        if self.pending.is_some() {
            return Vec::new();
        }
        match self.phase.clone() {
            Phase::Init { next } => (next..=self.dims())
                .map(|i| vec![self.init_vertex(i)])
                .collect(),
            Phase::Reflect => {
                if self.vertices.len() != self.dims() + 1 {
                    return Vec::new();
                }
                let (worst, _, _) = self.worst_and_indices();
                let centroid = self.centroid_excluding(worst);
                vec![
                    vec![self.candidate_from(&centroid, worst, ALPHA)],
                    vec![
                        self.candidate_from(&centroid, worst, GAMMA),
                        self.candidate_from(&centroid, worst, RHO),
                        self.candidate_from(&centroid, worst, -RHO),
                    ],
                ]
            }
            Phase::EvalReflect => Vec::new(),
            Phase::EvalExpand => vec![vec![self.candidate(GAMMA)]],
            Phase::EvalContractOut => vec![vec![self.candidate(RHO)]],
            Phase::EvalContractIn => vec![vec![self.candidate(-RHO)]],
            Phase::Shrink { next } => vec![vec![self.shrink_point(next)]],
        }
    }
}

impl SimplexTuner {
    /// Shrink must not re-evaluate the best vertex: advance past it.
    fn skip_best_in_shrink(&mut self) {
        if let Phase::Shrink { next } = self.phase {
            let best = self.best_vertex_idx();
            if next == best {
                self.phase = Phase::Shrink { next: next + 1 };
            }
        }
    }
}

impl Phase {
    fn save(&self) -> State {
        let (tag, next) = match self {
            Phase::Init { next } => ("init", Some(*next)),
            Phase::Reflect => ("reflect", None),
            Phase::EvalReflect => ("eval_reflect", None),
            Phase::EvalExpand => ("eval_expand", None),
            Phase::EvalContractOut => ("eval_contract_out", None),
            Phase::EvalContractIn => ("eval_contract_in", None),
            Phase::Shrink { next } => ("shrink", Some(*next)),
        };
        let mut s = State::map().with("tag", State::Str(tag.to_string()));
        if let Some(next) = next {
            s.set("next", State::U64(next as u64));
        }
        s
    }

    fn restore(state: &State) -> Result<Phase, PersistError> {
        let next = || state.field_u64("next").map(|n| n as usize);
        Ok(match state.field_str("tag")? {
            "init" => Phase::Init { next: next()? },
            "reflect" => Phase::Reflect,
            "eval_reflect" => Phase::EvalReflect,
            "eval_expand" => Phase::EvalExpand,
            "eval_contract_out" => Phase::EvalContractOut,
            "eval_contract_in" => Phase::EvalContractIn,
            "shrink" => Phase::Shrink { next: next()? },
            other => {
                return Err(PersistError::Schema(format!(
                    "unknown simplex phase '{other}'"
                )))
            }
        })
    }
}

fn vertex_state(v: &Vertex) -> State {
    State::map()
        .with("values", State::i64_list(v.config.values()))
        .with("cost", State::F64(v.cost))
}

fn vertex_restore(state: &State) -> Result<Vertex, PersistError> {
    Ok(Vertex {
        config: Configuration::from_values(state.require("values")?.to_i64_vec()?),
        cost: state.field_f64("cost")?,
    })
}

fn optional_config(c: &Option<Configuration>) -> State {
    match c {
        Some(config) => State::i64_list(config.values()),
        None => State::Null,
    }
}

fn optional_config_restore(state: &State) -> Result<Option<Configuration>, PersistError> {
    match state {
        State::Null => Ok(None),
        values => Ok(Some(Configuration::from_values(values.to_i64_vec()?))),
    }
}

impl Checkpointable for SimplexTuner {
    /// Everything but the parameter space (which the session rebuilds
    /// from its own config): simplex geometry, phase machine, pending
    /// proposal, step sizes, and the best-seen tracker.
    fn save_state(&self) -> State {
        State::map()
            .with("algorithm", State::Str(self.name().to_string()))
            .with("conservative", State::Bool(self.conservative))
            .with(
                "vertices",
                State::List(self.vertices.iter().map(vertex_state).collect()),
            )
            .with("phase", self.phase.save())
            .with("pending", optional_config(&self.pending))
            .with(
                "reflected",
                match &self.reflected {
                    Some(v) => vertex_state(v),
                    None => State::Null,
                },
            )
            .with("worst_idx", State::U64(self.worst_idx as u64))
            .with("centroid", State::f64_list(&self.centroid))
            .with("init_step", State::f64_list(&self.init_step))
            .with("seed", State::i64_list(self.seed.values()))
            .with("tracker", self.tracker.save_state())
            .with("restarts", State::U64(self.restarts as u64))
    }

    fn restore_state(&mut self, state: &State) -> Result<(), PersistError> {
        let dims = self.space.dims();
        let seed = Configuration::from_values(state.require("seed")?.to_i64_vec()?);
        if seed.values().len() != dims {
            return Err(PersistError::Schema(format!(
                "simplex seed has {} values, space has {dims} dims",
                seed.values().len()
            )));
        }
        self.conservative = state.field_bool("conservative")?;
        self.vertices = state
            .field_list("vertices")?
            .iter()
            .map(vertex_restore)
            .collect::<Result<_, _>>()?;
        self.phase = Phase::restore(state.require("phase")?)?;
        self.pending = optional_config_restore(state.require("pending")?)?;
        self.reflected = match state.require("reflected")? {
            State::Null => None,
            v => Some(vertex_restore(v)?),
        };
        self.worst_idx = state.field_u64("worst_idx")? as usize;
        self.centroid = state.require("centroid")?.to_f64_vec()?;
        self.init_step = state.require("init_step")?.to_f64_vec()?;
        self.seed = seed;
        self.tracker.restore_state(state.require("tracker")?)?;
        self.restarts = state.field_u64("restarts")? as u32;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamDef;

    fn space2d() -> ParamSpace {
        ParamSpace::new(vec![
            ParamDef::new("x", 0, 200, 20),
            ParamDef::new("y", 0, 200, 180),
        ])
    }

    /// Drive a tuner against a deterministic objective.
    fn run(tuner: &mut dyn Tuner, f: impl Fn(&[i64]) -> f64, iters: usize) {
        for _ in 0..iters {
            let c = tuner.propose();
            let perf = f(c.values());
            tuner.observe(perf);
        }
    }

    #[test]
    fn initial_simplex_has_n_plus_one_distinct_vertices() {
        let mut t = SimplexTuner::new(space2d());
        let mut seen = Vec::new();
        for _ in 0..3 {
            let c = t.propose();
            assert!(!seen.contains(&c), "duplicate init vertex {c}");
            seen.push(c);
            t.observe(0.0);
        }
        assert_eq!(t.simplex_size(), 3);
    }

    #[test]
    fn finds_quadratic_optimum() {
        let mut t = SimplexTuner::new(space2d());
        // Maximum at (120, 60).
        let f = |v: &[i64]| {
            let dx = v[0] as f64 - 120.0;
            let dy = v[1] as f64 - 60.0;
            -(dx * dx + dy * dy)
        };
        run(&mut t, f, 120);
        let (best, perf) = t.best().unwrap();
        let dist = (((best.get(0) - 120).pow(2) + (best.get(1) - 60).pow(2)) as f64).sqrt();
        assert!(
            dist < 12.0,
            "best {best} (perf {perf}) too far from optimum"
        );
    }

    #[test]
    fn respects_bounds_always() {
        let space = ParamSpace::new(vec![
            ParamDef::new("a", 10, 20, 15),
            ParamDef::new("b", -5, 5, 0),
            ParamDef::new("c", 0, 1000, 500),
        ]);
        let mut t = SimplexTuner::new(space.clone());
        // Adversarial objective pushing outward.
        let f = |v: &[i64]| (v[0] + v[1] + v[2]) as f64;
        for _ in 0..200 {
            let c = t.propose();
            assert!(space.validate(&c).is_ok(), "out-of-bounds proposal {c}");
            t.observe(f(c.values()));
        }
        // It should drive parameters to their maxima.
        let (best, _) = t.best().unwrap();
        assert_eq!(best.get(0), 20);
        assert_eq!(best.get(2), 1000);
    }

    #[test]
    fn conservative_mode_limits_travel() {
        let space = ParamSpace::new(vec![ParamDef::new("a", 0, 1000, 500)]);
        let mut aggressive = SimplexTuner::new(space.clone());
        let mut conservative = SimplexTuner::new(space).conservative(true);
        let f = |v: &[i64]| v[0] as f64;
        // After init (2 evals), track the largest single move of proposals.
        let max_step = |t: &mut SimplexTuner| {
            let mut last: Option<i64> = None;
            let mut max_step = 0i64;
            for _ in 0..40 {
                let c = t.propose();
                if let Some(prev) = last {
                    max_step = max_step.max((c.get(0) - prev).abs());
                }
                last = Some(c.get(0));
                t.observe(f(c.values()));
            }
            max_step
        };
        let a = max_step(&mut aggressive);
        let c = max_step(&mut conservative);
        assert!(c <= 260, "conservative moved {c} in one step");
        assert!(
            a >= c,
            "aggressive ({a}) should move at least as far as conservative ({c})"
        );
    }

    #[test]
    fn handles_noisy_objective_without_panicking() {
        let mut t = SimplexTuner::new(space2d());
        let mut state = 12345u64;
        let mut noise = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64 - 0.5) * 20.0
        };
        for _ in 0..300 {
            let c = t.propose();
            let base = -(c.get(0) as f64 - 100.0).abs();
            t.observe(base + noise());
        }
        assert!(t.best().is_some());
        assert_eq!(t.evaluations(), 300);
    }

    #[test]
    fn restart_recovers_from_degenerate_simplex() {
        // One-dimensional tight space: integer rounding collapses fast.
        let space = ParamSpace::new(vec![ParamDef::new("a", 0, 4, 2)]);
        let mut t = SimplexTuner::new(space);
        let f = |v: &[i64]| -((v[0] - 3) as f64).abs();
        for _ in 0..60 {
            let c = t.propose();
            t.observe(f(c.values()));
        }
        assert_eq!(t.best().unwrap().0.get(0), 3);
        // Collapse must have triggered at least one restart in 60 iters of
        // a 5-point space.
        assert!(t.restarts() > 0);
    }

    #[test]
    fn ask_tell_aliases_drive_the_search() {
        let mut t = SimplexTuner::new(space2d());
        for _ in 0..30 {
            let c = t.ask();
            #[allow(deprecated)]
            t.tell(-(c.get(0) as f64 - 120.0).abs());
        }
        assert_eq!(t.evaluations(), 30);
        assert!(t.best().is_some());
    }

    #[test]
    fn reset_forgets_search_state() {
        let mut t = SimplexTuner::new(space2d());
        run(&mut t, |v| v[0] as f64, 40);
        assert!(t.evaluations() == 40 && t.best().is_some());
        t.reset();
        assert_eq!(t.evaluations(), 0);
        assert!(t.best().is_none());
        assert_eq!(t.simplex_size(), 0);
        // And it can tune again from scratch.
        run(&mut t, |v| -(v[0] as f64 - 50.0).abs(), 40);
        assert_eq!(t.evaluations(), 40);
    }

    #[test]
    fn diagnostics_expose_vertex_state() {
        let mut t = SimplexTuner::new(space2d());
        run(&mut t, |v| v[0] as f64, 10);
        let d = t.diagnostics();
        let get = |name: &str| {
            d.iter()
                .find(|(k, _)| *k == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing diagnostic {name}"))
        };
        assert_eq!(get("simplex_size"), 3.0);
        assert!(get("vertex_cost_spread") >= 0.0);
    }

    #[test]
    #[should_panic(expected = "propose() called twice")]
    fn double_propose_panics() {
        let mut t = SimplexTuner::new(space2d());
        t.propose();
        t.propose();
    }

    #[test]
    #[should_panic(expected = "without a pending propose")]
    fn observe_without_propose_panics() {
        let mut t = SimplexTuner::new(space2d());
        t.observe(1.0);
    }

    #[test]
    fn checkpoint_roundtrip_resumes_identical_proposals() {
        let f = |v: &[i64]| -(v[0] as f64 - 120.0).abs() - (v[1] as f64 - 60.0).abs();
        let mut live = SimplexTuner::new(space2d()).conservative(true);
        for _ in 0..23 {
            let c = live.propose();
            let p = f(c.values());
            live.observe(p);
        }
        // Checkpoint mid-protocol too: a proposal is pending.
        let pending = live.propose();
        let saved = Checkpointable::save_state(&live);
        let mut resumed = SimplexTuner::new(space2d());
        Checkpointable::restore_state(&mut resumed, &saved).unwrap();
        assert_eq!(resumed.name(), "simplex-conservative");
        let p = f(pending.values());
        live.observe(p);
        resumed.observe(p);
        for _ in 0..40 {
            let a = live.propose();
            let b = resumed.propose();
            assert_eq!(a, b, "diverged after resume");
            let perf = f(a.values());
            live.observe(perf);
            resumed.observe(perf);
        }
        assert_eq!(live.evaluations(), resumed.evaluations());
        assert_eq!(live.best().unwrap().0, resumed.best().unwrap().0);
        assert_eq!(live.restarts(), resumed.restarts());
    }

    #[test]
    fn restore_rejects_wrong_shape_and_wrong_dims() {
        let mut t = SimplexTuner::new(space2d());
        assert!(Checkpointable::restore_state(&mut t, &State::Null).is_err());
        // A 1-D tuner's state must not restore into a 2-D space.
        let mut one_d = SimplexTuner::new(ParamSpace::new(vec![ParamDef::new("a", 0, 9, 5)]));
        for _ in 0..4 {
            let c = one_d.propose();
            one_d.observe(c.get(0) as f64);
        }
        let saved = Checkpointable::save_state(&one_d);
        assert!(matches!(
            Checkpointable::restore_state(&mut t, &saved),
            Err(PersistError::Schema(_))
        ));
    }

    #[test]
    fn speculation_offset_zero_always_contains_the_next_proposal() {
        // Drive a noisy-ish deterministic objective through every phase
        // and check the contract at each step: when speculation sees
        // anything, its offset-0 list contains exactly the proposal the
        // tuner makes next.
        let mut t = SimplexTuner::new(space2d());
        let f = |v: &[i64]| {
            let dx = v[0] as f64 - 120.0;
            let dy = v[1] as f64 - 60.0;
            -(dx * dx + dy * dy)
        };
        let mut nonempty = 0;
        for _ in 0..150 {
            let ahead = t.speculate();
            let proposal = t.propose();
            if let Some(next) = ahead.first() {
                nonempty += 1;
                assert!(
                    next.contains(&proposal),
                    "offset-0 speculation {next:?} missed proposal {proposal}"
                );
            }
            t.observe(f(proposal.values()));
        }
        assert!(nonempty > 100, "speculation saw ahead only {nonempty}/150");
    }

    #[test]
    fn speculation_covers_the_whole_init_chain() {
        let t = SimplexTuner::new(space2d());
        let ahead = t.speculate();
        assert_eq!(ahead.len(), 3, "2-D space: 3 init vertices ahead");
        let mut live = SimplexTuner::new(space2d());
        for expected in &ahead {
            let c = live.propose();
            assert_eq!(expected, &vec![c.clone()]);
            live.observe(0.0);
        }
    }

    #[test]
    fn speculation_offset_one_covers_reflect_followups() {
        // Whenever the phase after observing a reflection is a follow-up
        // evaluation, the proposal must be in the pre-observation
        // offset-1 candidate set.
        let mut t = SimplexTuner::new(space2d());
        let f = |v: &[i64]| -(v[0] as f64 - 150.0).abs() * 3.0 - (v[1] as f64 - 40.0).abs();
        let mut followups = 0;
        let mut ahead: Vec<Vec<Configuration>> = Vec::new();
        for _ in 0..200 {
            let was_reflect = matches!(t.phase, Phase::Reflect);
            if was_reflect {
                ahead = t.speculate();
            }
            let c = t.propose();
            t.observe(f(c.values()));
            if was_reflect
                && matches!(
                    t.phase,
                    Phase::EvalExpand | Phase::EvalContractOut | Phase::EvalContractIn
                )
            {
                let next = t.speculate();
                let upcoming = &next[0];
                assert_eq!(ahead.len(), 2);
                assert!(
                    upcoming.iter().all(|c| ahead[1].contains(c)),
                    "follow-up {upcoming:?} not among speculated {:?}",
                    ahead[1]
                );
                followups += 1;
            }
        }
        assert!(followups > 0, "objective never triggered a follow-up");
    }

    #[test]
    fn speculation_is_empty_while_a_proposal_is_pending() {
        let mut t = SimplexTuner::new(space2d());
        let _ = t.propose();
        assert!(t.speculate().is_empty());
    }

    #[test]
    fn n_plus_one_before_improvement() {
        // The paper: tuning n parameters requires exploring n+1
        // configurations before improvements take effect.
        let space = ParamSpace::new(vec![
            ParamDef::new("a", 0, 100, 50),
            ParamDef::new("b", 0, 100, 50),
            ParamDef::new("c", 0, 100, 50),
        ]);
        let mut t = SimplexTuner::new(space);
        for i in 0..4 {
            assert_eq!(t.simplex_size(), i);
            let c = t.propose();
            t.observe(c.get(0) as f64);
        }
        assert_eq!(t.simplex_size(), 4);
    }
}
