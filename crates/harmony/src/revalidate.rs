//! Best-configuration revalidation under measurement noise.
//!
//! A tuner's "best" observation suffers the winner's curse: over hundreds
//! of noisy iterations, the maximum is biased upward — some of that peak
//! is luck, not configuration. [`Revalidating`] wraps any [`Tuner`] and
//! periodically re-proposes the incumbent best configuration instead of a
//! new exploration point, maintaining an *averaged* performance estimate
//! per configuration. Its [`Revalidating::validated_best`] reports the
//! configuration with the best noise-corrected mean.

use crate::space::{Configuration, ParamSpace};
use crate::tuner::Tuner;
use std::collections::HashMap;

/// Wraps a tuner, spending every `period`-th iteration re-measuring the
/// incumbent best configuration.
pub struct Revalidating<T: Tuner> {
    inner: T,
    period: u32,
    counter: u32,
    /// What the pending proposal is: exploration (forwarded to the inner
    /// tuner) or a revalidation of a stored configuration.
    pending: Option<Pending>,
    /// Sum/count of observations per configuration we have revalidated.
    estimates: HashMap<Configuration, (f64, u32)>,
}

enum Pending {
    Exploration,
    Revalidation(Configuration),
}

impl<T: Tuner> Revalidating<T> {
    /// Revalidate every `period` proposals (period >= 2).
    pub fn new(inner: T, period: u32) -> Self {
        assert!(period >= 2, "period must leave room for exploration");
        Revalidating {
            inner,
            period,
            counter: 0,
            pending: None,
            estimates: HashMap::new(),
        }
    }

    /// The configuration with the best *averaged* performance among those
    /// revalidated at least once, with its mean and sample count. Falls
    /// back to the inner tuner's single-observation best.
    pub fn validated_best(&self) -> Option<(Configuration, f64, u32)> {
        let averaged = self
            .estimates
            .iter()
            .filter(|(_, (_, n))| *n >= 2)
            .map(|(c, (sum, n))| (c.clone(), sum / *n as f64, *n))
            .max_by(|a, b| a.1.total_cmp(&b.1));
        averaged.or_else(|| self.inner.best().map(|(c, p)| (c.clone(), p, 1)))
    }

    /// Access the wrapped tuner.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    fn record_estimate(&mut self, config: Configuration, perf: f64) {
        let e = self.estimates.entry(config).or_insert((0.0, 0));
        e.0 += perf;
        e.1 += 1;
    }
}

impl<T: Tuner> Tuner for Revalidating<T> {
    fn space(&self) -> &ParamSpace {
        self.inner.space()
    }

    fn propose(&mut self) -> Configuration {
        assert!(self.pending.is_none(), "propose() twice without observe()");
        self.counter += 1;
        let revalidate_now = self.counter.is_multiple_of(self.period);
        if revalidate_now {
            if let Some((best, _)) = self.inner.best() {
                let config = best.clone();
                self.pending = Some(Pending::Revalidation(config.clone()));
                return config;
            }
        }
        let config = self.inner.propose();
        self.pending = Some(Pending::Exploration);
        config
    }

    fn observe(&mut self, performance: f64) {
        let Some(pending) = self.pending.take() else {
            panic!("observe() without propose()");
        };
        match pending {
            Pending::Exploration => {
                self.inner.observe(performance);
                // Seed the estimate table whenever an exploration sample
                // becomes the new incumbent, so revalidation has a base
                // observation to average against.
                if let Some((c, p)) = self.inner.best() {
                    if p == performance {
                        self.record_estimate(c.clone(), performance);
                    }
                }
            }
            Pending::Revalidation(config) => {
                self.record_estimate(config, performance);
                // The inner tuner does not see revalidation samples — its
                // propose/observe protocol stays strictly alternating on
                // exploration steps only.
            }
        }
    }

    fn best(&self) -> Option<(&Configuration, f64)> {
        self.inner.best()
    }

    fn evaluations(&self) -> u64 {
        self.inner.evaluations()
    }

    fn name(&self) -> &'static str {
        "revalidating"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamDef;
    use crate::simplex::SimplexTuner;
    use simkit::rng::SimRng;

    fn space() -> ParamSpace {
        ParamSpace::new(vec![ParamDef::new("x", 0, 100, 50)])
    }

    #[test]
    fn revalidates_on_schedule() {
        let mut t = Revalidating::new(SimplexTuner::new(space()), 3);
        let mut proposals = Vec::new();
        for i in 0..12 {
            let c = t.propose();
            proposals.push(c.get(0));
            t.observe(-((proposals[i] - 70) as f64).abs());
        }
        // Every third proposal repeats the incumbent best (which is in
        // the list of earlier proposals).
        for i in (2..12).step_by(3) {
            assert!(
                proposals[..i].contains(&proposals[i]),
                "proposal {i} was not a revisit: {proposals:?}"
            );
        }
    }

    #[test]
    fn validated_best_corrects_winners_curse() {
        // True performance is constant 50 everywhere; heavy noise makes
        // single observations swing ±30. The raw best is inflated; the
        // validated mean must sit close to 50.
        let mut t = Revalidating::new(SimplexTuner::new(space()), 2);
        let mut rng = SimRng::new(9);
        for _ in 0..200 {
            let _ = t.propose();
            t.observe(50.0 + rng.normal(0.0, 10.0));
        }
        let raw_best = t.best().unwrap().1;
        let (_, validated_mean, n) = t.validated_best().unwrap();
        assert!(n >= 2);
        assert!(
            raw_best - validated_mean > 5.0,
            "raw {raw_best:.1} should exceed validated {validated_mean:.1}"
        );
        assert!(
            (validated_mean - 50.0).abs() < 10.0,
            "validated mean {validated_mean:.1} should approach truth"
        );
    }

    #[test]
    fn falls_back_to_inner_best_before_any_revalidation() {
        let mut t = Revalidating::new(SimplexTuner::new(space()), 10);
        let c = t.propose();
        t.observe(42.0);
        let (best, perf, n) = t.validated_best().unwrap();
        assert_eq!(best, c);
        assert_eq!(perf, 42.0);
        assert_eq!(n, 1);
    }

    #[test]
    fn protocol_stays_strict() {
        let mut t = Revalidating::new(SimplexTuner::new(space()), 2);
        for i in 0..20 {
            let _ = t.propose();
            t.observe(i as f64);
        }
        // Inner tuner saw only the exploration observations.
        assert!(t.inner().evaluations() <= 20);
    }

    #[test]
    #[should_panic(expected = "period must leave room")]
    fn period_of_one_rejected() {
        let _ = Revalidating::new(SimplexTuner::new(space()), 1);
    }
}
