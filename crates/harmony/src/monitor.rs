//! Resource-utilization monitoring (input to the reconfiguration
//! algorithm).
//!
//! The Active Harmony system monitors CPU load, memory usage, network
//! bandwidth and disk I/O on every node (§IV). Since reconfiguration
//! reacts to longer-term trends, the monitor aggregates per-iteration
//! snapshots with an exponential moving average before the algorithm reads
//! them.

/// The four monitored resources, in urgency order (most urgent first by
/// default — an overloaded CPU hurts more than a busy NIC; §IV footnote 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    Cpu,
    Disk,
    Net,
    Mem,
}

impl Resource {
    pub const ALL: [Resource; 4] = [Resource::Cpu, Resource::Disk, Resource::Net, Resource::Mem];

    pub fn name(self) -> &'static str {
        match self {
            Resource::Cpu => "cpu",
            Resource::Disk => "disk",
            Resource::Net => "net",
            Resource::Mem => "mem",
        }
    }

    /// Default urgency weight (higher = relieved first).
    pub fn urgency_weight(self) -> f64 {
        match self {
            Resource::Cpu => 4.0,
            Resource::Disk => 3.0,
            Resource::Mem => 2.0,
            Resource::Net => 1.0,
        }
    }
}

/// One node's utilization snapshot: `R_ij` for the four resources.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UtilizationSnapshot {
    pub cpu: f64,
    pub disk: f64,
    pub net: f64,
    pub mem: f64,
}

impl UtilizationSnapshot {
    pub fn get(&self, r: Resource) -> f64 {
        match r {
            Resource::Cpu => self.cpu,
            Resource::Disk => self.disk,
            Resource::Net => self.net,
            Resource::Mem => self.mem,
        }
    }

    pub fn set(&mut self, r: Resource, v: f64) {
        match r {
            Resource::Cpu => self.cpu = v,
            Resource::Disk => self.disk = v,
            Resource::Net => self.net = v,
            Resource::Mem => self.mem = v,
        }
    }

    /// Highest utilization across resources.
    pub fn peak(&self) -> f64 {
        self.cpu.max(self.disk).max(self.net).max(self.mem)
    }
}

/// Exponential-moving-average monitor over all nodes.
#[derive(Debug, Clone)]
pub struct UtilizationMonitor {
    alpha: f64,
    nodes: Vec<UtilizationSnapshot>,
    samples: u64,
}

impl UtilizationMonitor {
    /// `alpha` is the EMA weight of the newest sample (0 < alpha <= 1).
    pub fn new(node_count: usize, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0);
        UtilizationMonitor {
            alpha,
            nodes: vec![UtilizationSnapshot::default(); node_count],
            samples: 0,
        }
    }

    /// Feed one iteration's snapshots (one per node, aligned by index).
    pub fn observe(&mut self, snapshots: &[UtilizationSnapshot]) {
        assert_eq!(snapshots.len(), self.nodes.len(), "node count changed");
        let a = if self.samples == 0 { 1.0 } else { self.alpha };
        for (ema, s) in self.nodes.iter_mut().zip(snapshots) {
            for r in Resource::ALL {
                let v = (1.0 - a) * ema.get(r) + a * s.get(r);
                ema.set(r, v);
            }
        }
        self.samples += 1;
    }

    /// Current smoothed view of every node.
    pub fn smoothed(&self) -> &[UtilizationSnapshot] {
        &self.nodes
    }

    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Reset after a reconfiguration (old trends no longer apply).
    pub fn reset(&mut self, node_count: usize) {
        self.nodes = vec![UtilizationSnapshot::default(); node_count];
        self.samples = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(cpu: f64) -> UtilizationSnapshot {
        UtilizationSnapshot {
            cpu,
            disk: 0.1,
            net: 0.1,
            mem: 0.1,
        }
    }

    #[test]
    fn first_sample_initialises_directly() {
        let mut m = UtilizationMonitor::new(2, 0.3);
        m.observe(&[snap(0.8), snap(0.2)]);
        assert_eq!(m.smoothed()[0].cpu, 0.8);
        assert_eq!(m.smoothed()[1].cpu, 0.2);
    }

    #[test]
    fn ema_converges_toward_steady_signal() {
        let mut m = UtilizationMonitor::new(1, 0.3);
        m.observe(&[snap(0.0)]);
        for _ in 0..50 {
            m.observe(&[snap(1.0)]);
        }
        assert!(m.smoothed()[0].cpu > 0.99);
    }

    #[test]
    fn ema_smooths_spikes() {
        let mut m = UtilizationMonitor::new(1, 0.2);
        m.observe(&[snap(0.5)]);
        m.observe(&[snap(1.0)]); // single spike
        let v = m.smoothed()[0].cpu;
        assert!((0.59..0.61).contains(&v), "v = {v}");
    }

    #[test]
    fn reset_clears_state() {
        let mut m = UtilizationMonitor::new(1, 0.5);
        m.observe(&[snap(0.9)]);
        m.reset(3);
        assert_eq!(m.smoothed().len(), 3);
        assert_eq!(m.samples(), 0);
        assert_eq!(m.smoothed()[0].cpu, 0.0);
    }

    #[test]
    fn snapshot_accessors_roundtrip() {
        let mut s = UtilizationSnapshot::default();
        for (i, r) in Resource::ALL.iter().enumerate() {
            s.set(*r, i as f64 * 0.1);
        }
        for (i, r) in Resource::ALL.iter().enumerate() {
            assert_eq!(s.get(*r), i as f64 * 0.1);
        }
        assert!((s.peak() - 0.3).abs() < 1e-12);
        assert_eq!(Resource::Cpu.name(), "cpu");
    }

    #[test]
    fn urgency_order_cpu_first() {
        assert!(Resource::Cpu.urgency_weight() > Resource::Disk.urgency_weight());
        assert!(Resource::Disk.urgency_weight() > Resource::Net.urgency_weight());
    }

    #[test]
    #[should_panic(expected = "node count changed")]
    fn observe_with_wrong_arity_panics() {
        let mut m = UtilizationMonitor::new(2, 0.5);
        m.observe(&[snap(0.5)]);
    }
}
